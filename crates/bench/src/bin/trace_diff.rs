//! Compares two JSONL event streams (as written by `tables --trace
//! x.jsonl`) and reports the first divergence.
//!
//! Usage:
//!   cargo run -p foxbench --bin trace-diff -- a.jsonl b.jsonl
//!
//! Exit status: 0 when the streams are identical, 1 at the first
//! differing (or missing) event, 2 on usage or I/O errors.
//!
//! The comparison is line-by-line on the serialized form — the same
//! equality `foxbasis::obs::first_divergence` computes on the in-memory
//! streams, because `to_jsonl` is deterministic.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [a_path, b_path] = match args.as_slice() {
        [a, b] => [a.clone(), b.clone()],
        _ => {
            eprintln!("usage: trace-diff <a.jsonl> <b.jsonl>");
            std::process::exit(2);
        }
    };
    let read = |path: &str| -> Vec<String> {
        match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_owned).collect(),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let a = read(&a_path);
    let b = read(&b_path);

    for i in 0..a.len().max(b.len()) {
        let (l, r) = (a.get(i), b.get(i));
        if l != r {
            println!("streams diverge at event {i}:");
            println!("  {}: {}", a_path, l.map_or("<ended>", String::as_str));
            println!("  {}: {}", b_path, r.map_or("<ended>", String::as_str));
            std::process::exit(1);
        }
    }
    println!("streams identical ({} events)", a.len());
}
