//! Regenerates every table and in-text measurement of the paper's §5.
//!
//! Usage:
//!   cargo run --release -p foxbench --bin tables             # everything
//!   cargo run --release -p foxbench --bin tables -- table1   # one item
//!
//! Items: table1, table2, gc, gcpause, ablations, matrix, loss,
//! lossmatrix, interop, copies, scale, adversarial, micro
//!
//! Flags:
//!   --trace <file>   record the Table 1 bulk run's typed event stream;
//!                    `.jsonl` writes one JSON object per event, any
//!                    other extension writes chrome://tracing JSON
//!                    (open it in Perfetto)
//!   --pcap <file>    write the same run's wire capture, Wireshark-ready
//!
//! Bench trajectory (the checked-in real-time numbers):
//!   bench-json [--out F] [--bytes N] [--reps K] [--label L]
//!                    run {fox, x-kernel} × {1994, modern} transfers,
//!                    time them on the wall clock, and append a point to
//!                    the trajectory file (default BENCH_7.json)
//!   bench-check <file>
//!                    validate a trajectory file's schema and its
//!                    fox-vs-xk ordering on the modern profile

use foxbasis::time::VirtualDuration;
use foxharness::bench::{bench_transfer, BenchProfile};
use foxharness::experiments as exp;
use foxharness::stack::StackKind;
use simnet::CostModel;
use std::time::Instant;

fn want(args: &[String], name: &str) -> bool {
    args.is_empty() || args.iter().any(|a| a == name)
}

/// Pulls `--name value` out of the argument list, if present.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        eprintln!("{name} needs a file argument");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let seed = 42;

    if args.iter().any(|a| a == "bench-json") {
        args.retain(|a| a != "bench-json");
        bench_json(&mut args, seed);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "bench-check") {
        let path = args.get(i + 1).cloned().unwrap_or_else(|| "BENCH_7.json".into());
        bench_check(&path);
        return;
    }

    let trace_path = take_flag(&mut args, "--trace");
    let pcap_path = take_flag(&mut args, "--pcap");
    if trace_path.is_some() || pcap_path.is_some() {
        println!("running the traced Table 1 bulk transfer (10^6 bytes, 1994 cost model)...");
        let t = exp::traced_table1_bulk(StackKind::FoxStandard, CostModel::decstation_sml, 1_000_000, seed);
        println!(
            "  {} events recorded ({} overwritten), {} frames captured, {:.1} Mb/s",
            t.events.len(),
            t.dropped,
            t.pcap.frame_count(),
            t.bulk.throughput_mbps
        );
        if let Some(path) = trace_path {
            let text = if path.ends_with(".jsonl") {
                foxbasis::obs::to_jsonl(&t.events)
            } else {
                foxbasis::obs::to_chrome_trace(&t.events)
            };
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("  trace written to {path}");
        }
        if let Some(path) = pcap_path {
            if let Err(e) = t.pcap.write_to_file(&path) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("  pcap written to {path}");
        }
        println!();
        if args.is_empty() {
            return; // flags alone: don't also grind through every table
        }
    }

    if want(&args, "table1") {
        println!("running Table 1 (two 10^6-byte transfers + RTT runs)...\n");
        let t1 = exp::table1(seed);
        println!("{}", exp::render_table1(&t1));
    }

    if want(&args, "table2") {
        println!("running Table 2 (profiled 10^6-byte transfer, counters on)...\n");
        let t2 = exp::table2(seed);
        println!("{}", exp::render_table2(&t2));
    }

    if want(&args, "gc") {
        println!("running the GC study (transfer-size sweep)...\n");
        let rows = exp::gc_study(&[500_000, 1_000_000, 2_000_000, 5_000_000, 8_000_000], seed);
        println!("{}", exp::render_gc_study(&rows));
    }

    if want(&args, "gcpause") {
        println!("running the GC pause study (stop-and-copy vs incremental)...\n");
        let t = exp::gc_pause_study(400, seed);
        println!("{}", exp::render_gc_pause_study(&t));
    }

    if want(&args, "ablations") {
        println!("running the ablations (design-choice sweep)...\n");
        let rows = exp::ablations(500_000, seed);
        println!("{}", exp::render_ablations(&rows));
    }

    if want(&args, "matrix") {
        println!("running the interoperation matrix...\n");
        let rows = exp::interop_matrix(300_000, seed);
        println!("{}", exp::render_interop_matrix(&rows));
    }

    if want(&args, "loss") {
        println!("running the loss sweep...\n");
        let rows = exp::loss_sweep(200_000, seed);
        println!("{}", exp::render_loss_sweep(&rows));
    }

    if want(&args, "lossmatrix") {
        println!("running the loss matrix (each cell twice, checking determinism)...\n");
        let cells = exp::loss_matrix(200_000, seed);
        println!("{}", exp::render_loss_matrix(&cells));
    }

    if want(&args, "interop") {
        println!("running the options interop matrix (each cell twice, checking determinism)...\n");
        let cells = exp::options_interop(50_000, seed);
        println!("{}", exp::render_options_interop(&cells));
        println!("running SACK vs NewReno under burst loss (three seeds)...\n");
        let rows = exp::sack_vs_newreno(300_000, seed);
        println!("{}", exp::render_sack_vs_newreno(&rows));
    }

    if want(&args, "copies") {
        println!("running the copy comparison (Table 1 workload, copy counter on)...\n");
        let rows = exp::copy_comparison(1_000_000, seed);
        println!("{}", exp::render_copy_comparison(&rows));
    }

    if want(&args, "scale") {
        println!("running the scale experiment (N concurrent connections, fox vs x-kernel)...\n");
        let cells = exp::scale_experiment(&[16, 64, 256], seed);
        println!("{}", exp::render_scale(&cells));
    }

    // The CI subset is opt-in by exact name, never part of "everything"
    // (the full matrix already covers it).
    if args.iter().any(|a| a == "adversarial-smoke") {
        println!("running the adversarial smoke subset (6 fixed cells, each twice)...\n");
        let cells = exp::adversarial_smoke(seed);
        println!("{}", exp::render_adversarial_matrix(&cells));
    }

    if want(&args, "adversarial") {
        println!("running the adversarial matrix (attack × link × stack, each cell twice)...\n");
        let cells = exp::adversarial_matrix(seed);
        println!("{}", exp::render_adversarial_matrix(&cells));
    }

    if want(&args, "micro") {
        println!("quick wall-clock microbenchmarks (see Criterion benches for rigor):\n");
        micro();
    }
}

/// One cell of the bench matrix: {fox, xk} × {1994, modern}.
const BENCH_CELLS: [(StackKind, &str); 2] = [(StackKind::FoxStandard, "fox"), (StackKind::XKernel, "xk")];

/// `bench-json`: runs the bench matrix, times each cell on the wall
/// clock (best of `--reps`, after one untimed warm-up), and appends a
/// point to the trajectory file. The virtual outcome of every rep must
/// be identical — the runs are deterministic — so only the wall time
/// varies. Fails loudly if the structured stack falls behind the
/// baseline on the modern profile.
fn bench_json(args: &mut Vec<String>, seed: u64) {
    let out = take_flag(args, "--out").unwrap_or_else(|| "BENCH_7.json".into());
    let bytes: usize =
        take_flag(args, "--bytes").map(|s| s.parse().expect("--bytes wants a number")).unwrap_or(1_000_000);
    let reps: usize =
        take_flag(args, "--reps").map(|s| s.parse().expect("--reps wants a number")).unwrap_or(5);
    let label = take_flag(args, "--label").unwrap_or_else(|| "local".into());

    println!("bench-json: {bytes}-byte transfers, best of {reps} interleaved reps per cell -> {out}");
    // All four cells, warmed once untimed. The timed reps interleave
    // across cells (fox, xk, fox, xk, ...) so a machine-load spike hits
    // every cell equally instead of poisoning one stack's whole run;
    // min-of-N per cell then discards the spikes.
    let mut cells: Vec<(StackKind, &str, BenchProfile, _, f64)> = Vec::new();
    for (kind, kname) in BENCH_CELLS {
        for profile in [BenchProfile::Paper1994, BenchProfile::Modern] {
            let warm = bench_transfer(kind, profile, bytes, seed);
            cells.push((kind, kname, profile, warm, f64::INFINITY));
        }
    }
    for _ in 0..reps {
        for (kind, _, profile, warm, best) in cells.iter_mut() {
            let t0 = Instant::now();
            let r = bench_transfer(*kind, *profile, bytes, seed);
            *best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(r.segments, warm.segments, "same-seed reruns must be identical");
        }
    }

    let mut runs = Vec::new();
    let mut modern_rate = std::collections::BTreeMap::new();
    for (_, kname, profile, warm, best) in &cells {
        // The rate's numerator is the *workload* in MSS units — the
        // same for every cell at a given size — so the rate orders
        // exactly like wall time-to-completion; see `BenchRun`.
        let segs_per_sec = warm.workload_segments as f64 / best.max(1e-9);
        if *profile == BenchProfile::Modern {
            modern_rate.insert(*kname, segs_per_sec);
        }
        println!(
            "  {kname:>3} [{:>6}]  {:>6} data segments ({:>6} on the wire)  {:>8.2} ms wall  {:>9.0} segs/sec  ({:.2} virtual Mb/s)",
            profile.name(),
            warm.segments,
            warm.wire_segments,
            best * 1e3,
            segs_per_sec,
            warm.throughput_mbps
        );
        runs.push(format!(
            "{{\"stack\": \"{kname}\", \"profile\": \"{}\", \"bytes\": {bytes}, \"workload_segments\": {}, \
             \"segments\": {}, \"wire_segments\": {}, \"virtual_mbps\": {:.3}, \"wall_ms\": {:.3}, \
             \"segments_per_sec\": {:.0}}}",
            profile.name(),
            warm.workload_segments,
            warm.segments,
            warm.wire_segments,
            warm.throughput_mbps,
            best * 1e3,
            segs_per_sec
        ));
    }

    let fox = modern_rate["fox"];
    let xk = modern_rate["xk"];
    assert!(
        fox >= xk,
        "the structured stack must process segments at least as fast as the baseline \
         on the modern profile (fox {fox:.0} vs xk {xk:.0} segs/sec)"
    );
    println!("  modern fox/xk real-time ratio: {:.2}", fox / xk);

    // Append-only trajectory: each point is exactly one line, so prior
    // points survive as lines and ours appends after them.
    let mut points: Vec<String> = std::fs::read_to_string(&out)
        .map(|text| {
            text.lines()
                .map(str::trim_end)
                .filter(|l| l.trim_start().starts_with("{\"label\""))
                .map(|l| format!("    {}", l.trim_start().trim_end_matches(',')))
                .collect()
        })
        .unwrap_or_default();
    points.push(format!("    {{\"label\": \"{label}\", \"runs\": [{}]}}", runs.join(", ")));
    let doc = format!(
        "{{\n  \"schema\": \"fox-bench-v1\",\n  \"unit\": \"segments_per_sec\",\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("  trajectory written to {out} ({} point(s))", points.len());
    bench_check(&out);
}

/// `bench-check`: validates a trajectory file — schema marker, full
/// {fox, xk} × {1994, modern} coverage, and the fox-vs-xk ordering on
/// the modern profile of the latest point. Exits nonzero on any
/// violation, so CI can gate on it.
fn bench_check(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut failures = Vec::new();
    for needle in
        ["\"schema\": \"fox-bench-v1\"", "\"unit\": \"segments_per_sec\"", "\"points\": [", "\"label\": "]
    {
        if !text.contains(needle) {
            failures.push(format!("missing {needle}"));
        }
    }
    // The latest point must cover the whole matrix.
    let last = text.lines().rfind(|l| l.trim_start().starts_with("{\"label\""));
    let point: String = match last {
        Some(l) => {
            // Runs may be pretty-printed on the following lines; take
            // everything from the label line to the closing "]}".
            let start = text.rfind(l).unwrap_or(0);
            let rest = &text[start..];
            let end = rest.find("]}").map(|i| i + 2).unwrap_or(rest.len());
            rest[..end].to_string()
        }
        None => {
            eprintln!("bench-check: {path}: no points found");
            std::process::exit(1);
        }
    };
    let rate = |stack: &str, profile: &str| -> Option<f64> {
        let key = format!("\"stack\": \"{stack}\", \"profile\": \"{profile}\"");
        let at = point.find(&key)?;
        let tail = &point[at..];
        let v = tail.split("\"segments_per_sec\": ").nth(1)?;
        v.split([',', '}']).next()?.trim().parse().ok()
    };
    let mut rates = std::collections::BTreeMap::new();
    for (_, stack) in BENCH_CELLS {
        for profile in ["1994", "modern"] {
            match rate(stack, profile) {
                Some(v) if v > 0.0 => {
                    rates.insert((stack, profile), v);
                }
                Some(v) => failures.push(format!("{stack}/{profile}: nonpositive rate {v}")),
                None => failures.push(format!("{stack}/{profile}: cell missing from latest point")),
            }
        }
    }
    if let (Some(&fox), Some(&xk)) = (rates.get(&("fox", "modern")), rates.get(&("xk", "modern"))) {
        if fox < xk {
            failures.push(format!("modern profile: fox ({fox:.0}) slower than xk ({xk:.0}) segs/sec"));
        }
    }
    if failures.is_empty() {
        println!("bench-check: {path} OK ({} matrix cells in latest point)", rates.len());
    } else {
        for f in &failures {
            eprintln!("bench-check: {path}: {f}");
        }
        std::process::exit(1);
    }
}

/// Quick-and-dirty wall-clock versions of the Criterion microbenches, so
/// the tables binary is self-contained.
fn micro() {
    use foxbasis::checksum::{byte_check, word_check};
    use foxbasis::copy::{byte_copy, checked_word_copy, optimized_copy};
    use foxbasis::wordarray::WordArray;

    let kb = 64usize;
    let data: Vec<u8> = (0..kb * 1024).map(|i| (i % 251) as u8).collect();
    let reps = 2000;

    let time_per_kb = |f: &mut dyn FnMut() -> u16| {
        let t0 = Instant::now();
        let mut acc = 0u16;
        for _ in 0..reps {
            acc = acc.wrapping_add(f());
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as f64 / (reps as f64 * kb as f64) // ns per KB
    };

    let w = time_per_kb(&mut || word_check(&data));
    let b = time_per_kb(&mut || byte_check(&data));
    println!("checksum (per KB):");
    println!("  word_check (Fig. 10)  {w:8.1} ns/KB   (paper: 343,000 ns/KB on the DECstation)");
    println!("  byte_check (x-kernel) {b:8.1} ns/KB   (paper: 375,000 ns/KB)");
    println!("  algorithm speedup: {:.2}x (paper: 1.09x)", b / w);
    println!();

    let src = WordArray::from_slice(&data);
    let mut dst = WordArray::new(data.len());
    let mut dst2 = vec![0u8; data.len()];
    let time_copy = |f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_nanos() as f64 / (reps as f64 * kb as f64)
    };
    let cw = time_copy(&mut || checked_word_copy(&src, &mut dst));
    let cb = time_copy(&mut || byte_copy(&src, &mut dst));
    let co = time_copy(&mut || optimized_copy(&data, &mut dst2));
    println!("copy (per KB):");
    println!("  checked word copy     {cw:8.1} ns/KB   (paper SML: 300,000 ns/KB)");
    println!("  checked byte copy     {cb:8.1} ns/KB");
    println!("  memcpy (bcopy)        {co:8.1} ns/KB   (paper: 61,000 ns/KB)");
    println!("  checked/memcpy ratio: {:.1}x (paper: ~5x)", cw / co.max(0.01));
    println!();

    // Scheduler: empty call vs fork+switch.
    use fox_scheduler::Scheduler;
    let t0 = Instant::now();
    let n = 5_000_000u64;
    let mut acc = 0u64;
    for i in 0..n {
        acc = acc.wrapping_add(std::hint::black_box(i));
    }
    std::hint::black_box(acc);
    let call = t0.elapsed().as_nanos() as f64 / n as f64;

    let mut s = Scheduler::new();
    let t0 = Instant::now();
    let m = 200_000u64;
    for _ in 0..m {
        s.fork(Box::new(|_| {
            std::hint::black_box(0u64);
        }));
        s.run_ready();
    }
    let switch = t0.elapsed().as_nanos() as f64 / m as f64;
    println!("scheduler:");
    println!("  baseline op           {call:8.2} ns     (paper empty call: 1,200 ns)");
    println!("  fork+terminate+switch {switch:8.1} ns     (paper: 30,000 ns)");
    println!("  ratio: {:.0}x (paper: ~25x)", switch / call.max(0.01));
    println!();
    let _ = VirtualDuration::ZERO;
}
