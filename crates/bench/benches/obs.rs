//! What does the event layer cost? Two answers:
//!
//! * `emit`: the raw per-call price of `EventSink::emit` with the sink
//!   off (a single branch; the closure never runs) and with it
//!   recording into the bounded ring.
//! * `transfer`: a whole 256 KB bulk transfer through two TCP engines
//!   over the in-memory test link, traced vs untraced — the end-to-end
//!   overhead a `tables --trace` run pays. Off-path overhead must be
//!   negligible: the untraced transfer carries the sink field but never
//!   touches a ring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fox_scheduler::SchedHandle;
use foxbasis::obs::{Event, EventSink};
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::testlink::{LinkPair, TestAux};
use foxtcp::{Tcp, TcpConfig, TcpPattern};
use simnet::HostHandle;
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn transfer(bytes: usize, sink: EventSink) -> usize {
    let cfg = TcpConfig {
        nagle: false,
        delayed_ack_ms: None,
        initial_window: 65_535,
        send_buffer: 65_535,
        ..TcpConfig::default()
    };
    let link = LinkPair::new();
    let mut a = Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
    let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());
    a.set_obs(sink.for_host(0));
    b.set_obs(sink.for_host(1));

    let received = Rc::new(RefCell::new(0usize));
    let r2 = received.clone();
    b.open(
        TcpPattern::Passive { local_port: 80 },
        Box::new(move |ev| {
            if let foxtcp::TcpEvent::Data(d) = ev {
                *r2.borrow_mut() += d.len();
            }
        }),
    )
    .unwrap();
    let conn =
        a.open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {})).unwrap();

    let payload = vec![0xa5u8; 8192];
    let mut sent = 0;
    let mut now = VirtualTime::ZERO;
    // Children buffer their events until adopted; adopt eagerly.
    let mut adopted = false;
    while *received.borrow() < bytes {
        now += VirtualDuration::from_millis(1);
        if sent < bytes {
            sent += a.send_data(conn, &payload[..payload.len().min(bytes - sent)]).unwrap_or(0);
        }
        a.step(now);
        b.step(now);
        if !adopted {
            let r3 = received.clone();
            if b.set_handler(
                foxtcp::TcpConnId(1),
                Box::new(move |ev| {
                    if let foxtcp::TcpEvent::Data(d) = ev {
                        *r3.borrow_mut() += d.len();
                    }
                }),
            )
            .is_ok()
            {
                adopted = true;
            }
        }
    }
    let got = *received.borrow();
    got
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs-emit");
    g.throughput(Throughput::Elements(1));
    let off = EventSink::off();
    g.bench_function(BenchmarkId::new("emit", "off"), |b| {
        b.iter(|| {
            off.emit(VirtualTime::ZERO, 0, || Event::Action { tag: black_box("Process_Data") });
        })
    });
    let on = EventSink::recording(4096);
    g.bench_function(BenchmarkId::new("emit", "recording"), |b| {
        b.iter(|| {
            on.emit(VirtualTime::ZERO, 0, || Event::Action { tag: black_box("Process_Data") });
        })
    });
    g.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let bytes = 256 * 1024;
    let mut g = c.benchmark_group("obs-transfer");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("256KiB", "untraced"), |b| {
        b.iter(|| black_box(transfer(bytes, EventSink::off())))
    });
    g.bench_function(BenchmarkId::new("256KiB", "traced"), |b| {
        b.iter(|| black_box(transfer(bytes, EventSink::recording(foxbasis::obs::DEFAULT_RING_CAPACITY))))
    });
    g.finish();
}

criterion_group!(benches, bench_emit, bench_transfer);
criterion_main!(benches);
