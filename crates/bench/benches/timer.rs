//! The Fig. 11 timer, on today's hardware.
//!
//! "The entire code for starting a timer, clearing a timer, and timer
//! expiration is shown in Figure 11 ... it is simple and fast. A simple
//! timer implementation such as this one depends for performance on
//! having both fast thread creation and switching, and fast heap
//! allocation of the shared state."

use criterion::{criterion_group, criterion_main, Criterion};
use fox_scheduler::{timer, Scheduler};
use foxbasis::time::VirtualTime;
use std::hint::black_box;

fn bench_timer(c: &mut Criterion) {
    // start + clear before expiry (the common case: the ACK arrives and
    // the retransmit timer is cancelled).
    c.bench_function("timer_start_clear", |b| {
        let mut s = Scheduler::new();
        b.iter(|| {
            let h = timer::start_ms(
                &mut s,
                1000,
                Box::new(|_s| {
                    black_box(0u64);
                }),
            );
            h.clear();
            s.run_ready(); // park the sleeper thread
        })
    });

    // start + expire (the timeout path): fork, sleep, wake, run handler.
    c.bench_function("timer_start_expire", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            timer::start_ms(
                &mut s,
                1,
                Box::new(|_s| {
                    black_box(0u64);
                }),
            );
            s.run_until_idle();
        })
    });

    // 64 concurrent timers expiring in order (a busy host's retransmit,
    // delayed-ack and persist timers across many connections).
    c.bench_function("timer_64_concurrent", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for i in 0..64u64 {
                timer::start_ms(
                    &mut s,
                    1 + (i % 7),
                    Box::new(|_s| {
                        black_box(0u64);
                    }),
                );
            }
            s.advance_to(VirtualTime::from_millis(10));
        })
    });
}

criterion_group!(benches, bench_timer);
criterion_main!(benches);
