//! The TCP engine itself, on today's hardware: what does the
//! quasi-synchronous structured implementation cost per segment in real
//! Rust, fast path on and off?
//!
//! The paper could not yet answer "is the structured design as fast as C"
//! ("the maturity of our current implementation is as yet insufficient
//! to demonstrate this"); this bench answers it for the Rust rendering
//! by driving whole bulk transfers through two engines over an in-memory
//! link with zero modeled cost — every nanosecond measured is real
//! protocol processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fox_scheduler::SchedHandle;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::testlink::{LinkPair, TestAux};
use foxtcp::{Tcp, TcpConfig, TcpPattern};
use simnet::HostHandle;
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

fn transfer(bytes: usize, fast_path: bool) -> u64 {
    let cfg = TcpConfig {
        nagle: false,
        delayed_ack_ms: None,
        fast_path,
        initial_window: 65_535,
        send_buffer: 65_535,
        ..TcpConfig::default()
    };
    let link = LinkPair::new();
    let mut a = Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
    let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());

    let received = Rc::new(RefCell::new(0usize));
    let r2 = received.clone();
    b.open(
        TcpPattern::Passive { local_port: 80 },
        Box::new(move |ev| {
            if let foxtcp::TcpEvent::Data(d) = ev {
                *r2.borrow_mut() += d.len();
            }
        }),
    )
    .unwrap();
    let conn =
        a.open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {})).unwrap();

    let payload = vec![0xa5u8; 8192];
    let mut sent = 0;
    let mut now = VirtualTime::ZERO;
    // Children buffer their events until adopted; adopt eagerly.
    let mut adopted = false;
    while *received.borrow() < bytes {
        now += VirtualDuration::from_millis(1);
        if sent < bytes {
            sent += a.send_data(conn, &payload[..payload.len().min(bytes - sent)]).unwrap_or(0);
        }
        a.step(now);
        b.step(now);
        if !adopted {
            // The listener handler above receives Data directly only
            // after the child is adopted; adopt the first child.
            let r3 = received.clone();
            if b.set_handler(
                foxtcp::TcpConnId(1),
                Box::new(move |ev| {
                    if let foxtcp::TcpEvent::Data(d) = ev {
                        *r3.borrow_mut() += d.len();
                    }
                }),
            )
            .is_ok()
            {
                adopted = true;
            }
        }
    }
    a.stats().segments_sent + b.stats().segments_sent
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    let bytes = 262_144usize;
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_with_input(BenchmarkId::new("bulk_fastpath_on", bytes), &bytes, |b, &n| {
        b.iter(|| black_box(transfer(n, true)))
    });
    group.bench_with_input(BenchmarkId::new("bulk_fastpath_off", bytes), &bytes, |b, &n| {
        b.iter(|| black_box(transfer(n, false)))
    });
    group.finish();
}

/// The full simulated stacks under both cost profiles — the Criterion
/// rendering of the `tables -- bench-json` trajectory: each iteration is
/// one complete bulk transfer through device, Ethernet, IP, and TCP on
/// both hosts (1994: paper config, unbatched; modern: gigabit link,
/// GRO/TSO batching, wscale, coalesced ACKs).
fn bench_profiles(c: &mut Criterion) {
    use foxharness::bench::{bench_transfer, BenchProfile};
    use foxharness::stack::StackKind;
    let mut group = c.benchmark_group("engine_profiles");
    group.sample_size(15);
    let bytes = 200_000usize;
    group.throughput(Throughput::Bytes(bytes as u64));
    for (kind, kname) in [(StackKind::FoxStandard, "fox"), (StackKind::XKernel, "xk")] {
        for profile in [BenchProfile::Paper1994, BenchProfile::Modern] {
            let id = BenchmarkId::new(format!("{kname}_{}", profile.name()), bytes);
            group.bench_with_input(id, &bytes, |b, &n| {
                b.iter(|| black_box(bench_transfer(kind, profile, n, 42).segments))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine, bench_profiles);
criterion_main!(benches);
