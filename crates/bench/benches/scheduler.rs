//! The §3 scheduler costs, on today's hardware.
//!
//! Paper (DECstation 5000/125): an empty function call ≈ 1.2 µs; "the
//! time required by our scheduler to create a thread, terminate the
//! current thread, and switch to the new thread is approximately 30 µs
//! ... the cost of a thread switch is the cost of only a few function
//! calls." The claim under test is that ratio (~25×) and the
//! few-function-calls property.

use criterion::{criterion_group, criterion_main, Criterion};
use fox_scheduler::Scheduler;
use foxbasis::time::{VirtualDuration, VirtualTime};
use std::hint::black_box;

#[inline(never)]
fn empty_function(x: u64) -> u64 {
    black_box(x)
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("empty_function_call", |b| b.iter(|| empty_function(black_box(1))));

    // Fork a thread, run it to termination, switch back: the paper's
    // 30 µs operation.
    c.bench_function("fork_terminate_switch", |b| {
        let mut s = Scheduler::new();
        b.iter(|| {
            s.fork(Box::new(|_s| {
                black_box(0u64);
            }));
            s.run_ready();
        })
    });

    // A batch of 100 coroutines run round-robin.
    c.bench_function("round_robin_100_switches", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for _ in 0..100 {
                s.fork(Box::new(|_s| {
                    black_box(0u64);
                }));
            }
            s.run_ready();
        })
    });

    // Sleep-queue (binary heap) insert + extract.
    c.bench_function("sleep_queue_insert_extract_64", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for i in 0..64u64 {
                s.sleep(
                    VirtualDuration::from_micros((i * 37) % 1000),
                    Box::new(|_s| {
                        black_box(0u64);
                    }),
                );
            }
            s.advance_to(VirtualTime::from_millis(2));
        })
    });
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
