//! The §5 copy comparison, on today's hardware.
//!
//! Paper: SML copy ≈ 300 µs/KB vs `bcopy` ≈ 61 µs/KB (≈ 5×), because
//! "the current compiler ... checks array bounds on every access and
//! recomputes pointers on every access". The Rust rendering compares the
//! same three shapes: a checked word-at-a-time loop, a checked
//! byte-at-a-time loop, and `memcpy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use foxbasis::copy::{byte_copy, checked_word_copy, optimized_copy};
use foxbasis::wordarray::WordArray;
use std::hint::black_box;

fn bench_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("copy");
    for &size in &[1024usize, 1460, 8192, 65536] {
        let src_bytes: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let src = WordArray::from_slice(&src_bytes);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("checked_word_copy_sml", size), &src, |b, src| {
            let mut dst = WordArray::new(size);
            b.iter(|| checked_word_copy(black_box(src), black_box(&mut dst)))
        });
        group.bench_with_input(BenchmarkId::new("byte_copy", size), &src, |b, src| {
            let mut dst = WordArray::new(size);
            b.iter(|| byte_copy(black_box(src), black_box(&mut dst)))
        });
        group.bench_with_input(BenchmarkId::new("optimized_copy_bcopy", size), &src_bytes, |b, src| {
            let mut dst = vec![0u8; size];
            b.iter(|| optimized_copy(black_box(src), black_box(&mut dst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_copy);
criterion_main!(benches);
