//! The buffer architecture's before/after: bytes actually memcpy'd per
//! segment on the Table 1 bulk-transfer path.
//!
//! Before (the Vec-per-layer path, kept as `encode`/`decode` for
//! comparison): stage the payload out of the send ring into a fresh
//! vector, copy header + payload into the wire frame, and copy the
//! payload back out when decoding — every payload byte moves three
//! times per segment, plus a separate checksum pass.
//!
//! After (the `PacketBuf` path): one combined copy+checksum pass stages
//! the payload into a buffer with reserved headroom (paper Fig. 10),
//! the header is written into that headroom in place, delivery is a
//! refcount bump, and the receiver's payload is a slice of the same
//! storage — every payload byte moves once.
//!
//! Run `cargo bench --bench buf` for the wall-clock comparison; the
//! byte accounting below prints first and is recorded in
//! EXPERIMENTS.md (target: ≥ 60% fewer bytes memcpy'd per segment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use foxbasis::buf::{copy_mark, PacketBuf, DEFAULT_HEADROOM};
use foxbasis::ring::RingBuffer;
use foxbasis::seq::Seq;
use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
use std::hint::black_box;

fn header() -> TcpHeader {
    let mut h = TcpHeader::new(5000, 80);
    h.seq = Seq(100);
    h.ack = Seq(200);
    h.flags = TcpFlags { ack: true, psh: true, ..TcpFlags::default() };
    h.window = 4096;
    h
}

const PSEUDO: Option<u16> = Some(0x1b2c);

/// One segment's trip the old way; returns bytes memcpy'd.
fn legacy_trip(ring: &RingBuffer, size: usize) -> usize {
    // Stage out of the ring (copy 1), checksum is a separate pass
    // inside encode.
    let mut staged = vec![0u8; size];
    let got = ring.peek_at(0, &mut staged);
    assert_eq!(got, size);
    let moved_stage = staged.len();
    let seg = TcpSegment { header: header(), payload: staged.into() };
    // Header + payload into the frame (copy 2).
    let frame = seg.encode(PSEUDO).expect("encode");
    let moved_encode = frame.len();
    // Payload back out of the frame (copy 3).
    let rx = TcpSegment::decode(&frame, PSEUDO).expect("decode");
    let moved_decode = rx.payload.len();
    black_box(rx);
    moved_stage + moved_encode + moved_decode
}

/// One segment's trip the `PacketBuf` way; returns bytes memcpy'd
/// (read off the copy counter — the path itself claims zero besides
/// the single staging pass).
fn packetbuf_trip(ring: &RingBuffer, size: usize) -> usize {
    let mark = copy_mark();
    // Combined copy+checksum out of the ring (the only copy).
    let payload = PacketBuf::build_summed(DEFAULT_HEADROOM, size, |dst| {
        let (got, sum) = ring.peek_at_sum(0, dst);
        assert_eq!(got, size);
        sum
    });
    let seg = TcpSegment { header: header(), payload };
    // Header into the headroom, in place; the frame IS the payload
    // buffer. Delivery down the stack is a refcount bump.
    let frame = seg.encode_buf(PSEUDO).expect("encode_buf");
    // Receiver slices the payload out of the same storage.
    let rx = TcpSegment::decode_buf(&frame, PSEUDO).expect("decode_buf");
    black_box(rx);
    let delta = mark.delta();
    delta.bytes as usize
}

/// Prints the byte accounting (the number EXPERIMENTS.md records).
fn report_bytes_per_segment() {
    let size = 1460usize; // the Table 1 bulk path's MSS-sized segment
    let mut ring = RingBuffer::new(8192);
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    ring.write(&data);

    let before = legacy_trip(&ring, size);
    let after = packetbuf_trip(&ring, size);
    let reduction = 100.0 * (before - after) as f64 / before as f64;
    println!("bytes memcpy'd per {size}-byte segment:");
    println!("  Vec-per-layer (before)  {before:6} B");
    println!("  PacketBuf     (after)   {after:6} B");
    println!("  reduction               {reduction:5.1}%  (target >= 60%)");
    assert!(reduction >= 60.0, "the zero-copy path must cut per-segment memcpy by >= 60%");
}

fn bench_buf(c: &mut Criterion) {
    report_bytes_per_segment();
    let mut group = c.benchmark_group("segment_path");
    for &size in &[512usize, 1460] {
        let mut ring = RingBuffer::new(8192);
        let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        ring.write(&data);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("legacy_vec", size), &ring, |b, ring| {
            b.iter(|| black_box(legacy_trip(black_box(ring), size)))
        });
        group.bench_with_input(BenchmarkId::new("packetbuf", size), &ring, |b, ring| {
            b.iter(|| black_box(packetbuf_trip(black_box(ring), size)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buf);
criterion_main!(benches);
