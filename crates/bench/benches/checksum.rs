//! The §5 checksum comparison, on today's hardware.
//!
//! Paper (DECstation 5000/125): Fig. 10's word-at-a-time algorithm with
//! deferred carries ran at 343 µs/KB; the x-kernel's byte-oriented
//! routine at 375 µs/KB. The *claim* is the ratio: the better algorithm
//! wins despite SML's bounds checks. Here both algorithms are measured
//! with Criterion; EXPERIMENTS.md records the per-KB figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use foxbasis::checksum::{byte_check, word_check, ChecksumAccum};
use std::hint::black_box;

fn data(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 31 % 251) as u8).collect()
}

fn bench_checksum(c: &mut Criterion) {
    let mut group = c.benchmark_group("checksum");
    for &size in &[64usize, 1024, 1460, 8192, 65536] {
        let buf = data(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("word_check_fig10", size), &buf, |b, buf| {
            b.iter(|| word_check(black_box(buf)))
        });
        group.bench_with_input(BenchmarkId::new("byte_check_xkernel", size), &buf, |b, buf| {
            b.iter(|| byte_check(black_box(buf)))
        });
        group.bench_with_input(BenchmarkId::new("streaming_accum", size), &buf, |b, buf| {
            b.iter(|| {
                let mut acc = ChecksumAccum::new();
                acc.add_bytes(black_box(buf));
                acc.finish()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checksum);
criterion_main!(benches);
