//! Scheduler properties: every forked task runs exactly once; sleepers
//! wake in deadline-then-FIFO order; the clock never observes a task
//! before its deadline; slicing time differently never changes behavior.

use fox_scheduler::Scheduler;
use foxbasis::time::{VirtualDuration, VirtualTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_task_runs_exactly_once(
        delays in proptest::collection::vec(0u64..10_000, 1..80),
    ) {
        let mut s = Scheduler::new();
        let runs = Rc::new(RefCell::new(vec![0u32; delays.len()]));
        for (i, &d) in delays.iter().enumerate() {
            let r = runs.clone();
            if d == 0 {
                s.fork(Box::new(move |_| r.borrow_mut()[i] += 1));
            } else {
                s.sleep(VirtualDuration::from_micros(d), Box::new(move |_| r.borrow_mut()[i] += 1));
            }
        }
        s.run_until_idle();
        prop_assert!(runs.borrow().iter().all(|&c| c == 1), "{:?}", runs.borrow());
        prop_assert!(s.is_idle());
    }

    #[test]
    fn wake_order_is_deadline_then_fifo(
        delays in proptest::collection::vec(1u64..1_000, 1..60),
    ) {
        let mut s = Scheduler::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let o = order.clone();
            s.sleep(VirtualDuration::from_micros(d), Box::new(move |_| o.borrow_mut().push(i)));
        }
        s.run_until_idle();
        let order = order.borrow();
        prop_assert_eq!(order.len(), delays.len());
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            prop_assert!(
                delays[a] < delays[b] || (delays[a] == delays[b] && a < b),
                "task {} (d={}) woke before task {} (d={})",
                a, delays[a], b, delays[b]
            );
        }
    }

    #[test]
    fn no_task_observes_time_before_its_deadline(
        delays in proptest::collection::vec(1u64..5_000, 1..40),
    ) {
        let mut s = Scheduler::new();
        let violations = Rc::new(RefCell::new(0u32));
        for &d in &delays {
            let v = violations.clone();
            let deadline = VirtualTime::from_micros(d);
            s.sleep(VirtualDuration::from_micros(d), Box::new(move |s| {
                if s.now() < deadline {
                    *v.borrow_mut() += 1;
                }
            }));
        }
        s.run_until_idle();
        prop_assert_eq!(*violations.borrow(), 0);
    }

    #[test]
    fn advance_in_arbitrary_increments_is_equivalent(
        delays in proptest::collection::vec(1u64..2_000, 1..30),
        steps in proptest::collection::vec(1u64..700, 1..20),
    ) {
        let run = |increments: &[u64]| {
            let mut s = Scheduler::new();
            let order = Rc::new(RefCell::new(Vec::new()));
            for (i, &d) in delays.iter().enumerate() {
                let o = order.clone();
                s.sleep(VirtualDuration::from_micros(d), Box::new(move |_| o.borrow_mut().push(i)));
            }
            let mut t = 0;
            for &inc in increments {
                t += inc;
                s.advance_to(VirtualTime::from_micros(t));
            }
            s.run_until_idle();
            let v = order.borrow().clone();
            v
        };
        let one_shot = run(&[10_000]);
        let sliced: Vec<u64> = steps.iter().copied().chain(std::iter::once(10_000)).collect();
        prop_assert_eq!(one_shot, run(&sliced));
    }
}
