//! A shared, cloneable handle to a [`Scheduler`].
//!
//! The paper passes the scheduler *structure* to every functor that needs
//! timers. In Rust the equivalent is a cheap handle that several protocol
//! layers of one host can hold simultaneously; it is a thin
//! `Rc<RefCell<Scheduler>>` whose methods take and release the borrow
//! around each call, so protocol code can never deadlock on it as long as
//! tasks themselves use the `&mut Scheduler` they are handed (which the
//! [`crate::Task`] signature enforces).

use crate::timer::TimerHandle;
use crate::{SchedStats, Scheduler, Task};
use foxbasis::time::{VirtualDuration, VirtualTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Cloneable shared handle to one host's scheduler.
#[derive(Clone)]
pub struct SchedHandle {
    inner: Rc<RefCell<Scheduler>>,
}

impl SchedHandle {
    /// Wraps a fresh scheduler starting at the epoch.
    pub fn new() -> Self {
        SchedHandle { inner: Rc::new(RefCell::new(Scheduler::new())) }
    }

    /// Wraps an existing scheduler.
    pub fn from_scheduler(s: Scheduler) -> Self {
        SchedHandle { inner: Rc::new(RefCell::new(s)) }
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.inner.borrow().now()
    }

    /// Forks a normal task.
    pub fn fork(&self, task: Task) {
        self.inner.borrow_mut().fork(task);
    }

    /// Schedules `cont` after `dur`.
    pub fn sleep(&self, dur: VirtualDuration, cont: Task) {
        self.inner.borrow_mut().sleep(dur, cont);
    }

    /// Starts a Fig. 11 timer.
    pub fn start_timer(&self, dur: VirtualDuration, handler: Task) -> TimerHandle {
        crate::timer::start(&mut self.inner.borrow_mut(), dur, handler)
    }

    /// Starts a Fig. 11 timer measured in milliseconds.
    pub fn start_timer_ms(&self, ms: u64, handler: Task) -> TimerHandle {
        crate::timer::start_ms(&mut self.inner.borrow_mut(), ms, handler)
    }

    /// Runs every task that is ready at the current time.
    pub fn run_ready(&self) {
        self.inner.borrow_mut().run_ready();
    }

    /// Advances the clock, firing due sleepers.
    pub fn advance_to(&self, t: VirtualTime) {
        self.inner.borrow_mut().advance_to(t);
    }

    /// Earliest pending deadline.
    pub fn next_deadline(&self) -> Option<VirtualTime> {
        self.inner.borrow().next_deadline()
    }

    /// True if nothing is ready or sleeping.
    pub fn is_idle(&self) -> bool {
        self.inner.borrow().is_idle()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SchedStats {
        self.inner.borrow().stats()
    }
}

impl Default for SchedHandle {
    fn default() -> Self {
        SchedHandle::new()
    }
}

impl fmt::Debug for SchedHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.inner.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn handle_clones_share_one_scheduler() {
        let a = SchedHandle::new();
        let b = a.clone();
        let hits = Rc::new(Cell::new(0));
        let h = hits.clone();
        a.sleep(VirtualDuration::from_millis(5), Box::new(move |_| h.set(h.get() + 1)));
        b.advance_to(VirtualTime::from_millis(5));
        assert_eq!(hits.get(), 1);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn timer_through_handle() {
        let s = SchedHandle::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let t = s.start_timer_ms(7, Box::new(move |_| f.set(true)));
        assert_eq!(s.next_deadline(), None); // the Fig. 11 thread hasn't slept yet
        s.run_ready(); // run the forked thread: it goes to sleep
        assert_eq!(s.next_deadline(), Some(VirtualTime::from_millis(7)));
        t.clear();
        s.advance_to(VirtualTime::from_millis(10));
        assert!(!fired.get());
        assert!(s.is_idle());
    }

    #[test]
    fn tasks_can_use_the_scheduler_argument_inside_handle_runs() {
        let s = SchedHandle::new();
        let done = Rc::new(Cell::new(false));
        let d = done.clone();
        s.fork(Box::new(move |inner| {
            // Inside a task the handle is borrowed; the task must use the
            // &mut Scheduler it receives, which works fine:
            inner.sleep(VirtualDuration::from_millis(1), Box::new(move |_| d.set(true)));
        }));
        s.advance_to(VirtualTime::from_millis(1));
        assert!(done.get());
    }
}
