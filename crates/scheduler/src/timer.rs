//! The paper's Fig. 11 timer, transcribed.
//!
//! ```sml
//! fun start (handler, ms) =
//!     let val cleared = ref false
//!         fun sleep () =
//!             (Scheduler.sleep (ms);
//!              if ! cleared then ()
//!              else handler ())
//!         val thread = Scheduler.Normal sleep
//!     in Scheduler.fork (thread);
//!        cleared
//!     end
//! fun clear cleared = cleared := true
//! ```
//!
//! "The implementation of `start` allocates from the heap a new updatable
//! boolean cell and creates a new closure for the function `sleep` ...
//! The newly created boolean is returned to the caller and can be changed
//! to clear the timer." The Rust version is the same shape: the updatable
//! cell is an `Rc<Cell<bool>>`, the closure is the forked task, and
//! `clear` "is not pure, that is, works by changing the value of a
//! variable."

use crate::{Scheduler, Task};
use foxbasis::time::VirtualDuration;
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// The cleared-flag returned by [`start`]; dropping it does **not** clear
/// the timer (just as dropping the `bool ref` didn't in SML).
#[derive(Clone)]
pub struct TimerHandle {
    cleared: Rc<Cell<bool>>,
}

impl TimerHandle {
    /// Clears the timer: when the sleep expires, the handler is not run.
    pub fn clear(&self) {
        self.cleared.set(true);
    }

    /// True if [`clear`](Self::clear) has been called.
    pub fn is_cleared(&self) -> bool {
        self.cleared.get()
    }
}

impl fmt::Debug for TimerHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimerHandle(cleared={})", self.cleared.get())
    }
}

/// Starts a timer: after `dur`, `handler` runs unless the returned handle
/// has been cleared.
///
/// ```
/// use fox_scheduler::{timer, Scheduler};
/// use foxbasis::time::VirtualTime;
/// use std::{cell::Cell, rc::Rc};
/// let mut s = Scheduler::new();
/// let fired = Rc::new(Cell::new(false));
/// let f = fired.clone();
/// let handle = timer::start_ms(&mut s, 50, Box::new(move |_| f.set(true)));
/// s.advance_to(VirtualTime::from_millis(40));
/// handle.clear();                       // the ACK arrived in time
/// s.advance_to(VirtualTime::from_millis(100));
/// assert!(!fired.get());                // so the handler never ran
/// ```
pub fn start(sched: &mut Scheduler, dur: VirtualDuration, handler: Task) -> TimerHandle {
    let cleared = Rc::new(Cell::new(false));
    let flag = cleared.clone();
    // fun sleep () = (Scheduler.sleep ms; if !cleared then () else handler())
    let sleep: Task = Box::new(move |s: &mut Scheduler| {
        s.sleep(
            dur,
            Box::new(move |s: &mut Scheduler| {
                if !flag.get() {
                    handler(s);
                }
            }),
        );
    });
    // Scheduler.fork (Scheduler.Normal sleep)
    sched.fork(sleep);
    TimerHandle { cleared }
}

/// Starts a timer measured in milliseconds, the unit the paper's TCP
/// uses throughout.
pub fn start_ms(sched: &mut Scheduler, ms: u64, handler: Task) -> TimerHandle {
    start(sched, VirtualDuration::from_millis(ms), handler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxbasis::time::VirtualTime;
    use std::cell::RefCell;

    #[test]
    fn timer_fires_after_duration() {
        let mut s = Scheduler::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        start_ms(&mut s, 50, Box::new(move |_| f.set(true)));
        s.advance_to(VirtualTime::from_millis(49));
        assert!(!fired.get());
        s.advance_to(VirtualTime::from_millis(50));
        assert!(fired.get());
    }

    #[test]
    fn cleared_timer_does_not_fire() {
        let mut s = Scheduler::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let h = start_ms(&mut s, 50, Box::new(move |_| f.set(true)));
        s.advance_to(VirtualTime::from_millis(10));
        h.clear();
        assert!(h.is_cleared());
        s.advance_to(VirtualTime::from_millis(100));
        assert!(!fired.get());
    }

    #[test]
    fn clear_after_expiry_is_harmless() {
        let mut s = Scheduler::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let h = start_ms(&mut s, 5, Box::new(move |_| f.set(true)));
        s.advance_to(VirtualTime::from_millis(10));
        assert!(fired.get());
        h.clear(); // no effect, no panic
    }

    #[test]
    fn handler_can_restart_the_timer() {
        // Periodic-timer idiom: the handler starts the next round.
        let mut s = Scheduler::new();
        let count = Rc::new(Cell::new(0u32));
        fn arm(s: &mut Scheduler, count: Rc<Cell<u32>>) -> TimerHandle {
            let c = count.clone();
            start_ms(
                s,
                10,
                Box::new(move |s| {
                    c.set(c.get() + 1);
                    if c.get() < 3 {
                        arm(s, c.clone());
                    }
                }),
            )
        }
        arm(&mut s, count.clone());
        s.run_until_idle();
        assert_eq!(count.get(), 3);
        assert_eq!(s.now(), VirtualTime::from_millis(30));
    }

    #[test]
    fn many_timers_fire_in_order() {
        let mut s = Scheduler::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for ms in [30u64, 10, 20] {
            let o = order.clone();
            start_ms(&mut s, ms, Box::new(move |_| o.borrow_mut().push(ms)));
        }
        s.run_until_idle();
        assert_eq!(*order.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn handle_clones_share_the_flag() {
        let mut s = Scheduler::new();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let h = start_ms(&mut s, 5, Box::new(move |_| f.set(true)));
        let h2 = h.clone();
        h2.clear();
        assert!(h.is_cleared());
        s.run_until_idle();
        assert!(!fired.get());
    }
}
