//! # The coroutine scheduler (the paper's `COROUTINE` signature)
//!
//! The paper's TCP functor takes `structure Scheduler: COROUTINE` —
//! a **non-preemptive** user-level scheduler written entirely in SML
//! using first-class continuations. Because thread switches only happen
//! when a scheduler function is invoked, "data structure locks are
//! therefore not necessary"; on a DECstation 5000/125 creating a thread,
//! terminating the current one and switching cost about 30 µs against
//! 1.2 µs for an empty function call.
//!
//! Rust has no first-class continuations, so tasks here are written in
//! continuation-passing style: a task is a boxed closure receiving the
//! scheduler, and an operation that must resume later (`sleep`) takes the
//! rest of the computation as another closure. This is a faithful
//! rendering — SML's `callcc` implementation of coroutines *is* CPS with
//! the compiler writing the closures for you — and it preserves the two
//! properties the paper's design depends on: switches happen only at
//! scheduler calls, and the cost of a switch is "a few function calls".
//!
//! The scheduler is round-robin with a single priority level, exactly as
//! the paper describes, plus the extension the paper proposes ("by
//! replacing the current FIFO with a priority queue, we could specify
//! that particular actions ... be executed with higher priority"):
//! [`Scheduler::fork_urgent`] queues a task at the urgent level, served
//! before normal tasks.
//!
//! The sleep queue is "a priority queue implemented as a heap" — here a
//! `BinaryHeap` keyed on virtual deadline with FIFO tie-breaking, so
//! execution is fully deterministic.
//!
//! [`timer`] is a direct transcription of the paper's Fig. 11 timer.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod handle;
pub mod timer;

pub use channel::Channel;
pub use handle::SchedHandle;
pub use timer::{start as start_timer, TimerHandle};

use foxbasis::fifo::Fifo;
use foxbasis::time::{VirtualDuration, VirtualTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A schedulable unit: the rest of some computation.
///
/// The paper's threads are forked functions; ours are one-shot closures
/// that may re-fork or sleep to continue (continuation-passing style).
pub type Task = Box<dyn FnOnce(&mut Scheduler)>;

/// The paper distinguishes thread kinds at fork time
/// (`Scheduler.Normal sleep` in Fig. 11). `Urgent` implements the
/// priority extension discussed in §4.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Round-robin, single shared priority level (the paper's default).
    Normal,
    /// Served strictly before all `Normal` tasks.
    Urgent,
}

struct Sleeper {
    deadline: VirtualTime,
    /// Insertion sequence number: ties on `deadline` wake FIFO.
    seq: u64,
    task: Task,
}

impl PartialEq for Sleeper {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Sleeper {}
impl PartialOrd for Sleeper {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sleeper {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline (and
        // then the earliest insertion) is the maximum.
        other.deadline.cmp(&self.deadline).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Counters the scheduler benchmarks report.
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq)]
pub struct SchedStats {
    /// Tasks forked (normal + urgent).
    pub forks: u64,
    /// Tasks run to completion (each run is one "switch" in the paper's
    /// terminology: terminate the current thread, switch to the next).
    pub switches: u64,
    /// Sleeps scheduled.
    pub sleeps: u64,
    /// Sleepers woken.
    pub wakeups: u64,
}

/// The non-preemptive round-robin scheduler.
pub struct Scheduler {
    now: VirtualTime,
    ready: Fifo<Task>,
    urgent: Fifo<Task>,
    sleeping: BinaryHeap<Sleeper>,
    next_seq: u64,
    stats: SchedStats,
}

impl Scheduler {
    /// A scheduler whose clock starts at the epoch.
    pub fn new() -> Self {
        Self::starting_at(VirtualTime::ZERO)
    }

    /// A scheduler whose clock starts at `start`.
    pub fn starting_at(start: VirtualTime) -> Self {
        Scheduler {
            now: start,
            ready: Fifo::new(),
            urgent: Fifo::new(),
            sleeping: BinaryHeap::new(),
            next_seq: 0,
            stats: SchedStats::default(),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Forks a normal-priority task (the paper's `Scheduler.fork`).
    pub fn fork(&mut self, task: Task) {
        self.stats.forks += 1;
        self.ready.add(task);
    }

    /// Forks an urgent task, served before all normal tasks.
    pub fn fork_urgent(&mut self, task: Task) {
        self.stats.forks += 1;
        self.urgent.add(task);
    }

    /// Forks with an explicit kind.
    pub fn fork_kind(&mut self, kind: Kind, task: Task) {
        match kind {
            Kind::Normal => self.fork(task),
            Kind::Urgent => self.fork_urgent(task),
        }
    }

    /// Suspends the calling computation for `dur`; `cont` resumes when
    /// the virtual clock reaches `now + dur` (the paper's
    /// `Scheduler.sleep`, in continuation-passing form).
    pub fn sleep(&mut self, dur: VirtualDuration, cont: Task) {
        self.sleep_until(self.now + dur, cont);
    }

    /// Suspends until an absolute deadline.
    pub fn sleep_until(&mut self, deadline: VirtualTime, cont: Task) {
        self.stats.sleeps += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sleeping.push(Sleeper { deadline: deadline.max(self.now), seq, task: cont });
    }

    /// Cooperative yield: requeues `cont` at the back of the normal
    /// ready queue so every other ready task runs first.
    pub fn yield_now(&mut self, cont: Task) {
        self.ready.add(cont);
    }

    /// True if no task is ready or sleeping.
    pub fn is_idle(&self) -> bool {
        self.ready.is_empty() && self.urgent.is_empty() && self.sleeping.is_empty()
    }

    /// True if a task is ready to run *now* (without advancing time).
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty() || !self.urgent.is_empty()
    }

    /// The earliest sleeper's deadline, if any.
    pub fn next_deadline(&self) -> Option<VirtualTime> {
        self.sleeping.peek().map(|s| s.deadline)
    }

    /// Runs one ready task, if any. Returns true if a task ran.
    pub fn step(&mut self) -> bool {
        let task = match self.urgent.next() {
            Some(t) => t,
            None => match self.ready.next() {
                Some(t) => t,
                None => return false,
            },
        };
        self.stats.switches += 1;
        task(self);
        true
    }

    /// Runs ready tasks (including any they fork) until none are ready.
    /// Does not advance the clock.
    pub fn run_ready(&mut self) {
        while self.step() {}
    }

    /// Advances the clock to `t`, waking and running sleepers (and any
    /// tasks they fork) in deadline order. Between wakeups, ready tasks
    /// are drained, so causality is preserved: a sleeper due at 10 ms
    /// sees everything a 5 ms sleeper forked.
    ///
    /// # Panics
    /// Panics if `t` is in the past.
    pub fn advance_to(&mut self, t: VirtualTime) {
        assert!(self.now <= t, "scheduler clock may not run backwards");
        self.run_ready();
        while let Some(deadline) = self.next_deadline() {
            if deadline > t {
                break;
            }
            self.now = self.now.max(deadline);
            // Wake every sleeper due at this instant before running, so
            // same-deadline sleepers run FIFO even if one forks.
            while self.next_deadline().is_some_and(|d| d <= self.now) {
                let sleeper = self.sleeping.pop().expect("deadline peeked");
                self.stats.wakeups += 1;
                self.ready.add(sleeper.task);
            }
            self.run_ready();
        }
        self.now = t;
    }

    /// Runs until completely idle, advancing time as needed; returns the
    /// time of the last event. Useful for tests and standalone use.
    pub fn run_until_idle(&mut self) -> VirtualTime {
        self.run_ready();
        while let Some(d) = self.next_deadline() {
            self.advance_to(d);
        }
        self.now
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Scheduler(now={:?}, ready={}, urgent={}, sleeping={})",
            self.now,
            self.ready.size(),
            self.urgent.size(),
            self.sleeping.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn log() -> (Rc<RefCell<Vec<&'static str>>>, impl Fn(&'static str) -> Task) {
        let l = Rc::new(RefCell::new(Vec::new()));
        let l2 = l.clone();
        let mk = move |tag: &'static str| -> Task {
            let l = l2.clone();
            Box::new(move |_s: &mut Scheduler| l.borrow_mut().push(tag))
        };
        (l, mk)
    }

    #[test]
    fn round_robin_fifo_order() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        s.fork(mk("a"));
        s.fork(mk("b"));
        s.fork(mk("c"));
        s.run_ready();
        assert_eq!(*l.borrow(), vec!["a", "b", "c"]);
        assert_eq!(s.stats().switches, 3);
    }

    #[test]
    fn urgent_preempts_queue_position_not_execution() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        s.fork(mk("normal1"));
        s.fork_urgent(mk("urgent"));
        s.fork_kind(Kind::Normal, mk("normal2"));
        s.run_ready();
        assert_eq!(*l.borrow(), vec!["urgent", "normal1", "normal2"]);
    }

    #[test]
    fn forked_tasks_run_after_current_queue() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        let child = mk("child");
        let l2 = l.clone();
        s.fork(Box::new(move |s| {
            l2.borrow_mut().push("parent");
            s.fork(child);
        }));
        s.fork(mk("sibling"));
        s.run_ready();
        assert_eq!(*l.borrow(), vec!["parent", "sibling", "child"]);
    }

    #[test]
    fn sleepers_wake_in_deadline_order() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        s.sleep(VirtualDuration::from_millis(20), mk("late"));
        s.sleep(VirtualDuration::from_millis(10), mk("early"));
        s.sleep(VirtualDuration::from_millis(20), mk("late2"));
        assert_eq!(s.next_deadline(), Some(VirtualTime::from_millis(10)));
        s.advance_to(VirtualTime::from_millis(30));
        assert_eq!(*l.borrow(), vec!["early", "late", "late2"]);
        assert_eq!(s.stats().wakeups, 3);
        assert_eq!(s.now(), VirtualTime::from_millis(30));
    }

    #[test]
    fn advance_stops_short_of_future_sleepers() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        s.sleep(VirtualDuration::from_millis(100), mk("far"));
        s.advance_to(VirtualTime::from_millis(50));
        assert!(l.borrow().is_empty());
        assert!(!s.is_idle());
        s.advance_to(VirtualTime::from_millis(100));
        assert_eq!(*l.borrow(), vec!["far"]);
    }

    #[test]
    fn same_deadline_wakes_fifo() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        for tag in ["t1", "t2", "t3"] {
            s.sleep(VirtualDuration::from_millis(5), mk(tag));
        }
        s.advance_to(VirtualTime::from_millis(5));
        assert_eq!(*l.borrow(), vec!["t1", "t2", "t3"]);
    }

    #[test]
    fn wakeup_sees_earlier_forks() {
        // A 5 ms sleeper forks "x"; the 10 ms sleeper must run after "x".
        let (l, mk) = log();
        let mut s = Scheduler::new();
        let x = mk("x");
        let l2 = l.clone();
        s.sleep(
            VirtualDuration::from_millis(5),
            Box::new(move |s| {
                l2.borrow_mut().push("five");
                s.fork(x);
            }),
        );
        s.sleep(VirtualDuration::from_millis(10), mk("ten"));
        s.run_until_idle();
        assert_eq!(*l.borrow(), vec!["five", "x", "ten"]);
    }

    #[test]
    fn nested_sleep_chains() {
        // CPS chaining: sleep 1 ms, then sleep 2 ms more, then record.
        let (l, mk) = log();
        let mut s = Scheduler::new();
        let done = mk("done");
        s.sleep(
            VirtualDuration::from_millis(1),
            Box::new(move |s| s.sleep(VirtualDuration::from_millis(2), done)),
        );
        let end = s.run_until_idle();
        assert_eq!(*l.borrow(), vec!["done"]);
        assert_eq!(end, VirtualTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_cannot_run_backwards() {
        let mut s = Scheduler::starting_at(VirtualTime::from_millis(10));
        s.advance_to(VirtualTime::from_millis(5));
    }

    #[test]
    fn sleep_in_the_past_fires_immediately_on_advance() {
        let (l, mk) = log();
        let mut s = Scheduler::starting_at(VirtualTime::from_millis(10));
        s.sleep_until(VirtualTime::from_millis(3), mk("past"));
        s.advance_to(VirtualTime::from_millis(10));
        assert_eq!(*l.borrow(), vec!["past"]);
    }

    #[test]
    fn yield_now_round_robins() {
        let (l, mk) = log();
        let mut s = Scheduler::new();
        let second_half = mk("a2");
        let l2 = l.clone();
        s.fork(Box::new(move |s| {
            l2.borrow_mut().push("a1");
            s.yield_now(second_half);
        }));
        s.fork(mk("b"));
        s.run_ready();
        assert_eq!(*l.borrow(), vec!["a1", "b", "a2"]);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let run = || {
            let (l, mk) = log();
            let mut s = Scheduler::new();
            for (i, tag) in ["p", "q", "r", "s"].iter().enumerate() {
                s.sleep(VirtualDuration::from_millis((i as u64 * 7) % 3), mk(tag));
                s.fork(mk("f"));
            }
            s.run_until_idle();
            let trace = l.borrow().clone();
            trace
        };
        assert_eq!(run(), run());
    }
}
