//! CML-style typed channels — the paper's §6/§7 outlook, implemented.
//!
//! "One example that we may want to imitate or re-implement is CML
//! (Concurrent ML), described by Reppy. CML provides typed channels and
//! lightweight threads integrated into a parallel programming
//! environment."
//!
//! [`Channel<T>`] is a synchronous (rendezvous) typed channel over the
//! coroutine scheduler, in the same continuation-passing style as the
//! rest of the crate: `recv` takes the continuation that receives the
//! value; `send` takes the continuation that resumes once a receiver has
//! taken it. When no partner is waiting, the operation parks its
//! continuation on the channel; when one is, the rendezvous completes
//! by forking the partner's continuation — so a channel operation costs
//! the paper's "thread switch = a few function calls", never a busy
//! wait.

use crate::{Scheduler, Task};
use foxbasis::fifo::Fifo;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The continuation a receiver parks: give it the value.
pub type Receiver<T> = Box<dyn FnOnce(&mut Scheduler, T)>;

enum Waiting<T> {
    /// Senders queued with (value, resume-sender continuation).
    Senders(Fifo<(T, Task)>),
    /// Receivers queued with their value continuations.
    Receivers(Fifo<Receiver<T>>),
    /// Nobody parked.
    Empty,
}

struct Core<T> {
    waiting: Waiting<T>,
    /// Completed rendezvous (for stats/tests).
    exchanges: u64,
}

/// A synchronous typed channel (CML's `chan`).
///
/// ```
/// use fox_scheduler::{Channel, Scheduler};
/// use std::{cell::Cell, rc::Rc};
/// let mut s = Scheduler::new();
/// let ch: Channel<i32> = Channel::new();
/// let got = Rc::new(Cell::new(0));
/// let g = got.clone();
/// ch.recv(&mut s, Box::new(move |_s, v| g.set(v)));
/// ch.send(&mut s, 7, Box::new(|_s| {}));
/// s.run_ready();
/// assert_eq!(got.get(), 7);
/// ```
pub struct Channel<T> {
    core: Rc<RefCell<Core<T>>>,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel { core: self.core.clone() }
    }
}

impl<T: 'static> Channel<T> {
    /// A fresh channel.
    pub fn new() -> Channel<T> {
        Channel { core: Rc::new(RefCell::new(Core { waiting: Waiting::Empty, exchanges: 0 })) }
    }

    /// Sends `value`; `cont` resumes (as a forked task) once a receiver
    /// has taken the value. If a receiver is already parked, the
    /// rendezvous completes immediately: the receiver's continuation is
    /// forked with the value and `cont` is forked after it.
    pub fn send(&self, s: &mut Scheduler, value: T, cont: Task) {
        let mut core = self.core.borrow_mut();
        match &mut core.waiting {
            Waiting::Receivers(q) => {
                let recv = q.next().expect("non-empty receiver queue");
                if q.is_empty() {
                    core.waiting = Waiting::Empty;
                }
                core.exchanges += 1;
                drop(core);
                s.fork(Box::new(move |s| recv(s, value)));
                s.fork(cont);
            }
            Waiting::Senders(q) => {
                q.add((value, cont));
            }
            Waiting::Empty => {
                let mut q = Fifo::new();
                q.add((value, cont));
                core.waiting = Waiting::Senders(q);
            }
        }
    }

    /// Receives a value; `cont` runs (as a forked task) with it. If a
    /// sender is parked, the rendezvous completes immediately and the
    /// sender's continuation is forked too.
    pub fn recv(&self, s: &mut Scheduler, cont: Receiver<T>) {
        let mut core = self.core.borrow_mut();
        match &mut core.waiting {
            Waiting::Senders(q) => {
                let (value, sender_cont) = q.next().expect("non-empty sender queue");
                if q.is_empty() {
                    core.waiting = Waiting::Empty;
                }
                core.exchanges += 1;
                drop(core);
                s.fork(Box::new(move |s| cont(s, value)));
                s.fork(sender_cont);
            }
            Waiting::Receivers(q) => {
                q.add(cont);
            }
            Waiting::Empty => {
                let mut q = Fifo::new();
                q.add(cont);
                core.waiting = Waiting::Receivers(q);
            }
        }
    }

    /// Rendezvous completed so far.
    pub fn exchanges(&self) -> u64 {
        self.core.borrow().exchanges
    }

    /// Parked senders and receivers (at most one side is nonzero).
    pub fn parked(&self) -> (usize, usize) {
        match &self.core.borrow().waiting {
            Waiting::Senders(q) => (q.size(), 0),
            Waiting::Receivers(q) => (0, q.size()),
            Waiting::Empty => (0, 0),
        }
    }
}

impl<T: 'static> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

impl<T> fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (s, r) = match &self.core.borrow().waiting {
            Waiting::Senders(q) => (q.size(), 0),
            Waiting::Receivers(q) => (0, q.size()),
            Waiting::Empty => (0, 0),
        };
        write!(f, "Channel(senders={s}, receivers={r})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn receiver_first_rendezvous() {
        let mut s = Scheduler::new();
        let ch: Channel<i32> = Channel::new();
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ch.recv(&mut s, Box::new(move |_s, v| g.borrow_mut().push(v)));
        assert_eq!(ch.parked(), (0, 1));
        let sent = Rc::new(RefCell::new(false));
        let s2 = sent.clone();
        ch.send(&mut s, 42, Box::new(move |_| *s2.borrow_mut() = true));
        s.run_ready();
        assert_eq!(*got.borrow(), vec![42]);
        assert!(*sent.borrow(), "sender resumed after rendezvous");
        assert_eq!(ch.exchanges(), 1);
        assert_eq!(ch.parked(), (0, 0));
    }

    #[test]
    fn sender_first_rendezvous() {
        let mut s = Scheduler::new();
        let ch: Channel<&'static str> = Channel::new();
        ch.send(&mut s, "hello", Box::new(|_| {}));
        assert_eq!(ch.parked(), (1, 0));
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        ch.recv(&mut s, Box::new(move |_s, v| *g.borrow_mut() = Some(v)));
        s.run_ready();
        assert_eq!(*got.borrow(), Some("hello"));
    }

    #[test]
    fn values_arrive_in_send_order() {
        let mut s = Scheduler::new();
        let ch: Channel<i32> = Channel::new();
        for i in 0..5 {
            ch.send(&mut s, i, Box::new(|_| {}));
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..5 {
            let g = got.clone();
            ch.recv(&mut s, Box::new(move |_s, v| g.borrow_mut().push(v)));
        }
        s.run_ready();
        assert_eq!(*got.borrow(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ch.exchanges(), 5);
    }

    #[test]
    fn producer_consumer_pipeline() {
        // A CML-flavored pipeline: producer -> doubler -> collector,
        // each a coroutine chained through channels in CPS.
        let mut s = Scheduler::new();
        let a: Channel<u32> = Channel::new();
        let b: Channel<u32> = Channel::new();
        let out = Rc::new(RefCell::new(Vec::new()));

        // Producer: send 1..=4 on a.
        fn produce(s: &mut Scheduler, ch: Channel<u32>, i: u32) {
            if i <= 4 {
                let ch2 = ch.clone();
                ch.send(s, i, Box::new(move |s| produce(s, ch2, i + 1)));
            }
        }
        // Doubler: recv from a, send double on b, loop.
        fn double(s: &mut Scheduler, a: Channel<u32>, b: Channel<u32>) {
            let (a2, b2) = (a.clone(), b.clone());
            a.recv(
                s,
                Box::new(move |s, v| {
                    let (a3, b3) = (a2.clone(), b2.clone());
                    b2.send(s, v * 2, Box::new(move |s| double(s, a3, b3)));
                }),
            );
        }
        // Collector: recv from b into out, loop.
        fn collect(s: &mut Scheduler, b: Channel<u32>, out: Rc<RefCell<Vec<u32>>>) {
            let b2 = b.clone();
            let o2 = out.clone();
            b.recv(
                s,
                Box::new(move |s, v| {
                    o2.borrow_mut().push(v);
                    collect(s, b2, o2.clone());
                }),
            );
        }

        produce(&mut s, a.clone(), 1);
        double(&mut s, a.clone(), b.clone());
        collect(&mut s, b.clone(), out.clone());
        s.run_until_idle();
        assert_eq!(*out.borrow(), vec![2, 4, 6, 8]);
    }

    #[test]
    fn rendezvous_integrates_with_timers() {
        // A sender that fires from a timer: channels and Fig. 11 timers
        // share the same scheduler.
        let mut s = Scheduler::new();
        let ch: Channel<&'static str> = Channel::new();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        ch.recv(&mut s, Box::new(move |_s, v| *g.borrow_mut() = Some(v)));
        let ch2 = ch.clone();
        crate::timer::start_ms(
            &mut s,
            25,
            Box::new(move |s| ch2.send(s, "from the timer", Box::new(|_| {}))),
        );
        s.run_until_idle();
        assert_eq!(*got.borrow(), Some("from the timer"));
        assert_eq!(s.now(), foxbasis::time::VirtualTime::from_millis(25));
    }
}
