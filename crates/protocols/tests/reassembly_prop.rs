//! Property: IP reassembly is order-independent and duplication-proof —
//! any permutation of a datagram's fragments, with arbitrary duplicates
//! injected, reassembles to the original payload.

use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::ip::{Ip, IpConfig, IpIncoming};
use foxproto::Protocol;
use foxwire::ether::{EthAddr, EtherType};
use foxwire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Header, Ipv4Packet};
use proptest::prelude::*;
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

fn receiving_station(net: &SimNet) -> (Ip<Eth<Dev>>, Rc<RefCell<Vec<IpIncoming>>>) {
    let host = HostHandle::free();
    let mac = EthAddr::host(2);
    let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
    let mut ip = Ip::new(eth, mac, IpConfig::isolated(Ipv4Addr::new(10, 0, 0, 2)), host);
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    ip.open(IpProtocol::Udp, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
    (ip, got)
}

fn fragments_of(payload: &[u8], chunk: usize) -> Vec<Ipv4Packet> {
    let chunk = (chunk.max(8) / 8) * 8;
    let mut out = Vec::new();
    let mut off = 0;
    while off < payload.len() {
        let end = (off + chunk).min(payload.len());
        out.push(Ipv4Packet {
            header: Ipv4Header {
                ident: 99,
                more_frags: end < payload.len(),
                frag_offset: (off / 8) as u16,
                ..Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            },
            payload: payload[off..end].to_vec(),
        });
        off = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_arrival_order_reassembles(
        len in 100usize..6000,
        chunk in 64usize..1480,
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let payload: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
        let mut frags = fragments_of(&payload, chunk);

        // Deterministic permutation from the seed.
        let mut s = order_seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }
        // Duplicate some fragments.
        let dups: Vec<Ipv4Packet> = frags
            .iter()
            .enumerate()
            .filter(|(i, _)| *dup_mask.get(i % dup_mask.len()).unwrap_or(&false))
            .map(|(_, f)| f.clone())
            .collect();
        frags.extend(dups);

        // Inject through a raw Ethernet sender.
        let net = SimNet::ethernet_10mbps(7);
        let (mut ip, got) = receiving_station(&net);
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let conn = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        for f in &frags {
            raw.send(conn, EthAddr::host(2), f.encode().unwrap()).unwrap();
        }
        for _ in 0..200 {
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
            }
            if !ip.step(net.now()) {
                break;
            }
        }
        // A complete duplicate set legitimately reassembles a second
        // datagram (IP is not required to suppress whole-datagram
        // duplication — transports are). The invariants: at least one
        // delivery, and every delivery byte-exact.
        prop_assert!(!got.borrow().is_empty(), "the datagram must reassemble");
        for d in got.borrow().iter() {
            prop_assert_eq!(&d.payload, &payload);
        }
    }
}
