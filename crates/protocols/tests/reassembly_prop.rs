//! Property: IP reassembly is order-independent and duplication-proof —
//! any permutation of a datagram's fragments, with arbitrary duplicates
//! injected, reassembles to the original payload.

use foxproto::dev::Dev;
use foxproto::eth::Eth;
use foxproto::ip::{Ip, IpConfig, IpIncoming};
use foxproto::Protocol;
use foxwire::ether::{EthAddr, EtherType};
use foxwire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Header, Ipv4Packet};
use proptest::prelude::*;
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::rc::Rc;

fn receiving_station(net: &SimNet) -> (Ip<Eth<Dev>>, Rc<RefCell<Vec<IpIncoming>>>) {
    let host = HostHandle::free();
    let mac = EthAddr::host(2);
    let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
    let mut ip = Ip::new(eth, mac, IpConfig::isolated(Ipv4Addr::new(10, 0, 0, 2)), host);
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    ip.open(IpProtocol::Udp, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
    (ip, got)
}

fn fragments_of(payload: &[u8], chunk: usize) -> Vec<Ipv4Packet> {
    let chunk = (chunk.max(8) / 8) * 8;
    let mut out = Vec::new();
    let mut off = 0;
    while off < payload.len() {
        let end = (off + chunk).min(payload.len());
        out.push(Ipv4Packet {
            header: Ipv4Header {
                ident: 99,
                more_frags: end < payload.len(),
                frag_offset: (off / 8) as u16,
                ..Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            },
            payload: payload[off..end].into(),
        });
        off = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_arrival_order_reassembles(
        len in 100usize..6000,
        chunk in 64usize..1480,
        order_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let payload: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
        let mut frags = fragments_of(&payload, chunk);

        // Deterministic permutation from the seed.
        let mut s = order_seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            frags.swap(i, j);
        }
        // Duplicate some fragments.
        let dups: Vec<Ipv4Packet> = frags
            .iter()
            .enumerate()
            .filter(|(i, _)| *dup_mask.get(i % dup_mask.len()).unwrap_or(&false))
            .map(|(_, f)| f.clone())
            .collect();
        frags.extend(dups);

        // Inject through a raw Ethernet sender.
        let net = SimNet::ethernet_10mbps(7);
        let (mut ip, got) = receiving_station(&net);
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let conn = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        for f in &frags {
            raw.send(conn, EthAddr::host(2), f.encode().unwrap()).unwrap();
        }
        for _ in 0..200 {
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
            }
            if !ip.step(net.now()) {
                break;
            }
        }
        // A complete duplicate set legitimately reassembles a second
        // datagram (IP is not required to suppress whole-datagram
        // duplication — transports are). The invariants: at least one
        // delivery, and every delivery byte-exact.
        prop_assert!(!got.borrow().is_empty(), "the datagram must reassemble");
        for d in got.borrow().iter() {
            prop_assert_eq!(&d.payload, &payload);
        }
    }

    /// Overlapping and duplicate fragments resolve deterministically:
    /// first-arrival wins, byte for byte, against a reference model that
    /// applies the same policy to a flat array. Conflicting overlap
    /// content (noise fragments carry a different fill) makes any
    /// deviation from the policy visible.
    #[test]
    fn overlapping_fragments_first_arrival_wins(
        total_units in 3usize..16,
        chunk_units in 1usize..4,
        noise in proptest::collection::vec((0usize..16, 1usize..8, any::<u8>()), 0..12),
        order_seed in any::<u64>(),
    ) {
        let total = total_units * 8;
        let payload: Vec<u8> = (0..total as u32).map(|i| (i % 249) as u8).collect();

        // (offset, content, is_last) in wire form.
        let mut pieces: Vec<(usize, Vec<u8>, bool)> = Vec::new();
        let chunk = chunk_units * 8;
        let mut off = 0;
        while off < total {
            let end = (off + chunk).min(total);
            pieces.push((off, payload[off..end].to_vec(), end == total));
            off = end;
        }
        for (ou, lu, fill) in &noise {
            let o = (ou % total_units) * 8;
            let l = ((lu % total_units).max(1) * 8).min(total - o);
            if l == 0 { continue; }
            // Noise never claims to be the final fragment, so the
            // datagram length is fixed by the genuine last fragment.
            pieces.push((o, vec![*fill; l], false));
        }

        // Deterministic permutation of real + noise arrivals.
        let mut s = order_seed;
        for i in (1..pieces.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            pieces.swap(i, j);
        }

        // Reference model: a flat byte array filled first-arrival-wins,
        // completing (and resetting, as the reassembler removes done
        // datagrams) exactly when [0, total) is covered.
        let mut model: Vec<Option<u8>> = Vec::new();
        let mut model_total: Option<usize> = None;
        let mut expected: Vec<Vec<u8>> = Vec::new();
        for (o, data, last) in &pieces {
            if *last && model_total.is_none() {
                model_total = Some(o + data.len());
            }
            if model.len() < o + data.len() {
                model.resize(o + data.len(), None);
            }
            for (i, &b) in data.iter().enumerate() {
                if model[o + i].is_none() {
                    model[o + i] = Some(b);
                }
            }
            if let Some(t) = model_total {
                if model.len() >= t && model[..t].iter().all(|b| b.is_some()) {
                    expected.push(model[..t].iter().map(|b| b.unwrap()).collect());
                    model.clear();
                    model_total = None;
                }
            }
        }

        let net = SimNet::ethernet_10mbps(13);
        let (mut ip, got) = receiving_station(&net);
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let conn = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        for (o, data, last) in &pieces {
            let pkt = Ipv4Packet {
                header: Ipv4Header {
                    ident: 44,
                    more_frags: !*last,
                    frag_offset: (o / 8) as u16,
                    ..Ipv4Header::new(
                        IpProtocol::Udp,
                        Ipv4Addr::new(10, 0, 0, 1),
                        Ipv4Addr::new(10, 0, 0, 2),
                    )
                },
                payload: data.as_slice().into(),
            };
            raw.send(conn, EthAddr::host(2), pkt.encode().unwrap()).unwrap();
        }
        for _ in 0..300 {
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
            }
            if !ip.step(net.now()) {
                break;
            }
        }

        let got = got.borrow();
        prop_assert_eq!(got.len(), expected.len(), "completion count must match the model");
        for (d, want) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(&d.payload, want);
        }
        // The genuine content always wins over later-arriving noise for
        // the first completed datagram when the real fragments led.
        if let Some(first) = expected.first() {
            prop_assert_eq!(first.len(), total);
        }
    }
}

/// Replays the checked-in proptest regression (`reassembly_prop.
/// proptest-regressions`: `len = 100, chunk = 64, order_seed = 0,
/// dup_mask = [true, true, false, ...]`) as a named case, so the
/// historical failure runs on every `cargo test` by name rather than
/// only through proptest's seed file. Both fragments are duplicated —
/// a complete duplicate set — which once tripped the reassembler into
/// delivering a corrupt second datagram.
#[test]
fn regression_complete_duplicate_set_len_100_chunk_64() {
    let len = 100usize;
    let chunk = 64usize;
    let payload: Vec<u8> = (0..len as u32).map(|i| (i % 251) as u8).collect();
    let mut frags = fragments_of(&payload, chunk);

    // order_seed = 0 leaves the shuffle below fully deterministic (and
    // with two fragments, nearly in order) — kept identical to the
    // property body so the replay is the replay.
    let mut s = 0u64;
    for i in (1..frags.len()).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        frags.swap(i, j);
    }
    let dup_mask = [true, true, false, false, false, false, false, false];
    let dups: Vec<Ipv4Packet> = frags
        .iter()
        .enumerate()
        .filter(|(i, _)| dup_mask[i % dup_mask.len()])
        .map(|(_, f)| f.clone())
        .collect();
    frags.extend(dups);

    let net = SimNet::ethernet_10mbps(7);
    let (mut ip, got) = receiving_station(&net);
    let host = HostHandle::free();
    let mac = EthAddr::host(7);
    let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
    let conn = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
    for f in &frags {
        raw.send(conn, EthAddr::host(2), f.encode().unwrap()).unwrap();
    }
    for _ in 0..200 {
        if let Some(t) = net.next_delivery() {
            net.advance_to(t);
        }
        if !ip.step(net.now()) {
            break;
        }
    }
    assert!(!got.borrow().is_empty(), "the datagram must reassemble");
    for d in got.borrow().iter() {
        assert_eq!(&d.payload, &payload);
    }
}
