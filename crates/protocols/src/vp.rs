//! Virtual protocols — x-kernel-style layers that add function without
//! adding a wire protocol of their own (paper §6: "The x-kernel has also
//! developed ideas that we have not (yet) made use of, such as virtual
//! protocols" — here we do make use of one).
//!
//! [`SizedPayload`] solves the problem that makes raw Ethernet an
//! imperfect transport substrate: frames are padded to 46 bytes and
//! carry no payload length, but TCP segments rely on the layer below to
//! delimit them (IP's total-length field does it in the standard stack).
//! `SizedPayload` prepends a 2-byte big-endian length on send and strips
//! padding on receive, so `Special_Tcp = Tcp(SizedPayload(Eth(Dev)))`
//! sees exact segments.

use crate::eth::EthIncoming;
use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::time::VirtualTime;
use foxwire::ether::{EthAddr, EtherType};
use std::fmt;

/// The length-framing virtual protocol.
pub struct SizedPayload<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> {
    lower: L,
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> SizedPayload<L> {
    /// Wraps `lower`.
    pub fn new(lower: L) -> SizedPayload<L> {
        SizedPayload { lower }
    }

    /// The wrapped layer.
    pub fn lower(&self) -> &L {
        &self.lower
    }
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> Protocol for SizedPayload<L> {
    type Pattern = EtherType;
    type Peer = EthAddr;
    type Incoming = EthIncoming;
    type ConnId = L::ConnId;

    fn open(
        &mut self,
        pattern: EtherType,
        mut handler: Handler<EthIncoming>,
    ) -> Result<Self::ConnId, ProtoError> {
        self.lower.open(
            pattern,
            Box::new(move |mut msg: EthIncoming| {
                // Strip the framing: 2-byte length, then that many
                // bytes — a zero-copy reslice of the arriving buffer.
                if msg.payload.len() < 2 {
                    return; // runt: drop
                }
                let len = {
                    let b = msg.payload.bytes();
                    usize::from(u16::from_be_bytes([b[0], b[1]]))
                };
                if msg.payload.len() < 2 + len {
                    return; // inconsistent: drop
                }
                msg.payload = msg.payload.slice(2, 2 + len);
                handler(msg);
            }),
        )
    }

    fn send(
        &mut self,
        conn: Self::ConnId,
        to: EthAddr,
        payload: impl Into<PacketBuf>,
    ) -> Result<(), ProtoError> {
        let mut framed = payload.into();
        if framed.len() > usize::from(u16::MAX) {
            return Err(ProtoError::TooBig);
        }
        let len = framed.len() as u16;
        // Into the headroom: no copy of the payload bytes.
        framed.prepend_header(&len.to_be_bytes());
        self.lower.send(conn, to, framed)
    }

    fn close(&mut self, conn: Self::ConnId) -> Result<(), ProtoError> {
        self.lower.close(conn)
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        self.lower.step(now)
    }
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming> + fmt::Debug> fmt::Debug
    for SizedPayload<L>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SizedPayload({:?})", self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::Dev;
    use crate::eth::Eth;
    use simnet::{HostHandle, SimNet};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn station(net: &SimNet, id: u8) -> SizedPayload<Eth<Dev>> {
        let host = HostHandle::free();
        let mac = EthAddr::host(id);
        SizedPayload::new(Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host))
    }

    #[test]
    fn short_payload_survives_padding() {
        let net = SimNet::ethernet_10mbps(2);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open(EtherType::TcpDirect, Box::new(move |m| g.borrow_mut().push(m.payload))).unwrap();
        let c = a.open(EtherType::TcpDirect, Box::new(|_| {})).unwrap();
        a.send(c, EthAddr::host(2), b"tiny".to_vec()).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        // Without the adapter the payload would come back padded to 46
        // bytes; with it, exactly 4.
        assert_eq!(*got.borrow(), vec![b"tiny".to_vec()]);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let net = SimNet::ethernet_10mbps(2);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open(EtherType::TcpDirect, Box::new(move |m| g.borrow_mut().push(m.payload))).unwrap();
        let c = a.open(EtherType::TcpDirect, Box::new(|_| {})).unwrap();
        a.send(c, EthAddr::host(2), Vec::new()).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert_eq!(*got.borrow(), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn full_mtu_minus_framing_fits() {
        let net = SimNet::ethernet_10mbps(2);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open(EtherType::TcpDirect, Box::new(move |m| g.borrow_mut().push(m.payload))).unwrap();
        let c = a.open(EtherType::TcpDirect, Box::new(|_| {})).unwrap();
        let payload = vec![7u8; foxwire::ether::MTU - 2];
        a.send(c, EthAddr::host(2), payload.clone()).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert_eq!(got.borrow()[0], payload);
        // One more byte does not fit the Ethernet MTU.
        assert!(a.send(c, EthAddr::host(2), vec![0; foxwire::ether::MTU - 1]).is_err());
    }
}
