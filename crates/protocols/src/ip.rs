//! The IPv4 layer: routing, fragmentation, reassembly, ARP-driven
//! delivery.
//!
//! The paper singles IP fragment reassembly out as the canonical
//! automatic-storage-management workload ("IP fragment reassembly may on
//! occasion need buffers for reassembling a large number of packets
//! simultaneously, but normally won't"); the [`Reassembler`] here is that
//! machinery, bounded and deadline-pruned.

use crate::arp::{ArpCache, ArpEffect};
use crate::eth::EthIncoming;
use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::fifo::Fifo;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::arp::ArpPacket;
use foxwire::ether::{EthAddr, EtherType};
use foxwire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Header, Ipv4Packet};
use simnet::HostHandle;
use std::collections::BTreeMap;
use std::fmt;
use std::{cell::RefCell, rc::Rc};

/// Reassembly gives up on a datagram after this long (RFC 1122's
/// suggested 15–120 s range).
pub const REASSEMBLY_TIMEOUT: VirtualDuration = VirtualDuration::from_secs(30);
/// At most this many datagrams may be in reassembly at once.
pub const MAX_REASSEMBLIES: usize = 16;
/// How long we keep retrying ARP for a next hop before declaring it
/// unreachable and dropping queued packets.
pub const ARP_GIVE_UP: VirtualDuration = VirtualDuration::from_secs(5);

/// What an upper layer receives from `Ip`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IpIncoming {
    /// Sender.
    pub src: Ipv4Addr,
    /// Destination (ours, or a broadcast).
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProtocol,
    /// Reassembled payload (for unfragmented datagrams, a zero-copy
    /// slice of the received frame).
    pub payload: PacketBuf,
}

/// Connection handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IpConn(u32);

/// Host-side IP configuration.
#[derive(Clone, Debug)]
pub struct IpConfig {
    /// Our address.
    pub local: Ipv4Addr,
    /// Subnet prefix length (for direct-vs-gateway routing).
    pub prefix_len: u8,
    /// Default gateway for off-subnet destinations.
    pub gateway: Option<Ipv4Addr>,
    /// Initial TTL on sent packets.
    pub ttl: u8,
}

impl IpConfig {
    /// A /24 host with no gateway (the isolated-segment setup of the
    /// paper's benchmark).
    pub fn isolated(local: Ipv4Addr) -> IpConfig {
        IpConfig { local, prefix_len: 24, gateway: None, ttl: 64 }
    }
}

/// Drop/delivery counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IpStats {
    /// Packets delivered upward.
    pub delivered: u64,
    /// Packets sent (post-fragmentation count).
    pub sent: u64,
    /// Undecodable or checksum-failing packets.
    pub bad: u64,
    /// Packets not addressed to us.
    pub not_ours: u64,
    /// Packets with no listening connection.
    pub no_listener: u64,
    /// Datagrams abandoned in reassembly.
    pub reassembly_expired: u64,
    /// Packets dropped because ARP never resolved.
    pub unresolved: u64,
}

struct Conn {
    id: IpConn,
    proto: IpProtocol,
    handler: Handler<IpIncoming>,
}

struct Reassembly {
    /// Disjoint fragments sorted by offset. The disjointness is an
    /// invariant `insert` maintains: arrivals are clipped against what
    /// is already held, so overlap resolution is deterministic
    /// regardless of arrival order *within* the policy — bytes that
    /// arrived first are never displaced (first-arrival wins; RFC 791
    /// leaves overlap policy open).
    chunks: Vec<(usize, PacketBuf)>,
    total: Option<usize>,
    started: VirtualTime,
    proto: IpProtocol,
    src: Ipv4Addr,
    dst: Ipv4Addr,
}

impl Reassembly {
    fn insert(&mut self, offset: usize, data: PacketBuf, last: bool) {
        if last && self.total.is_none() {
            // First final fragment fixes the datagram length; a
            // conflicting later claim does not move it.
            self.total = Some(offset + data.len());
        }
        // Clip the newcomer against every byte range already held,
        // keeping only still-uncovered pieces as zero-copy slices.
        // Exact duplicates and fully-covered arrivals vanish entirely.
        let end = offset + data.len();
        let mut from = offset;
        let mut pieces = Vec::new();
        for (o, d) in &self.chunks {
            let (co, ce) = (*o, *o + d.len());
            if ce <= from || co >= end {
                continue;
            }
            if from < co {
                pieces.push((from, data.slice(from - offset, co - offset)));
            }
            from = from.max(ce);
            if from >= end {
                break;
            }
        }
        if from < end {
            pieces.push((from, data.slice(from - offset, end - offset)));
        }
        self.chunks.extend(pieces);
        self.chunks.sort_by_key(|(o, _)| *o);
    }

    fn complete(&self) -> Option<PacketBuf> {
        let total = self.total?;
        // The chunks are disjoint and sorted, so coverage of [0, total)
        // is a single monotone walk.
        let mut covered = 0usize;
        for (o, d) in &self.chunks {
            if *o > covered {
                return None; // hole
            }
            covered = covered.max(*o + d.len());
            if covered >= total {
                break;
            }
        }
        if covered < total {
            return None;
        }
        if self.chunks.len() == 1 && self.chunks[0].0 == 0 {
            // Single piece covering everything: hand it up zero-copy.
            let mut buf = self.chunks[0].1.clone();
            buf.truncate(total);
            return Some(buf);
        }
        // The one genuine reassembly copy, off the single-segment fast
        // path: stitch the fragment slices into a fresh buffer.
        Some(PacketBuf::build(0, total, |out| {
            for (o, d) in &self.chunks {
                if *o >= total {
                    break;
                }
                let end = (*o + d.len()).min(total);
                out[*o..end].copy_from_slice(&d.bytes()[..end - *o]);
            }
        }))
    }
}

/// The fragment reassembler.
pub struct Reassembler {
    inflight: BTreeMap<(Ipv4Addr, u16, u8), Reassembly>,
}

impl Reassembler {
    fn new() -> Reassembler {
        Reassembler { inflight: BTreeMap::new() }
    }

    /// Feeds one fragment; returns the whole datagram when complete.
    fn input(&mut self, now: VirtualTime, pkt: Ipv4Packet) -> Option<IpIncoming> {
        let key = (pkt.header.src, pkt.header.ident, pkt.header.protocol.to_u8());
        if !self.inflight.contains_key(&key) && self.inflight.len() >= MAX_REASSEMBLIES {
            return None; // table full: drop (bounded memory)
        }
        let entry = self.inflight.entry(key).or_insert_with(|| Reassembly {
            chunks: Vec::new(),
            total: None,
            started: now,
            proto: pkt.header.protocol,
            src: pkt.header.src,
            dst: pkt.header.dst,
        });
        let last = !pkt.header.more_frags;
        entry.insert(pkt.header.frag_byte_offset(), pkt.payload, last);
        if let Some(payload) = entry.complete() {
            if let Some(done) = self.inflight.remove(&key) {
                return Some(IpIncoming { src: done.src, dst: done.dst, proto: done.proto, payload });
            }
        }
        None
    }

    fn expire(&mut self, now: VirtualTime) -> u64 {
        let before = self.inflight.len();
        self.inflight.retain(|_, r| now.saturating_since(r.started) <= REASSEMBLY_TIMEOUT);
        (before - self.inflight.len()) as u64
    }

    /// Number of datagrams currently being reassembled.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

/// The IPv4 layer over an Ethernet-like lower protocol.
pub struct Ip<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> {
    lower: L,
    config: IpConfig,
    host: HostHandle,
    ipv4_conn: Option<L::ConnId>,
    arp_conn: Option<L::ConnId>,
    rx: Rc<RefCell<Fifo<EthIncoming>>>,
    arp: ArpCache,
    reasm: Reassembler,
    conns: Vec<Conn>,
    next_id: u32,
    next_ident: u16,
    stats: IpStats,
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> Ip<L> {
    /// An IP host at `config.local` over `lower`, whose station address
    /// is `local_eth`.
    pub fn new(lower: L, local_eth: EthAddr, config: IpConfig, host: HostHandle) -> Ip<L> {
        let arp = ArpCache::new(local_eth, config.local);
        Ip {
            lower,
            config,
            host,
            ipv4_conn: None,
            arp_conn: None,
            rx: Rc::new(RefCell::new(Fifo::new())),
            arp,
            reasm: Reassembler::new(),
            conns: Vec::new(),
            next_id: 0,
            next_ident: 1,
            stats: IpStats::default(),
        }
    }

    /// Our address.
    pub fn local_addr(&self) -> Ipv4Addr {
        self.config.local
    }

    /// The MTU available to transports: Ethernet payload minus our
    /// header (the `mtu` of the paper's `IP_AUX`).
    pub fn mtu(&self) -> usize {
        foxwire::ether::MTU - foxwire::ipv4::HEADER_LEN
    }

    /// Layer statistics.
    pub fn stats(&self) -> IpStats {
        self.stats
    }

    fn ensure_lower_open(&mut self) -> Result<(), ProtoError> {
        if self.ipv4_conn.is_none() {
            let q = self.rx.clone();
            self.ipv4_conn =
                Some(self.lower.open(EtherType::Ipv4, Box::new(move |m| q.borrow_mut().add(m)))?);
            let q = self.rx.clone();
            self.arp_conn = Some(self.lower.open(EtherType::Arp, Box::new(move |m| q.borrow_mut().add(m)))?);
        }
        Ok(())
    }

    fn subnet_of(&self, addr: Ipv4Addr) -> u32 {
        let mask = if self.config.prefix_len == 0 { 0 } else { !0u32 << (32 - self.config.prefix_len) };
        addr.to_u32() & mask
    }

    fn is_broadcast_for_us(&self, dst: Ipv4Addr) -> bool {
        if dst == Ipv4Addr::BROADCAST {
            return true;
        }
        let host_bits = 32 - u32::from(self.config.prefix_len);
        let subnet_broadcast =
            self.subnet_of(self.config.local) | ((1u64 << host_bits) as u32).wrapping_sub(1);
        dst.to_u32() == subnet_broadcast
    }

    fn next_hop(&self, dst: Ipv4Addr) -> Result<Option<Ipv4Addr>, ProtoError> {
        if self.is_broadcast_for_us(dst) {
            return Ok(None); // link broadcast
        }
        if self.subnet_of(dst) == self.subnet_of(self.config.local) {
            return Ok(Some(dst));
        }
        self.config.gateway.map(Some).ok_or(ProtoError::Unreachable)
    }

    fn transmit_packet(
        &mut self,
        now: VirtualTime,
        bytes: PacketBuf,
        dst: Ipv4Addr,
    ) -> Result<(), ProtoError> {
        let conn = self.ipv4_conn.expect("lower opened");
        self.stats.sent += 1;
        match self.next_hop(dst)? {
            None => self.lower.send(conn, EthAddr::BROADCAST, bytes),
            Some(hop) => {
                let effects = self.arp.resolve(now, hop, bytes);
                self.apply_arp_effects(effects)
            }
        }
    }

    fn apply_arp_effects(&mut self, effects: Vec<ArpEffect>) -> Result<(), ProtoError> {
        for e in effects {
            match e {
                ArpEffect::Transmit(arp_pkt, dst_mac) => {
                    let conn = self.arp_conn.expect("lower opened");
                    self.lower.send(conn, dst_mac, arp_pkt.encode())?;
                }
                ArpEffect::Release(packets, dst_mac) => {
                    let conn = self.ipv4_conn.expect("lower opened");
                    for p in packets {
                        self.lower.send(conn, dst_mac, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn deliver(&mut self, msg: IpIncoming) {
        match self.conns.iter_mut().find(|c| c.proto == msg.proto) {
            Some(conn) => {
                self.stats.delivered += 1;
                (conn.handler)(msg);
            }
            None => self.stats.no_listener += 1,
        }
    }
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming>> Protocol for Ip<L> {
    type Pattern = IpProtocol;
    type Peer = Ipv4Addr;
    type Incoming = IpIncoming;
    type ConnId = IpConn;

    fn open(&mut self, proto: IpProtocol, handler: Handler<IpIncoming>) -> Result<IpConn, ProtoError> {
        self.ensure_lower_open()?;
        if self.conns.iter().any(|c| c.proto == proto) {
            return Err(ProtoError::AlreadyOpen);
        }
        let id = IpConn(self.next_id);
        self.next_id += 1;
        self.conns.push(Conn { id, proto, handler });
        Ok(id)
    }

    fn send(&mut self, conn: IpConn, to: Ipv4Addr, payload: impl Into<PacketBuf>) -> Result<(), ProtoError> {
        let payload: PacketBuf = payload.into();
        let proto = self.conns.iter().find(|c| c.id == conn).map(|c| c.proto).ok_or(ProtoError::NotOpen)?;
        self.host.charge_ip_packet();
        let now = self.host.with(|h| h.now_busy());
        let mtu = self.mtu();
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1);

        if payload.len() <= mtu {
            let header =
                Ipv4Header { ident, ttl: self.config.ttl, ..Ipv4Header::new(proto, self.config.local, to) };
            let bytes = Ipv4Packet { header, payload }.encode_buf().map_err(|_| ProtoError::TooBig)?;
            return self.transmit_packet(now, bytes, to);
        }

        // Fragment: chunks must be multiples of 8 bytes except the last.
        let chunk = mtu & !7;
        let mut offset = 0;
        while offset < payload.len() {
            let end = (offset + chunk).min(payload.len());
            let more = end < payload.len();
            let header = Ipv4Header {
                ident,
                ttl: self.config.ttl,
                more_frags: more,
                frag_offset: (offset / 8) as u16,
                ..Ipv4Header::new(proto, self.config.local, to)
            };
            if offset > 0 {
                self.host.charge_ip_packet(); // each extra fragment costs
            }
            let bytes = Ipv4Packet { header, payload: payload.slice(offset, end) }
                .encode_buf()
                .map_err(|_| ProtoError::TooBig)?;
            self.transmit_packet(now, bytes, to)?;
            offset = end;
        }
        Ok(())
    }

    fn close(&mut self, conn: IpConn) -> Result<(), ProtoError> {
        let before = self.conns.len();
        self.conns.retain(|c| c.id != conn);
        if self.conns.len() == before {
            return Err(ProtoError::NotOpen);
        }
        Ok(())
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let mut progress = self.lower.step(now);
        loop {
            let msg = match self.rx.borrow_mut().next() {
                Some(m) => m,
                None => break,
            };
            progress = true;
            match msg.ethertype {
                EtherType::Arp => {
                    if let Ok(pkt) = ArpPacket::decode(&msg.payload.bytes()) {
                        let effects = self.arp.input(now, &pkt);
                        let _ = self.apply_arp_effects(effects);
                    } else {
                        self.stats.bad += 1;
                    }
                }
                EtherType::Ipv4 => {
                    self.host.charge_ip_packet();
                    let pkt = match Ipv4Packet::decode_buf(&msg.payload) {
                        Ok(p) => p,
                        Err(_) => {
                            self.stats.bad += 1;
                            continue;
                        }
                    };
                    if pkt.header.dst != self.config.local && !self.is_broadcast_for_us(pkt.header.dst) {
                        self.stats.not_ours += 1;
                        continue;
                    }
                    if pkt.header.is_fragment() {
                        if let Some(whole) = self.reasm.input(now, pkt) {
                            self.deliver(whole);
                        }
                    } else {
                        let m = IpIncoming {
                            src: pkt.header.src,
                            dst: pkt.header.dst,
                            proto: pkt.header.protocol,
                            payload: pkt.payload,
                        };
                        self.deliver(m);
                    }
                }
                _ => self.stats.bad += 1,
            }
        }
        self.stats.reassembly_expired += self.reasm.expire(now);
        for _dead in self.arp.expire_pending(now, ARP_GIVE_UP) {
            self.stats.unresolved += 1;
        }
        progress
    }
}

impl<L: Protocol<Pattern = EtherType, Peer = EthAddr, Incoming = EthIncoming> + fmt::Debug> fmt::Debug
    for Ip<L>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ip({}, conns={}, over {:?})", self.config.local, self.conns.len(), self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::Dev;
    use crate::eth::Eth;
    use simnet::SimNet;

    type Stack = Ip<Eth<Dev>>;

    fn station(net: &SimNet, id: u8) -> Stack {
        let host = HostHandle::free();
        let mac = EthAddr::host(id);
        let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
        Ip::new(eth, mac, IpConfig::isolated(Ipv4Addr::new(10, 0, 0, id)), host)
    }

    fn listen(ip: &mut Stack, proto: IpProtocol) -> Rc<RefCell<Vec<IpIncoming>>> {
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ip.open(proto, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
        got
    }

    /// Run both stacks until the network and queues go quiet.
    fn settle(net: &SimNet, stacks: &mut [&mut Stack]) {
        for _ in 0..100 {
            let mut progress = false;
            for s in stacks.iter_mut() {
                progress |= s.step(net.now());
            }
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    #[test]
    fn datagram_exchange_with_arp_resolution() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = listen(&mut b, IpProtocol::Udp);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::new(10, 0, 0, 2), b"hello ip".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got.borrow().len(), 1, "datagram arrives after ARP resolves");
        let m = &got.borrow()[0];
        assert_eq!(m.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(m.payload, b"hello ip");
        assert!(a.stats().sent >= 1);
    }

    #[test]
    fn second_datagram_uses_cached_arp() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = listen(&mut b, IpProtocol::Udp);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::new(10, 0, 0, 2), b"one".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        let arp_frames_before = net.stats().frames_sent;
        a.send(conn, Ipv4Addr::new(10, 0, 0, 2), b"two".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got.borrow().len(), 2);
        // Only one more frame on the wire: the datagram itself.
        assert_eq!(net.stats().frames_sent, arp_frames_before + 1);
    }

    #[test]
    fn large_datagram_fragments_and_reassembles() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = listen(&mut b, IpProtocol::Udp);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        let payload: Vec<u8> = (0..4000u32).map(|i| (i % 251) as u8).collect();
        a.send(conn, Ipv4Addr::new(10, 0, 0, 2), payload.clone()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].payload, payload);
        assert_eq!(a.stats().sent, 3, "4000 bytes over 1480-byte MTU = 3 fragments");
        assert_eq!(b.reasm.in_flight(), 0);
    }

    #[test]
    fn off_subnet_without_gateway_is_unreachable() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        assert_eq!(a.send(conn, Ipv4Addr::new(99, 9, 9, 9), b"far".to_vec()), Err(ProtoError::Unreachable));
    }

    #[test]
    fn broadcast_delivery() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let mut c = station(&net, 3);
        let got_b = listen(&mut b, IpProtocol::Udp);
        let got_c = listen(&mut c, IpProtocol::Udp);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::BROADCAST, b"all".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b, &mut c]);
        assert_eq!(got_b.borrow().len(), 1);
        assert_eq!(got_c.borrow().len(), 1);
        // Subnet broadcast too.
        a.send(conn, Ipv4Addr::new(10, 0, 0, 255), b"subnet".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b, &mut c]);
        assert_eq!(got_b.borrow().len(), 2);
    }

    #[test]
    fn wrong_destination_not_delivered() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        // Hand-craft a packet to 10.0.0.9 but send it to B's MAC.
        let pkt = Ipv4Packet {
            header: Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 9)),
            payload: b"misdirected"[..].into(),
        };
        let got = listen(&mut b, IpProtocol::Udp);
        // Use a's lower Eth directly through its Protocol interface by
        // opening a raw Ipv4 conn... simplest: encode an Eth frame on the
        // wire through a fresh station's Dev.
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let rc = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        raw.send(rc, EthAddr::host(2), pkt.encode().unwrap()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert!(got.borrow().is_empty());
        assert_eq!(b.stats().not_ours, 1);
    }

    #[test]
    fn no_listener_counted() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let _tcp_only = listen(&mut b, IpProtocol::Tcp);
        let conn = a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::new(10, 0, 0, 2), b"udp".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(b.stats().no_listener, 1);
    }

    #[test]
    fn duplicate_proto_open_rejected() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        a.open(IpProtocol::Tcp, Box::new(|_| {})).unwrap();
        assert_eq!(a.open(IpProtocol::Tcp, Box::new(|_| {})).unwrap_err(), ProtoError::AlreadyOpen);
    }

    #[test]
    fn reassembly_expires_incomplete_datagrams() {
        let net = SimNet::ethernet_10mbps(5);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = listen(&mut b, IpProtocol::Udp);
        // Craft a lone first-fragment.
        let header = Ipv4Header {
            ident: 77,
            more_frags: true,
            ..Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        };
        let pkt = Ipv4Packet { header, payload: vec![0u8; 8].into() };
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let rc = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        raw.send(rc, EthAddr::host(2), pkt.encode().unwrap()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(b.reasm.in_flight(), 1);
        net.advance_to(net.now() + VirtualDuration::from_secs(31));
        b.step(net.now());
        assert_eq!(b.reasm.in_flight(), 0);
        assert_eq!(b.stats().reassembly_expired, 1);
        assert!(got.borrow().is_empty());
    }

    #[test]
    fn reassembly_table_is_bounded() {
        let net = SimNet::ethernet_10mbps(5);
        let mut b = station(&net, 2);
        listen(&mut b, IpProtocol::Udp);
        let host = HostHandle::free();
        let mac = EthAddr::host(7);
        let mut raw = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let rc = raw.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        for ident in 0..(MAX_REASSEMBLIES as u16 + 10) {
            let header = Ipv4Header {
                ident,
                more_frags: true,
                ..Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            };
            let pkt = Ipv4Packet { header, payload: vec![0u8; 8].into() };
            raw.send(rc, EthAddr::host(2), pkt.encode().unwrap()).unwrap();
        }
        for _ in 0..60 {
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
            }
            b.step(net.now());
        }
        assert_eq!(b.reasm.in_flight(), MAX_REASSEMBLIES);
    }
}

#[cfg(test)]
mod gateway_tests {
    use super::*;
    use crate::dev::Dev;
    use crate::eth::Eth;
    use simnet::SimNet;

    /// Off-subnet traffic goes to the configured gateway's MAC (the
    /// gateway would forward it; we verify the next-hop decision by
    /// watching which station hears the frame).
    #[test]
    fn off_subnet_packets_go_to_the_gateway() {
        let net = SimNet::ethernet_10mbps(3);
        let host = HostHandle::free();
        let mac = EthAddr::host(1);
        let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
        let mut ip = Ip::new(
            eth,
            mac,
            IpConfig {
                local: Ipv4Addr::new(10, 0, 0, 1),
                prefix_len: 24,
                gateway: Some(Ipv4Addr::new(10, 0, 0, 254)),
                ttl: 64,
            },
            host,
        );
        // The "gateway": a station at 10.0.0.254 that just answers ARP.
        let ghost = HostHandle::free();
        let gmac = EthAddr::host(254);
        let geth = Eth::new(Dev::new(net.attach(gmac), ghost.clone()), gmac, ghost.clone());
        let mut gw = Ip::new(geth, gmac, IpConfig::isolated(Ipv4Addr::new(10, 0, 0, 254)), ghost);
        gw.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();

        let conn = ip.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        ip.send(conn, Ipv4Addr::new(192, 168, 7, 7), b"far away".to_vec()).unwrap();
        for _ in 0..50 {
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
            }
            let p1 = ip.step(net.now());
            let p2 = gw.step(net.now());
            if !p1 && !p2 {
                break;
            }
        }
        // The gateway heard the packet addressed (at the Ethernet level)
        // to it; its IP layer counted it "not ours" because the IP
        // destination is beyond it — exactly a router's inbound view.
        assert_eq!(gw.stats().not_ours, 1, "{:?}", gw.stats());
        // And without a gateway the same send refuses immediately
        // (covered by `off_subnet_without_gateway_is_unreachable`).
    }
}
