//! The Ethernet protocol layer.
//!
//! Frames arriving from the device are FCS-verified, filtered by
//! destination address, and demultiplexed by ethertype to whichever
//! upper connection opened that type. Sends are framed and handed down.
//! Per Fig. 3 of the paper, `Eth` satisfies the same [`Protocol`]
//! signature as `Ip`, which is what lets `Special_Tcp` run directly on
//! top of it.

use crate::dev::DevConn;
use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::fifo::Fifo;
use foxbasis::time::VirtualTime;
use foxwire::ether::{EthAddr, EtherType, Frame};
use simnet::HostHandle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// What an upper layer receives from `Eth`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EthIncoming {
    /// Sender's MAC.
    pub src: EthAddr,
    /// Destination MAC (ours, or broadcast).
    pub dst: EthAddr,
    /// The demuxed ethertype.
    pub ethertype: EtherType,
    /// Frame payload (may include Ethernet padding; upper layers carry
    /// their own lengths). A zero-copy slice of the received frame
    /// buffer.
    pub payload: PacketBuf,
}

/// Connection handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EthConn(u32);

struct Conn {
    id: EthConn,
    ethertype: EtherType,
    handler: Handler<EthIncoming>,
}

/// Error/drop counters for the layer.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EthStats {
    /// Frames that failed FCS verification (wire corruption).
    pub bad_fcs: u64,
    /// Frames for an ethertype nobody opened.
    pub no_listener: u64,
    /// Frames delivered upward.
    pub delivered: u64,
    /// Frames sent.
    pub sent: u64,
}

/// The Ethernet layer over a device (`L` is [`crate::dev::Dev`] in real
/// stacks; anything with the same signature in tests).
pub struct Eth<L: Protocol<Pattern = (), Peer = (), Incoming = PacketBuf, ConnId = DevConn>> {
    lower: L,
    local: EthAddr,
    host: HostHandle,
    rx: Rc<RefCell<Fifo<PacketBuf>>>,
    conns: Vec<Conn>,
    next_id: u32,
    stats: EthStats,
    opened_lower: bool,
}

impl<L: Protocol<Pattern = (), Peer = (), Incoming = PacketBuf, ConnId = DevConn>> Eth<L> {
    /// An Ethernet station with address `local` over `lower`.
    pub fn new(lower: L, local: EthAddr, host: HostHandle) -> Eth<L> {
        Eth {
            lower,
            local,
            host,
            rx: Rc::new(RefCell::new(Fifo::new())),
            conns: Vec::new(),
            next_id: 0,
            stats: EthStats::default(),
            opened_lower: false,
        }
    }

    /// Our MAC address.
    pub fn local_addr(&self) -> EthAddr {
        self.local
    }

    /// Layer statistics.
    pub fn stats(&self) -> EthStats {
        self.stats
    }

    fn ensure_lower_open(&mut self) -> Result<(), ProtoError> {
        if !self.opened_lower {
            let q = self.rx.clone();
            // The device upcall only enqueues — the quasi-synchronous
            // discipline.
            self.lower.open((), Box::new(move |frame| q.borrow_mut().add(frame)))?;
            self.opened_lower = true;
        }
        Ok(())
    }
}

impl<L: Protocol<Pattern = (), Peer = (), Incoming = PacketBuf, ConnId = DevConn>> Protocol for Eth<L> {
    type Pattern = EtherType;
    type Peer = EthAddr;
    type Incoming = EthIncoming;
    type ConnId = EthConn;

    fn open(&mut self, ethertype: EtherType, handler: Handler<EthIncoming>) -> Result<EthConn, ProtoError> {
        self.ensure_lower_open()?;
        if self.conns.iter().any(|c| c.ethertype == ethertype) {
            return Err(ProtoError::AlreadyOpen);
        }
        let id = EthConn(self.next_id);
        self.next_id += 1;
        self.conns.push(Conn { id, ethertype, handler });
        Ok(id)
    }

    fn send(&mut self, conn: EthConn, to: EthAddr, payload: impl Into<PacketBuf>) -> Result<(), ProtoError> {
        let ethertype =
            self.conns.iter().find(|c| c.id == conn).map(|c| c.ethertype).ok_or(ProtoError::NotOpen)?;
        self.host.charge_eth_packet();
        let frame =
            Frame::new(to, self.local, ethertype, payload).encode_buf().map_err(|_| ProtoError::TooBig)?;
        self.stats.sent += 1;
        self.lower.send(DevConn, (), frame)
    }

    fn close(&mut self, conn: EthConn) -> Result<(), ProtoError> {
        let before = self.conns.len();
        self.conns.retain(|c| c.id != conn);
        if self.conns.len() == before {
            return Err(ProtoError::NotOpen);
        }
        Ok(())
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let mut progress = self.lower.step(now);
        loop {
            let raw = match self.rx.borrow_mut().next() {
                Some(f) => f,
                None => break,
            };
            progress = true;
            self.host.charge_eth_packet();
            let frame = match Frame::decode_buf(&raw) {
                Ok(f) => f,
                Err(_) => {
                    self.stats.bad_fcs += 1;
                    continue;
                }
            };
            if frame.dst != self.local && !frame.dst.is_broadcast() && !frame.dst.is_multicast() {
                continue; // not for us (promiscuous delivery, other host)
            }
            match self.conns.iter_mut().find(|c| c.ethertype == frame.ethertype) {
                Some(conn) => {
                    self.stats.delivered += 1;
                    (conn.handler)(EthIncoming {
                        src: frame.src,
                        dst: frame.dst,
                        ethertype: frame.ethertype,
                        payload: frame.payload,
                    });
                }
                None => self.stats.no_listener += 1,
            }
        }
        progress
    }
}

impl<L: Protocol<Pattern = (), Peer = (), Incoming = PacketBuf, ConnId = DevConn> + fmt::Debug> fmt::Debug
    for Eth<L>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Eth({:?}, conns={}, over {:?})", self.local, self.conns.len(), self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::Dev;
    use simnet::{NetConfig, SimNet};

    fn station(net: &SimNet, id: u8) -> Eth<Dev> {
        let host = HostHandle::free();
        let addr = EthAddr::host(id);
        Eth::new(Dev::new(net.attach(addr), host.clone()), addr, host)
    }

    fn collect(eth: &mut Eth<Dev>, et: EtherType) -> Rc<RefCell<Vec<EthIncoming>>> {
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        eth.open(et, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
        got
    }

    #[test]
    fn demux_by_ethertype() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let ip_rx = collect(&mut b, EtherType::Ipv4);
        let arp_rx = collect(&mut b, EtherType::Arp);
        let a_conn = a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        a.send(a_conn, EthAddr::host(2), b"ip payload".to_vec()).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert_eq!(ip_rx.borrow().len(), 1);
        assert!(arp_rx.borrow().is_empty());
        let m = &ip_rx.borrow()[0];
        assert_eq!(m.src, EthAddr::host(1));
        assert_eq!(&m.payload.bytes()[..10], b"ip payload");
    }

    #[test]
    fn corrupted_frames_counted_not_delivered() {
        let mut cfg = NetConfig::default();
        cfg.faults.corrupt_chance = 1.0;
        let net = SimNet::new(cfg, 9);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let rx = collect(&mut b, EtherType::Ipv4);
        let c = a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        a.send(c, EthAddr::host(2), vec![0; 64]).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert!(rx.borrow().is_empty());
        assert_eq!(b.stats().bad_fcs, 1);
    }

    #[test]
    fn unclaimed_ethertype_counted() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let _rx = collect(&mut b, EtherType::Arp);
        let c = a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        a.send(c, EthAddr::host(2), vec![0; 10]).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert_eq!(b.stats().no_listener, 1);
    }

    #[test]
    fn broadcast_delivered() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let rx = collect(&mut b, EtherType::Arp);
        let c = a.open(EtherType::Arp, Box::new(|_| {})).unwrap();
        a.send(c, EthAddr::BROADCAST, b"who-has".to_vec()).unwrap();
        net.advance_to(VirtualTime::from_millis(5));
        b.step(net.now());
        assert_eq!(rx.borrow().len(), 1);
        assert!(rx.borrow()[0].dst.is_broadcast());
    }

    #[test]
    fn duplicate_ethertype_open_rejected() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        assert_eq!(a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap_err(), ProtoError::AlreadyOpen);
    }

    #[test]
    fn close_frees_the_ethertype() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        let c = a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        a.close(c).unwrap();
        assert_eq!(a.close(c), Err(ProtoError::NotOpen));
        a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        assert_eq!(a.send(c, EthAddr::host(2), vec![]), Err(ProtoError::NotOpen));
    }

    #[test]
    fn oversized_send_rejected() {
        let net = SimNet::ethernet_10mbps(1);
        let mut a = station(&net, 1);
        let c = a.open(EtherType::Ipv4, Box::new(|_| {})).unwrap();
        assert_eq!(a.send(c, EthAddr::host(2), vec![0; 2000]), Err(ProtoError::TooBig));
    }
}
