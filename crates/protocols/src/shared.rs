//! `Shared<P>`: several upper layers sharing one lower instance.
//!
//! In SML, instantiating `Tcp (structure Lower = Ip ...)` and
//! `Udp (structure Lower = Ip ...)` against the *same* `Ip` structure is
//! free — structures are shared by name. Rust's ownership model wants a
//! single owner, so `Shared<P>` provides the by-name sharing:
//! a cheap cloneable wrapper that itself satisfies [`Protocol`] by
//! delegation. Borrow discipline is sound because handlers only enqueue
//! (see the crate docs): no call path re-enters the same `RefCell`.

use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::time::VirtualTime;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A cloneable shared protocol instance.
pub struct Shared<P> {
    inner: Rc<RefCell<P>>,
}

impl<P> Shared<P> {
    /// Wraps `proto` for sharing.
    pub fn new(proto: P) -> Shared<P> {
        Shared { inner: Rc::new(RefCell::new(proto)) }
    }

    /// Runs `f` with the inner protocol borrowed mutably.
    pub fn with<R>(&self, f: impl FnOnce(&mut P) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

impl<P> Clone for Shared<P> {
    fn clone(&self) -> Self {
        Shared { inner: self.inner.clone() }
    }
}

impl<P: Protocol> Protocol for Shared<P> {
    type Pattern = P::Pattern;
    type Peer = P::Peer;
    type Incoming = P::Incoming;
    type ConnId = P::ConnId;

    fn open(
        &mut self,
        pattern: Self::Pattern,
        handler: Handler<Self::Incoming>,
    ) -> Result<Self::ConnId, ProtoError> {
        self.inner.borrow_mut().open(pattern, handler)
    }

    fn send(
        &mut self,
        conn: Self::ConnId,
        to: Self::Peer,
        payload: impl Into<PacketBuf>,
    ) -> Result<(), ProtoError> {
        self.inner.borrow_mut().send(conn, to, payload)
    }

    fn close(&mut self, conn: Self::ConnId) -> Result<(), ProtoError> {
        self.inner.borrow_mut().close(conn)
    }

    fn abort(&mut self, conn: Self::ConnId) -> Result<(), ProtoError> {
        self.inner.borrow_mut().abort(conn)
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        self.inner.borrow_mut().step(now)
    }
}

impl<P: fmt::Debug> fmt::Debug for Shared<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:?})", self.inner.borrow())
    }
}
