//! The ARP cache (RFC 826) used by the Ip layer.
//!
//! Policy follows the smoltcp conventions the ecosystem settled on:
//! cached entries expire after one minute, requests for one protocol
//! address are sent at most once per second, and packets awaiting
//! resolution are queued (bounded) rather than dropped.

use foxbasis::buf::PacketBuf;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::arp::{ArpOp, ArpPacket};
use foxwire::ether::EthAddr;
use foxwire::ipv4::Ipv4Addr;
use std::collections::BTreeMap;

/// How long a learned mapping stays valid.
pub const ENTRY_TTL: VirtualDuration = VirtualDuration::from_secs(60);
/// Minimum spacing between requests for the same address.
pub const REQUEST_INTERVAL: VirtualDuration = VirtualDuration::from_secs(1);
/// Most packets queued per unresolved address.
pub const MAX_PENDING: usize = 8;

struct Entry {
    mac: EthAddr,
    expires: VirtualTime,
}

struct PendingSlot {
    packets: Vec<PacketBuf>,
    last_request: VirtualTime,
}

/// What the cache wants done in response to an event.
#[derive(Debug, PartialEq, Eq)]
pub enum ArpEffect {
    /// Transmit this ARP packet (to the broadcast address for requests,
    /// unicast for replies).
    Transmit(ArpPacket, EthAddr),
    /// These queued IP packets are now deliverable to the given MAC.
    Release(Vec<PacketBuf>, EthAddr),
}

/// The address-resolution cache.
pub struct ArpCache {
    local_eth: EthAddr,
    local_ip: Ipv4Addr,
    entries: BTreeMap<Ipv4Addr, Entry>,
    pending: BTreeMap<Ipv4Addr, PendingSlot>,
    /// Requests transmitted (for tests and stats).
    pub requests_sent: u64,
    /// Replies transmitted.
    pub replies_sent: u64,
}

impl ArpCache {
    /// A cache answering for (`local_eth`, `local_ip`).
    pub fn new(local_eth: EthAddr, local_ip: Ipv4Addr) -> ArpCache {
        ArpCache {
            local_eth,
            local_ip,
            entries: BTreeMap::new(),
            pending: BTreeMap::new(),
            requests_sent: 0,
            replies_sent: 0,
        }
    }

    /// Looks up `ip`; on a miss, queues `packet` and possibly emits a
    /// request. Returns the effects to perform.
    pub fn resolve(
        &mut self,
        now: VirtualTime,
        ip: Ipv4Addr,
        packet: impl Into<PacketBuf>,
    ) -> Vec<ArpEffect> {
        let packet = packet.into();
        if let Some(e) = self.entries.get(&ip) {
            if e.expires > now {
                return vec![ArpEffect::Release(vec![packet], e.mac)];
            }
            self.entries.remove(&ip);
        }
        let slot = self.pending.entry(ip).or_insert(PendingSlot {
            packets: Vec::new(),
            // Force an immediate first request.
            last_request: VirtualTime::ZERO,
        });
        if slot.packets.len() < MAX_PENDING {
            slot.packets.push(packet);
        }
        let first_ever = slot.last_request == VirtualTime::ZERO;
        if first_ever || now.saturating_since(slot.last_request) >= REQUEST_INTERVAL {
            slot.last_request = if now == VirtualTime::ZERO {
                // Distinguish "requested at t=0" from "never requested".
                VirtualTime::from_micros(1)
            } else {
                now
            };
            self.requests_sent += 1;
            vec![ArpEffect::Transmit(
                ArpPacket::request(self.local_eth, self.local_ip, ip),
                EthAddr::BROADCAST,
            )]
        } else {
            Vec::new()
        }
    }

    /// Processes a received ARP packet. Learns the sender mapping,
    /// answers requests addressed to us, and releases queued packets.
    pub fn input(&mut self, now: VirtualTime, packet: &ArpPacket) -> Vec<ArpEffect> {
        let mut effects = Vec::new();
        // Learn the sender (both from requests and replies — including
        // gratuitous ones).
        self.entries.insert(packet.sender_ip, Entry { mac: packet.sender_eth, expires: now + ENTRY_TTL });
        if let Some(slot) = self.pending.remove(&packet.sender_ip) {
            if !slot.packets.is_empty() {
                effects.push(ArpEffect::Release(slot.packets, packet.sender_eth));
            }
        }
        if packet.op == ArpOp::Request && packet.target_ip == self.local_ip {
            self.replies_sent += 1;
            effects.push(ArpEffect::Transmit(packet.reply_from(self.local_eth), packet.sender_eth));
        }
        effects
    }

    /// Drops pending queues whose requests have gone unanswered past
    /// `timeout`; returns the addresses given up on, in address order
    /// (the `pending` map is ordered, so this is deterministic).
    pub fn expire_pending(&mut self, now: VirtualTime, timeout: VirtualDuration) -> Vec<Ipv4Addr> {
        let mut gone = Vec::new();
        self.pending.retain(|ip, slot| {
            let dead = now.saturating_since(slot.last_request) > timeout;
            if dead {
                gone.push(*ip);
            }
            !dead
        });
        gone
    }

    /// A snapshot lookup without side effects.
    pub fn lookup(&self, now: VirtualTime, ip: Ipv4Addr) -> Option<EthAddr> {
        self.entries.get(&ip).filter(|e| e.expires > now).map(|e| e.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_ETH: EthAddr = EthAddr::host(1);
    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_ETH: EthAddr = EthAddr::host(2);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    #[test]
    fn miss_queues_and_requests() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        let fx = c.resolve(t(0), B_IP, b"pkt1".to_vec());
        assert_eq!(fx.len(), 1);
        match &fx[0] {
            ArpEffect::Transmit(p, dst) => {
                assert_eq!(p.op, ArpOp::Request);
                assert_eq!(p.target_ip, B_IP);
                assert_eq!(*dst, EthAddr::BROADCAST);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn requests_are_rate_limited() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        assert_eq!(c.resolve(t(0), B_IP, b"p1".to_vec()).len(), 1);
        assert!(c.resolve(t(500), B_IP, b"p2".to_vec()).is_empty());
        assert_eq!(c.resolve(t(1500), B_IP, b"p3".to_vec()).len(), 1);
        assert_eq!(c.requests_sent, 2);
    }

    #[test]
    fn reply_releases_queued_packets() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        c.resolve(t(0), B_IP, b"p1".to_vec());
        c.resolve(t(100), B_IP, b"p2".to_vec());
        let reply = ArpPacket {
            op: ArpOp::Reply,
            sender_eth: B_ETH,
            sender_ip: B_IP,
            target_eth: A_ETH,
            target_ip: A_IP,
        };
        let fx = c.input(t(200), &reply);
        assert_eq!(fx.len(), 1);
        match &fx[0] {
            ArpEffect::Release(pkts, mac) => {
                assert_eq!(pkts.len(), 2);
                assert_eq!(*mac, B_ETH);
            }
            other => panic!("expected release, got {other:?}"),
        }
        // Subsequent resolutions hit the cache.
        let fx = c.resolve(t(300), B_IP, b"p3".to_vec());
        assert!(matches!(&fx[0], ArpEffect::Release(p, m) if p.len() == 1 && *m == B_ETH));
    }

    #[test]
    fn requests_to_us_are_answered_and_learned() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        let req = ArpPacket::request(B_ETH, B_IP, A_IP);
        let fx = c.input(t(0), &req);
        assert!(fx.iter().any(|e| matches!(e,
            ArpEffect::Transmit(p, dst) if p.op == ArpOp::Reply && p.sender_eth == A_ETH && *dst == B_ETH)));
        // We also learned B from its request.
        assert_eq!(c.lookup(t(1), B_IP), Some(B_ETH));
    }

    #[test]
    fn requests_for_others_are_ignored_but_learned() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        let req = ArpPacket::request(B_ETH, B_IP, Ipv4Addr::new(10, 0, 0, 3));
        let fx = c.input(t(0), &req);
        assert!(fx.is_empty());
        assert_eq!(c.lookup(t(1), B_IP), Some(B_ETH));
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        c.input(t(0), &ArpPacket::request(B_ETH, B_IP, Ipv4Addr::new(9, 9, 9, 9)));
        assert_eq!(c.lookup(t(59_999), B_IP), Some(B_ETH));
        assert_eq!(c.lookup(t(60_000), B_IP), None);
        // A resolve after expiry re-requests.
        let fx = c.resolve(t(60_001), B_IP, b"p".to_vec());
        assert!(matches!(&fx[0], ArpEffect::Transmit(..)));
    }

    #[test]
    fn pending_queue_is_bounded() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        for i in 0..20 {
            c.resolve(t(i), B_IP, vec![i as u8]);
        }
        let reply = ArpPacket {
            op: ArpOp::Reply,
            sender_eth: B_ETH,
            sender_ip: B_IP,
            target_eth: A_ETH,
            target_ip: A_IP,
        };
        let fx = c.input(t(100), &reply);
        match &fx[0] {
            ArpEffect::Release(pkts, _) => assert_eq!(pkts.len(), MAX_PENDING),
            other => panic!("expected release, got {other:?}"),
        }
    }

    #[test]
    fn unanswered_pending_expires() {
        let mut c = ArpCache::new(A_ETH, A_IP);
        c.resolve(t(0), B_IP, b"p".to_vec());
        assert!(c.expire_pending(t(1000), VirtualDuration::from_secs(3)).is_empty());
        let gone = c.expire_pending(t(10_000), VirtualDuration::from_secs(3));
        assert_eq!(gone, vec![B_IP]);
    }
}
