//! # The protocol stack below TCP
//!
//! This crate is the Rust rendering of the paper's x-kernel-inspired
//! stack architecture (§3):
//!
//! > "We have a signature PROTOCOL which is generic in that it is
//! > satisfied by all the modules implementing each of the protocols in
//! > the stack. ... Unlike the x-kernel, our interfaces are defined
//! > formally as signatures, and syntactic compliance of an
//! > implementation with the interface is checked by the compiler."
//!
//! The [`Protocol`] trait is that signature. Every layer implements it;
//! layers compose by *generic instantiation* — `Ip<Eth<Dev>>` is the
//! paper's `structure Ip = Ip (structure Lower = Eth ...)` (Fig. 3), with
//! the compiler checking the sharing constraints as associated-type
//! bounds. Because `Eth` and `Ip` both satisfy [`Protocol`], TCP can be
//! instantiated over either — the paper's `Standard_Tcp` / `Special_Tcp`
//! pair.
//!
//! Receive follows the upcall style (§6): at `open` time each client
//! registers a handler, and the handler is *specialized on the
//! connection* — it is a closure capturing exactly the state the
//! connection needs, the staging trick the paper implements with
//! higher-order functions. To preserve the quasi-synchronous discipline
//! (and to make the single-threaded borrow story sound), handlers must
//! only *enqueue*; real processing happens when the owner's `step` runs.
//!
//! Layers:
//! * [`dev`] — the device protocol: the boundary to the simulated
//!   Mach 3.0 device interface;
//! * [`eth`] — Ethernet framing/demultiplexing;
//! * [`arp`] — the address-resolution cache used by Ip;
//! * [`ip`] — IPv4 with routing, fragmentation and reassembly;
//! * [`aux`] — the `IP_AUX` signature of Fig. 5, the auxiliary structure
//!   TCP and UDP take alongside their lower protocol;
//! * [`udp`] — UDP as a functor over any (lower, aux) pair, like TCP;
//! * [`icmp`] — ICMP echo: a responder layer and a `Ping` client;
//! * [`shared`] — `Shared<P>`, the glue that lets several upper layers
//!   (TCP, UDP, ICMP) share one lower instance.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod aux;
pub mod dev;
pub mod eth;
pub mod icmp;
pub mod ip;
pub mod router;
pub mod shared;
pub mod udp;
pub mod vp;

pub use aux::{EthAux, IpAux, IpAuxImpl};
pub use dev::{BatchConfig, Dev};
pub use eth::{Eth, EthIncoming};
pub use icmp::{Icmp, Ping};
pub use ip::{Ip, IpIncoming};
pub use router::Router;
pub use shared::Shared;
pub use udp::{Udp, UdpIncoming};
pub use vp::SizedPayload;

use foxbasis::buf::PacketBuf;
use foxbasis::time::VirtualTime;
use std::fmt;

/// An upcall handler: called once per incoming message for the
/// connection it was registered on. Handlers are specialized per
/// connection (they are closures) and must only enqueue work, never
/// recurse into the protocol graph.
pub type Handler<T> = Box<dyn FnMut(T)>;

/// Errors shared by all protocol layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The connection id is unknown or already closed.
    NotOpen,
    /// A conflicting connection or binding already exists.
    AlreadyOpen,
    /// The peer cannot be reached (no route / resolution failed).
    Unreachable,
    /// The peer actively refused (TCP RST during connect).
    Refused,
    /// The connection was reset by the peer.
    Reset,
    /// The operation timed out (the paper's `user_timeout`).
    Timeout,
    /// The connection is closing; no further sends are possible.
    Closing,
    /// The payload is too large for the layer.
    TooBig,
    /// A malformed argument.
    Invalid(&'static str),
    /// Send buffer full: retry after progress (flow control pushback).
    WouldBlock,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::NotOpen => write!(f, "connection not open"),
            ProtoError::AlreadyOpen => write!(f, "already open"),
            ProtoError::Unreachable => write!(f, "peer unreachable"),
            ProtoError::Refused => write!(f, "connection refused"),
            ProtoError::Reset => write!(f, "connection reset"),
            ProtoError::Timeout => write!(f, "operation timed out"),
            ProtoError::Closing => write!(f, "connection closing"),
            ProtoError::TooBig => write!(f, "payload too large"),
            ProtoError::Invalid(s) => write!(f, "invalid argument: {s}"),
            ProtoError::WouldBlock => write!(f, "send buffer full"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// The generic `PROTOCOL` signature (paper §3, Figs. 1–2).
///
/// Associated types are the paper's shared types:
/// * `Pattern` — what `open` matches (the paper's `address_pattern` for
///   passive opens; for active opens the pattern carries the peer);
/// * `Peer` — the network-level peer address (the paper's `address`),
///   named by `send` and reported in incoming messages;
/// * `Incoming` — the layer's `incoming_message`;
/// * `ConnId` — the value `open` returns, standing for the paper's
///   connection values.
pub trait Protocol {
    /// What `open` matches/binds.
    type Pattern: Clone + 'static;
    /// Peer addresses.
    type Peer: Clone + PartialEq + fmt::Debug + 'static;
    /// Messages delivered to handlers.
    type Incoming: 'static;
    /// Connection handle.
    type ConnId: Copy + PartialEq + fmt::Debug + 'static;

    /// Opens a connection matching `pattern`, registering the
    /// connection-specialized upcall `handler`.
    fn open(
        &mut self,
        pattern: Self::Pattern,
        handler: Handler<Self::Incoming>,
    ) -> Result<Self::ConnId, ProtoError>;

    /// Sends `payload` to `to` on `conn`.
    ///
    /// The payload travels as a [`PacketBuf`]: layers prepend their
    /// headers into its headroom and hand the *same* buffer down, so a
    /// segment is copied at most once on its way to the wire. `impl
    /// Into<PacketBuf>` keeps `Vec<u8>` call sites working (adopting the
    /// vector, not copying it).
    fn send(
        &mut self,
        conn: Self::ConnId,
        to: Self::Peer,
        payload: impl Into<PacketBuf>,
    ) -> Result<(), ProtoError>;

    /// Closes `conn` (graceful where the protocol has the notion).
    fn close(&mut self, conn: Self::ConnId) -> Result<(), ProtoError>;

    /// Aborts `conn` (immediate; TCP sends RST). Defaults to `close`.
    fn abort(&mut self, conn: Self::ConnId) -> Result<(), ProtoError> {
        self.close(conn)
    }

    /// Drives the layer at virtual time `now`: ingest from below, run
    /// protocol processing, fire upcalls. Returns true if any progress
    /// was made (used by drivers to loop to quiescence).
    fn step(&mut self, now: VirtualTime) -> bool;
}
