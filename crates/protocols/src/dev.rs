//! The device protocol: the bottom of the stack.
//!
//! In the Fox Net this layer talked Mach IPC to the Ethernet driver
//! ("Our implementation ... uses the Mach Interprocess Communication
//! mechanism to send and receive packets"). Here it fronts a
//! [`simnet::Port`]: sends charge the `Mach send` and `copy` accounts
//! (the one data copy the paper's stack performs — "our protocols copy
//! data only once, when delivering a segment to the micro-kernel"),
//! receives charge `packet wait`, and frames appear on the simulated
//! segment at the instant the simulated CPU actually finished producing
//! them.

use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::obs::{Event, EventSink, NO_CONN};
use foxbasis::time::VirtualTime;
use simnet::{HostHandle, Port};
use std::fmt;

/// GRO/TSO-style device batching limits.
///
/// `1` for both (the default) reproduces the unbatched device exactly:
/// every frame is its own batch. Larger values group frames so the
/// per-*batch* costs of the host's [`simnet::CostModel`] (receive wakeup,
/// transmit doorbell) are paid once per group. The 1994 cost presets
/// have zero per-batch costs, so batching never perturbs a paper-era
/// trace; only the modern profile gives batching something to amortize.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BatchConfig {
    /// Maximum frames drained from the port as one receive (GRO) batch.
    pub rx_burst: usize,
    /// Maximum frames per transmit doorbell (TSO) group within one
    /// device pump.
    pub tx_burst: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { rx_burst: 1, tx_burst: 1 }
    }
}

/// The device protocol.
pub struct Dev {
    port: Port,
    host: HostHandle,
    handler: Option<Handler<PacketBuf>>,
    opened: bool,
    batch: BatchConfig,
    /// Frames handed to the device since the last doorbell charge;
    /// resets every pump ([`Dev::step`]) so doorbell groups never span
    /// engine passes.
    tx_in_group: usize,
    frames_sent: u64,
    frames_received: u64,
    rx_batches: u64,
    tx_doorbells: u64,
    obs: EventSink,
}

/// `Dev` has exactly one connection: the wire.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DevConn;

impl Dev {
    /// A device on `port`, charging costs to `host`.
    pub fn new(port: Port, host: HostHandle) -> Dev {
        Dev {
            port,
            host,
            handler: None,
            opened: false,
            batch: BatchConfig::default(),
            tx_in_group: 0,
            frames_sent: 0,
            frames_received: 0,
            rx_batches: 0,
            tx_doorbells: 0,
            obs: EventSink::off(),
        }
    }

    /// Sets the GRO/TSO batching limits (defaults to unbatched).
    pub fn set_batching(&mut self, batch: BatchConfig) {
        self.batch = batch;
    }

    /// Installs an event sink; frames handed to (and pulled from) the
    /// wire are recorded from this host's point of view.
    pub fn set_obs(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// The port's MAC address.
    pub fn mac(&self) -> foxwire::ether::EthAddr {
        self.port.addr()
    }

    /// Frames sent / received so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.frames_sent, self.frames_received)
    }

    /// Receive batches drained / transmit doorbells rung so far.
    pub fn batch_counters(&self) -> (u64, u64) {
        (self.rx_batches, self.tx_doorbells)
    }
}

impl Protocol for Dev {
    type Pattern = ();
    type Peer = ();
    type Incoming = PacketBuf;
    type ConnId = DevConn;

    fn open(&mut self, _pattern: (), handler: Handler<PacketBuf>) -> Result<DevConn, ProtoError> {
        if self.opened {
            return Err(ProtoError::AlreadyOpen);
        }
        self.opened = true;
        self.handler = Some(handler);
        Ok(DevConn)
    }

    fn send(&mut self, _conn: DevConn, _to: (), frame: impl Into<PacketBuf>) -> Result<(), ProtoError> {
        let frame = frame.into();
        // The *modeled* single data copy of the send path, into the
        // "kernel", plus buffer management and the Mach IPC send. The
        // virtual cost model still charges the paper's per-KB constant
        // here even though the Rust buffer crosses by refcount bump.
        self.host.charge_copy(frame.len());
        self.host.charge_misc_packet();
        self.host.charge_mach_send();
        // TSO-style doorbell: the first frame of every `tx_burst`-sized
        // group in this pump pays the per-batch device cost (zero under
        // the 1994 presets).
        if self.tx_in_group == 0 {
            self.host.charge_tx_doorbell();
            self.tx_doorbells += 1;
        }
        self.tx_in_group = (self.tx_in_group + 1) % self.batch.tx_burst.max(1);
        self.frames_sent += 1;
        // The frame reaches the wire when the CPU is done with
        // everything charged so far in this episode.
        let at = self.host.with(|h| h.now_busy());
        self.obs.emit(at, NO_CONN, || Event::FrameTx { bytes: frame.len() as u32 });
        self.port.send_at(at, frame);
        Ok(())
    }

    fn close(&mut self, _conn: DevConn) -> Result<(), ProtoError> {
        if !self.opened {
            return Err(ProtoError::NotOpen);
        }
        self.opened = false;
        self.handler = None;
        Ok(())
    }

    fn step(&mut self, _now: VirtualTime) -> bool {
        // A new pump starts a fresh transmit doorbell group.
        self.tx_in_group = 0;
        let mut progress = false;
        let burst = self.batch.rx_burst.max(1);
        loop {
            // Drain one GRO batch: up to `rx_burst` waiting frames share
            // a single receive-wakeup charge (zero under the 1994
            // presets, so batching is trace-invisible there). Per-frame
            // costs — packet wait, buffer management, the copy — are
            // still paid for every frame; batching amortizes only the
            // dispatch, not the data path.
            let mut in_batch = 0;
            while in_batch < burst {
                let Some(frame) = self.port.recv() else { break };
                if in_batch == 0 {
                    self.host.charge_rx_batch();
                    self.rx_batches += 1;
                }
                in_batch += 1;
                self.frames_received += 1;
                self.host.charge_packet_wait();
                self.host.charge_misc_packet();
                self.host.charge_copy(frame.len());
                if let Some(handler) = &mut self.handler {
                    handler(frame);
                }
                // No handler: the frame is dropped, as a real driver
                // drops frames nobody has opened the device for.
            }
            if in_batch == 0 {
                break;
            }
            progress = true;
        }
        progress
    }
}

impl fmt::Debug for Dev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dev({:?}, sent={}, recv={})", self.port.addr(), self.frames_sent, self.frames_received)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxwire::ether::EthAddr;
    use simnet::SimNet;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn pair() -> (SimNet, Dev, Dev) {
        let net = SimNet::ethernet_10mbps(3);
        let a = Dev::new(net.attach(EthAddr::host(1)), HostHandle::free());
        let b = Dev::new(net.attach(EthAddr::host(2)), HostHandle::free());
        (net, a, b)
    }

    fn frame(dst: EthAddr, n: usize) -> Vec<u8> {
        foxwire::ether::Frame::new(dst, EthAddr::host(1), foxwire::ether::EtherType::Ipv4, vec![1; n])
            .encode()
            .unwrap()
    }

    #[test]
    fn send_and_receive_through_the_wire() {
        let (net, mut a, mut b) = pair();
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open((), Box::new(move |f| g.borrow_mut().push(f))).unwrap();
        a.send(DevConn, (), frame(EthAddr::host(2), 100)).unwrap();
        net.advance_to(foxbasis::time::VirtualTime::from_millis(10));
        assert!(b.step(net.now()));
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(a.counters(), (1, 0));
        assert_eq!(b.counters(), (0, 1));
    }

    #[test]
    fn double_open_rejected_and_close_reopens() {
        let (_net, mut a, _b) = pair();
        a.open((), Box::new(|_| {})).unwrap();
        assert_eq!(a.open((), Box::new(|_| {})), Err(ProtoError::AlreadyOpen));
        a.close(DevConn).unwrap();
        assert_eq!(a.close(DevConn), Err(ProtoError::NotOpen));
        a.open((), Box::new(|_| {})).unwrap();
    }

    #[test]
    fn obs_sees_frames_hit_the_wire() {
        let (net, mut a, _b) = pair();
        let sink = foxbasis::obs::EventSink::recording(16);
        a.set_obs(sink.for_host(0));
        net.set_obs(sink.clone());
        a.send(DevConn, (), frame(EthAddr::host(2), 100)).unwrap();
        net.advance_to(foxbasis::time::VirtualTime::from_millis(10));
        let evs = sink.events();
        assert!(evs.iter().any(|e| matches!(e.event, Event::FrameTx { bytes } if bytes > 100)));
        assert!(
            evs.iter().any(|e| matches!(e.event, Event::FrameDeliver { .. }) && e.host == 1),
            "the wire must attribute delivery to the receiving port: {evs:?}"
        );
    }

    #[test]
    fn frames_without_handler_are_dropped() {
        let (net, mut a, mut b) = pair();
        a.send(DevConn, (), frame(EthAddr::host(2), 50)).unwrap();
        net.advance_to(foxbasis::time::VirtualTime::from_millis(10));
        assert!(b.step(net.now())); // progress: a frame was consumed
        assert!(!b.step(net.now()));
    }
}
