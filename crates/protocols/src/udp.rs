//! UDP as a functor over `(Lower, Aux)` — the paper: "A structure
//! satisfying this signature (`IP_AUX`) must be supplied as a parameter
//! to the UDP functor as well."
//!
//! Like `Tcp`, `Udp<L, A>` is generic in its lower protocol and its
//! auxiliary structure, with the sharing constraints expressed as
//! associated-type bounds — so UDP-over-raw-Ethernet type-checks exactly
//! like `Special_Tcp` does.

use crate::aux::IpAux;
use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::fifo::Fifo;
use foxbasis::time::VirtualTime;
use foxwire::udp::UdpDatagram;
use simnet::HostHandle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// What a UDP client receives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UdpIncoming<A> {
    /// Sender address and port.
    pub src: (A, u16),
    /// The local port it arrived on.
    pub dst_port: u16,
    /// Payload — a zero-copy slice of the arriving datagram.
    pub payload: PacketBuf,
}

/// Connection handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct UdpConn(u32);

/// Layer statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UdpStats {
    /// Datagrams delivered to sockets.
    pub delivered: u64,
    /// Datagrams sent.
    pub sent: u64,
    /// Undecodable or checksum-failing datagrams.
    pub bad: u64,
    /// Datagrams for ports nobody bound.
    pub no_listener: u64,
}

struct Socket<A> {
    id: UdpConn,
    local_port: u16,
    handler: Handler<UdpIncoming<A>>,
}

/// The UDP layer.
pub struct Udp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    lower: L,
    aux: A,
    host: HostHandle,
    /// Whether to compute/verify checksums (the functor's
    /// `compute_checksums`; also forced off when `aux.check` is `None`).
    compute_checksums: bool,
    lower_conn: Option<L::ConnId>,
    lower_pattern: L::Pattern,
    rx: Rc<RefCell<Fifo<L::Incoming>>>,
    sockets: Vec<Socket<L::Peer>>,
    next_id: u32,
    stats: UdpStats,
}

impl<L, A> Udp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// Instantiates the functor: `Udp(structure Lower, structure Aux,
    /// val compute_checksums, structure B)`. `lower_pattern` is the
    /// demux pattern UDP claims from the lower layer (`IpProtocol::Udp`
    /// over IP).
    pub fn new(
        lower: L,
        aux: A,
        lower_pattern: L::Pattern,
        compute_checksums: bool,
        host: HostHandle,
    ) -> Udp<L, A> {
        Udp {
            lower,
            aux,
            host,
            compute_checksums,
            lower_conn: None,
            lower_pattern,
            rx: Rc::new(RefCell::new(Fifo::new())),
            sockets: Vec::new(),
            next_id: 0,
            stats: UdpStats::default(),
        }
    }

    /// Layer statistics.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }

    fn ensure_lower_open(&mut self) -> Result<(), ProtoError> {
        if self.lower_conn.is_none() {
            let q = self.rx.clone();
            self.lower_conn =
                Some(self.lower.open(self.lower_pattern.clone(), Box::new(move |m| q.borrow_mut().add(m)))?);
        }
        Ok(())
    }
}

impl<L, A> Protocol for Udp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// The local port to bind.
    type Pattern = u16;
    /// (address, port) of the remote.
    type Peer = (L::Peer, u16);
    type Incoming = UdpIncoming<L::Peer>;
    type ConnId = UdpConn;

    fn open(&mut self, local_port: u16, handler: Handler<Self::Incoming>) -> Result<UdpConn, ProtoError> {
        self.ensure_lower_open()?;
        if self.sockets.iter().any(|s| s.local_port == local_port) {
            return Err(ProtoError::AlreadyOpen);
        }
        let id = UdpConn(self.next_id);
        self.next_id += 1;
        self.sockets.push(Socket { id, local_port, handler });
        Ok(id)
    }

    fn send(
        &mut self,
        conn: UdpConn,
        to: Self::Peer,
        payload: impl Into<PacketBuf>,
    ) -> Result<(), ProtoError> {
        let local_port =
            self.sockets.iter().find(|s| s.id == conn).map(|s| s.local_port).ok_or(ProtoError::NotOpen)?;
        let (addr, port) = to;
        let d = UdpDatagram { src_port: local_port, dst_port: port, payload: payload.into() };
        if d.payload.len() + foxwire::udp::HEADER_LEN > self.aux.mtu() {
            // Leave IP fragmentation to callers that want it; a UDP
            // socket refusing over-MTU sends keeps the example apps
            // honest. (The IP layer below *can* fragment.)
            // We still allow it — fragmentation exists — but cap at
            // 65507.
        }
        let total = d.payload.len() + foxwire::udp::HEADER_LEN;
        let pseudo = if self.compute_checksums { self.aux.check(&addr, total) } else { None };
        if self.compute_checksums && pseudo.is_some() {
            self.host.charge_checksum(total);
        }
        let bytes = d.encode_buf(pseudo).map_err(|_| ProtoError::TooBig)?;
        let lower_conn = self.lower_conn.ok_or(ProtoError::NotOpen)?;
        self.stats.sent += 1;
        self.lower.send(lower_conn, addr, bytes)
    }

    fn close(&mut self, conn: UdpConn) -> Result<(), ProtoError> {
        let before = self.sockets.len();
        self.sockets.retain(|s| s.id != conn);
        if self.sockets.len() == before {
            return Err(ProtoError::NotOpen);
        }
        Ok(())
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let mut progress = self.lower.step(now);
        loop {
            let msg = match self.rx.borrow_mut().next() {
                Some(m) => m,
                None => break,
            };
            progress = true;
            let (src_addr, datagram) = {
                let info = self.aux.info(&msg);
                let pseudo = if self.compute_checksums {
                    // Verification length comes from the datagram's own
                    // header (see decode_v4's padding note); reconstruct
                    // the claimed length for the pseudo-sum.
                    let claimed = if info.data.len() >= 6 {
                        let b = info.data.bytes();
                        usize::from(u16::from_be_bytes([b[4], b[5]]))
                    } else {
                        info.data.len()
                    };
                    self.aux.check(&info.src, claimed)
                } else {
                    None
                };
                if pseudo.is_some() {
                    self.host.charge_checksum(info.data.len());
                }
                (info.src.clone(), UdpDatagram::decode_buf(info.data, pseudo))
            };
            let d = match datagram {
                Ok(d) => d,
                Err(_) => {
                    self.stats.bad += 1;
                    continue;
                }
            };
            match self.sockets.iter_mut().find(|s| s.local_port == d.dst_port) {
                Some(sock) => {
                    self.stats.delivered += 1;
                    (sock.handler)(UdpIncoming {
                        src: (src_addr, d.src_port),
                        dst_port: d.dst_port,
                        payload: d.payload,
                    });
                }
                None => self.stats.no_listener += 1,
            }
        }
        progress
    }
}

impl<L, A> fmt::Debug for Udp<L, A>
where
    L: Protocol + fmt::Debug,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Udp(sockets={}, over {:?})", self.sockets.len(), self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux::IpAuxImpl;
    use crate::dev::Dev;
    use crate::eth::Eth;
    use crate::ip::{Ip, IpConfig};
    use foxwire::ether::EthAddr;
    use foxwire::ipv4::{IpProtocol, Ipv4Addr};
    use simnet::SimNet;

    type Stack = Udp<Ip<Eth<Dev>>, IpAuxImpl>;

    fn station(net: &SimNet, id: u8) -> Stack {
        let host = HostHandle::free();
        let mac = EthAddr::host(id);
        let local = Ipv4Addr::new(10, 0, 0, id);
        let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
        let ip = Ip::new(eth, mac, IpConfig::isolated(local), host.clone());
        let mtu = ip.mtu();
        Udp::new(ip, IpAuxImpl::new(local, IpProtocol::Udp, mtu), IpProtocol::Udp, true, host)
    }

    fn settle(net: &SimNet, stacks: &mut [&mut Stack]) {
        for _ in 0..100 {
            let mut progress = false;
            for s in stacks.iter_mut() {
                progress |= s.step(net.now());
            }
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    fn bind(u: &mut Stack, port: u16) -> Rc<RefCell<Vec<UdpIncoming<Ipv4Addr>>>> {
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        u.open(port, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
        got
    }

    #[test]
    fn datagram_exchange() {
        let net = SimNet::ethernet_10mbps(11);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = bind(&mut b, 6969);
        let sock = a.open(5000, Box::new(|_| {})).unwrap();
        a.send(sock, (Ipv4Addr::new(10, 0, 0, 2), 6969), b"abcdefg".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got.borrow().len(), 1);
        let m = &got.borrow()[0];
        assert_eq!(m.src, (Ipv4Addr::new(10, 0, 0, 1), 5000));
        assert_eq!(m.dst_port, 6969);
        assert_eq!(m.payload, b"abcdefg");
    }

    #[test]
    fn reply_to_sender() {
        let net = SimNet::ethernet_10mbps(11);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got_b = bind(&mut b, 7);
        let got_a = bind(&mut a, 5001);
        let sock_a = a.open(5000, Box::new(|_| {})).unwrap();
        let _ = got_a;
        a.send(sock_a, (Ipv4Addr::new(10, 0, 0, 2), 7), b"ping".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        let src = got_b.borrow()[0].src;
        // Echo back to wherever it came from — but to a's bound port.
        let sock_b = b.open(7000, Box::new(|_| {})).unwrap();
        b.send(sock_b, (src.0, 5001), b"pong".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got_a.borrow().len(), 1);
        assert_eq!(got_a.borrow()[0].payload, b"pong");
    }

    #[test]
    fn unbound_port_counts_no_listener() {
        let net = SimNet::ethernet_10mbps(11);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        bind(&mut b, 1000);
        let sock = a.open(5000, Box::new(|_| {})).unwrap();
        a.send(sock, (Ipv4Addr::new(10, 0, 0, 2), 2000), b"x".to_vec()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(b.stats().no_listener, 1);
        assert_eq!(b.stats().delivered, 0);
    }

    #[test]
    fn duplicate_bind_rejected_close_unbinds() {
        let net = SimNet::ethernet_10mbps(11);
        let mut a = station(&net, 1);
        let s = a.open(9, Box::new(|_| {})).unwrap();
        assert_eq!(a.open(9, Box::new(|_| {})).unwrap_err(), ProtoError::AlreadyOpen);
        a.close(s).unwrap();
        a.open(9, Box::new(|_| {})).unwrap();
    }

    #[test]
    fn large_datagram_fragments_through_ip() {
        let net = SimNet::ethernet_10mbps(11);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        let got = bind(&mut b, 6969);
        let sock = a.open(5000, Box::new(|_| {})).unwrap();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 241) as u8).collect();
        a.send(sock, (Ipv4Addr::new(10, 0, 0, 2), 6969), payload.clone()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].payload, payload);
    }
}
