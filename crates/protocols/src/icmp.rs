//! ICMP echo: a responder layer and a `Ping` client.
//!
//! `Icmp` sits over the Ip layer on proto 1. Echo requests addressed to
//! the host are answered automatically (the "responds to pings" behavior
//! of every example host); echo replies are delivered to whichever
//! [`Ping`] session matches their identifier.

use crate::ip::IpIncoming;
use crate::{Handler, ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::fifo::Fifo;
use foxbasis::time::VirtualTime;
use foxwire::icmp::IcmpEcho;
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use simnet::HostHandle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A received echo reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EchoReply {
    /// Who replied.
    pub from: Ipv4Addr,
    /// Sequence number echoed back.
    pub seq: u16,
    /// Payload echoed back.
    pub payload: Vec<u8>,
}

/// Connection handle (one per ping identifier).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct IcmpConn(u16);

/// Statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IcmpStats {
    /// Echo requests answered.
    pub requests_answered: u64,
    /// Echo replies delivered to ping sessions.
    pub replies_delivered: u64,
    /// Undecodable messages.
    pub bad: u64,
}

struct Session {
    ident: u16,
    handler: Handler<EchoReply>,
}

/// The ICMP echo layer over Ip.
pub struct Icmp<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>> {
    lower: L,
    host: HostHandle,
    conn: Option<L::ConnId>,
    rx: Rc<RefCell<Fifo<IpIncoming>>>,
    sessions: Vec<Session>,
    stats: IcmpStats,
}

impl<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>> Icmp<L> {
    /// An echo layer over `lower`.
    pub fn new(lower: L, host: HostHandle) -> Icmp<L> {
        Icmp {
            lower,
            host,
            conn: None,
            rx: Rc::new(RefCell::new(Fifo::new())),
            sessions: Vec::new(),
            stats: IcmpStats::default(),
        }
    }

    /// Statistics.
    pub fn stats(&self) -> IcmpStats {
        self.stats
    }

    fn ensure_lower_open(&mut self) -> Result<(), ProtoError> {
        if self.conn.is_none() {
            let q = self.rx.clone();
            self.conn = Some(self.lower.open(IpProtocol::Icmp, Box::new(move |m| q.borrow_mut().add(m)))?);
        }
        Ok(())
    }

    /// Activates the responder (opens the lower conn) without starting a
    /// ping session — every host should call this once.
    pub fn activate(&mut self) -> Result<(), ProtoError> {
        self.ensure_lower_open()
    }
}

impl<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>> Protocol for Icmp<L> {
    /// The ping identifier to claim.
    type Pattern = u16;
    type Peer = Ipv4Addr;
    type Incoming = EchoReply;
    type ConnId = IcmpConn;

    fn open(&mut self, ident: u16, handler: Handler<EchoReply>) -> Result<IcmpConn, ProtoError> {
        self.ensure_lower_open()?;
        if self.sessions.iter().any(|s| s.ident == ident) {
            return Err(ProtoError::AlreadyOpen);
        }
        self.sessions.push(Session { ident, handler });
        Ok(IcmpConn(ident))
    }

    /// Sends an echo request carrying `payload`; the first two bytes of
    /// `payload` are used as the sequence number if present... no —
    /// `send` uses an internal sequence of 0; use [`Ping`] for numbered
    /// probes.
    fn send(
        &mut self,
        conn: IcmpConn,
        to: Ipv4Addr,
        payload: impl Into<PacketBuf>,
    ) -> Result<(), ProtoError> {
        self.send_request(conn, to, 0, payload.into().to_vec())
    }

    fn close(&mut self, conn: IcmpConn) -> Result<(), ProtoError> {
        let before = self.sessions.len();
        self.sessions.retain(|s| s.ident != conn.0);
        if self.sessions.len() == before {
            return Err(ProtoError::NotOpen);
        }
        Ok(())
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let mut progress = self.lower.step(now);
        loop {
            let msg = match self.rx.borrow_mut().next() {
                Some(m) => m,
                None => break,
            };
            progress = true;
            let echo = match IcmpEcho::decode(&msg.payload.bytes()) {
                Ok(e) => e,
                Err(_) => {
                    self.stats.bad += 1;
                    continue;
                }
            };
            if echo.is_request {
                // Answer automatically, as every live host does.
                self.host.charge_checksum(msg.payload.len());
                let reply = echo.reply();
                if let (Some(conn), Ok(bytes)) = (self.conn, reply.encode()) {
                    let _ = self.lower.send(conn, msg.src, bytes);
                    self.stats.requests_answered += 1;
                }
            } else {
                if let Some(sess) = self.sessions.iter_mut().find(|s| s.ident == echo.ident) {
                    self.stats.replies_delivered += 1;
                    (sess.handler)(EchoReply { from: msg.src, seq: echo.seq, payload: echo.payload });
                }
            }
        }
        progress
    }
}

impl<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>> Icmp<L> {
    /// Sends one numbered echo request.
    pub fn send_request(
        &mut self,
        conn: IcmpConn,
        to: Ipv4Addr,
        seq: u16,
        payload: Vec<u8>,
    ) -> Result<(), ProtoError> {
        if !self.sessions.iter().any(|s| s.ident == conn.0) {
            return Err(ProtoError::NotOpen);
        }
        let lower_conn = self.conn.ok_or(ProtoError::NotOpen)?;
        let req = IcmpEcho { is_request: true, ident: conn.0, seq, payload };
        let bytes = req.encode().map_err(|_| ProtoError::TooBig)?;
        self.host.charge_checksum(bytes.len());
        self.lower.send(lower_conn, to, bytes)
    }
}

impl<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming> + fmt::Debug> fmt::Debug
    for Icmp<L>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Icmp(sessions={}, over {:?})", self.sessions.len(), self.lower)
    }
}

/// A convenience ping client: sends numbered probes, records round-trip
/// times against the virtual clock.
pub struct Ping {
    conn: IcmpConn,
    replies: Rc<RefCell<Vec<EchoReply>>>,
    sent: Vec<(u16, VirtualTime)>,
    next_seq: u16,
}

impl Ping {
    /// Claims `ident` on the given ICMP layer.
    pub fn new<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>>(
        icmp: &mut Icmp<L>,
        ident: u16,
    ) -> Result<Ping, ProtoError> {
        let replies = Rc::new(RefCell::new(Vec::new()));
        let r = replies.clone();
        let conn = icmp.open(ident, Box::new(move |rep| r.borrow_mut().push(rep)))?;
        Ok(Ping { conn, replies, sent: Vec::new(), next_seq: 0 })
    }

    /// Sends the next probe at time `now`.
    pub fn probe<L: Protocol<Pattern = IpProtocol, Peer = Ipv4Addr, Incoming = IpIncoming>>(
        &mut self,
        icmp: &mut Icmp<L>,
        to: Ipv4Addr,
        now: VirtualTime,
    ) -> Result<u16, ProtoError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        icmp.send_request(self.conn, to, seq, b"foxnet ping".to_vec())?;
        self.sent.push((seq, now));
        Ok(seq)
    }

    /// Round-trip times of answered probes, as (seq, rtt) pairs computed
    /// at `now` for replies received so far.
    pub fn rtts(
        &self,
        now_received: &dyn Fn(u16) -> Option<VirtualTime>,
    ) -> Vec<(u16, foxbasis::time::VirtualDuration)> {
        self.sent
            .iter()
            .filter_map(|(seq, t0)| now_received(*seq).map(|t1| (*seq, t1.saturating_since(*t0))))
            .collect()
    }

    /// Replies received so far.
    pub fn replies(&self) -> Vec<EchoReply> {
        self.replies.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::Dev;
    use crate::eth::Eth;
    use crate::ip::{Ip, IpConfig};
    use foxwire::ether::EthAddr;
    use simnet::SimNet;

    type Stack = Icmp<Ip<Eth<Dev>>>;

    fn station(net: &SimNet, id: u8) -> Stack {
        let host = HostHandle::free();
        let mac = EthAddr::host(id);
        let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
        let ip = Ip::new(eth, mac, IpConfig::isolated(Ipv4Addr::new(10, 0, 0, id)), host.clone());
        Icmp::new(ip, host)
    }

    fn settle(net: &SimNet, stacks: &mut [&mut Stack]) {
        for _ in 0..100 {
            let mut progress = false;
            for s in stacks.iter_mut() {
                progress |= s.step(net.now());
            }
            if let Some(t) = net.next_delivery() {
                net.advance_to(t);
                progress = true;
            }
            if !progress {
                break;
            }
        }
    }

    #[test]
    fn ping_round_trip() {
        let net = SimNet::ethernet_10mbps(21);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        b.activate().unwrap();
        let mut ping = Ping::new(&mut a, 0x1234).unwrap();
        ping.probe(&mut a, Ipv4Addr::new(10, 0, 0, 2), net.now()).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        let replies = ping.replies();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].from, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(replies[0].seq, 0);
        assert_eq!(replies[0].payload, b"foxnet ping");
        assert_eq!(b.stats().requests_answered, 1);
        assert_eq!(a.stats().replies_delivered, 1);
    }

    #[test]
    fn multiple_probes_sequence() {
        let net = SimNet::ethernet_10mbps(21);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        b.activate().unwrap();
        let mut ping = Ping::new(&mut a, 1).unwrap();
        for _ in 0..4 {
            ping.probe(&mut a, Ipv4Addr::new(10, 0, 0, 2), net.now()).unwrap();
            settle(&net, &mut [&mut a, &mut b]);
        }
        let seqs: Vec<u16> = ping.replies().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn replies_with_unknown_ident_ignored() {
        let net = SimNet::ethernet_10mbps(21);
        let mut a = station(&net, 1);
        let mut b = station(&net, 2);
        b.activate().unwrap();
        let mut ping = Ping::new(&mut a, 77).unwrap();
        ping.probe(&mut a, Ipv4Addr::new(10, 0, 0, 2), net.now()).unwrap();
        // Drop the session before the reply lands.
        a.close(IcmpConn(77)).unwrap();
        settle(&net, &mut [&mut a, &mut b]);
        assert_eq!(a.stats().replies_delivered, 0);
        let _ = ping;
    }

    #[test]
    fn duplicate_ident_rejected() {
        let net = SimNet::ethernet_10mbps(21);
        let mut a = station(&net, 1);
        Ping::new(&mut a, 5).unwrap();
        assert!(Ping::new(&mut a, 5).is_err());
    }
}
