//! A multi-interface IP router.
//!
//! The paper's benchmark ran on one isolated segment ("in the absence of
//! routers", as §3's Special_Tcp discussion notes), but the Ip layer's
//! gateway configuration implies one — so here it is: a store-and-
//! forward IPv4 router joining any number of simulated segments, with
//! per-interface ARP, TTL decrement, and the RFC 1624 *incremental*
//! header-checksum update (`foxbasis::checksum::incremental_update`)
//! on the forwarding fast path, exactly as real routers avoid re-summing
//! the whole header.

use crate::arp::{ArpCache, ArpEffect};
use crate::dev::Dev;
use crate::eth::{Eth, EthIncoming};
use crate::{ProtoError, Protocol};
use foxbasis::buf::PacketBuf;
use foxbasis::checksum::incremental_update;
use foxbasis::fifo::Fifo;
use foxbasis::time::VirtualTime;
use foxwire::arp::ArpPacket;
use foxwire::ether::{EthAddr, EtherType};
use foxwire::ipv4::Ipv4Addr;
use simnet::{HostHandle, SimNet};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Forwarding statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Packets forwarded between interfaces.
    pub forwarded: u64,
    /// Packets dropped because TTL reached zero.
    pub ttl_expired: u64,
    /// Packets with no route (no interface owns the destination subnet).
    pub no_route: u64,
    /// Packets addressed to the router itself (absorbed).
    pub for_router: u64,
    /// Undecodable packets.
    pub bad: u64,
}

struct Iface {
    eth: Eth<Dev>,
    ipv4_conn: crate::eth::EthConn,
    arp_conn: crate::eth::EthConn,
    rx: Rc<RefCell<Fifo<EthIncoming>>>,
    arp: ArpCache,
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Iface {
    fn subnet(&self, a: Ipv4Addr) -> u32 {
        let mask = if self.prefix_len == 0 { 0 } else { !0u32 << (32 - self.prefix_len) };
        a.to_u32() & mask
    }

    fn owns(&self, a: Ipv4Addr) -> bool {
        self.subnet(a) == self.subnet(self.addr)
    }
}

/// The router.
pub struct Router {
    ifs: Vec<Iface>,
    stats: RouterStats,
}

impl Router {
    /// A router with no interfaces yet.
    pub fn new() -> Router {
        Router { ifs: Vec::new(), stats: RouterStats::default() }
    }

    /// Attaches an interface to `net` with the given link and IP
    /// identity.
    pub fn add_interface(
        &mut self,
        net: &SimNet,
        mac: EthAddr,
        addr: Ipv4Addr,
        prefix_len: u8,
        host: HostHandle,
    ) -> Result<(), ProtoError> {
        let mut eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host);
        let rx = Rc::new(RefCell::new(Fifo::new()));
        let q = rx.clone();
        let ipv4_conn = eth.open(EtherType::Ipv4, Box::new(move |m| q.borrow_mut().add(m)))?;
        let q = rx.clone();
        let arp_conn = eth.open(EtherType::Arp, Box::new(move |m| q.borrow_mut().add(m)))?;
        self.ifs.push(Iface {
            eth,
            ipv4_conn,
            arp_conn,
            rx,
            arp: ArpCache::new(mac, addr),
            addr,
            prefix_len,
        });
        Ok(())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Drives the router.
    pub fn step(&mut self, now: VirtualTime) -> bool {
        let mut progress = false;
        for i in 0..self.ifs.len() {
            progress |= self.ifs[i].eth.step(now);
            loop {
                let msg = match self.ifs[i].rx.borrow_mut().next() {
                    Some(m) => m,
                    None => break,
                };
                progress = true;
                match msg.ethertype {
                    EtherType::Arp => self.handle_arp(i, now, &msg),
                    EtherType::Ipv4 => self.handle_ipv4(i, now, msg.payload),
                    _ => self.stats.bad += 1,
                }
            }
        }
        progress
    }

    fn handle_arp(&mut self, i: usize, now: VirtualTime, msg: &EthIncoming) {
        let pkt = match ArpPacket::decode(&msg.payload.bytes()) {
            Ok(p) => p,
            Err(_) => {
                self.stats.bad += 1;
                return;
            }
        };
        let effects = self.ifs[i].arp.input(now, &pkt);
        self.apply_arp_effects(i, effects);
    }

    fn apply_arp_effects(&mut self, i: usize, effects: Vec<ArpEffect>) {
        for e in effects {
            match e {
                ArpEffect::Transmit(arp_pkt, dst) => {
                    let conn = self.ifs[i].arp_conn;
                    let _ = self.ifs[i].eth.send(conn, dst, arp_pkt.encode());
                }
                ArpEffect::Release(packets, dst) => {
                    let conn = self.ifs[i].ipv4_conn;
                    for p in packets {
                        let _ = self.ifs[i].eth.send(conn, dst, p);
                    }
                }
            }
        }
    }

    /// The forwarding path. Works on raw header bytes so the checksum
    /// can be updated incrementally.
    fn handle_ipv4(&mut self, from: usize, now: VirtualTime, buf: PacketBuf) {
        let (dst, ttl) = {
            let b = buf.bytes();
            // Minimal header sanity; full validation happens at end hosts.
            if b.len() < foxwire::ipv4::HEADER_LEN || b[0] >> 4 != 4 {
                self.stats.bad += 1;
                return;
            }
            (Ipv4Addr([b[16], b[17], b[18], b[19]]), b[8])
        };
        if self.ifs.iter().any(|f| f.addr == dst) {
            self.stats.for_router += 1;
            return; // the router offers no services of its own
        }
        // Route: the interface owning the destination subnet.
        let out = match self.ifs.iter().position(|f| f.owns(dst)) {
            Some(i) => i,
            None => {
                self.stats.no_route += 1;
                return;
            }
        };
        if ttl <= 1 {
            self.stats.ttl_expired += 1;
            return;
        }
        // TTL and the incremental checksum update (RFC 1624): the
        // TTL/protocol 16-bit word loses 0x0100. The mutation happens in
        // place when this hop holds the only view of the buffer;
        // otherwise (the sender still references it, e.g. from a
        // retransmission queue on the same simulated machine) on a
        // private copy — never on bytes another view can see.
        let mut bytes = buf;
        if bytes.bytes_mut().is_none() {
            bytes = bytes.clone_owned();
        }
        {
            let mut b = bytes.bytes_mut().expect("owned");
            let old_word = u16::from_be_bytes([b[8], b[9]]);
            b[8] = ttl - 1;
            let new_word = u16::from_be_bytes([b[8], b[9]]);
            let old_check = u16::from_be_bytes([b[10], b[11]]);
            let new_check = incremental_update(old_check, old_word, new_word);
            b[10..12].copy_from_slice(&new_check.to_be_bytes());
        }

        self.stats.forwarded += 1;
        let _ = from;
        let effects = self.ifs[out].arp.resolve(now, dst, bytes);
        self.apply_arp_effects(out, effects);
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::new()
    }
}

impl fmt::Debug for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Router({} interfaces, {:?})", self.ifs.len(), self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::{Ip, IpConfig, IpIncoming};
    use foxwire::ipv4::IpProtocol;

    type HostStation = (Ip<Eth<Dev>>, crate::ip::IpConn, Rc<RefCell<Vec<IpIncoming>>>);

    fn host_station(net: &SimNet, mac_id: u8, addr: Ipv4Addr, gateway: Ipv4Addr) -> HostStation {
        let host = HostHandle::free();
        let mac = EthAddr::host(mac_id);
        let eth = Eth::new(Dev::new(net.attach(mac), host.clone()), mac, host.clone());
        let mut ip = Ip::new(
            eth,
            mac,
            IpConfig { local: addr, prefix_len: 24, gateway: Some(gateway), ttl: 64 },
            host,
        );
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        let conn = ip.open(IpProtocol::Udp, Box::new(move |m| g.borrow_mut().push(m))).unwrap();
        (ip, conn, got)
    }

    fn settle(nets: &[&SimNet], mut f: impl FnMut(VirtualTime) -> bool) {
        for _ in 0..400 {
            let mut progress = false;
            let now = nets.iter().map(|n| n.now()).max().unwrap();
            for n in nets {
                if let Some(t) = n.next_delivery() {
                    if t <= now || !progress {
                        n.advance_to(t.max(n.now()));
                        progress = true;
                    }
                }
            }
            let now = nets.iter().map(|n| n.now()).max().unwrap();
            for n in nets {
                if n.now() < now {
                    n.advance_to(now);
                }
            }
            progress |= f(now);
            if !progress {
                break;
            }
        }
    }

    #[test]
    fn forwards_between_segments_with_ttl_decrement() {
        // Segment 1: 10.0.0.0/24, segment 2: 10.0.1.0/24; the router is
        // .254 on both. Host A sends a UDP-proto datagram to host B
        // across it.
        let net1 = SimNet::ethernet_10mbps(1);
        let net2 = SimNet::ethernet_10mbps(2);
        let (mut a, _a_udp, _) =
            host_station(&net1, 1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 254));
        let (mut b, _b_udp, got_b) =
            host_station(&net2, 2, Ipv4Addr::new(10, 0, 1, 2), Ipv4Addr::new(10, 0, 1, 254));
        let mut router = Router::new();
        router
            .add_interface(&net1, EthAddr::host(101), Ipv4Addr::new(10, 0, 0, 254), 24, HostHandle::free())
            .unwrap();
        router
            .add_interface(&net2, EthAddr::host(102), Ipv4Addr::new(10, 0, 1, 254), 24, HostHandle::free())
            .unwrap();

        let conn = a.open(IpProtocol::Icmp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::new(10, 0, 1, 2), b"across the router".to_vec()).unwrap();

        settle(&[&net1, &net2], |now| {
            let p1 = a.step(now);
            let p2 = b.step(now);
            let p3 = router.step(now);
            p1 || p2 || p3
        });
        // A sent on its Icmp conn, so the IP proto is Icmp and B (which
        // listens on Udp) won't deliver it — but the router must have
        // forwarded it all the same.
        assert_eq!(router.stats().forwarded, 1, "{:?}", router.stats());

        let conn_udp = _a_udp;
        a.send(conn_udp, Ipv4Addr::new(10, 0, 1, 2), b"across the router".to_vec()).unwrap();
        settle(&[&net1, &net2], |now| {
            let p1 = a.step(now);
            let p2 = b.step(now);
            let p3 = router.step(now);
            p1 || p2 || p3
        });
        assert_eq!(got_b.borrow().len(), 1);
        assert_eq!(got_b.borrow()[0].payload, b"across the router");
        assert_eq!(got_b.borrow()[0].src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(router.stats().forwarded, 2);
    }

    #[test]
    fn ttl_expiry_drops() {
        let net1 = SimNet::ethernet_10mbps(1);
        let net2 = SimNet::ethernet_10mbps(2);
        let host = HostHandle::free();
        let mac = EthAddr::host(1);
        let eth = Eth::new(Dev::new(net1.attach(mac), host.clone()), mac, host.clone());
        let mut a = Ip::new(
            eth,
            mac,
            IpConfig {
                local: Ipv4Addr::new(10, 0, 0, 1),
                prefix_len: 24,
                gateway: Some(Ipv4Addr::new(10, 0, 0, 254)),
                ttl: 1, // expires at the first hop
            },
            host,
        );
        a.open(IpProtocol::Udp, Box::new(|_| {})).unwrap();
        let (mut b, _b_udp, got_b) =
            host_station(&net2, 2, Ipv4Addr::new(10, 0, 1, 2), Ipv4Addr::new(10, 0, 1, 254));
        let mut router = Router::new();
        router
            .add_interface(&net1, EthAddr::host(101), Ipv4Addr::new(10, 0, 0, 254), 24, HostHandle::free())
            .unwrap();
        router
            .add_interface(&net2, EthAddr::host(102), Ipv4Addr::new(10, 0, 1, 254), 24, HostHandle::free())
            .unwrap();
        let conn = a.open(IpProtocol::Icmp, Box::new(|_| {})).unwrap();
        a.send(conn, Ipv4Addr::new(10, 0, 1, 2), b"too far".to_vec()).unwrap();
        settle(&[&net1, &net2], |now| a.step(now) | b.step(now) | router.step(now));
        assert_eq!(router.stats().ttl_expired, 1);
        assert!(got_b.borrow().is_empty());
    }

    #[test]
    fn unroutable_destination_counted() {
        let net1 = SimNet::ethernet_10mbps(1);
        let (mut a, a_udp, _) =
            host_station(&net1, 1, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 254));
        let mut router = Router::new();
        router
            .add_interface(&net1, EthAddr::host(101), Ipv4Addr::new(10, 0, 0, 254), 24, HostHandle::free())
            .unwrap();
        a.send(a_udp, Ipv4Addr::new(172, 16, 0, 9), b"nowhere".to_vec()).unwrap();
        settle(&[&net1], |now| a.step(now) | router.step(now));
        assert_eq!(router.stats().no_route, 1);
    }

    /// The forwarded packet's header checksum stays valid — the
    /// incremental update really works (end hosts verify it on decode,
    /// so the first test implies this; here we check the byte-level
    /// property directly).
    #[test]
    fn incremental_checksum_stays_valid() {
        use foxwire::ipv4::{Ipv4Header, Ipv4Packet};
        let pkt = Ipv4Packet {
            header: Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 2)),
            payload: b"check me"[..].into(),
        };
        let mut bytes = pkt.encode().unwrap();
        // Simulate the router's in-place mutation.
        let old_word = u16::from_be_bytes([bytes[8], bytes[9]]);
        bytes[8] -= 1;
        let new_word = u16::from_be_bytes([bytes[8], bytes[9]]);
        let old_check = u16::from_be_bytes([bytes[10], bytes[11]]);
        let new_check = incremental_update(old_check, old_word, new_word);
        bytes[10..12].copy_from_slice(&new_check.to_be_bytes());
        let decoded = Ipv4Packet::decode(&bytes).expect("checksum must verify after update");
        assert_eq!(decoded.header.ttl, 63);
    }
}
