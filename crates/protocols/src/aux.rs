//! The `IP_AUX` signature (paper Fig. 5) and its implementations.
//!
//! TCP needs things from its lower layer that the generic `PROTOCOL`
//! signature does not promise — the source address of an incoming
//! message, address hashing and printing, the pseudo-header checksum
//! (which covers IP-header values), and the MTU. The paper factors these
//! into an auxiliary structure:
//!
//! > "Note that with this structure, any change in the definition of IP
//! > (for example, from IP version 4 to version 7) will affect the IP
//! > implementation and the Auxiliary structure, but not TCP."
//!
//! [`IpAux`] is that signature; [`IpAuxImpl`] is the IPv4 instance used
//! by `Standard_Tcp`, and [`EthAux`] is the raw-Ethernet instance used by
//! `Special_Tcp` (Fig. 3), whose `check` returns `None` — TCP checksums
//! are off, the Ethernet CRC carries the integrity burden.

use crate::eth::EthIncoming;
use crate::ip::IpIncoming;
use foxbasis::buf::PacketBuf;
use foxwire::ether::EthAddr;
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use foxwire::pseudo;
use std::fmt;

/// The source and payload view of a lower-layer incoming message
/// (the paper's `info: incoming_message -> {src, checksum, data}`).
pub struct AuxInfo<'a, A> {
    /// Who sent it.
    pub src: A,
    /// The transport-layer bytes, still in the buffer they arrived in —
    /// transports decode headers from it and slice the user payload out
    /// without copying.
    pub data: &'a PacketBuf,
}

/// The auxiliary structure TCP and UDP require alongside their lower
/// protocol (paper Fig. 5). The `Address`/`Incoming` associated types
/// carry the paper's `sharing` constraints: a `Tcp<L, A>` instantiation
/// requires `A::Address = L::Peer` and `A::Incoming = L::Incoming`.
pub trait IpAux {
    /// Lower-layer address type.
    type Address: Clone + PartialEq + fmt::Debug;
    /// Lower-layer incoming message type.
    type Incoming;

    /// `val hash: address -> int`.
    fn hash(addr: &Self::Address) -> u64;

    /// `val eq: address * address -> bool`.
    fn eq(a: &Self::Address, b: &Self::Address) -> bool {
        a == b
    }

    /// `val makestring: address -> string`.
    fn makestring(addr: &Self::Address) -> String;

    /// `val info: incoming_message -> {src, ..., data}`.
    fn info<'a>(&self, msg: &'a Self::Incoming) -> AuxInfo<'a, Self::Address>;

    /// `val check: address -> ubyte2` — the pseudo-header partial sum
    /// (including the transport length field) for a segment of
    /// `transport_len` bytes exchanged with `remote`. `None` means the
    /// lower layer has no pseudo-header and the transport checksum
    /// should not be computed.
    fn check(&self, remote: &Self::Address, transport_len: usize) -> Option<u16>;

    /// `val mtu: connection -> int` — the path MTU the transport sizes
    /// its segments against. For TCP this is the *link* MTU (1500 on
    /// Ethernet): [`foxwire::tcp::mss_for_mtu`] subtracts both 20-byte
    /// headers from it, and IP would fragment anything larger anyway.
    /// Auxiliaries for header-free lowers report their raw payload
    /// capacity, trading the phantom IP header for 20 spare bytes.
    fn mtu(&self) -> usize;
}

/// `IP_AUX` over IPv4 — the `Standard_Tcp` auxiliary.
#[derive(Clone, Debug)]
pub struct IpAuxImpl {
    local: Ipv4Addr,
    proto: IpProtocol,
    mtu: usize,
}

impl IpAuxImpl {
    /// For a transport `proto` endpoint at `local` over a path with the
    /// given `mtu` — the link MTU for TCP (see [`IpAux::mtu`]), or the
    /// IP payload capacity ([`crate::ip::Ip::mtu`]) for datagram
    /// transports that must fit each message in one packet.
    pub fn new(local: Ipv4Addr, proto: IpProtocol, mtu: usize) -> IpAuxImpl {
        IpAuxImpl { local, proto, mtu }
    }

    /// Our address.
    pub fn local(&self) -> Ipv4Addr {
        self.local
    }
}

impl IpAux for IpAuxImpl {
    type Address = Ipv4Addr;
    type Incoming = IpIncoming;

    fn hash(addr: &Ipv4Addr) -> u64 {
        addr.hash()
    }

    fn makestring(addr: &Ipv4Addr) -> String {
        addr.makestring()
    }

    fn info<'a>(&self, msg: &'a IpIncoming) -> AuxInfo<'a, Ipv4Addr> {
        AuxInfo { src: msg.src, data: &msg.payload }
    }

    fn check(&self, remote: &Ipv4Addr, transport_len: usize) -> Option<u16> {
        // The sum is commutative in (src, dst), so one function serves
        // both directions.
        Some(pseudo::v4_sum(self.local, *remote, self.proto, transport_len))
    }

    fn mtu(&self) -> usize {
        self.mtu
    }
}

/// `IP_AUX` over raw Ethernet — the `Special_Tcp` auxiliary.
///
/// The paper's footnote: this composition is only sound "if there is
/// specific knowledge that the Ethernet implementation implements the
/// CRC correctly" — which our simulated Ethernet does (`foxwire::ether`
/// verifies the FCS on every receive).
#[derive(Clone, Debug)]
pub struct EthAux {
    mtu: usize,
}

impl EthAux {
    /// Over a standard Ethernet (1500-byte payload MTU, minus the
    /// 2-byte length framing the `SizedPayload` adapter adds).
    pub fn new() -> EthAux {
        EthAux { mtu: foxwire::ether::MTU - 2 }
    }
}

impl Default for EthAux {
    fn default() -> Self {
        EthAux::new()
    }
}

impl IpAux for EthAux {
    type Address = EthAddr;
    type Incoming = EthIncoming;

    fn hash(addr: &EthAddr) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in addr.0 {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn makestring(addr: &EthAddr) -> String {
        format!("{addr}")
    }

    fn info<'a>(&self, msg: &'a EthIncoming) -> AuxInfo<'a, EthAddr> {
        AuxInfo { src: msg.src, data: &msg.payload }
    }

    fn check(&self, _remote: &EthAddr, _transport_len: usize) -> Option<u16> {
        None // no pseudo-header; the Ethernet CRC protects the segment
    }

    fn mtu(&self) -> usize {
        self.mtu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_aux_pseudo_sum_is_direction_symmetric() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        let at_a = IpAuxImpl::new(a, IpProtocol::Tcp, 1480);
        let at_b = IpAuxImpl::new(b, IpProtocol::Tcp, 1480);
        assert_eq!(at_a.check(&b, 100), at_b.check(&a, 100));
    }

    #[test]
    fn ip_aux_strings_and_hash() {
        let a = Ipv4Addr::new(1, 2, 3, 4);
        assert_eq!(IpAuxImpl::makestring(&a), "1.2.3.4");
        assert_ne!(IpAuxImpl::hash(&a), IpAuxImpl::hash(&Ipv4Addr::new(1, 2, 3, 5)));
        assert!(IpAuxImpl::eq(&a, &a));
    }

    #[test]
    fn ip_aux_info_views_payload() {
        let aux = IpAuxImpl::new(Ipv4Addr::new(9, 9, 9, 9), IpProtocol::Tcp, 1480);
        let msg = IpIncoming {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(9, 9, 9, 9),
            proto: IpProtocol::Tcp,
            payload: b"segment"[..].into(),
        };
        let info = aux.info(&msg);
        assert_eq!(info.src, Ipv4Addr::new(1, 1, 1, 1));
        assert_eq!(info.data, b"segment");
    }

    #[test]
    fn eth_aux_disables_checksums() {
        let aux = EthAux::new();
        assert_eq!(aux.check(&EthAddr::host(2), 500), None);
        assert_eq!(aux.mtu(), 1498);
        assert_ne!(EthAux::hash(&EthAddr::host(1)), EthAux::hash(&EthAddr::host(2)));
        assert_eq!(EthAux::makestring(&EthAddr::host(1)), "02:00:00:00:00:01");
    }
}
