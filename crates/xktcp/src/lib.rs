//! # The x-kernel-style baseline TCP
//!
//! The paper's Table 1 compares the Fox Net against "the x-kernel
//! version 3.2", whose TCP "is derived from the Berkeley code, which is
//! highly optimized". This crate is that comparator, rebuilt in the
//! Berkeley style the x-kernel inherited:
//!
//! * **monolithic**: one module, one big `process_segment` with inline
//!   state switches — no Tcb/State/Receive/Send/Resend decomposition;
//! * **direct-call**: packet arrival is processed synchronously to
//!   completion; there is no `to_do` queue and no total ordering of
//!   actions — the control structure the paper's design replaces;
//! * **poll-based**: no upcalls; users call `recv` against a receive
//!   buffer, as with sockets;
//! * **deadline timers**: retransmission and delayed-ACK deadlines are
//!   plain fields checked on every `step`, not scheduler threads.
//!
//! It speaks the same wire format (`foxwire::tcp`), so it interoperates
//! with `foxtcp` — the integration suite connects the two — and it runs
//! over the same `Protocol`/`IpAux` substrate, so Table 1 really does
//! hold everything equal except the implementation and its cost model,
//! just as the paper arranged ("both the advantages and the
//! disadvantages of running in user mode on top of the Mach 3.0
//! microkernel are factored out").

#![deny(unsafe_code)]
#![warn(missing_docs)]

use foxbasis::buf::{copy_mark, PacketBuf};
use foxbasis::obs::{ConnMetrics, Event, EventSink};
use foxbasis::ring::RingBuffer;
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxbasis::wheel::{TimerWheel, WheelStats};
use foxproto::aux::IpAux;
use foxproto::{ProtoError, Protocol};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpOption, TcpSegment};
use simnet::HostHandle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Socket handle.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub struct SockId(pub u32);

/// Connection states (the classic eleven; no Syn_Active/Passive split —
/// that refinement is the Fox design's).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum XkState {
    Closed,
    Listen,
    SynSent,
    SynReceived,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
}

impl XkState {
    /// Short stable name for traces; the same vocabulary a reader of
    /// the `foxtcp` stream sees where the two state machines overlap.
    pub fn name(self) -> &'static str {
        match self {
            XkState::Closed => "Closed",
            XkState::Listen => "Listen",
            XkState::SynSent => "SynSent",
            XkState::SynReceived => "SynReceived",
            XkState::Established => "Estab",
            XkState::FinWait1 => "FinWait1",
            XkState::FinWait2 => "FinWait2",
            XkState::CloseWait => "CloseWait",
            XkState::Closing => "Closing",
            XkState::LastAck => "LastAck",
            XkState::TimeWait => "TimeWait",
        }
    }
}

/// Configuration.
#[derive(Clone, Debug)]
pub struct XkConfig {
    /// Receive window / buffer (Table 1 standardizes 4096).
    pub window: usize,
    /// Send buffer.
    pub send_buffer: usize,
    /// Compute/verify checksums.
    pub checksums: bool,
    /// Delayed-ACK flush interval (BSD's 200 ms), `None` = immediate.
    pub delayed_ack_ms: Option<u64>,
    /// 2MSL.
    pub time_wait_ms: u64,
    /// Give up after this many retransmissions.
    pub max_retransmits: u32,
    /// Bound on embryonic (SYN-RECEIVED) children per listener; SYNs
    /// beyond it are dropped and admitted on retransmission once the
    /// queue drains.
    pub backlog: usize,
    /// Offer RFC 7323 window scaling on SYNs (on only if both sides
    /// offer).
    pub window_scale: bool,
    /// Advertise RFC 2018 SACK-permitted on SYNs. The baseline drops
    /// out-of-order segments, so it never *generates* SACK blocks — the
    /// option only tells the peer it may send them.
    pub sack: bool,
    /// Offer RFC 7323 timestamps; when negotiated, every segment
    /// carries TSval/TSecr and the peer's TSval is echoed back.
    pub timestamps: bool,
    /// ACK-coalescing parity knob (mirrors `TcpConfig`): how many full
    /// in-order segments may arrive before an immediate ACK is forced.
    /// `None` (default) keeps this baseline's historical rule — an
    /// immediate ACK on *every* full segment — byte-for-byte.
    pub ack_coalesce_segments: Option<u32>,
}

impl Default for XkConfig {
    fn default() -> Self {
        XkConfig {
            window: 4096,
            send_buffer: 8192,
            checksums: true,
            delayed_ack_ms: Some(200),
            time_wait_ms: 60_000,
            max_retransmits: 12,
            backlog: 8,
            window_scale: false,
            sack: false,
            ack_coalesce_segments: None,
            timestamps: false,
        }
    }
}

/// Events a user can poll for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XkEvent {
    /// Handshake done.
    Connected,
    /// New child socket on a listener.
    Accepted(SockId),
    /// Peer sent FIN.
    PeerClosed,
    /// Fully closed.
    Closed,
    /// Reset by peer.
    Reset,
    /// Gave up retransmitting.
    TimedOut,
}

/// Statistics for the benchmark harness.
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq)]
pub struct XkStats {
    /// Segments sent (with retransmissions).
    pub segments_sent: u64,
    /// Segments processed.
    pub segments_received: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received in order.
    pub bytes_received: u64,
    /// Checksum drops.
    pub checksum_failures: u64,
    /// Real buffer copies while externalizing/internalizing segments.
    /// The baseline stages payloads with no headroom, so every data
    /// segment pays a counted copy when the header is prepended — the
    /// per-layer copy the x-kernel inherited from Berkeley.
    pub buf_copies: u64,
    /// Bytes moved by those copies.
    pub buf_copy_bytes: u64,
    /// Demultiplexing scans over the socket table (one per arriving
    /// segment, plus one for the listener pass when the exact scan
    /// misses). The baseline keeps the x-kernel's linear session list.
    pub demux_lookups: u64,
    /// Sockets examined across those scans — grows O(N) per segment
    /// with N open connections, which is the scaling cost the keyed
    /// table in `foxtcp::demux` removes.
    pub demux_steps: u64,
    /// In-window RSTs rejected because their sequence number was not
    /// exactly RCV.NXT (blind-reset attempts; RFC 5961 §3.2).
    pub rst_rejected_seq: u64,
    /// ACKs dropped because they acknowledged data never sent
    /// (optimistic-ACK attempts; SEG.ACK > SND.NXT).
    pub acks_ignored_unsent_data: u64,
}

/// Timer kinds, in the order the old per-step poll checked them —
/// timer dispatch sorts by this rank to keep traces identical.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum XkTimerKind {
    DelayedAck = 0,
    TimeWait = 1,
    Resend = 2,
    Persist = 3,
}

/// One socket timer: the deadline (still consulted by `is_none` checks
/// and diagnostics, exactly like the old plain fields) plus its entry on
/// the shared wheel.
#[derive(Default)]
struct TimerSlot {
    at: Option<VirtualTime>,
    tid: Option<foxbasis::wheel::TimerId>,
}

struct Socket<P> {
    id: u32,
    local_port: u16,
    remote: Option<(P, u16)>,
    state: XkState,
    parent: Option<u32>,

    iss: Seq,
    snd_una: Seq,
    snd_nxt: Seq,
    snd_wnd: u32,
    snd_wl1: Seq,
    snd_wl2: Seq,
    rcv_nxt: Seq,
    mss: u32,

    // Negotiated TCP options (all off until the SYN exchange says
    // otherwise, so the default trace is byte-identical to pre-options).
    wscale_on: bool,
    snd_wscale: u8,
    rcv_wscale: u8,
    sack_ok: bool,
    ts_on: bool,
    ts_recent: u32,

    send_buf: RingBuffer,
    recv_buf: RingBuffer,
    fin_pending: bool,
    fin_seq: Option<Seq>,

    // BSD-style single retransmit deadline + counters.
    rto: VirtualDuration,
    backoff: u32,
    retransmits_left: u32,
    srtt: Option<VirtualDuration>,
    rttvar: VirtualDuration,
    timing: Option<(Seq, VirtualTime)>,

    ack_owed: bool,
    /// Full in-order segments accepted since the last ACK we sent
    /// (drives the `ack_coalesce_segments` immediate-ACK threshold).
    segs_since_ack: u32,
    /// Retransmit / delayed-ACK / TIME-WAIT / persist deadlines, each
    /// mirrored on the stack's shared timer wheel.
    timers: [TimerSlot; 4],

    events: VecDeque<XkEvent>,
}

impl<P> Socket<P> {
    fn flight(&self) -> u32 {
        self.snd_nxt.since(self.snd_una)
    }

    /// The largest payload a data segment may carry: the MSS less the
    /// timestamp option's 12 bytes when it is on (RFC 6691 §3 — the
    /// MSS never accounts for options; sizing by the raw MSS would
    /// push a "full" timestamped segment past the link MTU).
    fn eff_mss(&self) -> u32 {
        if self.ts_on {
            self.mss.saturating_sub(foxwire::tcp::TIMESTAMPS_SEGMENT_OVERHEAD).max(1)
        } else {
            self.mss
        }
    }

    fn push_event(&mut self, e: XkEvent) {
        self.events.push_back(e);
    }

    fn deadline(&self, kind: XkTimerKind) -> Option<VirtualTime> {
        self.timers[kind as usize].at
    }

    fn set_timer(&mut self, wheel: &mut TimerWheel<(u32, XkTimerKind)>, kind: XkTimerKind, at: VirtualTime) {
        let slot = &mut self.timers[kind as usize];
        if let Some(tid) = slot.tid.take() {
            wheel.cancel(tid);
        }
        slot.at = Some(at);
        slot.tid = Some(wheel.arm(at, (self.id, kind)));
    }

    fn clear_timer(&mut self, wheel: &mut TimerWheel<(u32, XkTimerKind)>, kind: XkTimerKind) {
        let slot = &mut self.timers[kind as usize];
        slot.at = None;
        if let Some(tid) = slot.tid.take() {
            wheel.cancel(tid);
        }
    }
}

/// The baseline TCP over a lower protocol and aux structure.
pub struct XkTcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    lower: L,
    aux: A,
    cfg: XkConfig,
    host: HostHandle,
    lower_pattern: L::Pattern,
    lower_conn: Option<L::ConnId>,
    rx: Rc<RefCell<VecDeque<L::Incoming>>>,
    socks: Vec<Socket<L::Peer>>,
    next_id: u32,
    next_port: u16,
    stats: XkStats,
    now: VirtualTime,
    obs: EventSink,
    /// All socket timers, one shared wheel: payload is
    /// (socket id, timer kind).
    wheel: TimerWheel<(u32, XkTimerKind)>,
}

impl<L, A> XkTcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// Builds the stack.
    pub fn new(lower: L, aux: A, lower_pattern: L::Pattern, cfg: XkConfig, host: HostHandle) -> Self {
        XkTcp {
            lower,
            aux,
            cfg,
            host,
            lower_pattern,
            lower_conn: None,
            rx: Rc::new(RefCell::new(VecDeque::new())),
            socks: Vec::new(),
            next_id: 0,
            next_port: 48000,
            stats: XkStats::default(),
            now: VirtualTime::ZERO,
            obs: EventSink::off(),
            wheel: TimerWheel::new(VirtualTime::ZERO),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> XkStats {
        self.stats
    }

    /// Timer-wheel operation counters (the `tables -- scale` experiment
    /// reports these alongside demux counters).
    pub fn wheel_stats(&self) -> WheelStats {
        self.wheel.stats()
    }

    /// Installs an event sink; segments, timers, and state transitions
    /// are recorded with the socket id as the connection stamp.
    pub fn set_obs(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// Per-connection metrics snapshot (None once reaped). The baseline
    /// has no congestion window, so `cwnd`/`ssthresh` read zero and the
    /// fast-path counters stay empty; segment and byte counters are the
    /// stack-wide totals, as BSD kept them.
    pub fn metrics_of(&self, sock: SockId) -> Option<ConnMetrics> {
        let i = self.idx(sock)?;
        let s = &self.socks[i];
        Some(ConnMetrics {
            srtt_us: s.srtt.map(|d| d.as_micros()),
            rto_us: s.rto.as_micros(),
            cwnd: 0,
            ssthresh: 0,
            snd_wnd: s.snd_wnd,
            bytes_in_flight: s.flight(),
            fastpath_hits: 0,
            fastpath_misses: 0,
            retransmits: self.stats.retransmits,
            fast_retransmits: 0,
            recoveries: 0,
            rto_fires: self.stats.retransmits,
            probe_fires: 0,
            segments_sent: self.stats.segments_sent,
            segments_received: self.stats.segments_received,
            bytes_sent: self.stats.bytes_sent,
            bytes_delivered: self.stats.bytes_received,
            buf_copies: self.stats.buf_copies,
            buf_copy_bytes: self.stats.buf_copy_bytes,
        })
    }

    /// Emits a state transition if `before` is no longer the state of
    /// socket `i` (callers snapshot before mutating). `cause` names the
    /// trigger in the `spec/tcp_fsm.txt` vocabulary: a user call, a
    /// timer, or the arriving segment's dominant flag.
    fn note_transition(&mut self, i: usize, before: XkState, cause: &'static str) {
        if !self.obs.is_on() {
            return;
        }
        let after = self.socks[i].state;
        if before as u32 != after as u32 {
            let conn = self.socks[i].id;
            self.obs.emit(self.now, conn, || Event::StateTransition {
                from: before.name(),
                to: after.name(),
                cause,
            });
        }
    }

    fn attach(&mut self) -> Result<(), ProtoError> {
        if self.lower_conn.is_none() {
            let q = self.rx.clone();
            self.lower_conn = Some(
                self.lower
                    .open(self.lower_pattern.clone(), Box::new(move |m| q.borrow_mut().push_back(m)))?,
            );
        }
        Ok(())
    }

    fn new_socket(&mut self, local_port: u16, remote: Option<(L::Peer, u16)>) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let iss = Seq(((self.now.as_micros() / 4) as u32).wrapping_add(id.wrapping_mul(64021)));
        self.socks.push(Socket {
            id,
            local_port,
            remote,
            state: XkState::Closed,
            parent: None,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            snd_wl1: Seq(0),
            snd_wl2: Seq(0),
            rcv_nxt: Seq(0),
            // RFC 879 via the shared helper: MTU minus 40 bytes of
            // IP+TCP headers (this stack formerly subtracted only 20
            // and clamped at 536; foxtcp clamped at 1 — one rule now).
            mss: foxwire::tcp::mss_for_mtu(self.aux.mtu() as u32),
            wscale_on: false,
            snd_wscale: 0,
            rcv_wscale: if self.cfg.window_scale { foxwire::tcp::wscale_for(self.cfg.window) } else { 0 },
            sack_ok: false,
            ts_on: false,
            ts_recent: 0,
            send_buf: RingBuffer::new(self.cfg.send_buffer.max(1)),
            recv_buf: RingBuffer::new(self.cfg.window.max(1)),
            fin_pending: false,
            fin_seq: None,
            rto: VirtualDuration::from_millis(1000),
            backoff: 0,
            retransmits_left: self.cfg.max_retransmits,
            srtt: None,
            rttvar: VirtualDuration::ZERO,
            timing: None,
            ack_owed: false,
            segs_since_ack: 0,
            timers: Default::default(),
            events: VecDeque::new(),
        });
        id
    }

    fn idx(&self, id: SockId) -> Option<usize> {
        self.socks.iter().position(|s| s.id == id.0)
    }

    // ----- user API -----

    /// Active open.
    pub fn connect(
        &mut self,
        remote: L::Peer,
        remote_port: u16,
        local_port: u16,
    ) -> Result<SockId, ProtoError> {
        self.attach()?;
        let local_port = if local_port == 0 {
            let p = self.next_port;
            self.next_port = self.next_port.wrapping_add(1).max(48000);
            p
        } else {
            local_port
        };
        let id = self.new_socket(local_port, Some((remote, remote_port)));
        let i = self.idx(SockId(id)).expect("created");
        self.socks[i].state = XkState::SynSent;
        self.note_transition(i, XkState::Closed, "open");
        self.send_syn(i, false);
        Ok(SockId(id))
    }

    /// Passive open.
    pub fn listen(&mut self, local_port: u16) -> Result<SockId, ProtoError> {
        self.attach()?;
        if self.socks.iter().any(|s| s.local_port == local_port && s.state == XkState::Listen) {
            return Err(ProtoError::AlreadyOpen);
        }
        let id = self.new_socket(local_port, None);
        let i = self.idx(SockId(id)).expect("created");
        self.socks[i].state = XkState::Listen;
        self.note_transition(i, XkState::Closed, "open");
        Ok(SockId(id))
    }

    /// Queues data; returns bytes accepted.
    pub fn send(&mut self, sock: SockId, data: &[u8]) -> Result<usize, ProtoError> {
        let i = self.idx(sock).ok_or(ProtoError::NotOpen)?;
        match self.socks[i].state {
            XkState::Established | XkState::CloseWait | XkState::SynSent | XkState::SynReceived => {}
            XkState::Closed => return Err(ProtoError::NotOpen),
            _ => return Err(ProtoError::Closing),
        }
        if self.socks[i].fin_pending {
            return Err(ProtoError::Closing);
        }
        let n = self.socks[i].send_buf.write(data);
        self.output(i);
        Ok(n)
    }

    /// Reads buffered in-order data.
    pub fn recv(&mut self, sock: SockId, buf: &mut [u8]) -> Result<usize, ProtoError> {
        let i = self.idx(sock).ok_or(ProtoError::NotOpen)?;
        let n = self.socks[i].recv_buf.read(buf);
        if n > 0 {
            // Window opened: let the peer know if it was pinched.
            self.socks[i].ack_owed = true;
            if self.socks[i].deadline(XkTimerKind::DelayedAck).is_none() {
                let at = self.now;
                self.socks[i].set_timer(&mut self.wheel, XkTimerKind::DelayedAck, at);
            }
        }
        Ok(n)
    }

    /// Bytes waiting in the receive buffer.
    pub fn available(&self, sock: SockId) -> usize {
        self.idx(sock).map_or(0, |i| self.socks[i].recv_buf.len())
    }

    /// Next queued event.
    pub fn poll_event(&mut self, sock: SockId) -> Option<XkEvent> {
        let i = self.idx(sock)?;
        self.socks[i].events.pop_front()
    }

    /// Graceful close.
    pub fn close(&mut self, sock: SockId) -> Result<(), ProtoError> {
        let i = self.idx(sock).ok_or(ProtoError::NotOpen)?;
        let before = self.socks[i].state;
        match self.socks[i].state {
            XkState::Closed => return Err(ProtoError::NotOpen),
            XkState::Listen | XkState::SynSent => {
                self.socks[i].state = XkState::Closed;
                self.socks[i].push_event(XkEvent::Closed);
                self.note_transition(i, before, "close");
                return Ok(());
            }
            XkState::Established | XkState::SynReceived => {
                self.socks[i].fin_pending = true;
                self.socks[i].state = XkState::FinWait1;
            }
            XkState::CloseWait => {
                self.socks[i].fin_pending = true;
                self.socks[i].state = XkState::LastAck;
            }
            _ => return Err(ProtoError::Closing),
        }
        self.note_transition(i, before, "close");
        self.output(i);
        Ok(())
    }

    /// Current state (None once reaped).
    pub fn state_of(&self, sock: SockId) -> Option<XkState> {
        self.idx(sock).map(|i| self.socks[i].state)
    }

    /// Diagnostic snapshot: (state, snd_una, snd_nxt, snd_wnd, flight,
    /// buffered, retransmit_at, backoff).
    pub fn debug_of(&self, sock: SockId) -> Option<String> {
        self.idx(sock).map(|i| {
            let s = &self.socks[i];
            format!(
                "{:?} una={} nxt={} wnd={} flight={} buf={} rexmit_at={:?} backoff={} left={}",
                s.state,
                s.snd_una,
                s.snd_nxt,
                s.snd_wnd,
                s.flight(),
                s.send_buf.len(),
                s.deadline(XkTimerKind::Resend),
                s.backoff,
                s.retransmits_left
            )
        })
    }

    /// Drives the stack.
    pub fn step(&mut self, now: VirtualTime) -> bool {
        self.now = self.now.max(now);
        let _ = self.attach();
        let mut progress = self.lower.step(now);
        loop {
            let msg = match self.rx.borrow_mut().pop_front() {
                Some(m) => m,
                None => break,
            };
            progress = true;
            self.input(msg);
        }
        progress |= self.run_timers();
        self.socks.retain(|s| !(s.state == XkState::Closed && s.events.is_empty() && s.parent.is_some()));
        progress
    }

    // ----- output path -----

    fn transmit(&mut self, i: usize, seg: TcpSegment) {
        let to = match &self.socks[i].remote {
            Some((p, _)) => p.clone(),
            None => return,
        };
        self.transmit_to(seg, to);
    }

    fn transmit_to(&mut self, seg: TcpSegment, to: L::Peer) {
        let total = seg.header.header_len() + seg.payload.len();
        let pseudo = if self.cfg.checksums { self.aux.check(&to, total) } else { None };
        if pseudo.is_some() {
            self.host.charge_checksum(total);
        }
        self.host.charge_tcp_segment_sized(seg.payload.len());
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += seg.payload.len() as u64;
        if self.obs.is_on() {
            let conn = self
                .socks
                .iter()
                .find(|s| {
                    s.local_port == seg.header.src_port
                        && s.remote.as_ref().is_some_and(|(a, p)| A::eq(a, &to) && *p == seg.header.dst_port)
                })
                .map_or(foxbasis::obs::NO_CONN, |s| s.id);
            self.obs.emit(self.now, conn, || Event::SegTx {
                seq: seg.header.seq.0,
                ack: seg.header.ack.0,
                len: seg.payload.len() as u32,
                flags: obs_flags(&seg.header.flags),
                wnd: u32::from(seg.header.window),
            });
        }
        let mark = copy_mark();
        let encoded = seg.encode_buf(pseudo);
        let delta = mark.delta();
        if delta.bytes > 0 {
            self.stats.buf_copies += delta.copies;
            self.stats.buf_copy_bytes += delta.bytes;
            self.obs.emit(self.now, foxbasis::obs::NO_CONN, || Event::BufCopy {
                layer: "xk_tx",
                bytes: delta.bytes as u32,
            });
        }
        if let (Some(conn), Ok(bytes)) = (self.lower_conn, encoded) {
            let _ = self.lower.send(conn, to, bytes);
        }
    }

    fn header_for(&self, i: usize, flags: TcpFlags, seq: Seq) -> TcpHeader {
        let s = &self.socks[i];
        let mut h = TcpHeader::new(s.local_port, s.remote.as_ref().map(|(_, p)| *p).unwrap_or(0));
        h.seq = seq;
        h.ack = if flags.ack { s.rcv_nxt } else { Seq(0) };
        h.flags = flags;
        // SYN windows are never scaled (RFC 7323 §2.2); everywhere else
        // the codec helper applies the negotiated shift and the cap.
        let shift = if flags.syn || !s.wscale_on { 0 } else { s.rcv_wscale };
        h.window = foxwire::tcp::wire_window(s.recv_buf.free() as u32, shift);
        if s.ts_on && !flags.syn {
            h.options.push(TcpOption::Timestamps(self.now.as_millis() as u32, s.ts_recent));
        }
        h
    }

    fn send_syn(&mut self, i: usize, with_ack: bool) {
        let flags = if with_ack { TcpFlags::SYN_ACK } else { TcpFlags::SYN };
        let iss = self.socks[i].iss;
        let mut h = self.header_for(i, flags, iss);
        {
            let s = &self.socks[i];
            h.options.push(TcpOption::MaxSegmentSize(s.mss.min(65535) as u16));
            // A SYN offers what the config enables; a SYN+ACK echoes
            // only what the peer's SYN already agreed to.
            if if with_ack { s.wscale_on } else { self.cfg.window_scale } {
                h.options.push(TcpOption::WindowScale(s.rcv_wscale));
            }
            if if with_ack { s.sack_ok } else { self.cfg.sack } {
                h.options.push(TcpOption::SackPermitted);
            }
            if if with_ack { s.ts_on } else { self.cfg.timestamps } {
                h.options.push(TcpOption::Timestamps(self.now.as_millis() as u32, s.ts_recent));
            }
        }
        if self.socks[i].snd_nxt == iss {
            self.socks[i].snd_nxt = iss + 1;
        }
        self.arm_retransmit(i);
        self.transmit(i, TcpSegment { header: h, payload: PacketBuf::new() });
    }

    /// Adopts the peer's SYN options: each one turns on only if our
    /// config offered it too.
    fn negotiate_syn_options(&mut self, i: usize, h: &TcpHeader) {
        let s = &mut self.socks[i];
        if let Some(shift) = h.wscale() {
            if self.cfg.window_scale {
                s.wscale_on = true;
                s.snd_wscale = shift;
            }
        }
        if h.sack_permitted() && self.cfg.sack {
            s.sack_ok = true;
        }
        if let Some((tsval, _)) = h.timestamps() {
            if self.cfg.timestamps {
                s.ts_on = true;
                s.ts_recent = tsval;
            }
        }
    }

    /// The peer's window field, widened by the negotiated send shift.
    /// Windows on SYN segments are never scaled.
    fn peer_window(&self, i: usize, h: &TcpHeader) -> u32 {
        let s = &self.socks[i];
        let shift = if h.flags.syn || !s.wscale_on { 0 } else { s.snd_wscale };
        u32::from(h.window) << shift
    }

    fn send_ack(&mut self, i: usize) {
        let seq = self.socks[i].snd_nxt;
        let h = self.header_for(i, TcpFlags::ACK, seq);
        self.socks[i].ack_owed = false;
        self.socks[i].segs_since_ack = 0;
        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::DelayedAck);
        self.transmit(i, TcpSegment { header: h, payload: PacketBuf::new() });
    }

    /// The output routine: push whatever the windows allow, inline.
    fn output(&mut self, i: usize) {
        loop {
            let (take, fin_now, seq) = {
                let s = &self.socks[i];
                if !matches!(
                    s.state,
                    XkState::Established
                        | XkState::CloseWait
                        | XkState::FinWait1
                        | XkState::LastAck
                        | XkState::Closing
                ) {
                    return;
                }
                if s.fin_seq.is_some_and(|f| s.snd_nxt.gt(f)) {
                    return;
                }
                let unsent = (s.send_buf.len() as u32).saturating_sub(s.flight());
                let usable = s.snd_wnd.saturating_sub(s.flight());
                let take = unsent.min(usable).min(s.eff_mss());
                let fin_now = s.fin_pending && s.fin_seq.is_none() && take == unsent;
                if take == 0 && !fin_now {
                    // Zero window with data pending: arm the persist
                    // timer so a lost window update cannot wedge us.
                    let stalled = unsent > 0 && s.snd_wnd == 0 && s.flight() == 0;
                    if stalled && self.socks[i].deadline(XkTimerKind::Persist).is_none() {
                        let at = self.now + self.socks[i].rto;
                        self.socks[i].set_timer(&mut self.wheel, XkTimerKind::Persist, at);
                    }
                    return;
                }
                (take, fin_now, s.snd_nxt)
            };
            // Staged with no headroom: the Berkeley baseline pays a
            // counted copy when `encode_buf` prepends the header.
            let payload;
            {
                let s = &mut self.socks[i];
                let off = s.flight() as usize;
                // The SYN octet never coexists with buffered data here:
                // output only runs in synchronized states.
                let send_buf = &s.send_buf;
                payload = PacketBuf::build(0, take as usize, |dst| {
                    let got = send_buf.peek_at(off, dst);
                    debug_assert_eq!(got as u32, take, "staged bytes must be present");
                });
                s.snd_nxt = seq + take + u32::from(fin_now);
                if fin_now {
                    s.fin_seq = Some(seq + take);
                }
                if s.timing.is_none() && (take > 0 || fin_now) {
                    s.timing = Some((seq + take + u32::from(fin_now), self.now));
                }
            }
            let flags = TcpFlags { ack: true, psh: take > 0, fin: fin_now, ..TcpFlags::default() };
            let h = self.header_for(i, flags, seq);
            self.arm_retransmit(i);
            self.socks[i].ack_owed = false;
            self.socks[i].segs_since_ack = 0;
            self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::DelayedAck);
            self.transmit(i, TcpSegment { header: h, payload });
            if fin_now {
                return;
            }
        }
    }

    fn arm_retransmit(&mut self, i: usize) {
        if self.socks[i].deadline(XkTimerKind::Resend).is_none() {
            let s = &self.socks[i];
            let at = self.now + s.rto.saturating_mul(1 << s.backoff.min(6));
            self.socks[i].set_timer(&mut self.wheel, XkTimerKind::Resend, at);
        }
    }

    // ----- timers -----

    /// Fires due deadlines from the shared wheel. Dispatch order
    /// replicates the per-step poll this replaces exactly: sockets in
    /// table order, and within one socket delayed ACK, then TIME-WAIT,
    /// then retransmission, then persist.
    fn run_timers(&mut self) -> bool {
        let fired = self.wheel.advance(self.now);
        if fired.is_empty() {
            return false;
        }
        let mut due: Vec<(usize, XkTimerKind, foxbasis::wheel::TimerId)> = fired
            .iter()
            .filter_map(|f| {
                let (sid, kind) = f.payload;
                self.socks.iter().position(|s| s.id == sid).map(|i| (i, kind, f.id))
            })
            .collect();
        due.sort_by_key(|&(i, kind, _)| (i, kind as u32));
        let mut progress = false;
        for (i, kind, tid) in due {
            if self.socks[i].timers[kind as usize].tid != Some(tid) {
                continue; // superseded since the wheel drained
            }
            match kind {
                // Delayed ACK flush.
                XkTimerKind::DelayedAck => {
                    if self.socks[i].ack_owed {
                        progress = true;
                        let conn = self.socks[i].id;
                        self.obs.emit(self.now, conn, || Event::TimerFire { timer: "DelayedAck" });
                        self.send_ack(i);
                    } else {
                        // No ACK owed: the flush was superseded (the ACK
                        // piggybacked on output or went out immediately).
                        // The deadline slot still holds the *fired*
                        // instant, so re-arming at `deadline(..)` would
                        // put a timer in the past and the wheel would
                        // refire it on every advance — a refire storm
                        // that also pins `deadline(..).is_some()` and
                        // blocks the rx path from ever arming a fresh
                        // delay. Clear the slot instead; whoever next
                        // owes an ACK arms a fresh timer.
                        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::DelayedAck);
                    }
                }
                // TIME-WAIT expiry.
                XkTimerKind::TimeWait => {
                    if self.socks[i].state == XkState::TimeWait {
                        progress = true;
                        let conn = self.socks[i].id;
                        self.obs.emit(self.now, conn, || Event::TimerFire { timer: "TimeWait" });
                        self.socks[i].state = XkState::Closed;
                        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::TimeWait);
                        self.socks[i].push_event(XkEvent::Closed);
                        self.note_transition(i, XkState::TimeWait, "timer");
                    } else {
                        // Left TIME-WAIT some other way; re-entry re-arms.
                        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::TimeWait);
                    }
                }
                // Retransmission.
                XkTimerKind::Resend => {
                    progress = true;
                    let conn = self.socks[i].id;
                    self.obs.emit(self.now, conn, || Event::TimerFire { timer: "Resend" });
                    let before = self.socks[i].state;
                    self.retransmit(i);
                    self.note_transition(i, before, "timer");
                }
                // Zero-window probe.
                XkTimerKind::Persist => {
                    progress = true;
                    let conn = self.socks[i].id;
                    self.obs.emit(self.now, conn, || Event::TimerFire { timer: "Persist" });
                    self.window_probe(i);
                }
            }
        }
        progress
    }

    /// Persist: send one byte beyond the window to solicit a window
    /// update, and re-arm with backoff.
    fn window_probe(&mut self, i: usize) {
        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Persist);
        let (send_probe, seq) = {
            let s = &self.socks[i];
            let unsent = (s.send_buf.len() as u32).saturating_sub(s.flight());
            if s.snd_wnd > 0 || unsent == 0 {
                (false, Seq(0))
            } else {
                (true, s.snd_nxt)
            }
        };
        if !send_probe {
            return;
        }
        let payload;
        {
            let s = &mut self.socks[i];
            let off = s.flight() as usize;
            let mut got = 0;
            let send_buf = &s.send_buf;
            payload = PacketBuf::build(0, 1, |dst| {
                got = send_buf.peek_at(off, dst);
            });
            if got == 0 {
                return;
            }
            s.snd_nxt = seq + 1;
            s.backoff = (s.backoff + 1).min(6);
        }
        {
            let s = &self.socks[i];
            let at = self.now + s.rto.saturating_mul(1 << s.backoff);
            self.socks[i].set_timer(&mut self.wheel, XkTimerKind::Persist, at);
        }
        {
            let conn = self.socks[i].id;
            self.obs.emit(self.now, conn, || Event::Loss { kind: "Probe" });
        }
        let flags = TcpFlags { ack: true, psh: true, ..TcpFlags::default() };
        let h = self.header_for(i, flags, seq);
        self.arm_retransmit(i);
        self.transmit(i, TcpSegment { header: h, payload });
    }

    fn retransmit(&mut self, i: usize) {
        self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Resend);
        {
            let s = &mut self.socks[i];
            let has_unacked = s.flight() > 0;
            if !has_unacked {
                return;
            }
            if s.retransmits_left == 0 {
                s.state = XkState::Closed;
                s.push_event(XkEvent::TimedOut);
                return;
            }
            s.retransmits_left -= 1;
            s.backoff += 1;
            s.timing = None; // Karn
        }
        self.stats.retransmits += 1;
        {
            let conn = self.socks[i].id;
            self.obs.emit(self.now, conn, || Event::Loss { kind: "Rto" });
        }
        // Go-back-N from snd_una.
        let (state, una) = {
            let s = &self.socks[i];
            (s.state, s.snd_una)
        };
        match state {
            // send_syn rebuilds the options (MSS plus whatever was
            // offered/negotiated), so a retransmitted SYN is identical
            // to the original.
            XkState::SynSent => {
                self.send_syn(i, false);
            }
            XkState::SynReceived => {
                self.send_syn(i, true);
            }
            _ => {
                // Resend one MSS from snd_una (and the FIN if it is the
                // front of the unacked region).
                let (take, fin, payload) = {
                    let s = &mut self.socks[i];
                    let infl = s.flight();
                    let fin_at_front = s.fin_seq == Some(una);
                    let data = infl
                        .saturating_sub(u32::from(s.fin_seq.is_some_and(|f| f.lt(s.snd_nxt))))
                        .min(s.eff_mss());
                    let mut staged = vec![0u8; data as usize];
                    let got = s.send_buf.peek_at(0, &mut staged);
                    staged.truncate(got);
                    // Go-back-N re-reads the ring every time: a counted
                    // copy per retransmitted segment, headroom-free so
                    // the header prepend pays another.
                    let payload = PacketBuf::build(0, staged.len(), |dst| dst.copy_from_slice(&staged));
                    let fin =
                        fin_at_front || (s.fin_seq == Some(una + got as u32) && (got as u32) < s.eff_mss());
                    (got, fin, payload)
                };
                let flags = TcpFlags { ack: true, psh: take > 0, fin, ..TcpFlags::default() };
                let h = self.header_for(i, flags, una);
                self.arm_retransmit(i);
                self.transmit(i, TcpSegment { header: h, payload });
            }
        }
    }

    // ----- input path: one big switch, BSD style -----

    fn input(&mut self, msg: L::Incoming) {
        let (src, seg) = {
            let info = self.aux.info(&msg);
            let pseudo = if self.cfg.checksums { self.aux.check(&info.src, info.data.len()) } else { None };
            if pseudo.is_some() {
                self.host.charge_checksum(info.data.len());
            }
            let mark = copy_mark();
            let decoded = TcpSegment::decode_buf(info.data, pseudo);
            let delta = mark.delta();
            if delta.bytes > 0 {
                self.stats.buf_copies += delta.copies;
                self.stats.buf_copy_bytes += delta.bytes;
                self.obs.emit(self.now, foxbasis::obs::NO_CONN, || Event::BufCopy {
                    layer: "xk_rx",
                    bytes: delta.bytes as u32,
                });
            }
            match decoded {
                Ok(seg) => (info.src.clone(), seg),
                Err(foxwire::WireError::BadChecksum(_)) => {
                    self.stats.checksum_failures += 1;
                    return;
                }
                Err(_) => return,
            }
        };
        self.host.charge_tcp_segment_sized(seg.payload.len());
        self.stats.segments_received += 1;
        let h = seg.header.clone();

        // Demux: the x-kernel's linear session scan, instrumented so the
        // scale experiment can price it against foxtcp's keyed table.
        self.stats.demux_lookups += 1;
        let mut steps = 0u64;
        let exact = self.socks.iter().position(|s| {
            steps += 1;
            s.local_port == h.dst_port
                && s.remote.as_ref().is_some_and(|(a, p)| A::eq(a, &src) && *p == h.src_port)
                && s.state != XkState::Closed
        });
        self.stats.demux_steps += steps;
        let i = match exact {
            Some(i) => i,
            None => {
                self.stats.demux_lookups += 1;
                let mut steps = 0u64;
                let listener = self.socks.iter().position(|s| {
                    steps += 1;
                    s.local_port == h.dst_port && s.state == XkState::Listen
                });
                self.stats.demux_steps += steps;
                match listener {
                    Some(li) if h.flags.syn && !h.flags.ack && !h.flags.rst => {
                        // Spawn a child in SYN-RECEIVED — unless the
                        // listener's embryonic queue is full, in which
                        // case the SYN is silently dropped and the
                        // peer's retransmission retries admission.
                        let lid = self.socks[li].id;
                        let embryonic = self
                            .socks
                            .iter()
                            .filter(|s| s.parent == Some(lid) && s.state == XkState::SynReceived)
                            .count();
                        if embryonic >= self.cfg.backlog {
                            return;
                        }
                        let port = self.socks[li].local_port;
                        let child = self.new_socket(port, Some((src.clone(), h.src_port)));
                        let Some(ci) = self.idx(SockId(child)) else { return };
                        self.socks[ci].parent = Some(lid);
                        self.socks[ci].state = XkState::SynReceived;
                        if self.obs.is_on() {
                            let conn = self.socks[ci].id;
                            self.obs.emit(self.now, conn, || Event::SegRx {
                                seq: h.seq.0,
                                ack: h.ack.0,
                                len: 0,
                                flags: obs_flags(&h.flags),
                                wnd: u32::from(h.window),
                            });
                            // The child is spawned by the listener's
                            // SYN: in spec vocabulary that is the
                            // LISTEN -> SYN-RECEIVED edge, not a fresh
                            // socket's CLOSED -> LISTEN (that edge
                            // belongs to the `listen` user call).
                            self.obs.emit(self.now, conn, || Event::StateTransition {
                                from: XkState::Listen.name(),
                                to: XkState::SynReceived.name(),
                                cause: "syn",
                            });
                        }
                        self.socks[ci].rcv_nxt = h.seq + 1;
                        // A SYN's window is never scaled.
                        self.socks[ci].snd_wnd = u32::from(h.window);
                        if let Some(mss) = h.mss() {
                            self.socks[ci].mss = self.socks[ci].mss.min(u32::from(mss)).max(1);
                        }
                        self.negotiate_syn_options(ci, &h);
                        self.send_syn(ci, true);
                        if let Some(li) = self.socks.iter().position(|s| s.id == lid) {
                            let ev = XkEvent::Accepted(SockId(child));
                            self.socks[li].push_event(ev);
                        }
                        return;
                    }
                    Some(_) if h.flags.rst => return,
                    _ => {
                        // RST for anything else.
                        if !h.flags.rst {
                            let rst = reset_for(h.dst_port, &seg);
                            self.transmit_to(rst, src);
                        }
                        return;
                    }
                }
            }
        };

        if self.obs.is_on() {
            let conn = self.socks[i].id;
            self.obs.emit(self.now, conn, || Event::SegRx {
                seq: h.seq.0,
                ack: h.ack.0,
                len: seg.payload.len() as u32,
                flags: obs_flags(&h.flags),
                wnd: u32::from(h.window),
            });
        }
        let before = self.socks[i].state;
        let cause = seg_cause(&h.flags);
        self.process_segment(i, seg);
        // `process_segment` never removes sockets (reaping happens in
        // `step`), so index `i` still names the same socket here.
        self.note_transition(i, before, cause);
    }

    fn process_segment(&mut self, i: usize, seg: TcpSegment) {
        let h = seg.header.clone();
        let state = self.socks[i].state;

        if state == XkState::SynSent {
            if h.flags.ack && (h.ack.le(self.socks[i].iss) || h.ack.gt(self.socks[i].snd_nxt)) {
                if !h.flags.rst {
                    let rst = reset_for(self.socks[i].local_port, &seg);
                    self.transmit(i, rst);
                }
                return;
            }
            if h.flags.rst {
                if h.flags.ack {
                    self.socks[i].state = XkState::Closed;
                    self.socks[i].push_event(XkEvent::Reset);
                }
                return;
            }
            if h.flags.syn {
                {
                    let s = &mut self.socks[i];
                    s.rcv_nxt = h.seq + 1;
                    if let Some(mss) = h.mss() {
                        s.mss = s.mss.min(u32::from(mss)).max(1);
                    }
                }
                self.negotiate_syn_options(i, &h);
                let s = &mut self.socks[i];
                if h.flags.ack {
                    s.snd_una = h.ack;
                    // The SYN+ACK's own window is unscaled.
                    s.snd_wnd = u32::from(h.window);
                    s.snd_wl1 = h.seq;
                    s.snd_wl2 = h.ack;
                    s.state = XkState::Established;
                    s.backoff = 0;
                    s.push_event(XkEvent::Connected);
                    self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Resend);
                    self.send_ack(i);
                    self.output(i);
                } else {
                    s.state = XkState::SynReceived;
                    self.send_syn(i, true);
                }
            }
            return;
        }

        // Timestamps (when negotiated): remember the peer's TSval for
        // echo, BEFORE the acceptability check — RFC 7323 R4 updates
        // TS.Recent for any segment at or left of the edge, duplicates
        // included, so the re-ACK a retransmission earns echoes the
        // retransmission's own clock and the sender's RTT sample spans
        // one round trip, not the whole loss episode. The baseline
        // keeps RTT timing on its Karn clock.
        if self.socks[i].ts_on {
            if let Some((tsval, _)) = h.timestamps() {
                let s = &mut self.socks[i];
                if h.seq.le(s.rcv_nxt) && (tsval.wrapping_sub(s.ts_recent) as i32) >= 0 {
                    s.ts_recent = tsval;
                }
            }
        }

        // Sequence acceptability (abbreviated BSD check). The window
        // used here is what the peer could have seen advertised:
        // wire-granular under the negotiated shift.
        let wnd = {
            let s = &self.socks[i];
            let shift = if s.wscale_on { s.rcv_wscale } else { 0 };
            u32::from(foxwire::tcp::wire_window(s.recv_buf.free() as u32, shift)) << shift
        };
        let seq_ok = {
            let s = &self.socks[i];
            let slen = seg.seq_len();
            match (slen, wnd) {
                (0, 0) => h.seq == s.rcv_nxt,
                (0, w) => h.seq.in_window(s.rcv_nxt, w),
                (_, 0) => false,
                (l, w) => h.seq.in_window(s.rcv_nxt, w) || (h.seq + (l - 1)).in_window(s.rcv_nxt, w),
            }
        };
        if !seq_ok {
            if !h.flags.rst {
                self.send_ack(i);
            }
            return;
        }
        if h.flags.rst {
            // RFC 5961 §3.2: only an RST at exactly RCV.NXT aborts; an
            // in-window RST elsewhere is a blind-reset attempt — answer
            // it with a challenge ACK and stay up.
            if h.seq == self.socks[i].rcv_nxt {
                let s = &mut self.socks[i];
                s.state = XkState::Closed;
                s.push_event(XkEvent::Reset);
            } else {
                self.stats.rst_rejected_seq += 1;
                let conn = self.socks[i].id;
                self.obs.emit(self.now, conn, || Event::Attack { kind: "RstBadSeq" });
                self.send_ack(i);
            }
            return;
        }
        if h.flags.syn {
            let rst = reset_for(self.socks[i].local_port, &seg);
            self.transmit(i, rst);
            let s = &mut self.socks[i];
            s.state = XkState::Closed;
            s.push_event(XkEvent::Reset);
            return;
        }
        if !h.flags.ack {
            return;
        }
        // ACK processing.
        let peer_wnd = self.peer_window(i, &h);
        if state == XkState::SynReceived {
            if h.ack.in_open_closed(self.socks[i].snd_una - 1, self.socks[i].snd_nxt) {
                let s = &mut self.socks[i];
                s.snd_una = h.ack;
                s.snd_wnd = peer_wnd;
                s.snd_wl1 = h.seq;
                s.snd_wl2 = h.ack;
                s.state = XkState::Established;
                s.backoff = 0;
                s.push_event(XkEvent::Connected);
                self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Resend);
            } else {
                let rst = reset_for(self.socks[i].local_port, &seg);
                self.transmit(i, rst);
                return;
            }
        } else if h.ack.in_open_closed(self.socks[i].snd_una, self.socks[i].snd_nxt) {
            let s = &mut self.socks[i];
            let mut acked = h.ack.since(s.snd_una);
            // SYN/FIN octets occupy no buffer bytes.
            if s.fin_seq.is_some_and(|f| f.lt(h.ack)) {
                acked = acked.saturating_sub(1);
            }
            s.send_buf.skip(acked as usize);
            s.snd_una = h.ack;
            s.backoff = 0;
            s.retransmits_left = self.cfg.max_retransmits;
            if let Some((timed, at)) = s.timing {
                if timed.le(h.ack) {
                    let sample = self.now.saturating_since(at);
                    let smoothed = match s.srtt {
                        None => {
                            s.rttvar = sample / 2;
                            sample
                        }
                        Some(sr) => {
                            let err = if sr > sample { sr - sample } else { sample - sr };
                            s.rttvar = (s.rttvar * 3) / 4 + err / 4;
                            (sr * 7) / 8 + sample / 8
                        }
                    };
                    s.srtt = Some(smoothed);
                    // BSD's one-second RTO floor (must exceed the
                    // peer's delayed-ACK hold time).
                    s.rto = (smoothed + s.rttvar * 4)
                        .max(VirtualDuration::from_millis(1000))
                        .min(VirtualDuration::from_secs(64));
                    s.timing = None;
                }
            }
            let rearm = if s.flight() > 0 {
                Some(self.now + s.rto.saturating_mul(1 << s.backoff.min(6)))
            } else {
                None
            };
            match rearm {
                Some(at) => self.socks[i].set_timer(&mut self.wheel, XkTimerKind::Resend, at),
                None => self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Resend),
            }
        } else if h.ack.gt(self.socks[i].snd_nxt) {
            // "If the ACK acks something not yet sent ... send an ACK,
            // drop the segment" — the optimistic-ACK attack shape.
            self.stats.acks_ignored_unsent_data += 1;
            let conn = self.socks[i].id;
            self.obs.emit(self.now, conn, || Event::Attack { kind: "AckUnsentData" });
            self.send_ack(i);
            return;
        }
        // Window update.
        {
            let s = &mut self.socks[i];
            if s.snd_wl1.lt(h.seq) || (s.snd_wl1 == h.seq && s.snd_wl2.le(h.ack)) {
                s.snd_wnd = peer_wnd;
                s.snd_wl1 = h.seq;
                s.snd_wl2 = h.ack;
                if s.snd_wnd > 0 {
                    self.socks[i].clear_timer(&mut self.wheel, XkTimerKind::Persist);
                }
            }
        }
        // Closing-state ACK transitions.
        let fin_acked = self.socks[i].fin_seq.is_some_and(|f| (f + 1).le(self.socks[i].snd_una));
        match self.socks[i].state {
            XkState::FinWait1 if fin_acked => self.socks[i].state = XkState::FinWait2,
            XkState::Closing if fin_acked => {
                self.socks[i].state = XkState::TimeWait;
                let at = self.now + VirtualDuration::from_millis(self.cfg.time_wait_ms);
                self.socks[i].set_timer(&mut self.wheel, XkTimerKind::TimeWait, at);
            }
            XkState::LastAck if fin_acked => {
                self.socks[i].state = XkState::Closed;
                self.socks[i].push_event(XkEvent::Closed);
                return;
            }
            _ => {}
        }

        // Text.
        let mut consumed_fin = false;
        if !seg.payload.is_empty()
            && matches!(self.socks[i].state, XkState::Established | XkState::FinWait1 | XkState::FinWait2)
        {
            let s = &mut self.socks[i];
            if h.seq == s.rcv_nxt {
                let took = s.recv_buf.write(&seg.payload.bytes());
                s.rcv_nxt += took as u32;
                self.stats.bytes_received += took as u64;
                s.ack_owed = true;
                // Ack every full segment immediately (this baseline's
                // approximation of BSD's every-second-segment rule),
                // unless the coalescing parity knob raises the
                // threshold to one ACK per `k` full segments.
                let full_segment = seg.payload.len() as u32 >= s.eff_mss();
                if full_segment {
                    s.segs_since_ack += 1;
                }
                let threshold = self.cfg.ack_coalesce_segments.unwrap_or(1).max(1);
                if self.socks[i].deadline(XkTimerKind::DelayedAck).is_none() {
                    let delay = self.cfg.delayed_ack_ms.unwrap_or(0);
                    let at = self.now + VirtualDuration::from_millis(delay);
                    self.socks[i].set_timer(&mut self.wheel, XkTimerKind::DelayedAck, at);
                }
                if full_segment && self.socks[i].segs_since_ack >= threshold {
                    self.send_ack(i);
                }
            } else if h.seq.gt(s.rcv_nxt) {
                // No reassembly queue in the baseline: drop and dup-ACK
                // (the original BSD did have one; our baseline's loss
                // recovery is therefore a bit weaker, which only hurts
                // the baseline on lossy links — Table 1's link is clean).
                self.send_ack(i);
            } else {
                // Overlap: take the fresh tail.
                let skip = s.rcv_nxt.since(h.seq) as usize;
                if skip < seg.payload.len() {
                    let took = s.recv_buf.write(&seg.payload.bytes()[skip..]);
                    s.rcv_nxt += took as u32;
                    self.stats.bytes_received += took as u64;
                }
                self.send_ack(i);
            }
        }
        // FIN.
        if h.flags.fin {
            let fin_at = h.seq + seg.payload.len() as u32;
            if self.socks[i].rcv_nxt == fin_at {
                self.socks[i].rcv_nxt += 1;
                consumed_fin = true;
            }
        }
        if consumed_fin {
            self.send_ack(i);
            self.socks[i].push_event(XkEvent::PeerClosed);
            let fin_acked = self.socks[i].fin_seq.is_some_and(|f| (f + 1).le(self.socks[i].snd_una));
            let tw = self.now + VirtualDuration::from_millis(self.cfg.time_wait_ms);
            match self.socks[i].state {
                XkState::Established | XkState::SynReceived => self.socks[i].state = XkState::CloseWait,
                XkState::FinWait1 if fin_acked => {
                    self.socks[i].state = XkState::TimeWait;
                    self.socks[i].set_timer(&mut self.wheel, XkTimerKind::TimeWait, tw);
                }
                XkState::FinWait1 => self.socks[i].state = XkState::Closing,
                XkState::FinWait2 => {
                    self.socks[i].state = XkState::TimeWait;
                    self.socks[i].set_timer(&mut self.wheel, XkTimerKind::TimeWait, tw);
                }
                XkState::TimeWait => self.socks[i].set_timer(&mut self.wheel, XkTimerKind::TimeWait, tw),
                _ => {}
            }
        }

        self.output(i);
        // Flush a pending immediate ACK policy.
        if self.socks[i].ack_owed && self.cfg.delayed_ack_ms.is_none() {
            self.send_ack(i);
        }
    }
}

/// The transition-cause a segment carries, by flag precedence (`rst` >
/// `syn` > `fin` > `ack`) — the `spec/tcp_fsm.txt` trigger vocabulary,
/// kept identical to the structured stack's so both engines' observed
/// edges resolve against the same spec.
fn seg_cause(f: &TcpFlags) -> &'static str {
    if f.rst {
        "rst"
    } else if f.syn {
        "syn"
    } else if f.fin {
        "fin"
    } else if f.ack {
        "ack"
    } else {
        "seg"
    }
}

/// Renders wire flags as the event layer's bitmask.
fn obs_flags(f: &TcpFlags) -> u8 {
    use foxbasis::obs::flags;
    let mut bits = 0;
    if f.fin {
        bits |= flags::FIN;
    }
    if f.syn {
        bits |= flags::SYN;
    }
    if f.rst {
        bits |= flags::RST;
    }
    if f.psh {
        bits |= flags::PSH;
    }
    if f.ack {
        bits |= flags::ACK;
    }
    if f.urg {
        bits |= flags::URG;
    }
    bits
}

fn reset_for(local_port: u16, seg: &TcpSegment) -> TcpSegment {
    let mut h = TcpHeader::new(local_port, seg.header.src_port);
    if seg.header.flags.ack {
        h.seq = seg.header.ack;
        h.flags = TcpFlags::RST;
    } else {
        h.seq = Seq(0);
        h.ack = seg.header.seq + seg.seq_len();
        h.flags = TcpFlags::RST_ACK;
    }
    TcpSegment { header: h, payload: PacketBuf::new() }
}

impl<L, A> fmt::Debug for XkTcp<L, A>
where
    L: Protocol + fmt::Debug,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XkTcp(socks={}, over {:?})", self.socks.len(), self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxtcp::testlink::{LinkPair, TestAux, TestLower};

    type Stack = XkTcp<TestLower, TestAux>;

    fn pair() -> (LinkPair, Stack, Stack) {
        let link = LinkPair::new();
        let a = XkTcp::new(link.endpoint(0), TestAux, (), XkConfig::default(), HostHandle::free());
        let b = XkTcp::new(link.endpoint(1), TestAux, (), XkConfig::default(), HostHandle::free());
        (link, a, b)
    }

    fn settle(a: &mut Stack, b: &mut Stack, now: VirtualTime) {
        for _ in 0..500 {
            let p = a.step(now) | b.step(now);
            if !p {
                return;
            }
        }
        panic!("did not settle");
    }

    fn run_for(a: &mut Stack, b: &mut Stack, from: VirtualTime, ms: u64, tick: u64) -> VirtualTime {
        let mut now = from;
        let end = from + VirtualDuration::from_millis(ms);
        while now < end {
            now = (now + VirtualDuration::from_millis(tick)).min(end);
            settle(a, b, now);
        }
        end
    }

    fn open(a: &mut Stack, b: &mut Stack) -> (SockId, SockId) {
        let listener = b.listen(80).unwrap();
        let client = a.connect(1, 80, 0).unwrap();
        settle(a, b, VirtualTime::ZERO);
        let child = match b.poll_event(listener) {
            Some(XkEvent::Accepted(c)) => c,
            other => panic!("expected Accepted, got {other:?}"),
        };
        assert_eq!(a.poll_event(client), Some(XkEvent::Connected));
        assert_eq!(b.poll_event(child), Some(XkEvent::Connected));
        (client, child)
    }

    #[test]
    fn handshake() {
        let (_l, mut a, mut b) = pair();
        let (client, child) = open(&mut a, &mut b);
        assert_eq!(a.state_of(client), Some(XkState::Established));
        assert_eq!(b.state_of(child), Some(XkState::Established));
    }

    #[test]
    fn bulk_transfer() {
        let (_l, mut a, mut b) = pair();
        let (client, child) = open(&mut a, &mut b);
        let payload: Vec<u8> = (0..50_000u32).map(|i| (i % 239) as u8).collect();
        let mut sent = 0;
        let mut got = Vec::new();
        let mut now = VirtualTime::ZERO;
        let mut spins = 0;
        while got.len() < payload.len() {
            if sent < payload.len() {
                sent += a.send(client, &payload[sent..]).unwrap();
            }
            now = run_for(&mut a, &mut b, now, 250, 50);
            let mut buf = [0u8; 4096];
            loop {
                let n = b.recv(child, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..n]);
            }
            spins += 1;
            assert!(spins < 5000, "wedged at sent={sent} got={}", got.len());
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn close_sequence() {
        let (_l, mut a, mut b) = pair();
        let (client, child) = open(&mut a, &mut b);
        a.close(client).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(b.poll_event(child), Some(XkEvent::PeerClosed));
        assert_eq!(b.state_of(child), Some(XkState::CloseWait));
        b.close(child).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(a.poll_event(client), Some(XkEvent::PeerClosed));
        assert_eq!(b.poll_event(child), Some(XkEvent::Closed));
        assert_eq!(a.state_of(client), Some(XkState::TimeWait));
        run_for(&mut a, &mut b, VirtualTime::ZERO, 61_000, 1000);
        assert_eq!(a.poll_event(client), Some(XkEvent::Closed));
    }

    #[test]
    fn spurious_delayed_ack_fire_clears_instead_of_storming() {
        // Regression: a DelayedAck that fires with no ACK owed (the
        // flush was superseded) used to re-arm itself at the *fired*
        // deadline — a timer in the past that the wheel refired on
        // every advance, and whose pinned `deadline(..)` blocked the
        // rx path from ever arming a real delayed ACK again. It must
        // instead fire exactly once and leave the slot clear.
        let (_l, mut a, mut b) = pair();
        let (_client, child) = open(&mut a, &mut b);
        let i = b.idx(child).unwrap();
        let at = b.now + VirtualDuration::from_millis(1);
        b.socks[i].set_timer(&mut b.wheel, XkTimerKind::DelayedAck, at);
        b.socks[i].ack_owed = false;
        let before = b.wheel_stats().fires;
        let mut now = b.now;
        for _ in 0..10 {
            now += VirtualDuration::from_millis(5);
            b.step(now);
        }
        assert_eq!(
            b.wheel_stats().fires - before,
            1,
            "one flushed ACK means one DelayedAck fire, not a refire storm"
        );
        assert!(
            b.socks[i].deadline(XkTimerKind::DelayedAck).is_none(),
            "the slot must clear so the next owed ACK can arm a fresh delay"
        );
    }

    #[test]
    fn duplicate_refreshes_ts_recent_for_the_echo() {
        // RFC 7323 R4: a pure duplicate (seq + len entirely left of
        // rcv_nxt) still updates TS.Recent, so the re-ACK echoes the
        // retransmission's own clock — not the clock of the segment
        // that last advanced the edge. Without this, the sender's next
        // RTT sample spans the whole lost-ACK episode instead of one
        // round trip, and its RTO saturates for the rest of the
        // connection.
        let link = LinkPair::new();
        let cfg = XkConfig { timestamps: true, ..XkConfig::default() };
        let mut a = XkTcp::new(link.endpoint(0), TestAux, (), cfg.clone(), HostHandle::free());
        let mut b = XkTcp::new(link.endpoint(1), TestAux, (), cfg, HostHandle::free());
        let (client, child) = open(&mut a, &mut b);

        // Let the clocks advance past the handshake's TSval of zero,
        // then deliver 100 bytes while every frame back toward the
        // sender vanishes: the data advances rcv_nxt, the ACKs do not
        // arrive.
        let now = run_for(&mut a, &mut b, VirtualTime::ZERO, 1_000, 100);
        let blackhole = std::rc::Rc::new(std::cell::RefCell::new(true));
        let bh = blackhole.clone();
        link.set_filter_toward(0, Box::new(move |_| !*bh.borrow()));
        a.send(client, &[7u8; 100]).unwrap();
        let now = run_for(&mut a, &mut b, now, 200, 10);
        let bi = b.idx(child).unwrap();
        let mut buf = [0u8; 128];
        assert_eq!(b.recv(child, &mut buf).unwrap(), 100, "data accepted");
        let stale = b.socks[bi].ts_recent;
        assert!(stale >= 1_000, "echo clock is from the original send");

        // Keep the reverse path dark across the sender's RTO: the
        // retransmissions that arrive now are pure duplicates at b,
        // and each must still refresh TS.Recent.
        let now = run_for(&mut a, &mut b, now, 4_000, 50);
        let fresh = b.socks[bi].ts_recent;
        assert!(fresh > stale, "duplicate refreshed TS.Recent ({stale} -> {fresh})");

        // Heal the path; the next re-ACK releases the sender.
        *blackhole.borrow_mut() = false;
        let _ = run_for(&mut a, &mut b, now, 5_000, 50);
        let ai = a.idx(client).unwrap();
        assert_eq!(a.socks[ai].snd_una, a.socks[ai].snd_nxt, "retransmission was ACKed");
    }

    #[test]
    fn retransmission_recovers_loss() {
        let (link, mut a, mut b) = pair();
        let (client, child) = open(&mut a, &mut b);
        // Drop every 4th frame toward b.
        let n = std::rc::Rc::new(std::cell::RefCell::new(0u32));
        let n2 = n.clone();
        link.set_filter_toward(
            1,
            Box::new(move |_| {
                *n2.borrow_mut() += 1;
                !(*n2.borrow()).is_multiple_of(4)
            }),
        );
        let payload = vec![0xabu8; 20_000];
        let mut sent = 0;
        let mut got = Vec::new();
        let mut now = VirtualTime::ZERO;
        let mut spins = 0;
        while got.len() < payload.len() {
            if sent < payload.len() {
                sent += a.send(client, &payload[sent..]).unwrap();
            }
            now = run_for(&mut a, &mut b, now, 1000, 100);
            let mut buf = [0u8; 4096];
            loop {
                let k = b.recv(child, &mut buf).unwrap();
                if k == 0 {
                    break;
                }
                got.extend_from_slice(&buf[..k]);
            }
            spins += 1;
            assert!(spins < 5000, "wedged: got {}", got.len());
        }
        assert_eq!(got, payload);
        assert!(a.stats().retransmits > 0);
    }

    #[test]
    fn connect_to_dead_port_resets() {
        let (_l, mut a, mut b) = pair();
        let client = a.connect(1, 9999, 0).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(a.poll_event(client), Some(XkEvent::Reset));
        assert_eq!(a.state_of(client), Some(XkState::Closed));
    }

    #[test]
    fn give_up_after_max_retransmits() {
        let (link, _unused, mut b) = pair();
        let cfgd = XkConfig { max_retransmits: 2, ..XkConfig::default() };
        let mut a = XkTcp::new(link.endpoint(0), TestAux, (), cfgd, HostHandle::free());
        link.set_filter_toward(1, Box::new(|_| false));
        let client = a.connect(1, 80, 0).unwrap();
        let mut now = VirtualTime::ZERO;
        for _ in 0..300 {
            now += VirtualDuration::from_millis(1000);
            a.step(now);
            b.step(now);
            if a.poll_event(client) == Some(XkEvent::TimedOut) {
                return;
            }
        }
        panic!("never timed out");
    }
}

#[cfg(test)]
mod persist_tests {
    use super::*;
    use foxtcp::testlink::{LinkPair, TestAux};

    #[test]
    fn zero_window_probe_unwedges_lost_window_update() {
        // The scenario that motivated the persist timer: the receiver's
        // window-opening ACK is lost; without probing, the sender waits
        // forever.
        let link = LinkPair::new();
        let mut a = XkTcp::new(link.endpoint(0), TestAux, (), XkConfig::default(), HostHandle::free());
        let mut b = XkTcp::new(
            link.endpoint(1),
            TestAux,
            (),
            XkConfig { window: 512, ..XkConfig::default() },
            HostHandle::free(),
        );
        let listener = b.listen(80).unwrap();
        let client = a.connect(1, 80, 0).unwrap();
        let mut now = VirtualTime::ZERO;
        for _ in 0..50 {
            a.step(now);
            b.step(now);
        }
        let child = match b.poll_event(listener) {
            Some(XkEvent::Accepted(c)) => c,
            other => panic!("expected accept, got {other:?}"),
        };
        // Fill b's tiny window so it advertises zero, then drop exactly
        // the window-update ACK that b sends after the app drains.
        assert!(a.send(client, &[9u8; 2000]).unwrap() > 0);
        for _ in 0..50 {
            a.step(now);
            b.step(now);
        }
        // b's buffer (512) is now full; drain it while suppressing the
        // very next frame toward a (the window update).
        let drop_next = std::rc::Rc::new(std::cell::RefCell::new(1u32));
        let d = drop_next.clone();
        link.set_filter_toward(
            0,
            Box::new(move |_| {
                let mut n = d.borrow_mut();
                if *n > 0 {
                    *n -= 1;
                    false
                } else {
                    true
                }
            }),
        );
        let mut buf = [0u8; 4096];
        let _ = b.recv(child, &mut buf).unwrap();
        for _ in 0..20 {
            a.step(now);
            b.step(now);
        }
        // Let virtual time pass: the persist probe must fire, solicit a
        // window update, and the transfer must finish.
        let mut got = 0usize;
        for _ in 0..200 {
            now += VirtualDuration::from_millis(500);
            a.step(now);
            b.step(now);
            loop {
                let n = b.recv(child, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                got += n;
            }
            if got >= 1488 {
                break; // the rest of the 2000 minus the first drain
            }
        }
        let total = 512 + got;
        assert!(total >= 2000, "persist probe must unwedge the transfer: got {total}");
    }
}
