//! FaultConfig reordering is deterministic, not merely bounded: with a
//! nonzero jitter, two runs from the same seed must deliver the same
//! frames in the same order, byte for byte. Jitter is allowed to
//! *reorder* traffic; it is never allowed to make a run unrepeatable.

use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::ether::{EthAddr, EtherType, Frame};
use proptest::prelude::*;
use simnet::{FaultConfig, NetConfig, SimNet};

fn payload_frame(i: u8, len: usize) -> Vec<u8> {
    Frame::new(EthAddr::host(2), EthAddr::host(1), EtherType::Other(0x1234), vec![i; len]).encode().unwrap()
}

/// One seeded run: `count` frames of varying sizes through a jittery
/// (and optionally lossy) segment; returns the delivered bytes in
/// arrival order plus the final statistics.
fn run(seed: u64, jitter_us: u64, drop: f64, count: u8) -> (Vec<Vec<u8>>, simnet::NetStats) {
    let cfg = NetConfig {
        faults: FaultConfig {
            jitter: VirtualDuration::from_micros(jitter_us),
            drop_chance: drop,
            ..FaultConfig::default()
        },
        ..NetConfig::default()
    };
    let net = SimNet::new(cfg, seed);
    let a = net.attach(EthAddr::host(1));
    let b = net.attach(EthAddr::host(2));
    for i in 0..count {
        a.send(payload_frame(i, 64 + usize::from(i)));
    }
    net.advance_to(VirtualTime::from_millis(500));
    let mut got = Vec::new();
    while let Some(f) = b.recv() {
        got.push(f.bytes().to_vec());
    }
    (got, net.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed, same jitter → identical delivery order and stats.
    #[test]
    fn same_seed_same_delivery_order(
        seed in any::<u64>(),
        jitter_us in 1u64..5_000,
        drop_permille in 0u32..400,
        count in 2u8..40,
    ) {
        let drop = f64::from(drop_permille) / 1000.0;
        let first = run(seed, jitter_us, drop, count);
        let second = run(seed, jitter_us, drop, count);
        prop_assert_eq!(&first.0, &second.0, "delivery order must replay bit-identically");
        prop_assert_eq!(first.1, second.1);
    }

    /// Jitter must actually be able to reorder: with a jitter window far
    /// wider than the serialization gap, some seed within a small family
    /// produces an out-of-order delivery (so the determinism above is
    /// not vacuous).
    #[test]
    fn jitter_reorders_somewhere(seed in any::<u64>()) {
        let reordered = (0..16u64).any(|s| {
            let (got, _) = run(seed.wrapping_add(s), 4_000, 0.0, 12);
            let ids: Vec<u8> = got.iter().map(|f| f[14]).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            ids != sorted
        });
        prop_assert!(reordered, "a 4 ms jitter window should reorder 12 back-to-back frames");
    }
}
