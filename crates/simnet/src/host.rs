//! The host cost model: a virtual DECstation 5000/125.
//!
//! The paper's absolute numbers belong to a 1994 machine: a 25 MHz MIPS
//! DECstation running Mach 3.0, with SML/NJ-compiled protocol code.
//! [`CostModel`] captures those costs as constants, most of them straight
//! out of the paper's own text:
//!
//! * copy: 300 µs/KB (SML) vs 61 µs/KB (`bcopy`);
//! * checksum: 343 µs/KB (Fig. 10 algorithm) vs 375 µs/KB (x-kernel);
//! * thread fork+switch: 30 µs; empty function call: 1.2 µs;
//! * profiling counter update: 15 µs;
//!
//! plus per-packet processing constants for the TCP, IP and
//! Ethernet/Mach-interface layers fitted so that the Table 1 and
//! Table 2 results emerge from the simulation (the fit is documented in
//! EXPERIMENTS.md).
//!
//! A [`Host`] owns one simulated CPU: protocol code runs inside a
//! *processing episode* (`begin` … `end`), charging accounts as it goes;
//! the episode's total determines when the CPU is free again and when
//! any frames produced during the episode actually reach the wire.

use crate::gcmodel::{GcConfig, GcStats, SmlRuntime};
use foxbasis::obs::{Event, EventSink, NO_CONN};
use foxbasis::profile::{Account, Profiler, PAPER_COUNTER_UPDATE_COST};
use foxbasis::time::{NanoDuration, VirtualDuration, VirtualTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Per-operation virtual CPU costs.
///
/// Costs are [`NanoDuration`]s: the 1994 presets are whole microseconds
/// (built with `NanoDuration::from_micros`, so every historical value is
/// exact), while the modern preset uses genuine nanosecond constants
/// that a µs grid cannot express.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// TCP protocol processing per data segment handled (send or
    /// receive).
    pub tcp_per_segment: NanoDuration,
    /// TCP protocol processing per header-only (pure ACK) segment —
    /// cheaper, as header prediction makes it in real stacks.
    pub tcp_per_ack: NanoDuration,
    /// IP processing per packet.
    pub ip_per_packet: NanoDuration,
    /// Ethernet encapsulation plus Mach device interface, per packet.
    pub eth_interface_per_packet: NanoDuration,
    /// Mach IPC send, per packet.
    pub mach_send_per_packet: NanoDuration,
    /// Driver doorbell / IPC overhead paid once per *batch* of frames
    /// handed to the device (TSO-style amortization). Zero in the 1994
    /// presets — batching is cost-invisible there, so batched and
    /// unbatched runs trace-diff to zero.
    pub mach_send_per_batch: NanoDuration,
    /// Mach IPC receive path ("packet wait"), per packet received.
    pub packet_wait_per_packet: NanoDuration,
    /// Receive wakeup / interrupt overhead paid once per *batch* of
    /// frames drained from the device (GRO-style amortization). Zero in
    /// the 1994 presets, like [`CostModel::mach_send_per_batch`].
    pub packet_wait_per_batch: NanoDuration,
    /// Buffer management, reading the clock, and other utilities, per
    /// packet.
    pub misc_per_packet: NanoDuration,
    /// Data copy cost per kilobyte.
    pub copy_per_kb: NanoDuration,
    /// Fixed per-packet buffer-management share of the copy path.
    pub copy_per_packet: NanoDuration,
    /// Checksum cost per kilobyte.
    pub checksum_per_kb: NanoDuration,
    /// Fixed per-packet setup share of the checksum path.
    pub checksum_per_packet: NanoDuration,
    /// Coroutine fork + switch (the paper: ~30 µs).
    pub thread_op: NanoDuration,
    /// An empty function call (the paper: ~1.2 µs).
    pub function_call: NanoDuration,
    /// Computed (per-KB) charges are rounded *down* to a multiple of
    /// this quantum. The 1994 presets use 1 µs, reproducing the original
    /// microsecond integer arithmetic bit-for-bit; the modern preset
    /// uses 1 ns (no rounding).
    pub charge_quantum: NanoDuration,
    /// Heap bytes allocated per segment beyond its payload (closures,
    /// actions, headers). Zero disables allocation modeling.
    pub alloc_overhead_per_segment: usize,
    /// How many hardware-counter updates one accounted operation stands
    /// for (the paper instrumented far more sites than our coarse
    /// accounts; each update costs 15 µs).
    pub counter_updates_per_charge: u64,
    /// The modeled garbage collector, if any.
    pub gc: Option<GcConfig>,
}

impl CostModel {
    /// The Fox Net on the paper's DECstation: SML/NJ costs.
    pub fn decstation_sml() -> CostModel {
        CostModel {
            tcp_per_segment: NanoDuration::from_micros(4000),
            tcp_per_ack: NanoDuration::from_micros(1500),
            ip_per_packet: NanoDuration::from_micros(750),
            eth_interface_per_packet: NanoDuration::from_micros(1050),
            mach_send_per_packet: NanoDuration::from_micros(1390),
            mach_send_per_batch: NanoDuration::ZERO,
            packet_wait_per_packet: NanoDuration::from_micros(2000),
            packet_wait_per_batch: NanoDuration::ZERO,
            misc_per_packet: NanoDuration::from_micros(450),
            copy_per_kb: NanoDuration::from_micros(300),
            copy_per_packet: NanoDuration::from_micros(1400),
            checksum_per_kb: NanoDuration::from_micros(343),
            checksum_per_packet: NanoDuration::from_micros(420),
            thread_op: NanoDuration::from_micros(30),
            function_call: NanoDuration::from_micros(1),
            charge_quantum: NanoDuration::from_micros(1),
            alloc_overhead_per_segment: 2048,
            counter_updates_per_charge: 4,
            gc: Some(GcConfig::smlnj_1994()),
        }
    }

    /// The Fox Net machine with the paper's §7 future-work collector:
    /// "we will implement and use an incremental garbage collector with
    /// bounded pauses." Identical to [`CostModel::decstation_sml`] but
    /// with collection work bounded to 5 ms per pause.
    pub fn decstation_sml_incremental() -> CostModel {
        CostModel {
            gc: Some(GcConfig::incremental_1995(VirtualDuration::from_millis(5))),
            ..CostModel::decstation_sml()
        }
    }

    /// The x-kernel on the same DECstation: Berkeley-derived C code.
    pub fn decstation_c() -> CostModel {
        CostModel {
            tcp_per_segment: NanoDuration::from_micros(450),
            tcp_per_ack: NanoDuration::from_micros(180),
            ip_per_packet: NanoDuration::from_micros(150),
            eth_interface_per_packet: NanoDuration::from_micros(280),
            mach_send_per_packet: NanoDuration::from_micros(300),
            mach_send_per_batch: NanoDuration::ZERO,
            packet_wait_per_packet: NanoDuration::from_micros(350),
            packet_wait_per_batch: NanoDuration::ZERO,
            misc_per_packet: NanoDuration::from_micros(80),
            copy_per_kb: NanoDuration::from_micros(61),
            copy_per_packet: NanoDuration::ZERO,
            checksum_per_kb: NanoDuration::from_micros(375),
            checksum_per_packet: NanoDuration::ZERO,
            thread_op: NanoDuration::from_micros(10),
            function_call: NanoDuration::from_micros(1),
            charge_quantum: NanoDuration::from_micros(1),
            alloc_overhead_per_segment: 0,
            counter_updates_per_charge: 1,
            gc: None,
        }
    }

    /// No modeled costs at all: the protocol code runs "for free", so
    /// simulated results reflect only the network. Use this preset when
    /// measuring the real Rust implementation with Criterion.
    pub fn modern() -> CostModel {
        CostModel {
            tcp_per_segment: NanoDuration::ZERO,
            tcp_per_ack: NanoDuration::ZERO,
            ip_per_packet: NanoDuration::ZERO,
            eth_interface_per_packet: NanoDuration::ZERO,
            mach_send_per_packet: NanoDuration::ZERO,
            mach_send_per_batch: NanoDuration::ZERO,
            packet_wait_per_packet: NanoDuration::ZERO,
            packet_wait_per_batch: NanoDuration::ZERO,
            misc_per_packet: NanoDuration::ZERO,
            copy_per_kb: NanoDuration::ZERO,
            copy_per_packet: NanoDuration::ZERO,
            checksum_per_kb: NanoDuration::ZERO,
            checksum_per_packet: NanoDuration::ZERO,
            thread_op: NanoDuration::ZERO,
            function_call: NanoDuration::ZERO,
            charge_quantum: NanoDuration::from_nanos(1),
            alloc_overhead_per_segment: 0,
            counter_updates_per_charge: 1,
            gc: None,
        }
    }

    /// A plausibly modern machine on a Gb/s link: ~ns per-packet
    /// constants for a few-GHz CPU with SIMD checksums and ~64 GB/s
    /// memory copy bandwidth, plus non-zero per-*batch* costs so GRO/TSO
    /// batching actually amortizes something. The values are documented
    /// and justified in DESIGN.md §5.10; nothing in the paper's tables
    /// depends on them.
    pub fn modern_gbps() -> CostModel {
        CostModel {
            tcp_per_segment: NanoDuration::from_nanos(450),
            tcp_per_ack: NanoDuration::from_nanos(150),
            ip_per_packet: NanoDuration::from_nanos(120),
            eth_interface_per_packet: NanoDuration::from_nanos(180),
            mach_send_per_packet: NanoDuration::from_nanos(60),
            mach_send_per_batch: NanoDuration::from_nanos(600),
            packet_wait_per_packet: NanoDuration::from_nanos(50),
            packet_wait_per_batch: NanoDuration::from_nanos(400),
            misc_per_packet: NanoDuration::from_nanos(40),
            copy_per_kb: NanoDuration::from_nanos(16),
            copy_per_packet: NanoDuration::from_nanos(30),
            checksum_per_kb: NanoDuration::from_nanos(25),
            checksum_per_packet: NanoDuration::from_nanos(15),
            thread_op: NanoDuration::from_nanos(200),
            function_call: NanoDuration::from_nanos(2),
            charge_quantum: NanoDuration::from_nanos(1),
            alloc_overhead_per_segment: 0,
            counter_updates_per_charge: 1,
            gc: None,
        }
    }

    fn per_kb(rate: NanoDuration, bytes: usize, quantum: NanoDuration) -> NanoDuration {
        (NanoDuration::from_nanos(rate.as_nanos() * bytes as u64) / 1024).quantize_down(quantum)
    }
}

/// One simulated machine.
///
/// CPU position and busy time are tracked internally in nanoseconds so
/// modern-profile charges (hundreds of ns) accumulate without loss; the
/// public API exposes the microsecond simulation clock, truncating.
/// Every 1994-profile charge is a whole number of microseconds, so the
/// truncation is exact there and the paper's tables are unaffected.
pub struct Host {
    name: &'static str,
    cost: CostModel,
    profiler: Profiler,
    gc: Option<SmlRuntime>,
    /// Nanoseconds since the epoch at which the CPU becomes free.
    cpu_free_ns: u64,
    /// Episode start, in nanoseconds since the epoch.
    episode_start_ns: Option<u64>,
    episode_accum: NanoDuration,
    total_busy: NanoDuration,
    obs: EventSink,
}

impl Host {
    /// A host with the given cost model. `profiled` turns the Table 2
    /// counters on, *including their 15 µs perturbation*.
    pub fn new(name: &'static str, cost: CostModel, profiled: bool) -> Host {
        let profiler = if profiled {
            Profiler::with_update_cost(PAPER_COUNTER_UPDATE_COST)
        } else {
            Profiler::disabled()
        };
        let gc = cost.gc.clone().map(SmlRuntime::new);
        Host {
            name,
            cost,
            profiler,
            gc,
            cpu_free_ns: 0,
            episode_start_ns: None,
            episode_accum: NanoDuration::ZERO,
            total_busy: NanoDuration::ZERO,
            obs: EventSink::off(),
        }
    }

    /// Installs an event sink; GC pauses are recorded through it. The
    /// default sink is off and records nothing.
    pub fn set_obs(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// The host's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// When the CPU becomes free (truncated to the µs simulation clock).
    pub fn cpu_free_at(&self) -> VirtualTime {
        VirtualTime::from_micros(self.cpu_free_ns / 1_000)
    }

    /// The CPU's current position: inside an episode, the episode start
    /// plus everything charged so far; otherwise the free instant. This
    /// is "now" as the simulated machine experiences it — the moment a
    /// frame built during an episode actually reaches the device.
    pub fn now_busy(&self) -> VirtualTime {
        let ns = match self.episode_start_ns {
            Some(s) => s + self.episode_accum.as_nanos(),
            None => self.cpu_free_ns,
        };
        VirtualTime::from_micros(ns / 1_000)
    }

    /// Starts a processing episode for an event arriving at `arrival`;
    /// returns the episode's start time (the CPU may still be busy with
    /// earlier work).
    pub fn begin(&mut self, arrival: VirtualTime) -> VirtualTime {
        assert!(self.episode_start_ns.is_none(), "nested host episode");
        let start_ns = (arrival.as_micros() * 1_000).max(self.cpu_free_ns);
        self.episode_start_ns = Some(start_ns);
        self.episode_accum = NanoDuration::ZERO;
        VirtualTime::from_micros(start_ns / 1_000)
    }

    /// Ends the episode; the CPU is busy until the returned instant.
    pub fn end(&mut self) -> VirtualTime {
        let start_ns = self.episode_start_ns.take().expect("end without begin");
        self.cpu_free_ns = start_ns + self.episode_accum.as_nanos();
        self.cpu_free_at()
    }

    /// Charges `dur` to `account` within the current episode (or, if no
    /// episode is open, extends the CPU busy time directly).
    pub fn charge(&mut self, account: Account, dur: VirtualDuration) {
        self.charge_ns(account, dur.into());
    }

    /// Nanosecond-resolution variant of [`Host::charge`]; the cost-model
    /// shorthands route through here.
    pub fn charge_ns(&mut self, account: Account, dur: NanoDuration) {
        let mut overhead = self.profiler.charge(account, dur);
        // The paper's instrumentation updated several counters per
        // protocol operation; model the extra perturbation.
        for _ in 1..self.cost.counter_updates_per_charge.max(1) {
            overhead += self.profiler.charge(Account::Counters, NanoDuration::ZERO);
        }
        let total = dur + overhead;
        self.total_busy += total;
        if self.episode_start_ns.is_some() {
            self.episode_accum += total;
        } else {
            self.cpu_free_ns += total.as_nanos();
        }
    }

    /// Total CPU time consumed so far (all charges plus measurement
    /// overhead), truncated to whole microseconds. `elapsed -
    /// total_busy` is the machine's idle time, which the paper's profile
    /// books as "packet wait".
    pub fn total_busy(&self) -> VirtualDuration {
        self.total_busy.to_virtual_floor()
    }

    /// Total CPU time consumed so far, at full nanosecond resolution
    /// (for modern-profile reporting).
    pub fn total_busy_nanos(&self) -> NanoDuration {
        self.total_busy
    }

    /// Models a heap allocation of `bytes`; any GC pause is charged to
    /// the `g. c.` account.
    pub fn alloc(&mut self, bytes: usize) {
        if let Some(gc) = &mut self.gc {
            let pause = gc.alloc(bytes);
            if !pause.is_zero() {
                self.obs.emit(self.now_busy(), NO_CONN, || Event::GcPause { micros: pause.as_micros() });
                self.charge(Account::Gc, pause);
            }
        }
    }

    /// GC statistics, if a collector is modeled.
    pub fn gc_stats(&self) -> Option<&GcStats> {
        self.gc.as_ref().map(|g| g.stats())
    }

    /// The profiler (for Table 2 extraction).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    // ----- cost-model shorthands used by the protocol layers -----

    /// TCP protocol processing for one segment. `payload_bytes` selects
    /// the data-segment or pure-ACK cost.
    pub fn charge_tcp_segment_sized(&mut self, payload_bytes: usize) {
        let dur = if payload_bytes == 0 { self.cost.tcp_per_ack } else { self.cost.tcp_per_segment };
        self.charge_ns(Account::Tcp, dur);
    }

    /// TCP protocol processing for one data segment.
    pub fn charge_tcp_segment(&mut self) {
        self.charge_ns(Account::Tcp, self.cost.tcp_per_segment);
    }

    /// IP processing for one packet.
    pub fn charge_ip_packet(&mut self) {
        self.charge_ns(Account::Ip, self.cost.ip_per_packet);
    }

    /// Ethernet + device interface processing for one frame.
    pub fn charge_eth_packet(&mut self) {
        self.charge_ns(Account::EthMachInterface, self.cost.eth_interface_per_packet);
    }

    /// Mach IPC send for one frame.
    pub fn charge_mach_send(&mut self) {
        self.charge_ns(Account::MachSend, self.cost.mach_send_per_packet);
    }

    /// Mach IPC receive ("packet wait") for one frame.
    pub fn charge_packet_wait(&mut self) {
        self.charge_ns(Account::PacketWait, self.cost.packet_wait_per_packet);
    }

    /// Per-batch receive wakeup overhead (GRO amortization). Charged
    /// once per drained batch; a no-op under cost models whose
    /// `packet_wait_per_batch` is zero (all 1994 presets), so enabling
    /// rx batching leaves their charge streams untouched.
    pub fn charge_rx_batch(&mut self) {
        if !self.cost.packet_wait_per_batch.is_zero() {
            self.charge_ns(Account::PacketWait, self.cost.packet_wait_per_batch);
        }
    }

    /// Per-batch transmit doorbell overhead (TSO amortization). Charged
    /// once per group of frames handed to the device; a no-op when
    /// `mach_send_per_batch` is zero (all 1994 presets).
    pub fn charge_tx_doorbell(&mut self) {
        if !self.cost.mach_send_per_batch.is_zero() {
            self.charge_ns(Account::MachSend, self.cost.mach_send_per_batch);
        }
    }

    /// Miscellaneous per-packet utilities.
    pub fn charge_misc_packet(&mut self) {
        self.charge_ns(Account::Misc, self.cost.misc_per_packet);
    }

    /// A data copy of `bytes` (per-KB motion plus fixed buffer setup;
    /// header-only packets skip the buffer-chain surcharge).
    pub fn charge_copy(&mut self, bytes: usize) {
        let surcharge = if bytes > 256 { self.cost.copy_per_packet } else { NanoDuration::ZERO };
        let dur = CostModel::per_kb(self.cost.copy_per_kb, bytes, self.cost.charge_quantum) + surcharge;
        self.charge_ns(Account::Copy, dur);
    }

    /// A checksum over `bytes` (per-KB summing plus fixed setup;
    /// header-only packets skip the setup surcharge).
    pub fn charge_checksum(&mut self, bytes: usize) {
        let surcharge = if bytes > 256 { self.cost.checksum_per_packet } else { NanoDuration::ZERO };
        let dur = CostModel::per_kb(self.cost.checksum_per_kb, bytes, self.cost.charge_quantum) + surcharge;
        self.charge_ns(Account::Checksum, dur);
    }

    /// A coroutine fork/switch (timers, the to_do drain thread).
    pub fn charge_thread_op(&mut self) {
        self.charge_ns(Account::Scheduler, self.cost.thread_op);
    }

    /// Allocation for one segment of `payload` bytes (buffer + fixed
    /// overhead).
    pub fn alloc_segment(&mut self, payload: usize) {
        let bytes = payload + self.cost.alloc_overhead_per_segment;
        if self.gc.is_some() {
            self.alloc(bytes);
        }
    }
}

impl fmt::Debug for Host {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Host({}, cpu_free_at={:?})", self.name, self.cpu_free_at())
    }
}

/// Cloneable shared handle to a host, in the role of the paper's
/// `FOX_BASIS` functor parameter: the utilities (timing, profiling,
/// allocation accounting) every protocol layer receives.
#[derive(Clone)]
pub struct HostHandle {
    inner: Rc<RefCell<Host>>,
}

impl HostHandle {
    /// Wraps a host.
    pub fn new(host: Host) -> HostHandle {
        HostHandle { inner: Rc::new(RefCell::new(host)) }
    }

    /// Installs an event sink on the wrapped host.
    pub fn set_obs(&self, sink: EventSink) {
        self.inner.borrow_mut().set_obs(sink);
    }

    /// A zero-cost host (for unit tests and modern measurements).
    pub fn free() -> HostHandle {
        HostHandle::new(Host::new("free", CostModel::modern(), false))
    }

    /// Runs `f` with the host borrowed mutably.
    pub fn with<R>(&self, f: impl FnOnce(&mut Host) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// See [`Host::begin`].
    pub fn begin(&self, arrival: VirtualTime) -> VirtualTime {
        self.inner.borrow_mut().begin(arrival)
    }

    /// See [`Host::end`].
    pub fn end(&self) -> VirtualTime {
        self.inner.borrow_mut().end()
    }

    /// See [`Host::charge`].
    pub fn charge(&self, account: Account, dur: VirtualDuration) {
        self.inner.borrow_mut().charge(account, dur);
    }

    /// See [`Host::charge_tcp_segment`].
    pub fn charge_tcp_segment(&self) {
        self.inner.borrow_mut().charge_tcp_segment();
    }

    /// See [`Host::charge_tcp_segment_sized`].
    pub fn charge_tcp_segment_sized(&self, payload_bytes: usize) {
        self.inner.borrow_mut().charge_tcp_segment_sized(payload_bytes);
    }

    /// See [`Host::charge_ip_packet`].
    pub fn charge_ip_packet(&self) {
        self.inner.borrow_mut().charge_ip_packet();
    }

    /// See [`Host::charge_eth_packet`].
    pub fn charge_eth_packet(&self) {
        self.inner.borrow_mut().charge_eth_packet();
    }

    /// See [`Host::charge_mach_send`].
    pub fn charge_mach_send(&self) {
        self.inner.borrow_mut().charge_mach_send();
    }

    /// See [`Host::charge_packet_wait`].
    pub fn charge_packet_wait(&self) {
        self.inner.borrow_mut().charge_packet_wait();
    }

    /// See [`Host::charge_misc_packet`].
    pub fn charge_misc_packet(&self) {
        self.inner.borrow_mut().charge_misc_packet();
    }

    /// See [`Host::charge_rx_batch`].
    pub fn charge_rx_batch(&self) {
        self.inner.borrow_mut().charge_rx_batch();
    }

    /// See [`Host::charge_tx_doorbell`].
    pub fn charge_tx_doorbell(&self) {
        self.inner.borrow_mut().charge_tx_doorbell();
    }

    /// See [`Host::charge_copy`].
    pub fn charge_copy(&self, bytes: usize) {
        self.inner.borrow_mut().charge_copy(bytes);
    }

    /// See [`Host::charge_checksum`].
    pub fn charge_checksum(&self, bytes: usize) {
        self.inner.borrow_mut().charge_checksum(bytes);
    }

    /// See [`Host::charge_thread_op`].
    pub fn charge_thread_op(&self) {
        self.inner.borrow_mut().charge_thread_op();
    }

    /// See [`Host::alloc_segment`].
    pub fn alloc_segment(&self, payload: usize) {
        self.inner.borrow_mut().alloc_segment(payload);
    }

    /// When the host CPU becomes free.
    pub fn cpu_free_at(&self) -> VirtualTime {
        self.inner.borrow().cpu_free_at()
    }
}

impl fmt::Debug for HostHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.inner.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 1994 presets ARE the paper: every constant pinned to its
    /// published microsecond value, charges quantized to the original
    /// 1 µs integer grid, and zero per-batch costs so the PR-7 device
    /// batching cannot perturb a Table 1/2 run by even a nanosecond.
    #[test]
    fn paper_cost_constants_are_pinned() {
        let us = |d: NanoDuration| {
            assert_eq!(d.as_nanos() % 1000, 0, "1994 constants live on the µs grid");
            d.as_micros()
        };
        let sml = CostModel::decstation_sml();
        assert_eq!(
            [
                us(sml.tcp_per_segment),
                us(sml.tcp_per_ack),
                us(sml.ip_per_packet),
                us(sml.eth_interface_per_packet),
                us(sml.mach_send_per_packet),
                us(sml.packet_wait_per_packet),
                us(sml.misc_per_packet),
                us(sml.copy_per_kb),
                us(sml.copy_per_packet),
                us(sml.checksum_per_kb),
                us(sml.checksum_per_packet),
                us(sml.thread_op),
                us(sml.function_call),
            ],
            [4000, 1500, 750, 1050, 1390, 2000, 450, 300, 1400, 343, 420, 30, 1]
        );
        let c = CostModel::decstation_c();
        assert_eq!(
            [
                us(c.tcp_per_segment),
                us(c.tcp_per_ack),
                us(c.ip_per_packet),
                us(c.eth_interface_per_packet),
                us(c.mach_send_per_packet),
                us(c.packet_wait_per_packet),
                us(c.misc_per_packet),
                us(c.copy_per_kb),
                us(c.copy_per_packet),
                us(c.checksum_per_kb),
                us(c.checksum_per_packet),
                us(c.thread_op),
                us(c.function_call),
            ],
            [450, 180, 150, 280, 300, 350, 80, 61, 0, 375, 0, 10, 1]
        );
        for m in [&sml, &c] {
            assert_eq!(m.charge_quantum, NanoDuration::from_micros(1));
            assert_eq!(m.mach_send_per_batch, NanoDuration::ZERO);
            assert_eq!(m.packet_wait_per_batch, NanoDuration::ZERO);
        }
        assert_eq!(sml.counter_updates_per_charge, 4);
        assert!(sml.gc.is_some() && c.gc.is_none());
        // The modern preset is the opposite bargain: a 1 ns quantum
        // (no rounding) and nonzero per-batch costs for GRO/TSO to
        // amortize.
        let g = CostModel::modern_gbps();
        assert_eq!(g.charge_quantum, NanoDuration::from_nanos(1));
        assert!(g.mach_send_per_batch > NanoDuration::ZERO);
        assert!(g.packet_wait_per_batch > NanoDuration::ZERO);
        assert!(g.tcp_per_segment < sml.tcp_per_segment / 1000, "GHz-class constants");
    }

    #[test]
    fn episode_accumulates_and_serializes() {
        let mut h = Host::new("t", CostModel::decstation_sml(), false);
        let start = h.begin(VirtualTime::from_millis(10));
        assert_eq!(start, VirtualTime::from_millis(10));
        h.charge(Account::Tcp, VirtualDuration::from_millis(2));
        h.charge(Account::Ip, VirtualDuration::from_millis(1));
        let done = h.end();
        assert_eq!(done, VirtualTime::from_millis(13));
        // A second event arriving during the busy period starts late.
        let start2 = h.begin(VirtualTime::from_millis(11));
        assert_eq!(start2, VirtualTime::from_millis(13));
        let done2 = h.end();
        assert_eq!(done2, VirtualTime::from_millis(13));
    }

    #[test]
    fn profiled_host_pays_counter_overhead() {
        // The 1994 preset models 4 counter updates per accounted
        // operation, 15 µs each.
        let mut h = Host::new("t", CostModel::decstation_sml(), true);
        h.begin(VirtualTime::ZERO);
        h.charge(Account::Tcp, VirtualDuration::from_micros(100));
        let done = h.end();
        assert_eq!(done, VirtualTime::from_micros(100 + 4 * 15));
        assert_eq!(h.profiler().total(Account::Counters).as_micros(), 4 * 15);
        assert_eq!(h.total_busy().as_micros(), 160);
    }

    #[test]
    fn unprofiled_host_pays_none() {
        let mut h = Host::new("t", CostModel::decstation_sml(), false);
        h.begin(VirtualTime::ZERO);
        h.charge(Account::Tcp, VirtualDuration::from_micros(100));
        assert_eq!(h.end(), VirtualTime::from_micros(100));
    }

    #[test]
    fn per_kb_charges_scale() {
        let mut h = Host::new("t", CostModel::decstation_sml(), false);
        h.begin(VirtualTime::ZERO);
        h.charge_copy(1024); // 300/KB + 1400 buffer surcharge
        h.charge_checksum(2048); // 2×343 + 420 setup surcharge
        let done = h.end();
        assert_eq!(done.as_micros(), (300 + 1400) + (2 * 343 + 420));
        assert_eq!(h.profiler().total(Account::Copy).as_micros(), 1700);
        assert_eq!(h.profiler().total(Account::Checksum).as_micros(), 1106);
        // Header-sized packets skip the surcharges.
        let t1 = VirtualTime::from_millis(1_000);
        h.begin(t1);
        h.charge_copy(64);
        h.charge_checksum(64);
        let d2 = h.end() - t1;
        assert_eq!(d2.as_micros(), (300 * 64 / 1024) + (343 * 64 / 1024));
    }

    #[test]
    fn allocation_drives_gc_charges() {
        let mut h = Host::new("t", CostModel::decstation_sml(), false);
        h.begin(VirtualTime::ZERO);
        // Allocate several nurseries' worth.
        for _ in 0..1200 {
            h.alloc_segment(1460);
        }
        let done = h.end();
        let gc = h.gc_stats().unwrap();
        assert!(gc.minors > 0);
        assert_eq!(h.profiler().total(Account::Gc), NanoDuration::from(gc.total_pause));
        assert!(done.as_micros() > 0);
    }

    #[test]
    fn charges_outside_episode_extend_cpu_directly() {
        let mut h = Host::new("t", CostModel::modern(), false);
        h.charge(Account::Misc, VirtualDuration::from_micros(7));
        assert_eq!(h.cpu_free_at(), VirtualTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "nested host episode")]
    fn nested_episodes_panic() {
        let mut h = Host::new("t", CostModel::modern(), false);
        h.begin(VirtualTime::ZERO);
        h.begin(VirtualTime::ZERO);
    }

    #[test]
    fn modern_preset_is_free() {
        let mut h = Host::new("t", CostModel::modern(), false);
        h.begin(VirtualTime::ZERO);
        h.charge_tcp_segment();
        h.charge_ip_packet();
        h.charge_copy(100_000);
        h.alloc_segment(100_000);
        assert_eq!(h.end(), VirtualTime::ZERO);
    }

    #[test]
    fn handle_shares_host() {
        let h = HostHandle::new(Host::new("t", CostModel::decstation_c(), false));
        let h2 = h.clone();
        h.begin(VirtualTime::ZERO);
        h2.charge_tcp_segment();
        assert_eq!(h.end().as_micros(), 450);
    }
}
