//! libpcap-format capture of simulated traffic.
//!
//! The smoltcp examples this project's tooling follows all offer
//! `--pcap`; the simulated segment offers the same: attach a
//! [`PcapSink`] to a [`crate::SimNet`] and every frame that crosses the
//! medium is recorded with its virtual timestamp, Wireshark-ready
//! (LINKTYPE_ETHERNET, microsecond resolution).

use foxbasis::time::VirtualTime;
use std::cell::RefCell;
use std::rc::Rc;

/// Magic for microsecond-resolution pcap, little-endian.
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;
/// Snap length: whole frames.
const SNAPLEN: u32 = 65_535;

/// An in-memory pcap stream.
#[derive(Clone)]
pub struct PcapSink {
    buf: Rc<RefCell<Vec<u8>>>,
    frames: Rc<RefCell<u64>>,
}

impl PcapSink {
    /// A sink primed with the pcap global header.
    pub fn new() -> PcapSink {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&SNAPLEN.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE.to_le_bytes());
        PcapSink { buf: Rc::new(RefCell::new(buf)), frames: Rc::new(RefCell::new(0)) }
    }

    /// Records one frame at a virtual timestamp.
    pub fn record(&self, at: VirtualTime, frame: &[u8]) {
        let mut buf = self.buf.borrow_mut();
        let us = at.as_micros();
        buf.extend_from_slice(&((us / 1_000_000) as u32).to_le_bytes());
        buf.extend_from_slice(&((us % 1_000_000) as u32).to_le_bytes());
        let cap = (frame.len() as u32).min(SNAPLEN);
        buf.extend_from_slice(&cap.to_le_bytes());
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(&frame[..cap as usize]);
        *self.frames.borrow_mut() += 1;
    }

    /// Frames recorded so far.
    pub fn frame_count(&self) -> u64 {
        *self.frames.borrow()
    }

    /// The complete pcap byte stream so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.buf.borrow().clone()
    }

    /// Writes the capture to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.buf.borrow().as_slice())
    }

    /// Writes the capture to a file, taking anything path-like — the
    /// one-liner CLI tools (`tables --pcap <file>`) want.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.write_to(path.as_ref())
    }
}

impl Default for PcapSink {
    fn default() -> Self {
        PcapSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_valid_pcap() {
        let sink = PcapSink::new();
        let bytes = sink.bytes();
        assert_eq!(bytes.len(), 24);
        assert_eq!(u32::from_le_bytes(bytes[0..4].try_into().unwrap()), MAGIC);
        assert_eq!(u16::from_le_bytes(bytes[4..6].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(bytes[20..24].try_into().unwrap()), LINKTYPE);
    }

    #[test]
    fn global_header_golden_bytes() {
        // The exact 24 bytes every classic libpcap reader expects:
        // magic a1b2c3d4 LE, version 2.4, thiszone 0, sigfigs 0,
        // snaplen 65535, LINKTYPE_ETHERNET (1).
        let expected: [u8; 24] = [
            0xd4, 0xc3, 0xb2, 0xa1, // magic, little-endian
            0x02, 0x00, // version major = 2
            0x04, 0x00, // version minor = 4
            0x00, 0x00, 0x00, 0x00, // thiszone
            0x00, 0x00, 0x00, 0x00, // sigfigs
            0xff, 0xff, 0x00, 0x00, // snaplen = 65535
            0x01, 0x00, 0x00, 0x00, // LINKTYPE_ETHERNET
        ];
        assert_eq!(PcapSink::new().bytes(), expected);
    }

    #[test]
    fn write_to_file_round_trips() {
        let sink = PcapSink::new();
        sink.record(VirtualTime::from_micros(42), &[0xAB; 60]);
        let path = std::env::temp_dir().join("foxnet_pcap_write_test.pcap");
        sink.write_to_file(&path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk, sink.bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_carry_timestamps_and_lengths() {
        let sink = PcapSink::new();
        let frame = vec![0xEE; 100];
        sink.record(VirtualTime::from_micros(3_000_007), &frame);
        let bytes = sink.bytes();
        let rec = &bytes[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 3); // seconds
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 7); // micros
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 100); // captured
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 100); // original
        assert_eq!(&rec[16..116], &frame[..]);
        assert_eq!(sink.frame_count(), 1);
    }

    #[test]
    fn clones_share_the_stream() {
        let a = PcapSink::new();
        let b = a.clone();
        a.record(VirtualTime::ZERO, &[1, 2, 3]);
        b.record(VirtualTime::from_micros(1), &[4, 5]);
        assert_eq!(a.frame_count(), 2);
        assert_eq!(a.bytes(), b.bytes());
    }
}
