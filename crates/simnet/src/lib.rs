//! # The simulated substrate
//!
//! The paper benchmarked Fox Net on "64MB DECstation 5000/125s running
//! the Mach 3.0 microkernel" attached to "an isolated 10Mb/s ethernet".
//! None of that hardware exists here, so this crate *builds* it, per the
//! substitution plan in DESIGN.md:
//!
//! * [`net`] — a deterministic discrete-event shared Ethernet segment:
//!   frames serialize onto the medium at the configured bandwidth
//!   (default 10 Mb/s), arbitrate FIFO for the shared wire, propagate
//!   with a fixed delay, and arrive in bounded per-port receive queues
//!   (the analogue of the paper's 24 KB Mach kernel buffer). A seeded
//!   fault injector can drop, corrupt, duplicate or delay frames — the
//!   conditions the Resend module exists to survive;
//! * [`host`] — the host cost model: a virtual CPU per host that is
//!   *charged* time for protocol processing, copies, checksums, Mach IPC
//!   and so on, with presets calibrated to the paper's DECstation numbers
//!   (SML and C variants) plus a free "modern" preset. Charges flow
//!   through the [`foxbasis::profile::Profiler`], which is how Table 2
//!   falls out of a run;
//! * [`gcmodel`] — an allocation-driven model of the SML/NJ generational
//!   stop-and-copy collector: minor collections when the nursery fills,
//!   major collections as promoted data accumulates, each contributing
//!   pauses to the host CPU and time to the `g. c.` account.
//!
//! Everything is keyed by [`foxbasis::time::VirtualTime`]; with the same
//! seed and configuration a simulation is bit-for-bit repeatable.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod gcmodel;
pub mod host;
pub mod net;
pub mod pcap;

pub use gcmodel::{GcConfig, GcStats, SmlRuntime};
pub use host::{CostModel, Host, HostHandle};
pub use net::{FaultConfig, NetConfig, NetStats, Port, SimNet, TxShape};
pub use pcap::PcapSink;
