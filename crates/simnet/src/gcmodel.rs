//! An allocation-driven model of the SML/NJ runtime's generational
//! stop-and-copy garbage collector.
//!
//! The paper devotes a good part of §5 to arguing that the collector does
//! not wreck protocol performance: minor collections of the nursery are
//! frequent but cheap ("pauses of under a hundred milliseconds on
//! average"), majors are rare ("runs of over 5 MB often require at least
//! one major garbage collection") and the overall cost lands at 3.4–5 %
//! of run time (Table 2). To reproduce those observations without an
//! actual GC, [`SmlRuntime`] is charged for every simulated allocation;
//! when the nursery fills it reports a minor pause, a configured fraction
//! of nursery data survives into the old generation, and when the old
//! generation outgrows its threshold a (much longer) major pause is
//! reported and the old generation is compacted back down.

use foxbasis::time::VirtualDuration;

/// Collector configuration.
#[derive(Clone, Debug)]
pub struct GcConfig {
    /// Nursery capacity in bytes. A minor collection runs when an
    /// allocation does not fit.
    pub nursery_bytes: usize,
    /// Pause for one minor collection.
    pub minor_pause: VirtualDuration,
    /// Fraction of nursery contents that survives a minor collection
    /// into the old generation (most of the nursery is garbage, so this
    /// is small).
    pub survival: f64,
    /// Old-generation size that triggers a major collection.
    pub major_threshold_bytes: usize,
    /// Pause for one major collection ("substantially longer").
    pub major_pause: VirtualDuration,
    /// Fraction of the old generation that survives a major collection.
    pub major_survival: f64,
    /// The paper's §7 future work, modeled: "we will implement and use
    /// an incremental garbage collector with bounded pauses." When set,
    /// collection work is spread across subsequent allocations in
    /// increments no longer than this bound, at `INCREMENTAL_OVERHEAD`
    /// extra total cost.
    pub incremental_bound: Option<VirtualDuration>,
}

/// Extra total collection cost when collecting incrementally (write
/// barriers and re-scanning; a standard figure for 1990s incremental
/// collectors).
pub const INCREMENTAL_OVERHEAD: f64 = 0.15;

impl GcConfig {
    /// Parameters calibrated to the paper's SML/NJ observations (see
    /// EXPERIMENTS.md for the fit): 256 KB nursery, 32 ms minors, 300 ms
    /// majors, major triggered around 2.2 MB of promoted data.
    pub fn smlnj_1994() -> GcConfig {
        GcConfig {
            nursery_bytes: 256 * 1024,
            minor_pause: VirtualDuration::from_millis(32),
            survival: 0.15,
            major_threshold_bytes: 2200 * 1024,
            major_pause: VirtualDuration::from_millis(300),
            major_survival: 0.3,
            incremental_bound: None,
        }
    }

    /// The §7 collector: same heap parameters, collection work bounded
    /// to `bound` per pause.
    pub fn incremental_1995(bound: VirtualDuration) -> GcConfig {
        GcConfig { incremental_bound: Some(bound), ..GcConfig::smlnj_1994() }
    }
}

/// Collector statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GcStats {
    /// Total bytes allocated.
    pub allocated: u64,
    /// Minor collections run.
    pub minors: u64,
    /// Major collections run.
    pub majors: u64,
    /// Sum of all pauses.
    pub total_pause: VirtualDuration,
    /// Longest single pause.
    pub max_pause: VirtualDuration,
    /// Every pause, in order (minor and major interleaved as they
    /// happened) — the gc_study experiment plots these.
    pub pauses: Vec<VirtualDuration>,
}

/// The modeled runtime heap.
#[derive(Clone, Debug)]
pub struct SmlRuntime {
    config: GcConfig,
    nursery_used: usize,
    old_gen: usize,
    /// Outstanding incremental collection work.
    debt: VirtualDuration,
    stats: GcStats,
}

impl SmlRuntime {
    /// A fresh heap.
    pub fn new(config: GcConfig) -> SmlRuntime {
        SmlRuntime {
            config,
            nursery_used: 0,
            old_gen: 0,
            debt: VirtualDuration::ZERO,
            stats: GcStats::default(),
        }
    }

    /// Models allocating `bytes`; returns the GC pause the allocation
    /// incurred (usually zero — "with a compacted heap, heap allocation
    /// can be fast").
    pub fn alloc(&mut self, bytes: usize) -> VirtualDuration {
        self.stats.allocated += bytes as u64;
        let mut pause = VirtualDuration::ZERO;
        self.nursery_used += bytes;
        while self.nursery_used > self.config.nursery_bytes {
            pause += self.minor();
            // An allocation larger than the whole nursery survives
            // directly into the old generation (SML/NJ's big-object
            // policy); `minor` leaves `survival × nursery` behind so the
            // loop always terminates for bytes ≤ nursery, and the clamp
            // below handles the pathological huge-allocation case.
            if bytes > self.config.nursery_bytes {
                self.old_gen += self.nursery_used;
                self.nursery_used = 0;
            }
        }
        if self.old_gen > self.config.major_threshold_bytes {
            pause += self.major();
        }
        // Incremental mode: the lump collection cost becomes debt (with
        // the incremental overhead), repaid in bounded increments on
        // this and subsequent allocations.
        if let Some(bound) = self.config.incremental_bound {
            if !pause.is_zero() {
                self.debt += VirtualDuration::from_micros(
                    (pause.as_micros() as f64 * (1.0 + INCREMENTAL_OVERHEAD)) as u64,
                );
                pause = VirtualDuration::ZERO;
            }
            if !self.debt.is_zero() {
                let pay = self.debt.min(bound);
                self.debt -= pay;
                self.record(pay);
                pause = pay;
            }
        }
        pause
    }

    fn minor(&mut self) -> VirtualDuration {
        self.stats.minors += 1;
        let survivors = (self.nursery_used as f64 * self.config.survival) as usize;
        self.old_gen += survivors;
        self.nursery_used = self.nursery_used.saturating_sub(self.config.nursery_bytes.max(1));
        if self.config.incremental_bound.is_none() {
            self.record(self.config.minor_pause);
        }
        self.config.minor_pause
    }

    fn major(&mut self) -> VirtualDuration {
        self.stats.majors += 1;
        self.old_gen = (self.old_gen as f64 * self.config.major_survival) as usize;
        if self.config.incremental_bound.is_none() {
            self.record(self.config.major_pause);
        }
        self.config.major_pause
    }

    fn record(&mut self, pause: VirtualDuration) {
        self.stats.pauses.push(pause);
        self.stats.total_pause += pause;
        self.stats.max_pause = self.stats.max_pause.max(pause);
    }

    /// Statistics so far.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// Bytes currently in the nursery.
    pub fn nursery_used(&self) -> usize {
        self.nursery_used
    }

    /// Bytes currently in the old generation.
    pub fn old_gen(&self) -> usize {
        self.old_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GcConfig {
        GcConfig {
            nursery_bytes: 1000,
            minor_pause: VirtualDuration::from_millis(10),
            survival: 0.2,
            major_threshold_bytes: 500,
            major_pause: VirtualDuration::from_millis(100),
            major_survival: 0.1,
            incremental_bound: None,
        }
    }

    #[test]
    fn small_allocations_are_free() {
        let mut rt = SmlRuntime::new(small_config());
        for _ in 0..9 {
            assert_eq!(rt.alloc(100), VirtualDuration::ZERO);
        }
        assert_eq!(rt.stats().minors, 0);
        assert_eq!(rt.nursery_used(), 900);
    }

    #[test]
    fn filling_the_nursery_triggers_a_minor() {
        let mut rt = SmlRuntime::new(small_config());
        rt.alloc(900);
        let pause = rt.alloc(200); // 1100 > 1000
        assert_eq!(pause, VirtualDuration::from_millis(10));
        assert_eq!(rt.stats().minors, 1);
        // 20% of 1100 promoted.
        assert_eq!(rt.old_gen(), 220);
        assert_eq!(rt.nursery_used(), 100); // 1100 - 1000 spills over
    }

    #[test]
    fn promotion_accumulates_into_a_major() {
        let mut rt = SmlRuntime::new(small_config());
        let mut total = VirtualDuration::ZERO;
        // Each full nursery promotes ~200 bytes; threshold 500 → a major
        // after roughly 3 minors.
        for _ in 0..50 {
            total += rt.alloc(500);
        }
        assert!(rt.stats().majors >= 1, "majors: {}", rt.stats().majors);
        assert!(total >= VirtualDuration::from_millis(100));
        assert_eq!(rt.stats().total_pause, total);
        assert_eq!(rt.stats().max_pause, VirtualDuration::from_millis(100));
        assert_eq!(rt.stats().pauses.len() as u64, rt.stats().minors + rt.stats().majors);
    }

    #[test]
    fn huge_allocation_terminates() {
        let mut rt = SmlRuntime::new(small_config());
        let pause = rt.alloc(10_000);
        assert!(!pause.is_zero());
        assert_eq!(rt.nursery_used(), 0);
    }

    #[test]
    fn paper_scale_run_over_5mb_has_majors() {
        // The paper: "Runs of over 5 MB often require at least one major
        // garbage collection." Allocate the way the engine does for a
        // bulk sender: one segment buffer + overhead per data segment
        // transmitted, plus overhead for the ACK it processes.
        let per_segment = |rt: &mut SmlRuntime| {
            rt.alloc(1460 + 2048); // transmit path
            rt.alloc(2048); // ack receive path
        };
        let mut rt = SmlRuntime::new(GcConfig::smlnj_1994());
        for _ in 0..(5_000_000 / 1460) {
            per_segment(&mut rt);
        }
        assert!(
            rt.stats().majors >= 1,
            "5 MB run: {:?} minors, {:?} majors",
            rt.stats().minors,
            rt.stats().majors
        );
        // And a 1 MB transfer should not major-collect.
        let mut rt = SmlRuntime::new(GcConfig::smlnj_1994());
        for _ in 0..(1_000_000 / 1460) {
            per_segment(&mut rt);
        }
        assert_eq!(rt.stats().majors, 0);
        assert!(rt.stats().minors > 0);
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;

    #[test]
    fn incremental_bounds_every_pause() {
        let bound = VirtualDuration::from_millis(5);
        let mut rt = SmlRuntime::new(GcConfig::incremental_1995(bound));
        for _ in 0..5_000 {
            rt.alloc(2048);
        }
        assert!(rt.stats().minors > 0);
        assert!(rt.stats().max_pause <= bound, "max pause {:?}", rt.stats().max_pause);
        assert!(!rt.stats().pauses.is_empty());
    }

    #[test]
    fn incremental_costs_more_in_total() {
        let run = |cfg: GcConfig| {
            let mut rt = SmlRuntime::new(cfg);
            for _ in 0..5_000 {
                rt.alloc(2048);
            }
            rt.stats().total_pause
        };
        let lump = run(GcConfig::smlnj_1994());
        let incr = run(GcConfig::incremental_1995(VirtualDuration::from_millis(5)));
        assert!(incr > lump, "incremental pays the overhead: {incr:?} vs {lump:?}");
        let ratio = incr.as_micros() as f64 / lump.as_micros() as f64;
        assert!((1.0..=1.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn debt_carries_across_allocations() {
        let bound = VirtualDuration::from_millis(1);
        let mut rt = SmlRuntime::new(GcConfig::incremental_1995(bound));
        // Fill the nursery: a 32 ms minor becomes ~37 ms of debt paid
        // 1 ms at a time.
        let mut first_hit = None;
        for i in 0..400 {
            let p = rt.alloc(1024);
            if !p.is_zero() && first_hit.is_none() {
                first_hit = Some(i);
            }
        }
        let hits = rt.stats().pauses.len();
        assert!(hits >= 30, "debt spread over many allocations: {hits}");
        assert!(rt.stats().max_pause <= bound);
    }
}
