//! The deterministic shared-Ethernet simulator.
//!
//! Model: a single half-duplex 10 Mb/s segment (a "hub", matching the
//! paper's isolated Ethernet). A frame handed to [`Port::send`] waits for
//! the medium, occupies it for its serialization time, and is delivered
//! to every other port whose address filter matches after the propagation
//! delay. Receive queues are bounded in *bytes* (default 24 KB — "we
//! leave the Mach buffer space at its standard 24K bytes"); arrivals that
//! do not fit are dropped and counted, which is exactly how the real
//! Mach kernel buffer lost packets under overrun.
//!
//! Fault injection follows smoltcp's example set: per-frame drop and
//! corruption chances, duplication, and bounded extra delay (reordering),
//! all drawn from one seeded RNG so runs are repeatable.

use crate::pcap::PcapSink;
use foxbasis::buf::PacketBuf;
use foxbasis::obs::{Event, EventSink, NO_CONN};
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::ether::EthAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Configuration of the simulated segment.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link bandwidth in bits per second. The paper's Ethernet: 10 Mb/s.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: VirtualDuration,
    /// Per-port receive queue capacity in bytes (the Mach kernel buffer).
    pub rx_capacity: usize,
    /// Fault injection parameters.
    pub faults: FaultConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 10_000_000,
            propagation: VirtualDuration::from_micros(5),
            rx_capacity: 24 * 1024,
            faults: FaultConfig::default(),
        }
    }
}

impl NetConfig {
    /// A modern switched gigabit link: 1 Gb/s, 1 µs one-way propagation,
    /// and a receive ring deep enough that GRO-sized bursts are not
    /// dropped at the port. Pairs with [`crate::CostModel::modern_gbps`].
    pub fn gigabit() -> NetConfig {
        NetConfig {
            bandwidth_bps: 1_000_000_000,
            propagation: VirtualDuration::from_micros(1),
            rx_capacity: 256 * 1024,
            faults: FaultConfig::default(),
        }
    }
}

/// Fault-injection knobs (probabilities in `[0, 1]`).
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Chance a frame is silently dropped on the wire.
    pub drop_chance: f64,
    /// Chance one octet of a frame is flipped on the wire (the Ethernet
    /// FCS will catch it at the receiver, as the paper's footnote about
    /// Ethernet CRCs demands).
    pub corrupt_chance: f64,
    /// Chance a frame is delivered twice.
    pub duplicate_chance: f64,
    /// Maximum extra, random, per-frame delivery delay (causes
    /// reordering when nonzero).
    pub jitter: VirtualDuration,
    /// Gilbert–Elliott burst loss, good→bad transition: chance per
    /// frame of entering the bursty state. Zero disables the chain.
    pub burst_enter_chance: f64,
    /// Gilbert–Elliott bad→good transition: chance per frame of
    /// leaving the bursty state (so the mean burst length in frames is
    /// `1 / burst_exit_chance`).
    pub burst_exit_chance: f64,
    /// Drop chance while in the bursty state; the good state drops with
    /// the independent `drop_chance`.
    pub burst_loss_chance: f64,
}

impl FaultConfig {
    /// A lossy profile: `p` chance each of drop and corruption.
    pub fn lossy(p: f64) -> FaultConfig {
        FaultConfig { drop_chance: p, corrupt_chance: p, ..FaultConfig::default() }
    }

    /// A Gilbert–Elliott burst-loss profile: enter the bad state with
    /// chance `enter` per frame, leave it with chance `exit`, and drop
    /// each frame seen in the bad state with chance `loss`.
    pub fn bursty(enter: f64, exit: f64, loss: f64) -> FaultConfig {
        FaultConfig {
            burst_enter_chance: enter,
            burst_exit_chance: exit,
            burst_loss_chance: loss,
            ..FaultConfig::default()
        }
    }
}

/// Aggregate statistics of a segment.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames accepted for transmission.
    pub frames_sent: u64,
    /// Frame deliveries into receive queues (a broadcast counts once per
    /// receiving port).
    pub frames_delivered: u64,
    /// Frames dropped by fault injection.
    pub frames_dropped_fault: u64,
    /// Frames corrupted by fault injection.
    pub frames_corrupted: u64,
    /// Frames duplicated by fault injection.
    pub frames_duplicated: u64,
    /// Arrivals dropped because a receive queue was full.
    pub frames_dropped_overflow: u64,
    /// Payload bytes accepted for transmission.
    pub bytes_sent: u64,
}

struct Delivery {
    at: VirtualTime,
    seq: u64,
    port: usize,
    frame: PacketBuf,
}

impl PartialEq for Delivery {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Delivery {
    fn cmp(&self, o: &Self) -> Ordering {
        o.at.cmp(&self.at).then_with(|| o.seq.cmp(&self.seq))
    }
}

struct PortState {
    addr: EthAddr,
    promiscuous: bool,
    rx: VecDeque<PacketBuf>,
    rx_bytes: usize,
    rx_capacity: usize,
    overflow_drops: u64,
}

struct NetCore {
    now: VirtualTime,
    config: NetConfig,
    medium_free_at: VirtualTime,
    ports: Vec<PortState>,
    pending: BinaryHeap<Delivery>,
    next_seq: u64,
    rng: StdRng,
    stats: NetStats,
    capture: Option<PcapSink>,
    obs: EventSink,
    /// Gilbert–Elliott channel state: `true` while in the bursty (bad)
    /// state. The chain advances one step per transmitted frame.
    burst_bad: bool,
}

impl NetCore {
    fn transmit(&mut self, from: usize, at: VirtualTime, frame: PacketBuf) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        // FIFO arbitration for the shared medium. `at` lets a host hand
        // over a frame "in the future" (when its simulated CPU finishes
        // building it) without forcing the global clock forward first.
        let start = self.now.max(at).max(self.medium_free_at);
        let serialize =
            VirtualDuration::from_micros((frame.len() as u64 * 8 * 1_000_000) / self.config.bandwidth_bps);
        let end = start + serialize;
        self.medium_free_at = end;

        // Medium-level faults: one roll per frame, shared by all
        // receivers (it is one wire). The Gilbert–Elliott chain steps
        // first; in the bad state the burst loss chance replaces the
        // independent one.
        if self.burst_bad {
            if self.rng.gen_bool(self.config.faults.burst_exit_chance) {
                self.burst_bad = false;
            }
        } else if self.rng.gen_bool(self.config.faults.burst_enter_chance) {
            self.burst_bad = true;
        }
        let drop_p = if self.burst_bad {
            self.config.faults.burst_loss_chance
        } else {
            self.config.faults.drop_chance
        };
        if self.rng.gen_bool(drop_p) {
            self.stats.frames_dropped_fault += 1;
            self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameDrop { reason: "fault" });
            return;
        }
        let mut frame = frame;
        if self.rng.gen_bool(self.config.faults.corrupt_chance) && !frame.is_empty() {
            // The sender may still reference this buffer (e.g. in a
            // retransmission queue), so corruption works on a private
            // deep copy — the only copy the wire ever makes.
            let mut owned = frame.clone_owned();
            let at = self.rng.gen_range(0..owned.len());
            let bit = self.rng.gen_range(0u32..8);
            {
                let mut b = owned.bytes_mut().expect("clone_owned is unique");
                b[at] ^= 1u8 << bit;
            }
            frame = owned;
            self.stats.frames_corrupted += 1;
            self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameCorrupt);
        }
        // Record what actually went on the wire (post-corruption), like
        // a passive tap would see it.
        if let Some(cap) = &self.capture {
            cap.record(end, &frame.bytes());
        }
        let copies = if self.rng.gen_bool(self.config.faults.duplicate_chance) {
            self.stats.frames_duplicated += 1;
            2
        } else {
            1
        };
        let dst = frame_dst(&frame);
        for _ in 0..copies {
            let jitter = if self.config.faults.jitter.is_zero() {
                VirtualDuration::ZERO
            } else {
                VirtualDuration::from_micros(self.rng.gen_range(0..=self.config.faults.jitter.as_micros()))
            };
            let at = end + self.config.propagation + jitter;
            for (i, p) in self.ports.iter().enumerate() {
                if i == from {
                    continue; // a port does not hear its own transmission
                }
                let matches = p.promiscuous
                    || dst == Some(p.addr)
                    || dst == Some(EthAddr::BROADCAST)
                    || dst.is_some_and(|d| d.is_multicast());
                if matches {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.pending.push(Delivery { at, seq, port: i, frame: frame.clone() });
                }
            }
        }
    }

    fn advance_to(&mut self, t: VirtualTime) {
        assert!(t >= self.now, "network clock may not run backwards");
        while let Some(top) = self.pending.peek() {
            if top.at > t {
                break;
            }
            let d = self.pending.pop().expect("peeked");
            self.now = self.now.max(d.at);
            let p = &mut self.ports[d.port];
            if p.rx_bytes + d.frame.len() > p.rx_capacity {
                p.overflow_drops += 1;
                self.stats.frames_dropped_overflow += 1;
                self.obs.emit_for(d.at, d.port as u32, NO_CONN, || Event::FrameDrop { reason: "overflow" });
            } else {
                p.rx_bytes += d.frame.len();
                let bytes = d.frame.len() as u32;
                p.rx.push_back(d.frame);
                self.stats.frames_delivered += 1;
                self.obs.emit_for(d.at, d.port as u32, NO_CONN, || Event::FrameDeliver { bytes });
            }
        }
        self.now = t;
    }
}

fn frame_dst(frame: &PacketBuf) -> Option<EthAddr> {
    if frame.len() < 6 {
        return None;
    }
    let mut a = [0u8; 6];
    a.copy_from_slice(&frame.bytes()[..6]);
    Some(EthAddr(a))
}

/// A shared Ethernet segment. Cloning the handle shares the segment.
#[derive(Clone)]
pub struct SimNet {
    core: Rc<RefCell<NetCore>>,
}

impl SimNet {
    /// A segment with the given configuration and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> SimNet {
        SimNet {
            core: Rc::new(RefCell::new(NetCore {
                now: VirtualTime::ZERO,
                medium_free_at: VirtualTime::ZERO,
                config,
                ports: Vec::new(),
                pending: BinaryHeap::new(),
                next_seq: 0,
                rng: StdRng::seed_from_u64(seed),
                stats: NetStats::default(),
                capture: None,
                obs: EventSink::off(),
                burst_bad: false,
            })),
        }
    }

    /// A default 10 Mb/s fault-free segment.
    pub fn ethernet_10mbps(seed: u64) -> SimNet {
        SimNet::new(NetConfig::default(), seed)
    }

    /// Attaches a station with MAC address `addr`; returns its port.
    pub fn attach(&self, addr: EthAddr) -> Port {
        let mut core = self.core.borrow_mut();
        let rx_capacity = core.config.rx_capacity;
        core.ports.push(PortState {
            addr,
            promiscuous: false,
            rx: VecDeque::new(),
            rx_bytes: 0,
            rx_capacity,
            overflow_drops: 0,
        });
        Port { net: self.core.clone(), id: core.ports.len() - 1 }
    }

    /// Current network time.
    pub fn now(&self) -> VirtualTime {
        self.core.borrow().now
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery(&self) -> Option<VirtualTime> {
        self.core.borrow().pending.peek().map(|d| d.at)
    }

    /// Advances the clock, moving due frames into receive queues.
    pub fn advance_to(&self, t: VirtualTime) {
        self.core.borrow_mut().advance_to(t);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.core.borrow().stats
    }

    /// Attaches a pcap tap; every frame on the medium (as the wire sees
    /// it, after any injected corruption) is recorded with its virtual
    /// timestamp. Returns the sink to read or write out.
    pub fn capture(&self) -> PcapSink {
        let sink = PcapSink::new();
        self.core.borrow_mut().capture = Some(sink.clone());
        sink
    }

    /// Installs an event sink: frame drop/corrupt/deliver events are
    /// recorded, attributed to the port (= host id) concerned (frame
    /// *transmission* is emitted by the device layer, which knows when
    /// the host's CPU actually finished the frame). The default sink is
    /// off and records nothing.
    pub fn set_obs(&self, sink: EventSink) {
        self.core.borrow_mut().obs = sink;
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        write!(f, "SimNet(now={:?}, ports={}, pending={})", core.now, core.ports.len(), core.pending.len())
    }
}

/// One station's attachment to the segment.
#[derive(Clone)]
pub struct Port {
    net: Rc<RefCell<NetCore>>,
    id: usize,
}

impl Port {
    /// The station's configured MAC address.
    pub fn addr(&self) -> EthAddr {
        self.net.borrow().ports[self.id].addr
    }

    /// Enables reception of all frames regardless of destination.
    pub fn set_promiscuous(&self, on: bool) {
        self.net.borrow_mut().ports[self.id].promiscuous = on;
    }

    /// Hands a frame to the medium at the current network time. The
    /// buffer is delivered to matching ports by reference-count bump —
    /// the wire itself copies nothing (except under injected
    /// corruption).
    pub fn send(&self, frame: impl Into<PacketBuf>) {
        let mut core = self.net.borrow_mut();
        let id = self.id;
        let now = core.now;
        core.transmit(id, now, frame.into());
    }

    /// Hands a frame to the medium at time `at` (which may be later than
    /// the network clock — the host's CPU finished building the frame
    /// then). `at` earlier than the network clock is clamped to now.
    pub fn send_at(&self, at: VirtualTime, frame: impl Into<PacketBuf>) {
        let mut core = self.net.borrow_mut();
        let id = self.id;
        core.transmit(id, at, frame.into());
    }

    /// Takes the next received frame, if any.
    pub fn recv(&self) -> Option<PacketBuf> {
        let mut core = self.net.borrow_mut();
        let p = &mut core.ports[self.id];
        let frame = p.rx.pop_front();
        if let Some(f) = &frame {
            p.rx_bytes -= f.len();
        }
        frame
    }

    /// True if a frame is waiting.
    pub fn has_rx(&self) -> bool {
        !self.net.borrow().ports[self.id].rx.is_empty()
    }

    /// Arrivals this port lost to a full receive queue.
    pub fn overflow_drops(&self) -> u64 {
        self.net.borrow().ports[self.id].overflow_drops
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Port({}, {:?})", self.id, self.addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxwire::ether::{EtherType, Frame};

    fn frame_to(dst: EthAddr, src: EthAddr, n: usize) -> Vec<u8> {
        Frame::new(dst, src, EtherType::Other(0x1234), vec![0xab; n]).encode().unwrap()
    }

    #[test]
    fn unicast_reaches_only_the_addressee() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let c = net.attach(EthAddr::host(3));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.has_rx());
        assert!(!c.has_rx());
        assert!(!a.has_rx(), "sender does not hear its own frame");
        let got = b.recv().unwrap();
        assert!(Frame::decode(&got.bytes()).is_ok());
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let c = net.attach(EthAddr::host(3));
        a.send(frame_to(EthAddr::BROADCAST, EthAddr::host(1), 50));
        net.advance_to(VirtualTime::from_millis(1));
        assert!(b.has_rx() && c.has_rx());
    }

    #[test]
    fn promiscuous_port_hears_all() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let _b = net.attach(EthAddr::host(2));
        let snoop = net.attach(EthAddr::host(9));
        snoop.set_promiscuous(true);
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 10));
        net.advance_to(VirtualTime::from_millis(1));
        assert!(snoop.has_rx());
    }

    #[test]
    fn serialization_delay_matches_bandwidth() {
        // 1250 payload bytes → frame = 14 + 1250 + 4 = 1268 bytes
        // = 10144 bits at 10 Mb/s = 1014.4 µs plus 5 µs propagation.
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        let at = net.next_delivery().unwrap();
        assert_eq!(at.as_micros(), 1014 + 5);
        net.advance_to(at);
        assert!(b.has_rx());
    }

    #[test]
    fn medium_is_serialized_fifo() {
        // Two back-to-back frames: the second cannot start until the
        // first finishes serializing.
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let _ = b;
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        net.advance_to(VirtualTime::from_millis(50));
        let s = net.stats();
        assert_eq!(s.frames_delivered, 2);
        // Both frames delivered; the second ~1014 µs after the first.
        // (Verified via medium_free_at: total occupied 2028 µs.)
        assert_eq!(net.now(), VirtualTime::from_millis(50));
    }

    #[test]
    fn rx_queue_overflow_drops_and_counts() {
        let cfg = NetConfig { rx_capacity: 200, ..NetConfig::default() }; // tiny "Mach buffer"
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..5 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        }
        net.advance_to(VirtualTime::from_millis(100));
        // Each encoded frame is 118 bytes; only one fits in 200.
        assert_eq!(b.overflow_drops(), 4);
        assert!(b.recv().is_some());
        assert!(b.recv().is_none());
        assert_eq!(net.stats().frames_dropped_overflow, 4);
    }

    #[test]
    fn draining_rx_frees_capacity() {
        let cfg = NetConfig { rx_capacity: 130, ..NetConfig::default() };
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.recv().is_some());
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(20));
        assert!(b.recv().is_some(), "capacity was freed by the first recv");
    }

    #[test]
    fn drop_fault_loses_frames() {
        let mut cfg = NetConfig::default();
        cfg.faults.drop_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(!b.has_rx());
        assert_eq!(net.stats().frames_dropped_fault, 1);
    }

    #[test]
    fn corruption_fault_is_caught_by_fcs() {
        let mut cfg = NetConfig::default();
        cfg.faults.corrupt_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        let got = b.recv().unwrap();
        assert!(Frame::decode(&got.bytes()).is_err(), "FCS must catch wire corruption");
        assert_eq!(net.stats().frames_corrupted, 1);
    }

    #[test]
    fn duplication_fault_delivers_twice() {
        let mut cfg = NetConfig::default();
        cfg.faults.duplicate_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.recv().is_some());
        assert!(b.recv().is_some());
        assert_eq!(net.stats().frames_duplicated, 1);
    }

    #[test]
    fn burst_loss_clusters_drops() {
        // Pinned chain: once entered, the bad state drops everything
        // until exit. enter=1 ⇒ the first frame already steps into the
        // bad state; exit=0 ⇒ it never leaves.
        let cfg = NetConfig { faults: FaultConfig::bursty(1.0, 0.0, 1.0), ..NetConfig::default() };
        let net = SimNet::new(cfg, 3);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..10 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        }
        net.advance_to(VirtualTime::from_millis(100));
        assert_eq!(net.stats().frames_dropped_fault, 10, "all frames fall in the burst");
        assert!(!b.has_rx());
    }

    #[test]
    fn burst_loss_spares_good_state() {
        // enter=0 ⇒ the chain never leaves the good state; the burst
        // loss chance must then be irrelevant.
        let cfg = NetConfig { faults: FaultConfig::bursty(0.0, 0.5, 1.0), ..NetConfig::default() };
        let net = SimNet::new(cfg, 3);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..10 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        }
        net.advance_to(VirtualTime::from_millis(100));
        assert_eq!(net.stats().frames_dropped_fault, 0);
        let mut got = 0;
        while b.recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn burst_runs_are_longer_than_independent_runs() {
        // With the same long-run loss rate (~25%), the Gilbert–Elliott
        // chain must produce a longer maximum run of consecutive drops
        // than independent losses do. Drop/delivery order is recovered
        // from the per-frame fate: one frame per advance, checked right
        // after.
        let run_lengths = |faults: FaultConfig| {
            let cfg = NetConfig { faults, ..NetConfig::default() };
            let net = SimNet::new(cfg, 11);
            let a = net.attach(EthAddr::host(1));
            let b = net.attach(EthAddr::host(2));
            let mut max_run = 0u32;
            let mut run = 0u32;
            let mut t = VirtualTime::ZERO;
            for _ in 0..400 {
                a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
                t += VirtualDuration::from_millis(1);
                net.advance_to(t);
                if b.recv().is_some() {
                    run = 0;
                } else {
                    run += 1;
                    max_run = max_run.max(run);
                }
            }
            max_run
        };
        // Stationary loss of bursty(1/30, 1/10, 1.0): bad-state share
        // = enter/(enter+exit) = 0.25, dropping everything while bad.
        let bursty = run_lengths(FaultConfig::bursty(1.0 / 30.0, 0.1, 1.0));
        let independent = run_lengths(FaultConfig { drop_chance: 0.25, ..FaultConfig::default() });
        assert!(
            bursty > independent,
            "burst max run {bursty} should exceed independent max run {independent}"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let cfg = NetConfig {
                faults: FaultConfig { jitter: VirtualDuration::from_micros(500), ..FaultConfig::lossy(0.3) },
                ..NetConfig::default()
            };
            let net = SimNet::new(cfg, seed);
            let a = net.attach(EthAddr::host(1));
            let b = net.attach(EthAddr::host(2));
            for i in 0..50 {
                a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64 + i));
            }
            net.advance_to(VirtualTime::from_millis(200));
            let mut got = Vec::new();
            while let Some(f) = b.recv() {
                got.push(f);
            }
            (got, net.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds should diverge");
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn network_clock_cannot_run_backwards() {
        let net = SimNet::ethernet_10mbps(1);
        net.advance_to(VirtualTime::from_millis(5));
        net.advance_to(VirtualTime::from_millis(1));
    }
}

#[cfg(test)]
mod pcap_tests {
    use super::*;
    use foxwire::ether::{EtherType, Frame};

    #[test]
    fn capture_records_wire_traffic() {
        let net = SimNet::ethernet_10mbps(1);
        let cap = net.capture();
        let a = net.attach(EthAddr::host(1));
        let _b = net.attach(EthAddr::host(2));
        let frame =
            Frame::new(EthAddr::host(2), EthAddr::host(1), EtherType::Ipv4, vec![9; 64]).encode().unwrap();
        a.send(frame.clone());
        net.advance_to(VirtualTime::from_millis(5));
        assert_eq!(cap.frame_count(), 1);
        let bytes = cap.bytes();
        // Global header (24) + record header (16) + frame.
        assert_eq!(bytes.len(), 24 + 16 + frame.len());
        assert_eq!(&bytes[24 + 16..], &frame[..]);
    }
}
