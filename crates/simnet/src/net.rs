//! The deterministic shared-Ethernet simulator.
//!
//! Model: a single half-duplex 10 Mb/s segment (a "hub", matching the
//! paper's isolated Ethernet). A frame handed to [`Port::send`] waits for
//! the medium, occupies it for its serialization time, and is delivered
//! to every other port whose address filter matches after the propagation
//! delay. Receive queues are bounded in *bytes* (default 24 KB — "we
//! leave the Mach buffer space at its standard 24K bytes"); arrivals that
//! do not fit are dropped and counted, which is exactly how the real
//! Mach kernel buffer lost packets under overrun.
//!
//! Fault injection follows smoltcp's example set: per-frame drop and
//! corruption chances, duplication, and bounded extra delay (reordering),
//! all drawn from one seeded RNG so runs are repeatable.

use crate::pcap::PcapSink;
use foxbasis::buf::PacketBuf;
use foxbasis::obs::{Event, EventSink, NO_CONN};
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxwire::ether::{EthAddr, EtherType, Frame};
use foxwire::ipv4::{IpProtocol, Ipv4Packet};
use foxwire::tcp::{TcpOption, TcpSegment};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Configuration of the simulated segment.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Link bandwidth in bits per second. The paper's Ethernet: 10 Mb/s.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub propagation: VirtualDuration,
    /// Per-port receive queue capacity in bytes (the Mach kernel buffer).
    pub rx_capacity: usize,
    /// Fault injection parameters.
    pub faults: FaultConfig,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bandwidth_bps: 10_000_000,
            propagation: VirtualDuration::from_micros(5),
            rx_capacity: 24 * 1024,
            faults: FaultConfig::default(),
        }
    }
}

impl NetConfig {
    /// A modern switched gigabit link: 1 Gb/s, 1 µs one-way propagation,
    /// and a receive ring deep enough that GRO-sized bursts are not
    /// dropped at the port. Pairs with [`crate::CostModel::modern_gbps`].
    pub fn gigabit() -> NetConfig {
        NetConfig {
            bandwidth_bps: 1_000_000_000,
            propagation: VirtualDuration::from_micros(1),
            rx_capacity: 256 * 1024,
            faults: FaultConfig::default(),
        }
    }
}

/// Fault-injection knobs (probabilities in `[0, 1]`).
#[derive(Clone, Debug, Default)]
pub struct FaultConfig {
    /// Chance a frame is silently dropped on the wire.
    pub drop_chance: f64,
    /// Chance one octet of a frame is flipped on the wire (the Ethernet
    /// FCS will catch it at the receiver, as the paper's footnote about
    /// Ethernet CRCs demands).
    pub corrupt_chance: f64,
    /// Chance a frame is delivered twice.
    pub duplicate_chance: f64,
    /// Maximum extra, random, per-frame delivery delay (causes
    /// reordering when nonzero).
    pub jitter: VirtualDuration,
    /// Gilbert–Elliott burst loss, good→bad transition: chance per
    /// frame of entering the bursty state. Zero disables the chain.
    pub burst_enter_chance: f64,
    /// Gilbert–Elliott bad→good transition: chance per frame of
    /// leaving the bursty state (so the mean burst length in frames is
    /// `1 / burst_exit_chance`).
    pub burst_exit_chance: f64,
    /// Drop chance while in the bursty state; the good state drops with
    /// the independent `drop_chance`.
    pub burst_loss_chance: f64,
    /// Per-sending-port link shaping — the segment's "personality".
    /// Index = transmitting port id; ports beyond the vector use the
    /// shared medium parameters. An empty vector (the default) is the
    /// symmetric Ethernet of every earlier experiment.
    pub shape: Vec<TxShape>,
    /// Drop-tail limit, in frames, on the queue of frames waiting for
    /// the medium (bufferbloat model: the queue itself is as deep as the
    /// configured limit; `None` = unbounded, the historical behaviour).
    pub queue_frames: Option<usize>,
    /// An MSS-clamping middlebox: every TCP SYN crossing the wire has
    /// its MSS option rewritten down to this value (checksums and FCS
    /// recomputed). Deterministic — no randomness is consumed.
    pub mss_clamp: Option<u16>,
    /// Chance a decodable TCP frame has one header field deterministically
    /// mutated in flight by the in-loop fuzzer (seq/ack bit flips, window
    /// zeroing, payload truncation, option garbling). Checksums are
    /// recomputed, so the mutation reaches the victim's TCP validation
    /// rather than dying at the FCS. Zero (the default) consumes no
    /// randomness.
    pub mutate_chance: f64,
}

/// Per-direction link shaping: overrides applied to frames sent by one
/// port (direction = transmitting port on this two-host segment).
#[derive(Clone, Debug, Default)]
pub struct TxShape {
    /// Serialization bandwidth for this direction; `None` inherits the
    /// segment's shared [`NetConfig::bandwidth_bps`].
    pub bandwidth_bps: Option<u64>,
    /// Extra one-way delay added on top of the segment's propagation.
    pub extra_delay: VirtualDuration,
}

impl FaultConfig {
    /// A lossy profile: `p` chance each of drop and corruption.
    pub fn lossy(p: f64) -> FaultConfig {
        FaultConfig { drop_chance: p, corrupt_chance: p, ..FaultConfig::default() }
    }

    /// A Gilbert–Elliott burst-loss profile: enter the bad state with
    /// chance `enter` per frame, leave it with chance `exit`, and drop
    /// each frame seen in the bad state with chance `loss`.
    pub fn bursty(enter: f64, exit: f64, loss: f64) -> FaultConfig {
        FaultConfig {
            burst_enter_chance: enter,
            burst_exit_chance: exit,
            burst_loss_chance: loss,
            ..FaultConfig::default()
        }
    }

    /// An asymmetric link: port 0 transmits at `fast_bps`, port 1 at
    /// `slow_bps`, with `slow_extra_delay` added in the slow direction
    /// (ADSL-style up/down mismatch).
    pub fn asymmetric(fast_bps: u64, slow_bps: u64, slow_extra_delay: VirtualDuration) -> FaultConfig {
        FaultConfig {
            shape: vec![
                TxShape { bandwidth_bps: Some(fast_bps), extra_delay: VirtualDuration::ZERO },
                TxShape { bandwidth_bps: Some(slow_bps), extra_delay: slow_extra_delay },
            ],
            ..FaultConfig::default()
        }
    }

    /// The dialup↔gigabit mismatch: port 0 answers at 1 Gb/s while port
    /// 1 crawls through a 56 kb/s modem with 60 ms of extra latency.
    pub fn dialup_mismatch() -> FaultConfig {
        FaultConfig::asymmetric(1_000_000_000, 56_000, VirtualDuration::from_millis(60))
    }

    /// A bufferbloat personality: the medium queue is `limit` frames
    /// deep — latency balloons as the queue fills, and only frame
    /// `limit + 1` is (drop-tail) lost.
    pub fn bufferbloat(limit: usize) -> FaultConfig {
        FaultConfig { queue_frames: Some(limit), ..FaultConfig::default() }
    }

    /// An MSS-clamping middlebox profile (e.g. a PPPoE box rewriting
    /// SYNs down to `mss`).
    pub fn clamped(mss: u16) -> FaultConfig {
        FaultConfig { mss_clamp: Some(mss), ..FaultConfig::default() }
    }

    /// An in-loop fuzzer profile: each decodable TCP frame is mutated
    /// with chance `p` (header-field flips, truncation, option garbling),
    /// deterministically under the segment's seed.
    pub fn fuzzing(p: f64) -> FaultConfig {
        FaultConfig { mutate_chance: p, ..FaultConfig::default() }
    }
}

/// Aggregate statistics of a segment.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames accepted for transmission.
    pub frames_sent: u64,
    /// Frame deliveries into receive queues (a broadcast counts once per
    /// receiving port).
    pub frames_delivered: u64,
    /// Frames dropped by fault injection.
    pub frames_dropped_fault: u64,
    /// Frames corrupted by fault injection.
    pub frames_corrupted: u64,
    /// Frames duplicated by fault injection.
    pub frames_duplicated: u64,
    /// Arrivals dropped because a receive queue was full.
    pub frames_dropped_overflow: u64,
    /// Frames dropped at the tail of a full (bufferbloat-limited)
    /// medium queue.
    pub frames_dropped_queue: u64,
    /// Frames mutated by the in-loop fuzzer.
    pub frames_mutated: u64,
    /// Frames rewritten by a middlebox hook (MSS clamping).
    pub frames_rewritten: u64,
    /// Payload bytes accepted for transmission.
    pub bytes_sent: u64,
}

struct Delivery {
    at: VirtualTime,
    seq: u64,
    port: usize,
    frame: PacketBuf,
}

impl PartialEq for Delivery {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Delivery {
    fn cmp(&self, o: &Self) -> Ordering {
        o.at.cmp(&self.at).then_with(|| o.seq.cmp(&self.seq))
    }
}

struct PortState {
    addr: EthAddr,
    promiscuous: bool,
    rx: VecDeque<PacketBuf>,
    rx_bytes: usize,
    rx_capacity: usize,
    overflow_drops: u64,
}

struct NetCore {
    now: VirtualTime,
    config: NetConfig,
    medium_free_at: VirtualTime,
    ports: Vec<PortState>,
    pending: BinaryHeap<Delivery>,
    next_seq: u64,
    rng: StdRng,
    stats: NetStats,
    capture: Option<PcapSink>,
    obs: EventSink,
    /// Gilbert–Elliott channel state: `true` while in the bursty (bad)
    /// state. The chain advances one step per transmitted frame.
    burst_bad: bool,
    /// Serialization-end times of frames still in (or entering) the
    /// medium queue; consulted only when `faults.queue_frames` is set.
    tx_queue: VecDeque<VirtualTime>,
}

impl NetCore {
    fn transmit(&mut self, from: usize, at: VirtualTime, frame: PacketBuf) {
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += frame.len() as u64;
        // FIFO arbitration for the shared medium. `at` lets a host hand
        // over a frame "in the future" (when its simulated CPU finishes
        // building it) without forcing the global clock forward first.
        let arrival = self.now.max(at);
        // Bufferbloat drop-tail: frames whose serialization has not
        // finished by the moment this one arrives are still queued.
        if let Some(limit) = self.config.faults.queue_frames {
            while self.tx_queue.front().is_some_and(|&e| e <= arrival) {
                self.tx_queue.pop_front();
            }
            if self.tx_queue.len() >= limit {
                self.stats.frames_dropped_queue += 1;
                self.obs.emit_for(arrival, from as u32, NO_CONN, || Event::FrameDrop { reason: "queue" });
                return;
            }
        }
        let start = arrival.max(self.medium_free_at);
        let bandwidth = self
            .config
            .faults
            .shape
            .get(from)
            .and_then(|s| s.bandwidth_bps)
            .unwrap_or(self.config.bandwidth_bps);
        let serialize = VirtualDuration::from_micros((frame.len() as u64 * 8 * 1_000_000) / bandwidth);
        let end = start + serialize;
        self.medium_free_at = end;
        if self.config.faults.queue_frames.is_some() {
            self.tx_queue.push_back(end);
        }

        // Medium-level faults: one roll per frame, shared by all
        // receivers (it is one wire). The Gilbert–Elliott chain steps
        // first; in the bad state the burst loss chance replaces the
        // independent one.
        if self.burst_bad {
            if self.rng.gen_bool(self.config.faults.burst_exit_chance) {
                self.burst_bad = false;
            }
        } else if self.rng.gen_bool(self.config.faults.burst_enter_chance) {
            self.burst_bad = true;
        }
        let drop_p = if self.burst_bad {
            self.config.faults.burst_loss_chance
        } else {
            self.config.faults.drop_chance
        };
        if self.rng.gen_bool(drop_p) {
            self.stats.frames_dropped_fault += 1;
            self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameDrop { reason: "fault" });
            return;
        }
        let mut frame = frame;
        if self.rng.gen_bool(self.config.faults.corrupt_chance) && !frame.is_empty() {
            // The sender may still reference this buffer (e.g. in a
            // retransmission queue), so corruption works on a private
            // deep copy — the only copy the wire ever makes.
            let mut owned = frame.clone_owned();
            let at = self.rng.gen_range(0..owned.len());
            let bit = self.rng.gen_range(0u32..8);
            {
                let mut b = owned.bytes_mut().expect("clone_owned is unique");
                b[at] ^= 1u8 << bit;
            }
            frame = owned;
            self.stats.frames_corrupted += 1;
            self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameCorrupt);
        }
        // Middlebox rewrite: deterministic MSS clamping of SYN options.
        // No randomness is consumed.
        if let Some(mss) = self.config.faults.mss_clamp {
            if let Some(rewritten) = clamp_mss(&frame, mss) {
                frame = rewritten;
                self.stats.frames_rewritten += 1;
                self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameRewrite { kind: "mss_clamp" });
            }
        }
        // In-loop fuzzer: mutate one header field of a live TCP segment,
        // re-encoding with valid checksums so the mutation reaches the
        // victim's TCP validation. The roll happens only when the chance
        // is nonzero so default configurations replay their historical
        // RNG sequence exactly.
        if self.config.faults.mutate_chance > 0.0 && self.rng.gen_bool(self.config.faults.mutate_chance) {
            if let Some((mutated, kind)) = mutate_tcp(&mut self.rng, &frame) {
                frame = mutated;
                self.stats.frames_mutated += 1;
                self.obs.emit_for(end, from as u32, NO_CONN, || Event::FrameMutate { kind });
            }
        }
        // Record what actually went on the wire (post-corruption), like
        // a passive tap would see it.
        if let Some(cap) = &self.capture {
            cap.record(end, &frame.bytes());
        }
        let copies = if self.rng.gen_bool(self.config.faults.duplicate_chance) {
            self.stats.frames_duplicated += 1;
            2
        } else {
            1
        };
        let dst = frame_dst(&frame);
        let extra_delay = self.config.faults.shape.get(from).map_or(VirtualDuration::ZERO, |s| s.extra_delay);
        for _ in 0..copies {
            let jitter = if self.config.faults.jitter.is_zero() {
                VirtualDuration::ZERO
            } else {
                VirtualDuration::from_micros(self.rng.gen_range(0..=self.config.faults.jitter.as_micros()))
            };
            let at = end + self.config.propagation + extra_delay + jitter;
            for (i, p) in self.ports.iter().enumerate() {
                if i == from {
                    continue; // a port does not hear its own transmission
                }
                let matches = p.promiscuous
                    || dst == Some(p.addr)
                    || dst == Some(EthAddr::BROADCAST)
                    || dst.is_some_and(|d| d.is_multicast());
                if matches {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.pending.push(Delivery { at, seq, port: i, frame: frame.clone() });
                }
            }
        }
    }

    fn advance_to(&mut self, t: VirtualTime) {
        assert!(t >= self.now, "network clock may not run backwards");
        while let Some(top) = self.pending.peek() {
            if top.at > t {
                break;
            }
            let d = self.pending.pop().expect("peeked");
            self.now = self.now.max(d.at);
            let p = &mut self.ports[d.port];
            if p.rx_bytes + d.frame.len() > p.rx_capacity {
                p.overflow_drops += 1;
                self.stats.frames_dropped_overflow += 1;
                self.obs.emit_for(d.at, d.port as u32, NO_CONN, || Event::FrameDrop { reason: "overflow" });
            } else {
                p.rx_bytes += d.frame.len();
                let bytes = d.frame.len() as u32;
                p.rx.push_back(d.frame);
                self.stats.frames_delivered += 1;
                self.obs.emit_for(d.at, d.port as u32, NO_CONN, || Event::FrameDeliver { bytes });
            }
        }
        self.now = t;
    }
}

/// Decodes a frame down to its TCP segment, or `None` for anything the
/// middlebox/fuzzer hooks should pass through untouched (non-IPv4,
/// non-TCP, fragments, undecodable bytes).
fn decode_tcp(frame: &PacketBuf) -> Option<(Frame, Ipv4Packet, TcpSegment)> {
    let eth = Frame::decode_buf(frame).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Packet::decode_buf(&eth.payload).ok()?;
    if ip.header.protocol != IpProtocol::Tcp || ip.header.is_fragment() {
        return None;
    }
    let tcp = TcpSegment::decode_buf(&ip.payload, None).ok()?;
    Some((eth, ip, tcp))
}

/// Re-encodes a rewritten TCP segment into a full frame with correct
/// TCP checksum, IP header checksum, and Ethernet FCS.
fn encode_tcp(eth: &Frame, ip: &Ipv4Packet, tcp: &TcpSegment) -> Option<PacketBuf> {
    let tcp_bytes = tcp.encode_v4(Some((ip.header.src, ip.header.dst))).ok()?;
    let pkt = Ipv4Packet { header: ip.header.clone(), payload: PacketBuf::from_vec(tcp_bytes) };
    let ip_bytes = pkt.encode().ok()?;
    Frame::new(eth.dst, eth.src, EtherType::Ipv4, ip_bytes).encode_buf().ok()
}

/// The MSS-clamping middlebox: rewrites the MSS option of a TCP SYN
/// down to `mss`. Returns `None` when the frame is left untouched.
fn clamp_mss(frame: &PacketBuf, mss: u16) -> Option<PacketBuf> {
    let (eth, ip, mut tcp) = decode_tcp(frame)?;
    if !tcp.header.flags.syn {
        return None;
    }
    let mut changed = false;
    for opt in &mut tcp.header.options {
        if let TcpOption::MaxSegmentSize(v) = opt {
            if *v > mss {
                *opt = TcpOption::MaxSegmentSize(mss);
                changed = true;
            }
        }
    }
    if !changed {
        return None;
    }
    encode_tcp(&eth, &ip, &tcp)
}

/// The in-loop fuzzer: applies one seeded mutation to a live TCP
/// segment's header (or payload length), re-encoding with valid
/// checksums. The mutation corpus mirrors the `decode_no_panic` fuzz
/// harness: bit flips in sequencing fields, window zeroing, payload
/// truncation, and option garbling with a wrong length.
fn mutate_tcp(rng: &mut StdRng, frame: &PacketBuf) -> Option<(PacketBuf, &'static str)> {
    let (eth, ip, mut tcp) = decode_tcp(frame)?;
    let kind = match rng.gen_range(0u8..5) {
        0 => {
            tcp.header.seq = Seq(tcp.header.seq.0 ^ (1u32 << rng.gen_range(0u32..32)));
            "flip_seq"
        }
        1 => {
            tcp.header.ack = Seq(tcp.header.ack.0 ^ (1u32 << rng.gen_range(0u32..32)));
            "flip_ack"
        }
        2 => {
            tcp.header.window = 0;
            "zero_window"
        }
        3 => {
            let len = tcp.payload.len();
            if len > 0 {
                let cut = rng.gen_range(0..len);
                tcp.payload = tcp.payload.slice(0, cut);
            }
            "truncate"
        }
        _ => {
            // A known option kind (MSS = 2) with an impossible length:
            // the receiver's decoder must reject the segment cleanly.
            tcp.header.options.push(TcpOption::Unknown(2, vec![0]));
            "garble_options"
        }
    };
    encode_tcp(&eth, &ip, &tcp).map(|f| (f, kind))
}

fn frame_dst(frame: &PacketBuf) -> Option<EthAddr> {
    if frame.len() < 6 {
        return None;
    }
    let mut a = [0u8; 6];
    a.copy_from_slice(&frame.bytes()[..6]);
    Some(EthAddr(a))
}

/// A shared Ethernet segment. Cloning the handle shares the segment.
#[derive(Clone)]
pub struct SimNet {
    core: Rc<RefCell<NetCore>>,
}

impl SimNet {
    /// A segment with the given configuration and RNG seed.
    pub fn new(config: NetConfig, seed: u64) -> SimNet {
        SimNet {
            core: Rc::new(RefCell::new(NetCore {
                now: VirtualTime::ZERO,
                medium_free_at: VirtualTime::ZERO,
                config,
                ports: Vec::new(),
                pending: BinaryHeap::new(),
                next_seq: 0,
                rng: StdRng::seed_from_u64(seed),
                stats: NetStats::default(),
                capture: None,
                obs: EventSink::off(),
                burst_bad: false,
                tx_queue: VecDeque::new(),
            })),
        }
    }

    /// A default 10 Mb/s fault-free segment.
    pub fn ethernet_10mbps(seed: u64) -> SimNet {
        SimNet::new(NetConfig::default(), seed)
    }

    /// Attaches a station with MAC address `addr`; returns its port.
    pub fn attach(&self, addr: EthAddr) -> Port {
        let mut core = self.core.borrow_mut();
        let rx_capacity = core.config.rx_capacity;
        core.ports.push(PortState {
            addr,
            promiscuous: false,
            rx: VecDeque::new(),
            rx_bytes: 0,
            rx_capacity,
            overflow_drops: 0,
        });
        Port { net: self.core.clone(), id: core.ports.len() - 1 }
    }

    /// Current network time.
    pub fn now(&self) -> VirtualTime {
        self.core.borrow().now
    }

    /// Time of the next pending delivery, if any.
    pub fn next_delivery(&self) -> Option<VirtualTime> {
        self.core.borrow().pending.peek().map(|d| d.at)
    }

    /// Advances the clock, moving due frames into receive queues.
    pub fn advance_to(&self, t: VirtualTime) {
        self.core.borrow_mut().advance_to(t);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.core.borrow().stats
    }

    /// Attaches a pcap tap; every frame on the medium (as the wire sees
    /// it, after any injected corruption) is recorded with its virtual
    /// timestamp. Returns the sink to read or write out.
    pub fn capture(&self) -> PcapSink {
        let sink = PcapSink::new();
        self.core.borrow_mut().capture = Some(sink.clone());
        sink
    }

    /// Installs an event sink: frame drop/corrupt/deliver events are
    /// recorded, attributed to the port (= host id) concerned (frame
    /// *transmission* is emitted by the device layer, which knows when
    /// the host's CPU actually finished the frame). The default sink is
    /// off and records nothing.
    pub fn set_obs(&self, sink: EventSink) {
        self.core.borrow_mut().obs = sink;
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        write!(f, "SimNet(now={:?}, ports={}, pending={})", core.now, core.ports.len(), core.pending.len())
    }
}

/// One station's attachment to the segment.
#[derive(Clone)]
pub struct Port {
    net: Rc<RefCell<NetCore>>,
    id: usize,
}

impl Port {
    /// The station's configured MAC address.
    pub fn addr(&self) -> EthAddr {
        self.net.borrow().ports[self.id].addr
    }

    /// Enables reception of all frames regardless of destination.
    pub fn set_promiscuous(&self, on: bool) {
        self.net.borrow_mut().ports[self.id].promiscuous = on;
    }

    /// Hands a frame to the medium at the current network time. The
    /// buffer is delivered to matching ports by reference-count bump —
    /// the wire itself copies nothing (except under injected
    /// corruption).
    pub fn send(&self, frame: impl Into<PacketBuf>) {
        let mut core = self.net.borrow_mut();
        let id = self.id;
        let now = core.now;
        core.transmit(id, now, frame.into());
    }

    /// Hands a frame to the medium at time `at` (which may be later than
    /// the network clock — the host's CPU finished building the frame
    /// then). `at` earlier than the network clock is clamped to now.
    pub fn send_at(&self, at: VirtualTime, frame: impl Into<PacketBuf>) {
        let mut core = self.net.borrow_mut();
        let id = self.id;
        core.transmit(id, at, frame.into());
    }

    /// Takes the next received frame, if any.
    pub fn recv(&self) -> Option<PacketBuf> {
        let mut core = self.net.borrow_mut();
        let p = &mut core.ports[self.id];
        let frame = p.rx.pop_front();
        if let Some(f) = &frame {
            p.rx_bytes -= f.len();
        }
        frame
    }

    /// True if a frame is waiting.
    pub fn has_rx(&self) -> bool {
        !self.net.borrow().ports[self.id].rx.is_empty()
    }

    /// Arrivals this port lost to a full receive queue.
    pub fn overflow_drops(&self) -> u64 {
        self.net.borrow().ports[self.id].overflow_drops
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Port({}, {:?})", self.id, self.addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxwire::ether::{EtherType, Frame};

    fn frame_to(dst: EthAddr, src: EthAddr, n: usize) -> Vec<u8> {
        Frame::new(dst, src, EtherType::Other(0x1234), vec![0xab; n]).encode().unwrap()
    }

    #[test]
    fn unicast_reaches_only_the_addressee() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let c = net.attach(EthAddr::host(3));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.has_rx());
        assert!(!c.has_rx());
        assert!(!a.has_rx(), "sender does not hear its own frame");
        let got = b.recv().unwrap();
        assert!(Frame::decode(&got.bytes()).is_ok());
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let c = net.attach(EthAddr::host(3));
        a.send(frame_to(EthAddr::BROADCAST, EthAddr::host(1), 50));
        net.advance_to(VirtualTime::from_millis(1));
        assert!(b.has_rx() && c.has_rx());
    }

    #[test]
    fn promiscuous_port_hears_all() {
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let _b = net.attach(EthAddr::host(2));
        let snoop = net.attach(EthAddr::host(9));
        snoop.set_promiscuous(true);
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 10));
        net.advance_to(VirtualTime::from_millis(1));
        assert!(snoop.has_rx());
    }

    #[test]
    fn serialization_delay_matches_bandwidth() {
        // 1250 payload bytes → frame = 14 + 1250 + 4 = 1268 bytes
        // = 10144 bits at 10 Mb/s = 1014.4 µs plus 5 µs propagation.
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        let at = net.next_delivery().unwrap();
        assert_eq!(at.as_micros(), 1014 + 5);
        net.advance_to(at);
        assert!(b.has_rx());
    }

    #[test]
    fn medium_is_serialized_fifo() {
        // Two back-to-back frames: the second cannot start until the
        // first finishes serializing.
        let net = SimNet::ethernet_10mbps(1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let _ = b;
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        net.advance_to(VirtualTime::from_millis(50));
        let s = net.stats();
        assert_eq!(s.frames_delivered, 2);
        // Both frames delivered; the second ~1014 µs after the first.
        // (Verified via medium_free_at: total occupied 2028 µs.)
        assert_eq!(net.now(), VirtualTime::from_millis(50));
    }

    #[test]
    fn rx_queue_overflow_drops_and_counts() {
        let cfg = NetConfig { rx_capacity: 200, ..NetConfig::default() }; // tiny "Mach buffer"
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..5 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        }
        net.advance_to(VirtualTime::from_millis(100));
        // Each encoded frame is 118 bytes; only one fits in 200.
        assert_eq!(b.overflow_drops(), 4);
        assert!(b.recv().is_some());
        assert!(b.recv().is_none());
        assert_eq!(net.stats().frames_dropped_overflow, 4);
    }

    #[test]
    fn draining_rx_frees_capacity() {
        let cfg = NetConfig { rx_capacity: 130, ..NetConfig::default() };
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.recv().is_some());
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 100));
        net.advance_to(VirtualTime::from_millis(20));
        assert!(b.recv().is_some(), "capacity was freed by the first recv");
    }

    #[test]
    fn drop_fault_loses_frames() {
        let mut cfg = NetConfig::default();
        cfg.faults.drop_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(!b.has_rx());
        assert_eq!(net.stats().frames_dropped_fault, 1);
    }

    #[test]
    fn corruption_fault_is_caught_by_fcs() {
        let mut cfg = NetConfig::default();
        cfg.faults.corrupt_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        let got = b.recv().unwrap();
        assert!(Frame::decode(&got.bytes()).is_err(), "FCS must catch wire corruption");
        assert_eq!(net.stats().frames_corrupted, 1);
    }

    #[test]
    fn duplication_fault_delivers_twice() {
        let mut cfg = NetConfig::default();
        cfg.faults.duplicate_chance = 1.0;
        let net = SimNet::new(cfg, 42);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        net.advance_to(VirtualTime::from_millis(10));
        assert!(b.recv().is_some());
        assert!(b.recv().is_some());
        assert_eq!(net.stats().frames_duplicated, 1);
    }

    #[test]
    fn burst_loss_clusters_drops() {
        // Pinned chain: once entered, the bad state drops everything
        // until exit. enter=1 ⇒ the first frame already steps into the
        // bad state; exit=0 ⇒ it never leaves.
        let cfg = NetConfig { faults: FaultConfig::bursty(1.0, 0.0, 1.0), ..NetConfig::default() };
        let net = SimNet::new(cfg, 3);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..10 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        }
        net.advance_to(VirtualTime::from_millis(100));
        assert_eq!(net.stats().frames_dropped_fault, 10, "all frames fall in the burst");
        assert!(!b.has_rx());
    }

    #[test]
    fn burst_loss_spares_good_state() {
        // enter=0 ⇒ the chain never leaves the good state; the burst
        // loss chance must then be irrelevant.
        let cfg = NetConfig { faults: FaultConfig::bursty(0.0, 0.5, 1.0), ..NetConfig::default() };
        let net = SimNet::new(cfg, 3);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..10 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
        }
        net.advance_to(VirtualTime::from_millis(100));
        assert_eq!(net.stats().frames_dropped_fault, 0);
        let mut got = 0;
        while b.recv().is_some() {
            got += 1;
        }
        assert_eq!(got, 10);
    }

    #[test]
    fn burst_runs_are_longer_than_independent_runs() {
        // With the same long-run loss rate (~25%), the Gilbert–Elliott
        // chain must produce a longer maximum run of consecutive drops
        // than independent losses do. Drop/delivery order is recovered
        // from the per-frame fate: one frame per advance, checked right
        // after.
        let run_lengths = |faults: FaultConfig| {
            let cfg = NetConfig { faults, ..NetConfig::default() };
            let net = SimNet::new(cfg, 11);
            let a = net.attach(EthAddr::host(1));
            let b = net.attach(EthAddr::host(2));
            let mut max_run = 0u32;
            let mut run = 0u32;
            let mut t = VirtualTime::ZERO;
            for _ in 0..400 {
                a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64));
                t += VirtualDuration::from_millis(1);
                net.advance_to(t);
                if b.recv().is_some() {
                    run = 0;
                } else {
                    run += 1;
                    max_run = max_run.max(run);
                }
            }
            max_run
        };
        // Stationary loss of bursty(1/30, 1/10, 1.0): bad-state share
        // = enter/(enter+exit) = 0.25, dropping everything while bad.
        let bursty = run_lengths(FaultConfig::bursty(1.0 / 30.0, 0.1, 1.0));
        let independent = run_lengths(FaultConfig { drop_chance: 0.25, ..FaultConfig::default() });
        assert!(
            bursty > independent,
            "burst max run {bursty} should exceed independent max run {independent}"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed| {
            let cfg = NetConfig {
                faults: FaultConfig { jitter: VirtualDuration::from_micros(500), ..FaultConfig::lossy(0.3) },
                ..NetConfig::default()
            };
            let net = SimNet::new(cfg, seed);
            let a = net.attach(EthAddr::host(1));
            let b = net.attach(EthAddr::host(2));
            for i in 0..50 {
                a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 64 + i));
            }
            net.advance_to(VirtualTime::from_millis(200));
            let mut got = Vec::new();
            while let Some(f) = b.recv() {
                got.push(f);
            }
            (got, net.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1, "different seeds should diverge");
    }

    fn tcp_frame(src_host: u8, dst_host: u8, flags: foxwire::tcp::TcpFlags, payload: &[u8]) -> Vec<u8> {
        use foxwire::ipv4::{Ipv4Addr, Ipv4Header};
        use foxwire::tcp::TcpHeader;
        let src_ip = Ipv4Addr::new(10, 0, 0, src_host);
        let dst_ip = Ipv4Addr::new(10, 0, 0, dst_host);
        let mut h = TcpHeader::new(4000, 80);
        h.seq = Seq(1000);
        h.ack = Seq(2000);
        h.flags = flags;
        h.window = 4096;
        if flags.syn {
            h.options.push(TcpOption::MaxSegmentSize(1460));
        }
        let seg = TcpSegment { header: h, payload: payload.into() };
        let tcp_bytes = seg.encode_v4(Some((src_ip, dst_ip))).unwrap();
        let pkt = Ipv4Packet {
            header: Ipv4Header::new(IpProtocol::Tcp, src_ip, dst_ip),
            payload: PacketBuf::from_vec(tcp_bytes),
        };
        Frame::new(EthAddr::host(dst_host), EthAddr::host(src_host), EtherType::Ipv4, pkt.encode().unwrap())
            .encode()
            .unwrap()
    }

    fn delivered_tcp(frame: &PacketBuf) -> TcpSegment {
        let eth = Frame::decode(&frame.bytes()).expect("FCS valid after rewrite");
        let ip = Ipv4Packet::decode_buf(&eth.payload).unwrap();
        TcpSegment::decode_buf(&ip.payload, None).unwrap()
    }

    #[test]
    fn asymmetric_shape_slows_one_direction() {
        let cfg = NetConfig {
            faults: FaultConfig::asymmetric(10_000_000, 1_000_000, VirtualDuration::from_millis(1)),
            ..NetConfig::default()
        };
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1)); // port 0: fast direction
        let b = net.attach(EthAddr::host(2)); // port 1: slow direction
        a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        let fast = net.next_delivery().unwrap();
        assert_eq!(fast.as_micros(), 1014 + 5, "fast direction at the shared rate");
        net.advance_to(fast);
        assert!(b.recv().is_some());
        b.send(frame_to(EthAddr::host(1), EthAddr::host(2), 1250));
        let slow = net.next_delivery().unwrap();
        // 10144 bits at 1 Mb/s = 10144 µs, + 5 µs propagation + 1 ms extra.
        assert_eq!(slow.as_micros() - fast.as_micros(), 10144 + 5 + 1000);
    }

    #[test]
    fn bufferbloat_queue_drops_at_the_tail() {
        let cfg = NetConfig { faults: FaultConfig::bufferbloat(2), ..NetConfig::default() };
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        for _ in 0..5 {
            a.send(frame_to(EthAddr::host(2), EthAddr::host(1), 1250));
        }
        net.advance_to(VirtualTime::from_millis(100));
        let s = net.stats();
        assert_eq!(s.frames_dropped_queue, 3, "only the queue depth survives");
        assert_eq!(s.frames_delivered, 2);
        assert!(b.recv().is_some() && b.recv().is_some() && b.recv().is_none());
    }

    #[test]
    fn mss_clamp_rewrites_syn_only() {
        let cfg = NetConfig { faults: FaultConfig::clamped(536), ..NetConfig::default() };
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        a.send(tcp_frame(1, 2, foxwire::tcp::TcpFlags::SYN, b""));
        a.send(tcp_frame(1, 2, foxwire::tcp::TcpFlags::ACK, b"data"));
        net.advance_to(VirtualTime::from_millis(100));
        let syn = delivered_tcp(&b.recv().unwrap());
        assert_eq!(syn.header.mss(), Some(536), "SYN MSS clamped");
        let data = delivered_tcp(&b.recv().unwrap());
        assert_eq!(&data.payload.bytes()[..], b"data", "non-SYN untouched");
        assert_eq!(net.stats().frames_rewritten, 1);
    }

    #[test]
    fn mutator_is_deterministic_and_preserves_fcs() {
        let run = |seed| {
            let cfg = NetConfig { faults: FaultConfig::fuzzing(1.0), ..NetConfig::default() };
            let net = SimNet::new(cfg, seed);
            let a = net.attach(EthAddr::host(1));
            let b = net.attach(EthAddr::host(2));
            for i in 0..20u8 {
                a.send(tcp_frame(1, 2, foxwire::tcp::TcpFlags::ACK, &[i; 100]));
            }
            net.advance_to(VirtualTime::from_millis(100));
            let mut got = Vec::new();
            while let Some(f) = b.recv() {
                // Checksums are recomputed: every mutated frame still
                // passes the FCS and reaches TCP validation.
                assert!(Frame::decode(&f.bytes()).is_ok());
                got.push(f.bytes().to_vec());
            }
            (got, net.stats())
        };
        let (got, stats) = run(9);
        assert_eq!(stats.frames_mutated, 20);
        assert_eq!((got, stats), run(9), "same seed, bit-identical frames");
    }

    #[test]
    fn non_tcp_frames_pass_hooks_untouched() {
        let mut cfg = NetConfig::default();
        cfg.faults.mss_clamp = Some(536);
        cfg.faults.mutate_chance = 1.0;
        let net = SimNet::new(cfg, 1);
        let a = net.attach(EthAddr::host(1));
        let b = net.attach(EthAddr::host(2));
        let raw = frame_to(EthAddr::host(2), EthAddr::host(1), 64);
        a.send(raw.clone());
        net.advance_to(VirtualTime::from_millis(10));
        assert_eq!(b.recv().unwrap().bytes().to_vec(), raw);
        let s = net.stats();
        assert_eq!((s.frames_mutated, s.frames_rewritten), (0, 0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn network_clock_cannot_run_backwards() {
        let net = SimNet::ethernet_10mbps(1);
        net.advance_to(VirtualTime::from_millis(5));
        net.advance_to(VirtualTime::from_millis(1));
    }
}

#[cfg(test)]
mod pcap_tests {
    use super::*;
    use foxwire::ether::{EtherType, Frame};

    #[test]
    fn capture_records_wire_traffic() {
        let net = SimNet::ethernet_10mbps(1);
        let cap = net.capture();
        let a = net.attach(EthAddr::host(1));
        let _b = net.attach(EthAddr::host(2));
        let frame =
            Frame::new(EthAddr::host(2), EthAddr::host(1), EtherType::Ipv4, vec![9; 64]).encode().unwrap();
        a.send(frame.clone());
        net.advance_to(VirtualTime::from_millis(5));
        assert_eq!(cap.frame_count(), 1);
        let bytes = cap.bytes();
        // Global header (24) + record header (16) + frame.
        assert_eq!(bytes.len(), 24 + 16 + frame.len());
        assert_eq!(&bytes[24 + 16..], &frame[..]);
    }
}
