//! Totality of every wire decoder: `decode(arbitrary bytes)` returns
//! `Ok` or `Err`, never panics. This is the property the `rx_panic`
//! foxlint rule enforces lexically — here it is exercised dynamically,
//! with adversarial inputs that include truncations of valid packets
//! (the inputs most likely to defeat a length check).

use foxbasis::buf::PacketBuf;
use foxwire::ipv4::Ipv4Addr;
use foxwire::{ArpPacket, Frame, IcmpEcho, Ipv4Packet, TcpSegment, UdpDatagram};
use proptest::prelude::*;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

proptest! {
    #[test]
    fn arp_decode_total(buf in bytes(64)) {
        let _ = ArpPacket::decode(&buf);
    }

    #[test]
    fn ether_decode_total(buf in bytes(128)) {
        let _ = Frame::decode(&buf);
        let _ = Frame::decode_buf(&PacketBuf::from_vec(buf));
    }

    #[test]
    fn icmp_decode_total(buf in bytes(96)) {
        let _ = IcmpEcho::decode(&buf);
    }

    #[test]
    fn ipv4_decode_total(buf in bytes(128)) {
        let _ = Ipv4Packet::decode(&buf);
    }

    #[test]
    fn tcp_decode_total(buf in bytes(128)) {
        let _ = TcpSegment::decode(&buf, None);
        let _ = TcpSegment::decode_buf(&PacketBuf::from_vec(buf), Some(0x1234));
    }

    #[test]
    fn udp_decode_total(buf in bytes(96)) {
        let _ = UdpDatagram::decode(&buf, None);
        let _ = UdpDatagram::decode_v4(&buf, Some((A, B)));
        let _ = UdpDatagram::decode_buf(&PacketBuf::from_vec(buf), Some(0x1234));
    }

    // Adversarial option lists: arbitrary bytes spliced into the option
    // region of an otherwise valid header. Exercises every option
    // parser (wscale, SACK-permitted, SACK blocks, timestamps, MSS),
    // RFC 1122 unknown-kind skipping, truncated lengths, and the
    // `len < 2` check that prevents a zero-length-option parse loop.
    #[test]
    fn garbled_option_lists_never_panic_or_loop(opts in bytes(40)) {
        let mut header = foxwire::TcpHeader::new(2000, 5000);
        header.window = 4096;
        let seg = TcpSegment { header, payload: PacketBuf::from_vec(b"x".to_vec()) };
        let mut wire = seg.encode(None).unwrap();
        // Rewrite the data offset to cover the injected option bytes
        // (rounded down to a 32-bit boundary) and splice them in.
        let opt_len = opts.len() & !3;
        wire.splice(20..20, opts[..opt_len].iter().copied());
        wire[12] = (((20 + opt_len) / 4) as u8) << 4;
        let _ = TcpSegment::decode(&wire, None);
    }

    // Well-formed option kinds with every possible length byte: a known
    // kind with a wrong length must come back `Err`, never a panic or
    // a mis-parse that claims the following option's bytes.
    #[test]
    fn known_option_kinds_with_arbitrary_lengths(kind in 0u8..=16, len: u8, fill: u8) {
        let mut header = foxwire::TcpHeader::new(2000, 5000);
        header.window = 4096;
        let seg = TcpSegment { header, payload: PacketBuf::new() };
        let mut wire = seg.encode(None).unwrap();
        let mut opts = vec![kind, len];
        opts.resize(40, fill);
        wire.splice(20..20, opts.iter().copied());
        wire[12] = (((20 + 40) / 4) as u8) << 4;
        let _ = TcpSegment::decode(&wire, None);
    }

    // Truncations and single-byte corruptions of well-formed packets:
    // the adversarial cases a pure random byte soup rarely reaches
    // (valid length fields with one byte missing, bad option lengths
    // inside an otherwise valid TCP header, ...).
    #[test]
    fn truncated_valid_packets_never_panic(cut in 0usize..200, flip in 0usize..200) {
        let mut header = foxwire::TcpHeader::new(2000, 5000);
        header.window = 4096;
        header.options = vec![
            foxwire::TcpOption::MaxSegmentSize(1460),
            foxwire::TcpOption::WindowScale(7),
            foxwire::TcpOption::SackPermitted,
            foxwire::TcpOption::Timestamps(1000, 2000),
        ];
        let tcp = TcpSegment { header, payload: PacketBuf::from_vec(b"payload".to_vec()) };
        let seg = tcp.encode_v4(Some((A, B))).unwrap();
        let ip = Ipv4Packet {
            header: foxwire::ipv4::Ipv4Header::new(foxwire::IpProtocol::Tcp, A, B),
            payload: PacketBuf::from_vec(seg.clone()),
        }
        .encode()
        .unwrap();
        for base in [&seg, &ip] {
            let cut = cut.min(base.len());
            let _ = TcpSegment::decode(&base[..cut], None);
            let _ = Ipv4Packet::decode(&base[..cut]);
            let mut mutated = base.clone();
            let flip = flip % mutated.len().max(1);
            if let Some(b) = mutated.get_mut(flip) {
                *b = b.wrapping_add(1);
            }
            let _ = TcpSegment::decode(&mutated, None);
            let _ = Ipv4Packet::decode(&mutated);
            let _ = UdpDatagram::decode_v4(&mutated, Some((A, B)));
            let _ = ArpPacket::decode(&mutated);
            let _ = IcmpEcho::decode(&mutated);
        }
    }
}
