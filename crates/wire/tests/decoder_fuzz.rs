//! Totality fuzz: no byte sequence may panic any decoder. ("In SML it is
//! impossible to dereference an integer" — and in Rust it is impossible
//! to read out of bounds; but a decoder could still *panic*, which for
//! systems code is a crash. These properties pin down graceful failure.)

use foxwire::arp::ArpPacket;
use foxwire::ether::Frame;
use foxwire::icmp::IcmpEcho;
use foxwire::ipv4::{Ipv4Addr, Ipv4Packet};
use foxwire::tcp::TcpSegment;
use foxwire::udp::UdpDatagram;
use proptest::prelude::*;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn no_decoder_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = Frame::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = Ipv4Packet::decode(&bytes);
        let _ = IcmpEcho::decode(&bytes);
        let _ = UdpDatagram::decode(&bytes, None);
        let _ = UdpDatagram::decode_v4(&bytes, Some((A, B)));
        let _ = TcpSegment::decode(&bytes, None);
        let _ = TcpSegment::decode_v4(&bytes, Some((A, B)));
    }

    /// Truncating a valid packet at any point yields an error, never a
    /// panic and never silent acceptance of a shorter packet as valid.
    #[test]
    fn truncation_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut in 0usize..400,
    ) {
        let mut h = foxwire::tcp::TcpHeader::new(1, 2);
        h.flags = foxwire::tcp::TcpFlags::ACK;
        let seg = TcpSegment { header: h, payload: payload.clone().into() };
        let bytes = seg.encode_v4(Some((A, B))).unwrap();
        let cut = cut.min(bytes.len());
        let _ = TcpSegment::decode_v4(&bytes[..cut], Some((A, B)));

        let ip = Ipv4Packet {
            header: foxwire::ipv4::Ipv4Header::new(foxwire::ipv4::IpProtocol::Tcp, A, B),
            payload: payload.into(),
        };
        let bytes = ip.encode().unwrap();
        let cut2 = cut.min(bytes.len());
        if cut2 < bytes.len() {
            prop_assert!(Ipv4Packet::decode(&bytes[..cut2]).is_err(), "short IPv4 must not validate");
        }
    }

    /// Decoding valid frames through a layered path (Frame -> Ipv4 ->
    /// Tcp) never panics even when inner layers are garbage.
    #[test]
    fn layered_garbage_is_contained(inner in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let f = Frame::new(
            foxwire::ether::EthAddr::host(2),
            foxwire::ether::EthAddr::host(1),
            foxwire::ether::EtherType::Ipv4,
            inner,
        );
        let bytes = f.encode().unwrap();
        let decoded = Frame::decode(&bytes).unwrap();
        if let Ok(ip) = Ipv4Packet::decode_buf(&decoded.payload) {
            let _ = TcpSegment::decode_buf(&ip.payload, None);
            let _ = TcpSegment::decode_v4(&ip.payload.bytes(), Some((ip.header.src, ip.header.dst)));
            let _ = UdpDatagram::decode_v4(&ip.payload.bytes(), Some((ip.header.src, ip.header.dst)));
            let _ = IcmpEcho::decode(&ip.payload.bytes());
        }
    }
}
