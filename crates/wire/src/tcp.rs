//! The TCP header (RFC 793 §3.1) — segment externalization and
//! internalization, the job of the paper's Action module.

use crate::bytes::{range, ByteReader};
use crate::ipv4::{IpProtocol, Ipv4Addr};
use crate::{need, pseudo, WireError};
use foxbasis::buf::PacketBuf;
use foxbasis::seq::Seq;
use std::fmt;

/// Length of the option-free TCP header.
pub const HEADER_LEN: usize = 20;

/// The largest window-scale shift RFC 7323 §2.3 permits.
pub const MAX_WSCALE: u8 = 14;

/// Derives the MSS a host should advertise for a link with the given
/// MTU: RFC 879's rule, MTU minus 20 bytes of IP header and 20 bytes of
/// TCP header. Saturating (a pathological simnet MTU below 40 yields
/// the floor rather than wrapping), with a floor of 1 so even such a
/// link makes byte-at-a-time progress — RFC 1122's 536-byte default is
/// for *unknown* paths, and here the MTU is known, so clamping up to
/// 536 would manufacture segments the link cannot carry. Both TCP
/// stacks derive their advertised MSS through this one helper.
pub fn mss_for_mtu(mtu: u32) -> u32 {
    mtu.saturating_sub(40).max(1)
}

/// Wire cost of the timestamps option on a data segment: 10 option
/// bytes rounded up to the 32-bit header boundary. The MSS never
/// accounts for options (RFC 6691 §3), so a sender with timestamps on
/// must subtract this when sizing segments — otherwise every "full"
/// segment overflows the link MTU by exactly these 12 bytes and
/// fragments. Both stacks' segmentation loops subtract it via their
/// `eff_mss` accessors.
pub const TIMESTAMPS_SEGMENT_OVERHEAD: u32 = 12;

/// Encodes a receive window for the 16-bit header field under a
/// window-scale shift (RFC 7323 §2.2): the true window is shifted
/// right, and anything that still exceeds 16 bits is capped. With
/// `shift == 0` this is the classic RFC 793 65 535 cap. This is the
/// **only** place a window is narrowed to `u16` — the stacks must route
/// every header-window store through it (enforced by the `win_cast`
/// foxlint rule).
pub fn wire_window(wnd: u32, shift: u8) -> u16 {
    (wnd >> shift).min(0xffff) as u16
}

/// The smallest window-scale shift under which a receive buffer of
/// `capacity` bytes fits the 16-bit window field, clamped to
/// [`MAX_WSCALE`]. What a host should offer in its SYN's WindowScale
/// option (RFC 7323 §2.3); both stacks derive their offer through this
/// one helper.
pub fn wscale_for(capacity: usize) -> u8 {
    let mut shift = 0u8;
    while shift < MAX_WSCALE && (capacity >> shift) > 0xffff {
        shift += 1;
    }
    shift
}

/// The TCP control flags.
#[derive(Copy, Clone, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Urgent pointer significant.
    pub urg: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// Push function.
    pub psh: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Synchronize sequence numbers.
    pub syn: bool,
    /// No more data from sender.
    pub fin: bool,
}

impl TcpFlags {
    /// A pure ACK.
    pub const ACK: TcpFlags =
        TcpFlags { urg: false, ack: true, psh: false, rst: false, syn: false, fin: false };
    /// A SYN.
    pub const SYN: TcpFlags =
        TcpFlags { urg: false, ack: false, psh: false, rst: false, syn: true, fin: false };
    /// A SYN+ACK.
    pub const SYN_ACK: TcpFlags =
        TcpFlags { urg: false, ack: true, psh: false, rst: false, syn: true, fin: false };
    /// An RST.
    pub const RST: TcpFlags =
        TcpFlags { urg: false, ack: false, psh: false, rst: true, syn: false, fin: false };
    /// An RST+ACK.
    pub const RST_ACK: TcpFlags =
        TcpFlags { urg: false, ack: true, psh: false, rst: true, syn: false, fin: false };
    /// A FIN+ACK.
    pub const FIN_ACK: TcpFlags =
        TcpFlags { urg: false, ack: true, psh: false, rst: false, syn: false, fin: true };

    /// Wire encoding (low 6 bits of byte 13).
    pub fn to_u8(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
            | u8::from(self.urg) << 5
    }

    /// From the wire byte.
    pub fn from_u8(v: u8) -> TcpFlags {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
            urg: v & 0x20 != 0,
        }
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.syn {
            names.push("SYN");
        }
        if self.fin {
            names.push("FIN");
        }
        if self.rst {
            names.push("RST");
        }
        if self.psh {
            names.push("PSH");
        }
        if self.ack {
            names.push("ACK");
        }
        if self.urg {
            names.push("URG");
        }
        if names.is_empty() {
            write!(f, "<none>")
        } else {
            write!(f, "{}", names.join("+"))
        }
    }
}

/// TCP options the stack understands. Unknown options are preserved
/// as raw kind/bytes so they survive a decode/encode round trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcpOption {
    /// Kind 2: maximum segment size (only legal on SYN segments).
    MaxSegmentSize(u16),
    /// Kind 1: no-operation padding.
    NoOp,
    /// Kind 3: window scale shift count (RFC 7323 §2; only legal on SYN
    /// segments).
    WindowScale(u8),
    /// Kind 4: SACK permitted (RFC 2018 §2; only legal on SYN segments).
    SackPermitted,
    /// Kind 5: SACK blocks, each `[left, right)` in sequence space
    /// (RFC 2018 §3).
    Sack(Vec<(Seq, Seq)>),
    /// Kind 8: timestamps (RFC 7323 §3): (TSval, TSecr).
    Timestamps(u32, u32),
    /// Any other option, carried as (kind, payload).
    Unknown(u8, Vec<u8>),
}

/// A decoded TCP header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: Seq,
    /// Acknowledgment number (valid iff `flags.ack`).
    pub ack: Seq,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Urgent pointer (valid iff `flags.urg`).
    pub urgent: u16,
    /// Options.
    pub options: Vec<TcpOption>,
}

impl TcpHeader {
    /// A header with the given ports and everything else zeroed.
    pub fn new(src_port: u16, dst_port: u16) -> TcpHeader {
        TcpHeader {
            src_port,
            dst_port,
            seq: Seq(0),
            ack: Seq(0),
            flags: TcpFlags::default(),
            window: 0,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// The MSS advertised in the options, if any.
    pub fn mss(&self) -> Option<u16> {
        self.options.iter().find_map(|o| match o {
            TcpOption::MaxSegmentSize(v) => Some(*v),
            _ => None,
        })
    }

    /// The window-scale shift offered in the options, if any, clamped
    /// to [`MAX_WSCALE`] as RFC 7323 §2.3 requires of the receiver.
    pub fn wscale(&self) -> Option<u8> {
        self.options.iter().find_map(|o| match o {
            TcpOption::WindowScale(s) => Some((*s).min(MAX_WSCALE)),
            _ => None,
        })
    }

    /// Whether the options include SACK-permitted.
    pub fn sack_permitted(&self) -> bool {
        self.options.iter().any(|o| matches!(o, TcpOption::SackPermitted))
    }

    /// The SACK blocks carried in the options (empty if none).
    pub fn sack_blocks(&self) -> &[(Seq, Seq)] {
        self.options
            .iter()
            .find_map(|o| match o {
                TcpOption::Sack(blocks) => Some(blocks.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// The timestamps option as (TSval, TSecr), if present.
    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options.iter().find_map(|o| match o {
            TcpOption::Timestamps(tsval, tsecr) => Some((*tsval, *tsecr)),
            _ => None,
        })
    }

    fn options_wire_len(&self) -> usize {
        let raw: usize = self
            .options
            .iter()
            .map(|o| match o {
                TcpOption::MaxSegmentSize(_) => 4,
                TcpOption::NoOp => 1,
                TcpOption::WindowScale(_) => 3,
                TcpOption::SackPermitted => 2,
                TcpOption::Sack(blocks) => 2 + 8 * blocks.len(),
                TcpOption::Timestamps(..) => 10,
                TcpOption::Unknown(_, data) => 2 + data.len(),
            })
            .sum();
        (raw + 3) & !3 // padded to a 32-bit boundary
    }

    /// Header length in bytes, including options and padding.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.options_wire_len()
    }
}

/// A TCP segment: header plus payload. This is the `Send_Packet.T` /
/// incoming-message currency between TCP and IP. The payload is a
/// [`PacketBuf`] view: the same storage the send buffer was read into
/// (tx) or the wire delivered (rx), never a per-layer copy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    /// The header.
    pub header: TcpHeader,
    /// The payload.
    pub payload: PacketBuf,
}

impl TcpSegment {
    /// Bytes of sequence space this segment occupies (payload plus one
    /// for SYN and one for FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + u32::from(self.header.flags.syn) + u32::from(self.header.flags.fin)
    }

    /// Externalizes the segment. `pseudo_sum`, if present, is the folded
    /// ones-complement partial sum of the pseudo-header *including the
    /// transport length* — the value the paper's `IP_AUX.check` supplies
    /// — and the checksum is computed over it plus the segment. With
    /// `None` the checksum field is left zero (the paper's
    /// `compute_checksums = false` configuration for `Special_Tcp`).
    pub fn encode(&self, pseudo_sum: Option<u16>) -> Result<Vec<u8>, WireError> {
        let mut out = self.encode_header()?;
        out.extend_from_slice(&self.payload.bytes());
        if let Some(pseudo) = pseudo_sum {
            let mut acc = foxbasis::checksum::ChecksumAccum::new();
            acc.add_word(pseudo).add_bytes(&out);
            let csum = acc.finish();
            out[16..18].copy_from_slice(&csum.to_be_bytes());
        }
        Ok(out)
    }

    /// Externalizes the segment **in place**: the header (with the
    /// checksum already computed) is prepended into the payload buffer's
    /// headroom, and the same storage continues down the stack. The
    /// payload's ones-complement sum comes from the buffer's memo (set
    /// by the combined copy+checksum pass that filled it), so the
    /// payload bytes are not re-read here.
    pub fn encode_buf(&self, pseudo_sum: Option<u16>) -> Result<PacketBuf, WireError> {
        let mut header = self.encode_header()?;
        if let Some(pseudo) = pseudo_sum {
            let mut acc = foxbasis::checksum::ChecksumAccum::new();
            acc.add_word(pseudo).add_bytes(&header).add_word(self.payload.ones_sum());
            let csum = acc.finish();
            header[16..18].copy_from_slice(&csum.to_be_bytes());
        }
        let mut buf = self.payload.clone();
        buf.prepend_header(&header);
        Ok(buf)
    }

    /// Serializes the header (checksum field zero), options padded to a
    /// 32-bit boundary with End-of-List.
    fn encode_header(&self) -> Result<Vec<u8>, WireError> {
        let h = &self.header;
        let opt_len = h.options_wire_len();
        if HEADER_LEN + opt_len > 60 {
            return Err(WireError::Malformed("tcp options too long"));
        }
        if HEADER_LEN + opt_len + self.payload.len() > 65535 {
            return Err(WireError::Malformed("tcp segment too long"));
        }
        let mut out = Vec::with_capacity(HEADER_LEN + opt_len);
        out.extend_from_slice(&h.src_port.to_be_bytes());
        out.extend_from_slice(&h.dst_port.to_be_bytes());
        out.extend_from_slice(&h.seq.raw().to_be_bytes());
        out.extend_from_slice(&h.ack.raw().to_be_bytes());
        let data_offset = ((HEADER_LEN + opt_len) / 4) as u8;
        out.push(data_offset << 4);
        out.push(h.flags.to_u8());
        out.extend_from_slice(&h.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&h.urgent.to_be_bytes());
        for opt in &h.options {
            match opt {
                TcpOption::MaxSegmentSize(v) => {
                    out.push(2);
                    out.push(4);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                TcpOption::NoOp => out.push(1),
                TcpOption::WindowScale(s) => {
                    out.push(3);
                    out.push(3);
                    out.push(*s);
                }
                TcpOption::SackPermitted => {
                    out.push(4);
                    out.push(2);
                }
                TcpOption::Sack(blocks) => {
                    out.push(5);
                    out.push((2 + 8 * blocks.len()) as u8);
                    for (left, right) in blocks {
                        out.extend_from_slice(&left.raw().to_be_bytes());
                        out.extend_from_slice(&right.raw().to_be_bytes());
                    }
                }
                TcpOption::Timestamps(tsval, tsecr) => {
                    out.push(8);
                    out.push(10);
                    out.extend_from_slice(&tsval.to_be_bytes());
                    out.extend_from_slice(&tsecr.to_be_bytes());
                }
                TcpOption::Unknown(kind, data) => {
                    out.push(*kind);
                    out.push((2 + data.len()) as u8);
                    out.extend_from_slice(data);
                }
            }
        }
        out.resize(HEADER_LEN + opt_len, 0); // pad options with End-of-List
        Ok(out)
    }

    /// [`encode`](Self::encode) with the standard IPv4 pseudo-header.
    pub fn encode_v4(&self, checksum_over: Option<(Ipv4Addr, Ipv4Addr)>) -> Result<Vec<u8>, WireError> {
        let pseudo = checksum_over
            .map(|(src, dst)| pseudo::v4_sum(src, dst, IpProtocol::Tcp, self.header_len_plus_payload()));
        self.encode(pseudo)
    }

    fn header_len_plus_payload(&self) -> usize {
        self.header.header_len() + self.payload.len()
    }

    /// Internalizes a segment. With `pseudo_sum = Some(..)` (the partial
    /// sum over the pseudo-header including length) the checksum is
    /// verified first; with `None` the checksum field is ignored.
    pub fn decode(buf: &[u8], pseudo_sum: Option<u16>) -> Result<TcpSegment, WireError> {
        let (header, data_offset) = TcpSegment::parse_header(buf, pseudo_sum)?;
        let payload = range("tcp payload", buf, data_offset, buf.len())?;
        Ok(TcpSegment { header, payload: PacketBuf::from_vec(payload.to_vec()) })
    }

    /// Internalizes a segment from a [`PacketBuf`] view, slicing the
    /// payload out of the same storage (zero-copy). The checksum
    /// verification (when requested) is the only pass over the bytes.
    pub fn decode_buf(buf: &PacketBuf, pseudo_sum: Option<u16>) -> Result<TcpSegment, WireError> {
        let (header, data_offset) = TcpSegment::parse_header(&buf.bytes(), pseudo_sum)?;
        Ok(TcpSegment { header, payload: buf.slice(data_offset, buf.len()) })
    }

    /// Parses and validates the header. All byte access is through the
    /// checked [`ByteReader`]/[`range`] helpers: malformed or truncated
    /// input (including adversarial option lengths) is an error, never
    /// a panic.
    fn parse_header(buf: &[u8], pseudo_sum: Option<u16>) -> Result<(TcpHeader, usize), WireError> {
        need("tcp header", buf, HEADER_LEN)?;
        if let Some(pseudo) = pseudo_sum {
            let mut acc = foxbasis::checksum::ChecksumAccum::new();
            acc.add_word(pseudo).add_bytes(buf);
            if acc.sum() != 0xffff {
                return Err(WireError::BadChecksum("tcp"));
            }
        }
        let mut r = ByteReader::new("tcp header", buf);
        let src_port = r.u16_be()?;
        let dst_port = r.u16_be()?;
        let seq = Seq(r.u32_be()?);
        let ack = Seq(r.u32_be()?);
        let data_offset = usize::from(r.u8()? >> 4) * 4;
        if data_offset < HEADER_LEN {
            return Err(WireError::Malformed("tcp data offset"));
        }
        need("tcp options", buf, data_offset)?;
        let flags = TcpFlags::from_u8(r.u8()?);
        let window = r.u16_be()?;
        r.skip(2)?; // checksum field, verified above when requested
        let urgent = r.u16_be()?;
        let mut options = Vec::new();
        let mut opts = ByteReader::new("tcp options", range("tcp options", buf, HEADER_LEN, data_offset)?);
        while opts.remaining() > 0 {
            match opts.u8()? {
                0 => break, // end of option list
                1 => options.push(TcpOption::NoOp),
                kind => {
                    let len =
                        usize::from(opts.u8().map_err(|_| WireError::Malformed("tcp option truncated"))?);
                    if len < 2 {
                        return Err(WireError::Malformed("tcp option length"));
                    }
                    let body = opts.bytes(len - 2).map_err(|_| WireError::Malformed("tcp option length"))?;
                    match kind {
                        2 => {
                            if len != 4 {
                                return Err(WireError::Malformed("tcp MSS option length"));
                            }
                            let mss = ByteReader::new("tcp MSS option", body)
                                .u16_be()
                                .map_err(|_| WireError::Malformed("tcp MSS option length"))?;
                            options.push(TcpOption::MaxSegmentSize(mss));
                        }
                        3 => {
                            if len != 3 {
                                return Err(WireError::Malformed("tcp wscale option length"));
                            }
                            let shift = ByteReader::new("tcp wscale option", body)
                                .u8()
                                .map_err(|_| WireError::Malformed("tcp wscale option length"))?;
                            options.push(TcpOption::WindowScale(shift));
                        }
                        4 => {
                            if len != 2 {
                                return Err(WireError::Malformed("tcp SACK-permitted length"));
                            }
                            options.push(TcpOption::SackPermitted);
                        }
                        5 => {
                            // 1 to 4 blocks of 8 bytes (RFC 2018 §3).
                            if len < 10 || (len - 2) % 8 != 0 || len > 2 + 8 * 4 {
                                return Err(WireError::Malformed("tcp SACK option length"));
                            }
                            let mut blocks = Vec::with_capacity((len - 2) / 8);
                            let mut br = ByteReader::new("tcp SACK option", body);
                            while br.remaining() > 0 {
                                let left = Seq(br.u32_be()?);
                                let right = Seq(br.u32_be()?);
                                blocks.push((left, right));
                            }
                            options.push(TcpOption::Sack(blocks));
                        }
                        8 => {
                            if len != 10 {
                                return Err(WireError::Malformed("tcp timestamps option length"));
                            }
                            let mut br = ByteReader::new("tcp timestamps option", body);
                            options.push(TcpOption::Timestamps(br.u32_be()?, br.u32_be()?));
                        }
                        // RFC 1122 4.2.2.5: unknown options are skipped
                        // by their length and otherwise ignored.
                        _ => options.push(TcpOption::Unknown(kind, body.to_vec())),
                    }
                }
            }
        }
        let header = TcpHeader { src_port, dst_port, seq, ack, flags, window, urgent, options };
        Ok((header, data_offset))
    }

    /// [`decode`](Self::decode) with the standard IPv4 pseudo-header.
    pub fn decode_v4(
        buf: &[u8],
        checksum_over: Option<(Ipv4Addr, Ipv4Addr)>,
    ) -> Result<TcpSegment, WireError> {
        let pseudo = checksum_over.map(|(src, dst)| pseudo::v4_sum(src, dst, IpProtocol::Tcp, buf.len()));
        TcpSegment::decode(buf, pseudo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn syn_segment() -> TcpSegment {
        let mut h = TcpHeader::new(4000, 80);
        h.seq = Seq(12345);
        h.flags = TcpFlags::SYN;
        h.window = 4096;
        h.options = vec![TcpOption::MaxSegmentSize(1460)];
        TcpSegment { header: h, payload: PacketBuf::new() }
    }

    #[test]
    fn roundtrip_with_checksum() {
        let s = syn_segment();
        let bytes = s.encode_v4(Some((A, B))).unwrap();
        let t = TcpSegment::decode_v4(&bytes, Some((A, B))).unwrap();
        assert_eq!(t, s);
        assert_eq!(t.header.mss(), Some(1460));
    }

    #[test]
    fn roundtrip_without_checksum() {
        let mut s = syn_segment();
        s.payload = b"data".to_vec().into();
        let bytes = s.encode(None).unwrap();
        assert_eq!(&bytes[16..18], &[0, 0]); // checksum left zero
        let t = TcpSegment::decode(&bytes, None).unwrap();
        assert_eq!(t, s);
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut s = syn_segment();
        s.payload = b"important".to_vec().into();
        let mut bytes = s.encode_v4(Some((A, B))).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        assert_eq!(TcpSegment::decode_v4(&bytes, Some((A, B))), Err(WireError::BadChecksum("tcp")));
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        // The same bytes validated against the wrong addresses must fail:
        // that's the point of the pseudo-header.
        let s = syn_segment();
        let bytes = s.encode_v4(Some((A, B))).unwrap();
        let wrong = Ipv4Addr::new(10, 0, 0, 3);
        assert!(TcpSegment::decode_v4(&bytes, Some((A, wrong))).is_err());
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = syn_segment();
        assert_eq!(s.seq_len(), 1); // SYN
        s.header.flags = TcpFlags::FIN_ACK;
        s.payload = vec![0; 10].into();
        assert_eq!(s.seq_len(), 11); // data + FIN
        s.header.flags = TcpFlags::ACK;
        assert_eq!(s.seq_len(), 10);
    }

    #[test]
    fn flags_wire_mapping() {
        for v in 0..64u8 {
            assert_eq!(TcpFlags::from_u8(v).to_u8(), v);
        }
        assert_eq!(format!("{:?}", TcpFlags::SYN_ACK), "SYN+ACK");
        assert_eq!(format!("{:?}", TcpFlags::default()), "<none>");
    }

    #[test]
    fn bad_data_offset_rejected() {
        let s = syn_segment();
        let mut bytes = s.encode(None).unwrap();
        bytes[12] = 0x30; // data offset 12 bytes < 20
        assert!(matches!(TcpSegment::decode(&bytes, None), Err(WireError::Malformed(_))));
    }

    #[test]
    fn malformed_options_rejected() {
        let s = syn_segment();
        let mut bytes = s.encode(None).unwrap();
        // Option kind 2 with a bogus length of 0.
        bytes[20] = 2;
        bytes[21] = 0;
        assert!(matches!(TcpSegment::decode(&bytes, None), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_options_roundtrip() {
        let mut s = syn_segment();
        s.header.options =
            vec![TcpOption::NoOp, TcpOption::Unknown(254, vec![0xde, 0xad]), TcpOption::MaxSegmentSize(536)];
        let bytes = s.encode(None).unwrap();
        let t = TcpSegment::decode(&bytes, None).unwrap();
        assert_eq!(t.header.options, s.header.options);
    }

    #[test]
    fn rfc7323_and_sack_options_roundtrip() {
        let mut s = syn_segment();
        s.header.options = vec![
            TcpOption::MaxSegmentSize(1460),
            TcpOption::WindowScale(7),
            TcpOption::SackPermitted,
            TcpOption::Timestamps(0xdead_beef, 0x0bad_cafe),
        ];
        let bytes = s.encode_v4(Some((A, B))).unwrap();
        let t = TcpSegment::decode_v4(&bytes, Some((A, B))).unwrap();
        assert_eq!(t.header.options, s.header.options);
        assert_eq!(t.header.wscale(), Some(7));
        assert!(t.header.sack_permitted());
        assert_eq!(t.header.timestamps(), Some((0xdead_beef, 0x0bad_cafe)));
        assert!(t.header.sack_blocks().is_empty());
    }

    #[test]
    fn sack_blocks_roundtrip() {
        let mut s = syn_segment();
        s.header.flags = TcpFlags::ACK;
        s.header.options = vec![
            TcpOption::Sack(vec![(Seq(100), Seq(200)), (Seq(400), Seq(450))]),
            TcpOption::Timestamps(1, 2),
        ];
        let bytes = s.encode_v4(Some((A, B))).unwrap();
        let t = TcpSegment::decode_v4(&bytes, Some((A, B))).unwrap();
        assert_eq!(t.header.sack_blocks(), &[(Seq(100), Seq(200)), (Seq(400), Seq(450))]);
    }

    #[test]
    fn wscale_accessor_clamps_to_rfc_limit() {
        let mut s = syn_segment();
        s.header.options = vec![TcpOption::WindowScale(30)];
        let bytes = s.encode(None).unwrap();
        let t = TcpSegment::decode(&bytes, None).unwrap();
        // Decoded verbatim, but the accessor applies RFC 7323 §2.3.
        assert_eq!(t.header.options, vec![TcpOption::WindowScale(30)]);
        assert_eq!(t.header.wscale(), Some(MAX_WSCALE));
    }

    #[test]
    fn bad_new_option_lengths_rejected() {
        for (kind, bad_len) in [(3u8, 4u8), (4, 3), (5, 9), (5, 12), (8, 8)] {
            let s = syn_segment();
            let mut bytes = s.encode(None).unwrap();
            bytes[20] = kind;
            bytes[21] = bad_len;
            assert!(
                matches!(TcpSegment::decode(&bytes, None), Err(WireError::Malformed(_))),
                "kind {kind} len {bad_len} must be malformed"
            );
        }
    }

    #[test]
    fn mss_for_mtu_is_mtu_minus_both_headers() {
        assert_eq!(mss_for_mtu(1500), 1460, "the classic Ethernet MSS");
        assert_eq!(mss_for_mtu(576), 536, "the RFC 879 default path");
        assert_eq!(mss_for_mtu(40), 1, "floor: degenerate MTUs still move a byte");
        assert_eq!(mss_for_mtu(0), 1, "saturating, never wraps");
    }

    #[test]
    fn wire_window_scales_and_caps() {
        assert_eq!(wire_window(4096, 0), 4096);
        assert_eq!(wire_window(100_000, 0), 0xffff, "classic 64 KB cap without wscale");
        assert_eq!(wire_window(100_000, 2), 25_000);
        assert_eq!(wire_window(1 << 30, 14), 0xffff, "still capped after shifting");
        assert_eq!(wire_window(u32::MAX, MAX_WSCALE), 0xffff);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src_port: u16, dst_port: u16, seq: u32, ack: u32,
            flags in 0u8..64, window: u16, urgent: u16,
            syn_opts in (proptest::option::of(536u16..9000), proptest::option::of(0u8..=14), any::<bool>()),
            ack_opts in (
                proptest::option::of((any::<u32>(), any::<u32>())),
                proptest::option::of(proptest::collection::vec((any::<u32>(), any::<u32>()), 1..=2)),
            ),
            payload in proptest::collection::vec(any::<u8>(), 0..1400),
        ) {
            let mut h = TcpHeader::new(src_port, dst_port);
            h.seq = Seq(seq);
            h.ack = Seq(ack);
            h.flags = TcpFlags::from_u8(flags);
            h.window = window;
            h.urgent = urgent;
            let (mss, wscale, sack_permitted) = syn_opts;
            let (ts, sack) = ack_opts;
            if let Some(m) = mss { h.options.push(TcpOption::MaxSegmentSize(m)); }
            if let Some(s) = wscale { h.options.push(TcpOption::WindowScale(s)); }
            if sack_permitted { h.options.push(TcpOption::SackPermitted); }
            if let Some((v, e)) = ts { h.options.push(TcpOption::Timestamps(v, e)); }
            if let Some(blocks) = sack {
                h.options.push(TcpOption::Sack(
                    blocks.into_iter().map(|(l, r)| (Seq(l), Seq(r))).collect(),
                ));
            }
            let s = TcpSegment { header: h, payload: payload.into() };
            let bytes = s.encode_v4(Some((A, B))).unwrap();
            let t = TcpSegment::decode_v4(&bytes, Some((A, B))).unwrap();
            prop_assert_eq!(t, s);
        }

        #[test]
        fn corruption_detected_with_checksum(
            payload in proptest::collection::vec(any::<u8>(), 1..300),
            at in 0usize..320,
            flip in 1u8..=255,
        ) {
            let mut s = syn_segment();
            s.payload = payload.into();
            let mut bytes = s.encode_v4(Some((A, B))).unwrap();
            let at = at % bytes.len();
            bytes[at] ^= flip;
            match TcpSegment::decode_v4(&bytes, Some((A, B))) {
                Err(_) => {}
                Ok(t) => prop_assert_eq!(t, s, "corruption silently accepted"),
            }
        }
    }
}
