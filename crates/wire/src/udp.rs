//! The UDP header (RFC 768).
//!
//! The paper notes that a structure satisfying `IP_AUX` "must be supplied
//! as a parameter to the UDP functor as well" — UDP shares TCP's need for
//! the pseudo-header checksum.

use crate::bytes::{prefix, range, ByteReader};
use crate::ipv4::{IpProtocol, Ipv4Addr};
use crate::{need, pseudo, WireError};
use foxbasis::buf::PacketBuf;

/// Length of the UDP header.
pub const HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload.
    pub payload: PacketBuf,
}

impl UdpDatagram {
    fn header_bytes(&self, total: usize) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        h[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        h[4..6].copy_from_slice(&(total as u16).to_be_bytes());
        h
    }

    /// Externalizes the datagram; `pseudo_sum` is the partial sum over
    /// the pseudo-header including length (see `TcpSegment::encode`).
    /// Per RFC 768, a computed checksum of zero is transmitted as 0xFFFF,
    /// and a transmitted zero means "no checksum".
    pub fn encode(&self, pseudo_sum: Option<u16>) -> Result<Vec<u8>, WireError> {
        Ok(self.encode_buf(pseudo_sum)?.to_vec())
    }

    /// Like [`encode`](Self::encode), but writes the header into the
    /// payload buffer's headroom in place: the payload bytes are not
    /// touched (the checksum reuses the buffer's memoized ones-sum).
    pub fn encode_buf(&self, pseudo_sum: Option<u16>) -> Result<PacketBuf, WireError> {
        let total = HEADER_LEN + self.payload.len();
        if total > 65535 {
            return Err(WireError::Malformed("udp datagram too long"));
        }
        let mut header = self.header_bytes(total);
        if let Some(p) = pseudo_sum {
            let mut acc = foxbasis::checksum::ChecksumAccum::new();
            // The header is an even number of bytes, so the payload's
            // folded sum adds positionally correctly after it.
            acc.add_word(p).add_bytes(&header).add_word(self.payload.ones_sum());
            let mut csum = acc.finish();
            if csum == 0 {
                csum = 0xffff;
            }
            header[6..8].copy_from_slice(&csum.to_be_bytes());
        }
        let mut buf = self.payload.clone();
        buf.prepend_header(&header);
        Ok(buf)
    }

    /// Parses the header and verifies length and (optionally) checksum.
    /// Returns `(src_port, dst_port, length)`. All byte access is
    /// through the checked [`ByteReader`]/[`prefix`] helpers.
    fn parse(buf: &[u8], pseudo_sum: Option<u16>) -> Result<(u16, u16, usize), WireError> {
        need("udp header", buf, HEADER_LEN)?;
        let mut r = ByteReader::new("udp header", buf);
        let src_port = r.u16_be()?;
        let dst_port = r.u16_be()?;
        let length = usize::from(r.u16_be()?);
        if length < HEADER_LEN {
            return Err(WireError::Malformed("udp length"));
        }
        need("udp payload", buf, length)?;
        let wire_checksum = r.u16_be()?;
        if let Some(p) = pseudo_sum {
            if wire_checksum != 0 {
                let mut acc = foxbasis::checksum::ChecksumAccum::new();
                acc.add_word(p).add_bytes(prefix("udp datagram", buf, length)?);
                if acc.sum() != 0xffff {
                    return Err(WireError::BadChecksum("udp"));
                }
            }
        }
        Ok((src_port, dst_port, length))
    }

    /// Internalizes a datagram; verifies the checksum when a pseudo-sum
    /// is supplied and the sender computed one.
    pub fn decode(buf: &[u8], pseudo_sum: Option<u16>) -> Result<UdpDatagram, WireError> {
        let (src_port, dst_port, length) = UdpDatagram::parse(buf, pseudo_sum)?;
        let payload = range("udp payload", buf, HEADER_LEN, length)?;
        Ok(UdpDatagram { src_port, dst_port, payload: PacketBuf::from_vec(payload.to_vec()) })
    }

    /// Internalizes a datagram from a [`PacketBuf`], returning the
    /// payload as a zero-copy slice of the same buffer.
    pub fn decode_buf(buf: &PacketBuf, pseudo_sum: Option<u16>) -> Result<UdpDatagram, WireError> {
        let (src_port, dst_port, length) = UdpDatagram::parse(&buf.bytes(), pseudo_sum)?;
        Ok(UdpDatagram { src_port, dst_port, payload: buf.slice(HEADER_LEN, length) })
    }

    /// [`encode`](Self::encode) with the standard IPv4 pseudo-header.
    pub fn encode_v4(&self, checksum_over: Option<(Ipv4Addr, Ipv4Addr)>) -> Result<Vec<u8>, WireError> {
        let pseudo = checksum_over
            .map(|(src, dst)| pseudo::v4_sum(src, dst, IpProtocol::Udp, HEADER_LEN + self.payload.len()));
        self.encode(pseudo)
    }

    /// [`decode`](Self::decode) with the standard IPv4 pseudo-header.
    pub fn decode_v4(
        buf: &[u8],
        checksum_over: Option<(Ipv4Addr, Ipv4Addr)>,
    ) -> Result<UdpDatagram, WireError> {
        // The pseudo-header length field is the UDP length, which for a
        // valid datagram equals the length field in the header itself;
        // use the claimed length so padding does not disturb the sum.
        let claimed = match buf.get(4..6) {
            Some(&[hi, lo]) => usize::from(u16::from_be_bytes([hi, lo])),
            _ => buf.len(),
        };
        let pseudo = checksum_over.map(|(src, dst)| pseudo::v4_sum(src, dst, IpProtocol::Udp, claimed));
        UdpDatagram::decode(buf, pseudo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const A: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
    const B: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 2);

    #[test]
    fn roundtrip() {
        let d = UdpDatagram { src_port: 6969, dst_port: 53, payload: b"query"[..].into() };
        let bytes = d.encode_v4(Some((A, B))).unwrap();
        assert_eq!(UdpDatagram::decode_v4(&bytes, Some((A, B))).unwrap(), d);
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: b"x"[..].into() };
        let mut bytes = d.encode(None).unwrap();
        assert_eq!(&bytes[6..8], &[0, 0]);
        // Corrupt the payload: decode still succeeds because checksum 0
        // means the sender didn't compute one.
        bytes[8] ^= 0xff;
        assert!(UdpDatagram::decode_v4(&bytes, Some((A, B))).is_ok());
    }

    #[test]
    fn corruption_detected_when_checksummed() {
        let d = UdpDatagram { src_port: 1, dst_port: 2, payload: b"pay"[..].into() };
        let mut bytes = d.encode_v4(Some((A, B))).unwrap();
        bytes[9] ^= 0x01;
        assert_eq!(UdpDatagram::decode_v4(&bytes, Some((A, B))), Err(WireError::BadChecksum("udp")));
    }

    #[test]
    fn trailing_padding_discarded() {
        let d = UdpDatagram { src_port: 9, dst_port: 10, payload: b"ab"[..].into() };
        let mut bytes = d.encode_v4(Some((A, B))).unwrap();
        bytes.extend_from_slice(&[0; 20]); // Ethernet padding
        assert_eq!(UdpDatagram::decode_v4(&bytes, Some((A, B))).unwrap(), d);
    }

    #[test]
    fn bad_length_rejected() {
        let d = UdpDatagram { src_port: 9, dst_port: 10, payload: PacketBuf::new() };
        let mut bytes = d.encode(None).unwrap();
        bytes[5] = 4; // length 4 < header
        assert!(matches!(UdpDatagram::decode(&bytes, None), Err(WireError::Malformed(_))));
        bytes[5] = 200; // length beyond buffer
        assert!(matches!(UdpDatagram::decode(&bytes, None), Err(WireError::Truncated { .. })));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            src_port: u16, dst_port: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..2000),
        ) {
            let d = UdpDatagram { src_port, dst_port, payload: payload.into() };
            let bytes = d.encode_v4(Some((A, B))).unwrap();
            prop_assert_eq!(UdpDatagram::decode_v4(&bytes, Some((A, B))).unwrap(), d);
        }
    }
}
