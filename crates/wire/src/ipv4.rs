//! The IPv4 header (RFC 791), with the fragmentation fields the Ip
//! layer's reassembly machinery uses.

use crate::bytes::{prefix, range, ByteReader};
use crate::{need, WireError};
use foxbasis::buf::PacketBuf;
use foxbasis::checksum;
use std::fmt;

/// An IPv4 address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Builds an address from dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr([a, b, c, d])
    }

    /// The limited-broadcast address 255.255.255.255.
    pub const BROADCAST: Ipv4Addr = Ipv4Addr([255; 4]);

    /// The unspecified address 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr([0; 4]);

    /// The big-endian 32-bit value.
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// From a 32-bit value.
    pub fn from_u32(v: u32) -> Ipv4Addr {
        Ipv4Addr(v.to_be_bytes())
    }

    /// The `hash` function of the paper's `IP_AUX` signature.
    pub fn hash(self) -> u64 {
        u64::from(self.to_u32()).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// The `makestring` function of the paper's `IP_AUX` signature.
    pub fn makestring(self) -> String {
        format!("{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.makestring())
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.makestring())
    }
}

/// IP protocol numbers the stack knows about.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum IpProtocol {
    /// 1.
    Icmp,
    /// 6.
    Tcp,
    /// 17.
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProtocol {
    /// The 8-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }

    /// Parses the 8-bit wire value.
    pub fn from_u8(v: u8) -> IpProtocol {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// Length of the option-free IPv4 header.
pub const HEADER_LEN: usize = 20;

/// The fields of an IPv4 header (options carried raw; the stack ignores
/// them, as the paper's did — "IPv4 options are silently ignored" is also
/// smoltcp's policy).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Type-of-service byte.
    pub tos: u8,
    /// Identification (for fragment reassembly).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Raw option bytes (length must be a multiple of 4, at most 40).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// A standard header with the common defaults (TTL 64, no
    /// fragmentation, no options).
    pub fn new(protocol: IpProtocol, src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Header {
        Ipv4Header {
            tos: 0,
            ident: 0,
            dont_frag: false,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.options.len()
    }

    /// The fragment offset in bytes.
    pub fn frag_byte_offset(&self) -> usize {
        usize::from(self.frag_offset) * 8
    }

    /// True if this packet is a fragment of a larger datagram.
    pub fn is_fragment(&self) -> bool {
        self.more_frags || self.frag_offset != 0
    }
}

/// A full IPv4 packet: header plus payload. The payload is a
/// [`PacketBuf`] view of the same storage the transport layer built —
/// encoding prepends the IP header into its headroom in place.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ipv4Packet {
    /// The header.
    pub header: Ipv4Header,
    /// The payload bytes.
    pub payload: PacketBuf,
}

impl Ipv4Packet {
    /// Externalizes the packet, computing the header checksum.
    ///
    /// # Errors
    /// Fails if options are not 32-bit aligned or too long, or if the
    /// total length exceeds 65535.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = self.encode_header()?;
        out.extend_from_slice(&self.payload.bytes());
        Ok(out)
    }

    /// Externalizes the packet **in place**: the checksummed header is
    /// prepended into the payload buffer's headroom and the same storage
    /// continues down the stack. The header checksum only touches the
    /// 20–60 header bytes; the payload is not read.
    pub fn encode_buf(&self) -> Result<PacketBuf, WireError> {
        let header = self.encode_header()?;
        let mut buf = self.payload.clone();
        buf.prepend_header(&header);
        Ok(buf)
    }

    /// Serializes the header, computing its checksum.
    fn encode_header(&self) -> Result<Vec<u8>, WireError> {
        let h = &self.header;
        if !h.options.len().is_multiple_of(4) || h.options.len() > 40 {
            return Err(WireError::Malformed("ipv4 options length"));
        }
        let total_len = h.header_len() + self.payload.len();
        if total_len > 65535 {
            return Err(WireError::Malformed("ipv4 total length"));
        }
        let mut out = Vec::with_capacity(h.header_len());
        let ihl = (h.header_len() / 4) as u8;
        out.push(0x40 | ihl);
        out.push(h.tos);
        out.extend_from_slice(&(total_len as u16).to_be_bytes());
        out.extend_from_slice(&h.ident.to_be_bytes());
        let mut flags_frag = h.frag_offset & 0x1fff;
        if h.dont_frag {
            flags_frag |= 0x4000;
        }
        if h.more_frags {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(h.ttl);
        out.push(h.protocol.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&h.src.0);
        out.extend_from_slice(&h.dst.0);
        out.extend_from_slice(&h.options);
        let csum = checksum::checksum(&out);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        Ok(out)
    }

    /// Internalizes a packet, verifying version, lengths, and the header
    /// checksum. Extra bytes after `total_length` (Ethernet padding) are
    /// discarded, which is why the length field exists.
    pub fn decode(buf: &[u8]) -> Result<Ipv4Packet, WireError> {
        let (header, ihl, total_len) = Ipv4Packet::parse_header(buf)?;
        let payload = range("ipv4 payload", buf, ihl, total_len)?;
        Ok(Ipv4Packet { header, payload: PacketBuf::from_vec(payload.to_vec()) })
    }

    /// Internalizes a packet from a [`PacketBuf`] view, slicing the
    /// payload out of the same storage (zero-copy).
    pub fn decode_buf(buf: &PacketBuf) -> Result<Ipv4Packet, WireError> {
        let (header, ihl, total_len) = Ipv4Packet::parse_header(&buf.bytes())?;
        Ok(Ipv4Packet { header, payload: buf.slice(ihl, total_len) })
    }

    /// Parses and validates the header. All byte access is through the
    /// checked [`ByteReader`]/[`range`] helpers: malformed or truncated
    /// input is an error, never a panic.
    fn parse_header(buf: &[u8]) -> Result<(Ipv4Header, usize, usize), WireError> {
        need("ipv4 header", buf, HEADER_LEN)?;
        let mut r = ByteReader::new("ipv4 header", buf);
        let ver_ihl = r.u8()?;
        let version = ver_ihl >> 4;
        if version != 4 {
            return Err(WireError::Unsupported { field: "ip version", value: u32::from(version) });
        }
        let ihl = usize::from(ver_ihl & 0x0f) * 4;
        if ihl < HEADER_LEN {
            return Err(WireError::Malformed("ipv4 IHL"));
        }
        need("ipv4 options", buf, ihl)?;
        let tos = r.u8()?;
        let total_len = usize::from(r.u16_be()?);
        if total_len < ihl {
            return Err(WireError::Malformed("ipv4 total length below IHL"));
        }
        need("ipv4 payload", buf, total_len)?;
        if checksum::ones_complement_sum(prefix("ipv4 header", buf, ihl)?) != 0xffff {
            return Err(WireError::BadChecksum("ipv4 header"));
        }
        let ident = r.u16_be()?;
        let flags_frag = r.u16_be()?;
        let ttl = r.u8()?;
        let protocol = IpProtocol::from_u8(r.u8()?);
        r.skip(2)?; // header checksum, verified above
        let src = Ipv4Addr(r.array::<4>()?);
        let dst = Ipv4Addr(r.array::<4>()?);
        let header = Ipv4Header {
            tos,
            ident,
            dont_frag: flags_frag & 0x4000 != 0,
            more_frags: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl,
            protocol,
            src,
            dst,
            options: range("ipv4 options", buf, HEADER_LEN, ihl)?.to_vec(),
        };
        Ok((header, ihl, total_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet {
            header: Ipv4Header::new(IpProtocol::Tcp, Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            payload: b"payload bytes".to_vec().into(),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = p.encode().unwrap();
        assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn trailing_padding_is_discarded() {
        let p = sample();
        let mut bytes = p.encode().unwrap();
        bytes.extend_from_slice(&[0xaa; 10]); // Ethernet pad garbage
        assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn header_checksum_verified() {
        let mut bytes = sample().encode().unwrap();
        bytes[8] = bytes[8].wrapping_add(1); // corrupt TTL
        assert_eq!(Ipv4Packet::decode(&bytes), Err(WireError::BadChecksum("ipv4 header")));
    }

    #[test]
    fn version_and_ihl_validation() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0x60 | (bytes[0] & 0x0f);
        assert!(matches!(Ipv4Packet::decode(&bytes), Err(WireError::Unsupported { .. })));
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0x41; // IHL = 4 bytes, impossible
        assert!(matches!(Ipv4Packet::decode(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn total_length_shorter_than_ihl_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[2] = 0;
        bytes[3] = 8;
        // fix checksum so we reach the length check? No: length checked
        // before checksum, so corruption is fine here.
        assert!(matches!(Ipv4Packet::decode(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn fragment_fields_roundtrip() {
        let mut p = sample();
        p.header.more_frags = true;
        p.header.frag_offset = 185; // 1480 bytes
        p.header.ident = 0xbeef;
        let q = Ipv4Packet::decode(&p.encode().unwrap()).unwrap();
        assert!(q.header.is_fragment());
        assert_eq!(q.header.frag_byte_offset(), 1480);
        assert_eq!(q.header.ident, 0xbeef);
    }

    #[test]
    fn options_roundtrip_and_validation() {
        let mut p = sample();
        p.header.options = vec![1, 1, 1, 1]; // four NOPs
        let q = Ipv4Packet::decode(&p.encode().unwrap()).unwrap();
        assert_eq!(q.header.options, vec![1, 1, 1, 1]);
        p.header.options = vec![1, 1, 1]; // not 32-bit aligned
        assert!(p.encode().is_err());
        p.header.options = vec![1; 44]; // too long
        assert!(p.encode().is_err());
    }

    #[test]
    fn protocol_numbers() {
        for p in [IpProtocol::Icmp, IpProtocol::Tcp, IpProtocol::Udp, IpProtocol::Other(99)] {
            assert_eq!(IpProtocol::from_u8(p.to_u8()), p);
        }
    }

    #[test]
    fn addr_helpers() {
        let a = Ipv4Addr::new(192, 168, 69, 1);
        assert_eq!(a.makestring(), "192.168.69.1");
        assert_eq!(Ipv4Addr::from_u32(a.to_u32()), a);
        assert_ne!(a.hash(), Ipv4Addr::new(192, 168, 69, 2).hash());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            tos: u8, ident: u16, ttl: u8, proto: u8,
            src: [u8; 4], dst: [u8; 4],
            frag_offset in 0u16..0x2000,
            more_frags: bool, dont_frag: bool,
            payload in proptest::collection::vec(any::<u8>(), 0..1400),
        ) {
            let p = Ipv4Packet {
                header: Ipv4Header {
                    tos, ident, dont_frag, more_frags, frag_offset,
                    ttl, protocol: IpProtocol::from_u8(proto),
                    src: Ipv4Addr(src), dst: Ipv4Addr(dst),
                    options: Vec::new(),
                },
                payload: payload.into(),
            };
            let bytes = p.encode().unwrap();
            prop_assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), p);
        }

        #[test]
        fn corrupting_any_header_byte_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 0..100),
            at in 0usize..20,
            flip in 1u8..=255,
        ) {
            let p = Ipv4Packet {
                header: Ipv4Header::new(IpProtocol::Udp, Ipv4Addr::new(1,2,3,4), Ipv4Addr::new(5,6,7,8)),
                payload: payload.into(),
            };
            let mut bytes = p.encode().unwrap();
            bytes[at] ^= flip;
            // Either some structural validation fires or the checksum
            // catches it; silent acceptance of a *different* packet is
            // the only failure. (A flip may leave the packet decodable
            // but only if it decodes to different content with a failing
            // checksum — assert decode fails OR fields differ.)
            match Ipv4Packet::decode(&bytes) {
                Err(_) => {}
                Ok(q) => prop_assert_eq!(q, p, "corruption silently accepted"),
            }
        }
    }
}
