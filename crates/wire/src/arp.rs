//! ARP for IPv4 over Ethernet (RFC 826).
//!
//! Below the paper's IP layer sits the real business of putting IP
//! datagrams on an Ethernet: resolving the next hop's MAC address. The
//! Fox Net ran on a live Ethernet segment, so its Eth layer had this
//! machinery too; here it is in full (request/reply, plus gratuitous
//! announcements handled by the protocol layer above).

use crate::bytes::ByteReader;
use crate::ether::EthAddr;
use crate::ipv4::Ipv4Addr;
use crate::{need, WireError};

/// Wire length of an IPv4-over-Ethernet ARP packet.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has.
    Request,
    /// Is-at.
    Reply,
}

/// An ARP packet (fixed to Ethernet/IPv4 hardware and protocol spaces).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_eth: EthAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_eth: EthAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// A who-has request for `target_ip`.
    pub fn request(sender_eth: EthAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> ArpPacket {
        ArpPacket { op: ArpOp::Request, sender_eth, sender_ip, target_eth: EthAddr([0; 6]), target_ip }
    }

    /// The is-at reply to this request, from the owner of the target
    /// address.
    pub fn reply_from(&self, owner_eth: EthAddr) -> ArpPacket {
        ArpPacket {
            op: ArpOp::Reply,
            sender_eth: owner_eth,
            sender_ip: self.target_ip,
            target_eth: self.sender_eth,
            target_ip: self.sender_ip,
        }
    }

    /// Externalizes the packet.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PACKET_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(
            &match self.op {
                ArpOp::Request => 1u16,
                ArpOp::Reply => 2u16,
            }
            .to_be_bytes(),
        );
        out.extend_from_slice(&self.sender_eth.0);
        out.extend_from_slice(&self.sender_ip.0);
        out.extend_from_slice(&self.target_eth.0);
        out.extend_from_slice(&self.target_ip.0);
        out
    }

    /// Internalizes a packet, checking the hardware/protocol spaces.
    /// Every access goes through the checked [`ByteReader`], so short
    /// input yields `Err(Truncated)` from whichever field runs out —
    /// never a panic.
    pub fn decode(buf: &[u8]) -> Result<ArpPacket, WireError> {
        need("arp packet", buf, PACKET_LEN)?;
        let mut r = ByteReader::new("arp packet", buf);
        let htype = r.u16_be()?;
        let ptype = r.u16_be()?;
        if htype != 1 {
            return Err(WireError::Unsupported { field: "arp htype", value: u32::from(htype) });
        }
        if ptype != 0x0800 {
            return Err(WireError::Unsupported { field: "arp ptype", value: u32::from(ptype) });
        }
        if r.u8()? != 6 || r.u8()? != 4 {
            return Err(WireError::Malformed("arp address lengths"));
        }
        let op = match r.u16_be()? {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => return Err(WireError::Unsupported { field: "arp op", value: u32::from(other) }),
        };
        let sender_eth = EthAddr(r.array::<6>()?);
        let sender_ip = Ipv4Addr(r.array::<4>()?);
        let target_eth = EthAddr(r.array::<6>()?);
        let target_ip = Ipv4Addr(r.array::<4>()?);
        Ok(ArpPacket { op, sender_eth, sender_ip, target_eth, target_ip })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_reply_roundtrip() {
        let req =
            ArpPacket::request(EthAddr::host(1), Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let bytes = req.encode();
        assert_eq!(bytes.len(), PACKET_LEN);
        assert_eq!(ArpPacket::decode(&bytes).unwrap(), req);

        let rep = req.reply_from(EthAddr::host(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_eth, EthAddr::host(1));
        assert_eq!(ArpPacket::decode(&rep.encode()).unwrap(), rep);
    }

    #[test]
    fn wrong_spaces_rejected() {
        let req = ArpPacket::request(EthAddr::host(1), Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2));
        let mut bytes = req.encode();
        bytes[1] = 6; // htype = token ring, say
        assert!(matches!(ArpPacket::decode(&bytes), Err(WireError::Unsupported { .. })));
        let mut bytes = req.encode();
        bytes[3] = 0xdd;
        assert!(matches!(ArpPacket::decode(&bytes), Err(WireError::Unsupported { .. })));
        let mut bytes = req.encode();
        bytes[4] = 8;
        assert!(matches!(ArpPacket::decode(&bytes), Err(WireError::Malformed(_))));
        let mut bytes = req.encode();
        bytes[7] = 9;
        assert!(matches!(ArpPacket::decode(&bytes), Err(WireError::Unsupported { .. })));
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(ArpPacket::decode(&[0; 10]), Err(WireError::Truncated { .. })));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            is_req: bool,
            se in any::<[u8; 6]>(), si in any::<[u8; 4]>(),
            te in any::<[u8; 6]>(), ti in any::<[u8; 4]>(),
        ) {
            let p = ArpPacket {
                op: if is_req { ArpOp::Request } else { ArpOp::Reply },
                sender_eth: EthAddr(se), sender_ip: Ipv4Addr(si),
                target_eth: EthAddr(te), target_ip: Ipv4Addr(ti),
            };
            prop_assert_eq!(ArpPacket::decode(&p.encode()).unwrap(), p);
        }
    }
}
