//! # Wire formats
//!
//! Packet externalization and internalization — the terms the paper's
//! Action module uses for encoding a TCP segment onto the wire and
//! decoding an incoming packet. This crate holds the byte-level formats
//! for every protocol in the Fox Net stack:
//!
//! * [`ether`] — Ethernet II framing, including the IEEE 802.3 CRC-32
//!   frame check sequence. The paper's non-standard composition example
//!   (TCP directly over Ethernet with TCP checksums off) is only sound
//!   "if there is specific knowledge that the Ethernet implementation
//!   implements the CRC correctly" — so our simulated Ethernet really
//!   does compute and verify the FCS;
//! * [`arp`] — Address Resolution Protocol for IPv4 over Ethernet;
//! * [`ipv4`] — the IPv4 header with fragmentation fields and header
//!   checksum;
//! * [`icmp`] — ICMP echo (ping);
//! * [`udp`] — UDP;
//! * [`tcp`] — the TCP header, flags and the Maximum Segment Size
//!   option;
//! * [`pseudo`] — the TCP/UDP pseudo-header checksum over IPv4
//!   addresses (the `check` function of the paper's `IP_AUX` signature,
//!   Fig. 5).
//!
//! Every decoder is total: malformed input yields a [`WireError`], never
//! a panic — the type-safety story of the paper, enforced with `Result`
//! instead of exceptions.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arp;
pub mod bytes;
pub mod ether;
pub mod icmp;
pub mod ipv4;
pub mod pseudo;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOp, ArpPacket};
pub use ether::{EthAddr, EtherType, Frame};
pub use icmp::IcmpEcho;
pub use ipv4::{IpProtocol, Ipv4Addr, Ipv4Header, Ipv4Packet};
pub use tcp::{TcpFlags, TcpHeader, TcpOption, TcpSegment};
pub use udp::UdpDatagram;

use std::fmt;

/// Decoding/encoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input shorter than the fixed header, or shorter than a length
    /// field claims.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes present.
        have: usize,
    },
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// A version / header-length / ethertype field had an unsupported
    /// value.
    Unsupported {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A length or option field is internally inconsistent.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            WireError::BadChecksum(what) => write!(f, "bad {what} checksum"),
            WireError::Unsupported { field, value } => {
                write!(f, "unsupported {field} value {value:#x}")
            }
            WireError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for WireError {}

pub(crate) fn need(what: &'static str, buf: &[u8], n: usize) -> Result<(), WireError> {
    if buf.len() < n {
        Err(WireError::Truncated { what, need: n, have: buf.len() })
    } else {
        Ok(())
    }
}
