//! The TCP/UDP pseudo-header checksum.
//!
//! The paper's `IP_AUX` signature (Fig. 5) carries
//! `val check: address -> ubyte2` — "check computes the pseudo-header
//! checksum" — because TCP's checksum covers values that live in the IP
//! header. Keeping the computation here, parameterized on addresses,
//! is what lets the TCP functor stay independent of the IP version
//! ("any change in the definition of IP ... will affect the IP
//! implementation and the Auxiliary structure, but not TCP").

use crate::ipv4::{IpProtocol, Ipv4Addr};
use foxbasis::checksum::ChecksumAccum;

/// The ones-complement sum (not inverted) of the IPv4 pseudo-header:
/// source address, destination address, zero + protocol, and the
/// transport-layer length.
pub fn v4_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, transport_len: usize) -> u16 {
    debug_assert!(transport_len <= usize::from(u16::MAX));
    let mut acc = ChecksumAccum::new();
    acc.add_bytes(&src.0)
        .add_bytes(&dst.0)
        .add_word(u16::from(protocol.to_u8()))
        .add_word(transport_len as u16);
    acc.sum()
}

/// A started accumulator containing the pseudo-header, ready to absorb
/// the transport header and payload.
pub fn v4_accum(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, transport_len: usize) -> ChecksumAccum {
    let mut acc = ChecksumAccum::new();
    acc.add_bytes(&src.0)
        .add_bytes(&dst.0)
        .add_word(u16::from(protocol.to_u8()))
        .add_word(transport_len as u16);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_manual_layout() {
        // Pseudo-header: 10.0.0.1 | 10.0.0.2 | 0x00 0x06 | len 20
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let manual = foxbasis::checksum::ones_complement_sum(&[10, 0, 0, 1, 10, 0, 0, 2, 0, 6, 0, 20]);
        assert_eq!(v4_sum(src, dst, IpProtocol::Tcp, 20), manual);
    }

    #[test]
    fn accum_continues_from_pseudo_header() {
        let src = Ipv4Addr::new(1, 2, 3, 4);
        let dst = Ipv4Addr::new(5, 6, 7, 8);
        let body = b"transport bytes here";
        let mut acc = v4_accum(src, dst, IpProtocol::Udp, body.len());
        acc.add_bytes(body);
        let mut manual = vec![1u8, 2, 3, 4, 5, 6, 7, 8, 0, 17];
        manual.extend_from_slice(&(body.len() as u16).to_be_bytes());
        manual.extend_from_slice(body);
        assert_eq!(acc.sum(), foxbasis::checksum::ones_complement_sum(&manual));
    }
}
