//! ICMP echo request/reply (RFC 792) — enough of ICMP for the `ping`
//! example and for keeping the Ip layer honest about demultiplexing.

use crate::bytes::ByteReader;
use crate::{need, WireError};
use foxbasis::checksum;

/// Echo message header length.
pub const HEADER_LEN: usize = 8;

/// An ICMP echo request or reply.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcmpEcho {
    /// True for a request (type 8), false for a reply (type 0).
    pub is_request: bool,
    /// Identifier (usually the pinger's "process id").
    pub ident: u16,
    /// Sequence number of this ping.
    pub seq: u16,
    /// Echoed payload.
    pub payload: Vec<u8>,
}

impl IcmpEcho {
    /// Externalizes the message with its checksum.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        if HEADER_LEN + self.payload.len() > 65515 {
            return Err(WireError::Malformed("icmp echo too long"));
        }
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.push(if self.is_request { 8 } else { 0 });
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let csum = checksum::checksum(&out);
        out[2..4].copy_from_slice(&csum.to_be_bytes());
        Ok(out)
    }

    /// Internalizes an echo message, verifying type, code and checksum.
    /// All field access is through the checked [`ByteReader`]; short
    /// input is `Err(Truncated)`, never a panic.
    pub fn decode(buf: &[u8]) -> Result<IcmpEcho, WireError> {
        need("icmp echo", buf, HEADER_LEN)?;
        let mut r = ByteReader::new("icmp echo", buf);
        let is_request = match r.u8()? {
            8 => true,
            0 => false,
            other => return Err(WireError::Unsupported { field: "icmp type", value: u32::from(other) }),
        };
        let code = r.u8()?;
        if code != 0 {
            return Err(WireError::Unsupported { field: "icmp code", value: u32::from(code) });
        }
        if checksum::ones_complement_sum(buf) != 0xffff {
            return Err(WireError::BadChecksum("icmp"));
        }
        r.skip(2)?; // checksum field, verified above over the whole message
        Ok(IcmpEcho { is_request, ident: r.u16_be()?, seq: r.u16_be()?, payload: r.rest().to_vec() })
    }

    /// The reply to this request, echoing ident, seq and payload.
    pub fn reply(&self) -> IcmpEcho {
        IcmpEcho { is_request: false, ident: self.ident, seq: self.seq, payload: self.payload.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_request_and_reply() {
        let req = IcmpEcho { is_request: true, ident: 0x1234, seq: 7, payload: b"ping!".to_vec() };
        let bytes = req.encode().unwrap();
        assert_eq!(IcmpEcho::decode(&bytes).unwrap(), req);
        let rep = req.reply();
        assert!(!rep.is_request);
        assert_eq!(rep.ident, req.ident);
        assert_eq!(rep.seq, req.seq);
        assert_eq!(IcmpEcho::decode(&rep.encode().unwrap()).unwrap(), rep);
    }

    #[test]
    fn corruption_detected() {
        let req = IcmpEcho { is_request: true, ident: 1, seq: 1, payload: vec![9; 32] };
        let mut bytes = req.encode().unwrap();
        bytes[12] ^= 0x40;
        assert_eq!(IcmpEcho::decode(&bytes), Err(WireError::BadChecksum("icmp")));
    }

    #[test]
    fn non_echo_types_rejected() {
        let req = IcmpEcho { is_request: true, ident: 1, seq: 1, payload: Vec::new() };
        let mut bytes = req.encode().unwrap();
        bytes[0] = 3; // destination unreachable
        assert!(matches!(IcmpEcho::decode(&bytes), Err(WireError::Unsupported { .. })));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(
            is_request: bool, ident: u16, seq: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let m = IcmpEcho { is_request, ident, seq, payload };
            prop_assert_eq!(IcmpEcho::decode(&m.encode().unwrap()).unwrap(), m);
        }
    }
}
