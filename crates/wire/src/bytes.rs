//! Checked, panic-free byte access for decoders.
//!
//! Every internalization path in this crate parses attacker-controlled
//! bytes, and the workspace invariant (enforced by `foxlint`'s
//! `rx_panic` lint) is that such code *cannot* abort the station: any
//! malformed input must surface as a [`WireError`], never a panic. Raw
//! slice indexing (`buf[0]`, `&buf[a..b]`) panics on a bad offset, and
//! whether a given index is guarded by an earlier length check is
//! invisible to both the reader and the linter. This module removes the
//! question: a [`ByteReader`] is a cursor whose every access is
//! bounds-checked and returns `Result`, so decoders written against it
//! are total by construction.

use crate::WireError;

/// A checked forward cursor over a byte slice.
///
/// All accessors return [`WireError::Truncated`] (tagged with the
/// reader's `what` label) instead of panicking when the input is too
/// short. Reads advance the cursor; `peek_*`/[`ByteReader::rest`] do
/// not.
pub struct ByteReader<'a> {
    what: &'static str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, labelling truncation errors with `what`.
    pub fn new(what: &'static str, buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { what, buf, pos: 0 }
    }

    /// The truncation error for an access needing `n` more bytes.
    fn short(&self, n: usize) -> WireError {
        WireError::Truncated { what: self.what, need: self.pos.saturating_add(n), have: self.buf.len() }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The unconsumed tail of the input.
    pub fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    /// Consumes and returns the next `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.short(n))?;
        let out = self.buf.get(self.pos..end).ok_or_else(|| self.short(n))?;
        self.pos = end;
        Ok(out)
    }

    /// Consumes `n` bytes without returning them.
    pub fn skip(&mut self, n: usize) -> Result<(), WireError> {
        self.bytes(n).map(|_| ())
    }

    /// Consumes a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.bytes(N)?);
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.array::<1>()?[0])
    }

    /// Consumes a big-endian `u16`.
    pub fn u16_be(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.array::<2>()?))
    }

    /// Consumes a big-endian `u32`.
    pub fn u32_be(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.array::<4>()?))
    }
}

/// The checked form of `&buf[..end]`: the prefix of `buf` up to `end`,
/// or [`WireError::Truncated`] if the input is shorter.
pub fn prefix<'a>(what: &'static str, buf: &'a [u8], end: usize) -> Result<&'a [u8], WireError> {
    buf.get(..end).ok_or(WireError::Truncated { what, need: end, have: buf.len() })
}

/// The checked form of `&buf[start..end]`.
pub fn range<'a>(what: &'static str, buf: &'a [u8], start: usize, end: usize) -> Result<&'a [u8], WireError> {
    if start > end {
        return Err(WireError::Malformed(what));
    }
    buf.get(start..end).ok_or(WireError::Truncated { what, need: end, have: buf.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_and_truncation() {
        let data = [1u8, 2, 3, 4, 5, 6, 7];
        let mut r = ByteReader::new("test", &data);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.u16_be().unwrap(), 0x0203);
        assert_eq!(r.u32_be().unwrap(), 0x0405_0607);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8(), Err(WireError::Truncated { what: "test", need: 8, have: 7 }));
    }

    #[test]
    fn arrays_skip_and_rest() {
        let data = [9u8, 8, 7, 6, 5];
        let mut r = ByteReader::new("test", &data);
        assert_eq!(r.array::<2>().unwrap(), [9, 8]);
        r.skip(1).unwrap();
        assert_eq!(r.pos(), 3);
        assert_eq!(r.rest(), &[6, 5]);
        assert!(r.array::<3>().is_err());
        // A failed read does not advance the cursor.
        assert_eq!(r.bytes(2).unwrap(), &[6, 5]);
    }

    #[test]
    fn prefix_and_range_are_checked() {
        let data = [1u8, 2, 3];
        assert_eq!(prefix("p", &data, 2).unwrap(), &[1, 2]);
        assert!(prefix("p", &data, 4).is_err());
        assert_eq!(range("r", &data, 1, 3).unwrap(), &[2, 3]);
        assert!(range("r", &data, 1, 4).is_err());
        assert!(range("r", &data, 3, 1).is_err());
    }
}
