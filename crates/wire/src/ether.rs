//! Ethernet II framing with the IEEE 802.3 CRC-32 frame check sequence.
//!
//! The simulated network carries real frames: destination and source
//! MAC addresses, an ethertype, payload padded to the 46-byte minimum,
//! and a trailing FCS. Verifying the FCS on receive is what justifies the
//! paper's `Special_Tcp` composition (TCP over raw Ethernet with TCP
//! checksums disabled): corruption injected by the fault model is caught
//! here, below TCP.

use crate::bytes::{prefix, ByteReader};
use crate::{need, WireError};
use foxbasis::buf::PacketBuf;
use std::fmt;

/// A 48-bit IEEE MAC address.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EthAddr(pub [u8; 6]);

impl EthAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: EthAddr = EthAddr([0xff; 6]);

    /// A locally-administered unicast address derived from a small host
    /// id — the convention the examples use (`02:00:00:00:00:<id>`).
    pub const fn host(id: u8) -> EthAddr {
        EthAddr([0x02, 0, 0, 0, 0, id])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == EthAddr::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 1 == 1
    }
}

impl fmt::Debug for EthAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for EthAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The ethertypes the stack understands.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// 0x0800.
    Ipv4,
    /// 0x0806.
    Arp,
    /// 0x88B5 (IEEE local experimental) — used by the paper's
    /// `Special_Tcp` stack, which runs TCP directly over Ethernet.
    TcpDirect,
    /// Anything else, carried through unparsed.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::TcpDirect => 0x88b5,
            EtherType::Other(v) => v,
        }
    }

    /// Parses the 16-bit wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x88b5 => EtherType::TcpDirect,
            other => EtherType::Other(other),
        }
    }
}

/// Minimum Ethernet payload (frames are padded up to this).
pub const MIN_PAYLOAD: usize = 46;
/// Maximum Ethernet payload — the MTU the IP layer sees.
pub const MTU: usize = 1500;
/// Header bytes: dst(6) + src(6) + ethertype(2).
pub const HEADER_LEN: usize = 14;
/// Trailer bytes: FCS(4).
pub const FCS_LEN: usize = 4;

/// A decoded Ethernet frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Frame {
    /// Destination MAC.
    pub dst: EthAddr,
    /// Source MAC.
    pub src: EthAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload, excluding padding is *not* recoverable at this layer —
    /// receivers get the padded payload and upper layers use their own
    /// length fields, exactly as on real Ethernet.
    pub payload: PacketBuf,
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

impl Frame {
    /// Builds a frame.
    pub fn new(dst: EthAddr, src: EthAddr, ethertype: EtherType, payload: impl Into<PacketBuf>) -> Frame {
        Frame { dst, src, ethertype, payload: payload.into() }
    }

    /// Externalizes the frame: header, payload padded to the minimum,
    /// and the FCS.
    ///
    /// # Errors
    /// Fails with [`WireError::Malformed`] if the payload exceeds the
    /// MTU.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        if self.payload.len() > MTU {
            return Err(WireError::Malformed("ethernet payload exceeds MTU"));
        }
        let padded = self.payload.len().max(MIN_PAYLOAD);
        let mut out = Vec::with_capacity(HEADER_LEN + padded + FCS_LEN);
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.payload.bytes());
        out.resize(HEADER_LEN + padded, 0);
        let fcs = crc32(&out);
        out.extend_from_slice(&fcs.to_be_bytes());
        Ok(out)
    }

    /// Externalizes the frame **in place**: header into the payload
    /// buffer's headroom, minimum-payload padding and FCS into its
    /// tailroom. The FCS pass reads the frame once (the link layer's
    /// checksum cost, charged by the virtual model as before); the
    /// payload bytes are not copied.
    pub fn encode_buf(&self) -> Result<PacketBuf, WireError> {
        if self.payload.len() > MTU {
            return Err(WireError::Malformed("ethernet payload exceeds MTU"));
        }
        let mut header = [0u8; HEADER_LEN];
        header[0..6].copy_from_slice(&self.dst.0);
        header[6..12].copy_from_slice(&self.src.0);
        header[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
        let mut buf = self.payload.clone();
        let pad = MIN_PAYLOAD.saturating_sub(buf.len());
        buf.prepend_header(&header);
        buf.append_zeros(pad);
        let fcs = crc32(&buf.bytes());
        buf.append(&fcs.to_be_bytes());
        Ok(buf)
    }

    /// Internalizes a frame, verifying the FCS.
    pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
        let (dst, src, ethertype, body_len) = Frame::parse(buf)?;
        let payload = crate::bytes::range("ethernet payload", buf, HEADER_LEN, body_len)?;
        Ok(Frame { dst, src, ethertype, payload: PacketBuf::from_vec(payload.to_vec()) })
    }

    /// Internalizes a frame from a [`PacketBuf`] view, slicing the
    /// (padded) payload out of the same storage (zero-copy).
    pub fn decode_buf(buf: &PacketBuf) -> Result<Frame, WireError> {
        let (dst, src, ethertype, body_len) = Frame::parse(&buf.bytes())?;
        Ok(Frame { dst, src, ethertype, payload: buf.slice(HEADER_LEN, body_len) })
    }

    fn parse(buf: &[u8]) -> Result<(EthAddr, EthAddr, EtherType, usize), WireError> {
        need("ethernet frame", buf, HEADER_LEN + MIN_PAYLOAD + FCS_LEN)?;
        let body_len = buf.len().saturating_sub(FCS_LEN);
        let body = prefix("ethernet frame", buf, body_len)?;
        let mut trailer = ByteReader::new("ethernet FCS", buf);
        trailer.skip(body_len)?;
        let fcs = trailer.u32_be()?;
        if crc32(body) != fcs {
            return Err(WireError::BadChecksum("ethernet FCS"));
        }
        let mut r = ByteReader::new("ethernet header", body);
        let dst = EthAddr(r.array::<6>()?);
        let src = EthAddr(r.array::<6>()?);
        let ethertype = EtherType::from_u16(r.u16_be()?);
        Ok((dst, src, ethertype, body_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_with_padding() {
        let f = Frame::new(EthAddr::host(1), EthAddr::host(2), EtherType::Ipv4, b"short".to_vec());
        let bytes = f.encode().unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + MIN_PAYLOAD + FCS_LEN);
        let g = Frame::decode(&bytes).unwrap();
        assert_eq!(g.dst, f.dst);
        assert_eq!(g.src, f.src);
        assert_eq!(g.ethertype, EtherType::Ipv4);
        assert_eq!(&g.payload.bytes()[..5], b"short");
        assert!(g.payload.bytes()[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn corruption_is_detected_by_fcs() {
        let f = Frame::new(EthAddr::host(1), EthAddr::host(2), EtherType::Arp, vec![7; 100]);
        let mut bytes = f.encode().unwrap();
        bytes[40] ^= 0x20;
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadChecksum("ethernet FCS")));
    }

    #[test]
    fn oversized_payload_rejected() {
        let f = Frame::new(EthAddr::host(1), EthAddr::host(2), EtherType::Ipv4, vec![0; MTU + 1]);
        assert!(matches!(f.encode(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn runt_frame_rejected() {
        assert!(matches!(Frame::decode(&[0u8; 30]), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn address_predicates() {
        assert!(EthAddr::BROADCAST.is_broadcast());
        assert!(EthAddr::BROADCAST.is_multicast());
        assert!(!EthAddr::host(3).is_broadcast());
        assert!(!EthAddr::host(3).is_multicast());
        assert_eq!(format!("{}", EthAddr::host(0xab)), "02:00:00:00:00:ab");
    }

    #[test]
    fn ethertype_mapping() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::TcpDirect, EtherType::Other(0x1234)] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_any_payload(
            dst in any::<[u8; 6]>(),
            src in any::<[u8; 6]>(),
            ethertype: u16,
            payload in proptest::collection::vec(any::<u8>(), 0..=MTU),
        ) {
            let f = Frame::new(EthAddr(dst), EthAddr(src), EtherType::from_u16(ethertype), payload.clone());
            let bytes = f.encode().unwrap();
            let g = Frame::decode(&bytes).unwrap();
            prop_assert_eq!(g.dst, f.dst);
            prop_assert_eq!(g.src, f.src);
            prop_assert_eq!(g.ethertype.to_u16(), ethertype);
            prop_assert_eq!(&g.payload.bytes()[..payload.len()], &payload[..]);
        }

        #[test]
        fn single_bit_flips_always_detected(
            payload in proptest::collection::vec(any::<u8>(), 0..200),
            bit in 0usize..512,
        ) {
            let f = Frame::new(EthAddr::host(1), EthAddr::host(2), EtherType::Ipv4, payload);
            let mut bytes = f.encode().unwrap();
            let bit = bit % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(Frame::decode(&bytes).is_err());
        }
    }
}
