//! Plain-text table rendering for the experiment binaries and
//! EXPERIMENTS.md.

use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", "-".repeat(line))?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:>w$} |", w = w)?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat(line))?;
        for row in &self.rows {
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:>w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "{}", "-".repeat(line))
    }
}

/// Formats a float with the paper's one-decimal style.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row_strs(&["alpha", "1"]).row_strs(&["b", "22222"]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("| alpha |     1 |"));
        assert!(s.contains("|     b | 22222 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(0.649), "0.6");
        assert_eq!(f2(9.425), "9.43");
    }
}
