//! The two-host discrete-event driver.
//!
//! Each station's protocol processing runs inside a host *episode*: the
//! simulated CPU starts when the event arrives (or when it finishes its
//! previous work), accumulates the charges the protocol code makes, and
//! frames the station transmits enter the wire when the CPU actually
//! produced them. Stepping alternates with advancing the shared network
//! clock, in ticks small enough that timer firings stay accurate.

use crate::station::Station;
use foxbasis::time::{VirtualDuration, VirtualTime};
use simnet::SimNet;

/// Drives `stations` on `net` until `done()` or `deadline`. Returns the
/// virtual time at which `done` first held (or the deadline).
///
/// `tick` bounds timer latency; 1 ms reproduces the paper's timings
/// faithfully at simulation speeds of millions of virtual seconds per
/// wall second.
pub fn drive(
    net: &SimNet,
    stations: &mut [&mut Box<dyn Station>],
    mut done: impl FnMut(&mut [&mut Box<dyn Station>]) -> bool,
    tick: VirtualDuration,
    deadline: VirtualTime,
) -> VirtualTime {
    let mut now = net.now();
    loop {
        // Settle at the current instant: stations may ping-pong frames
        // that arrive "now" several times (zero-latency CPU models).
        for _ in 0..64 {
            let mut progress = false;
            for s in stations.iter_mut() {
                let host = s.host();
                host.begin(now);
                progress |= s.step(now);
                host.end();
            }
            if let Some(t) = net.next_delivery() {
                if t <= now {
                    net.advance_to(now);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        if done(stations) || now >= deadline {
            return now;
        }
        // Advance to the next interesting instant.
        let mut next = now + tick;
        if let Some(t) = net.next_delivery() {
            next = next.min(t.max(now + VirtualDuration::from_micros(1)));
        }
        next = next.min(deadline);
        net.advance_to(next);
        now = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackKind;
    use foxtcp::TcpConfig;
    use simnet::{CostModel, SimNet};

    fn quick_pair(kind: StackKind) -> (SimNet, Box<dyn Station>, Box<dyn Station>) {
        let net = SimNet::ethernet_10mbps(33);
        let a = kind.build(&net, 1, 2, CostModel::modern(), false, TcpConfig::default());
        let b = kind.build(&net, 2, 1, CostModel::modern(), false, TcpConfig::default());
        (net, a, b)
    }

    fn handshake_and_exchange(kind: StackKind) {
        let (net, mut a, mut b) = quick_pair(kind);
        b.listen(6969);
        let conn = a.connect(6969);
        drive(
            &net,
            &mut [&mut a, &mut b],
            |st| st[0].established(0) && st[1].accept().is_some(),
            VirtualDuration::from_millis(1),
            VirtualTime::from_millis(5_000),
        );
        assert!(a.established(conn), "{} should establish", a.kind());
        // Find the server-side handle (accept consumed it in `done`; the
        // xk/fox stations hand out handle values we captured — redo with
        // an explicit accept loop instead).
        let _ = net;
    }

    #[test]
    fn all_three_stacks_establish() {
        handshake_and_exchange(StackKind::FoxStandard);
        handshake_and_exchange(StackKind::FoxSpecial);
        handshake_and_exchange(StackKind::XKernel);
    }

    #[test]
    fn data_roundtrip_fox_standard() {
        let (net, mut a, mut b) = quick_pair(StackKind::FoxStandard);
        b.listen(7);
        let conn = a.connect(7);
        let mut server_conn = None;
        drive(
            &net,
            &mut [&mut a, &mut b],
            |st| {
                if server_conn.is_none() {
                    server_conn = st[1].accept();
                }
                server_conn.is_some() && st[0].established(0)
            },
            VirtualDuration::from_millis(1),
            VirtualTime::from_millis(5_000),
        );
        let sc = server_conn.expect("accepted");
        assert_eq!(a.send(conn, b"echo me"), 7);
        drive(
            &net,
            &mut [&mut a, &mut b],
            |st| st[1].received_len(sc) >= 7,
            VirtualDuration::from_millis(1),
            VirtualTime::from_millis(5_000),
        );
        assert_eq!(b.recv(sc), b"echo me");
    }
}
