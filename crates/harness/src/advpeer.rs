//! The adversarial scripted peer — the conformance suite's raw peer,
//! generalized into a reusable attacker that runs against *both* stacks
//! on the simulated wire.
//!
//! The conformance tests drive a stack with hand-built segments over a
//! private [`foxtcp::testlink`] pair; that peer is cooperative — it
//! speaks TCP badly on purpose, but only to one victim, with perfect
//! knowledge, on a perfect link. This module rebuilds the idea at the
//! [`simnet`] level: an [`Adversary`] is a third, promiscuous port on
//! the shared Ethernet segment that *sniffs* a live legitimate transfer
//! and injects spoofed frames against it — blind resets, blind data,
//! ACK-division and optimistic-ACK window inflation, silly-window
//! pumps, self-addressed land SYNs, and SYN floods with replays of a
//! promoted child's original SYN. Every script runs mid-transfer, so
//! each report answers the question the taxonomy in DESIGN.md §5.12
//! asks: did the victim keep its counters, its connection, *and* its
//! payload?
//!
//! Determinism: the adversary owns no randomness. Everything it does is
//! a pure function of sniffed traffic, so a cell (stack × attack ×
//! link personality × seed) replays bit-identically — the property the
//! `tables -- adversarial` matrix asserts by running every cell twice.

use crate::sim::drive;
use crate::stack::{ip_of, mac_of, StackKind};
use crate::station::StationStats;
use foxbasis::buf::PacketBuf;
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxtcp::TcpConfig;
use foxwire::ether::{EthAddr, EtherType, Frame};
use foxwire::ipv4::{IpProtocol, Ipv4Addr, Ipv4Header, Ipv4Packet};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpOption, TcpSegment};
use simnet::{CostModel, FaultConfig, NetConfig, NetStats, Port, SimNet};
use std::collections::BTreeMap;

/// Station id of the transfer's sender (the listening side).
const SENDER_ID: u16 = 1;
/// Station id of the transfer's receiver (the connecting side).
const RECEIVER_ID: u16 = 2;
/// Station id the adversary's own (never-spoofed) port answers to.
const ADVERSARY_ID: u16 = 66;
/// The sender's listening port.
const SERVICE_PORT: u16 = 2000;
/// Payload bytes of the legitimate transfer every attack rides along.
pub const TRANSFER_BYTES: usize = 24_000;
/// Payload carried by each injected data segment.
const INJECT_LEN: usize = 512;
/// Accept backlog configured on the listener (the SYN flood sends more).
const BACKLOG: usize = 4;
/// Spoofed SYNs the flood script sends.
const FLOOD_SYNS: usize = 6;

/// What the sniffer knows about one direction of a flow, updated from
/// every frame whose IPv4 source matches the key.
#[derive(Copy, Clone, Debug, Default)]
struct FlowView {
    /// TCP source port of the latest frame.
    src_port: u16,
    /// `seq + seg.len` of the latest frame — the speaker's SND.NXT as
    /// far as the wire shows it.
    seq_end: u32,
    /// Latest acknowledgment field — the speaker's RCV.NXT.
    ack: u32,
    /// Latest advertised window (raw wire field, unscaled).
    window: u16,
    /// Frames seen from this source.
    frames: u64,
}

/// A promiscuous port plus the flow state it has sniffed. All attack
/// scripts address their forgeries from what the spy saw, never from
/// configuration it was handed out of band — the same information a
/// real on-segment attacker has.
pub struct Adversary {
    port: Port,
    views: BTreeMap<Ipv4Addr, FlowView>,
    /// Raw bytes of the first client SYN toward the service port —
    /// replayed verbatim by the flood script.
    captured_syn: Option<Vec<u8>>,
    /// Spoofed frames injected so far.
    pub injected: u64,
}

impl Adversary {
    /// Attaches the adversary's promiscuous port to the segment.
    pub fn new(net: &SimNet) -> Adversary {
        let port = net.attach(mac_of(ADVERSARY_ID));
        port.set_promiscuous(true);
        Adversary { port, views: BTreeMap::new(), captured_syn: None, injected: 0 }
    }

    /// Drains the promiscuous port and updates the flow views.
    pub fn poll(&mut self) {
        while let Some(frame) = self.port.recv() {
            self.sniff(&frame);
        }
    }

    fn sniff(&mut self, frame: &PacketBuf) {
        let Ok(eth) = Frame::decode_buf(frame) else { return };
        if eth.ethertype != EtherType::Ipv4 {
            return;
        }
        let Ok(ip) = Ipv4Packet::decode_buf(&eth.payload) else { return };
        if ip.header.protocol != IpProtocol::Tcp || ip.header.is_fragment() {
            return;
        }
        let Ok(tcp) = TcpSegment::decode_buf(&ip.payload, None) else { return };
        if tcp.header.flags.syn
            && !tcp.header.flags.ack
            && tcp.header.dst_port == SERVICE_PORT
            && self.captured_syn.is_none()
        {
            self.captured_syn = Some(frame.bytes().to_vec());
        }
        let v = self.views.entry(ip.header.src).or_default();
        v.src_port = tcp.header.src_port;
        v.seq_end = (tcp.header.seq + tcp.seq_len()).0;
        if tcp.header.flags.ack {
            v.ack = tcp.header.ack.0;
        }
        v.window = tcp.header.window;
        v.frames += 1;
    }

    fn view(&self, ip: Ipv4Addr) -> FlowView {
        self.views.get(&ip).copied().unwrap_or_default()
    }

    /// Forges one TCP segment (correct TCP checksum, IP checksum and
    /// Ethernet FCS — forgeries must survive every integrity check the
    /// stack runs) and puts it on the wire from the adversary's port.
    #[allow(clippy::too_many_arguments)] // a forged header is its field list
    fn forge(
        &mut self,
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        dst_mac: EthAddr,
        seq: u32,
        ack: Option<u32>,
        mut flags: TcpFlags,
        window: u16,
        payload: &[u8],
        options: Vec<TcpOption>,
    ) {
        let mut h = TcpHeader::new(src.1, dst.1);
        h.seq = Seq(seq);
        if let Some(a) = ack {
            h.ack = Seq(a);
            flags.ack = true;
        }
        h.flags = flags;
        h.window = window;
        h.options = options;
        let seg = TcpSegment { header: h, payload: payload.into() };
        let tcp_bytes = seg.encode_v4(Some((src.0, dst.0))).expect("forged segment encodes");
        let pkt = Ipv4Packet {
            header: Ipv4Header::new(IpProtocol::Tcp, src.0, dst.0),
            payload: PacketBuf::from_vec(tcp_bytes),
        };
        // The source MAC is spoofed too: the frame claims to come from
        // the host whose IP it borrows, like a real on-LAN forgery.
        let frame = Frame::new(
            dst_mac,
            EthAddr([0x02, 0, 0, 0, 0, 0xfe]),
            EtherType::Ipv4,
            pkt.encode().expect("forged packet encodes"),
        )
        .encode_buf()
        .expect("forged frame encodes");
        self.port.send(frame);
        self.injected += 1;
    }

    /// Replays a previously captured frame verbatim.
    fn replay(&mut self, bytes: &[u8]) {
        self.port.send(PacketBuf::from_vec(bytes.to_vec()));
        self.injected += 1;
    }
}

/// The attack scripts. Each is one way a hostile peer tries to kill,
/// corrupt, or inflate a connection it does not own; DESIGN.md §5.12 is
/// the prose taxonomy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Attack {
    /// RST far outside the victim's window: must be dropped silently.
    BlindRstOffWindow,
    /// RST inside the window but off RCV.NXT: must draw a challenge
    /// ACK and bump `rst_rejected_seq`, not abort (RFC 5961 §3.2).
    BlindRstInWindow,
    /// RST landing exactly on RCV.NXT: aborts — the documented refusal
    /// an in-window, exact-sequence reset is entitled to.
    ExactRst,
    /// Data injected far outside the victim's window: dropped, acked.
    BlindDataOffWindow,
    /// Data inside the window but above RCV.NXT: sits in the reassembly
    /// queue forever (the hole in front of it is never filled) and must
    /// never reach the application.
    BlindDataInWindow,
    /// Data landing exactly on RCV.NXT with a correct checksum: TCP
    /// accepts it — the documented exposure of cleartext TCP — and the
    /// poisoned ACKs it provokes stall the transfer (RFC 793 drops
    /// segments whose ACK covers unsent data).
    ExactData,
    /// Savage-style ACK division: the sender's window must grow by
    /// *bytes* acked, not ACKs counted.
    AckDivision,
    /// ACKs for data beyond SND.NXT: dropped, counted, window intact.
    OptimisticAck,
    /// Spoofed tiny-window updates (silly window syndrome pump): the
    /// transfer must still complete.
    SwsPump,
    /// Self-addressed SYN to the listener (land attack).
    Land,
    /// More spoofed SYNs than the backlog holds, plus a verbatim replay
    /// of the promoted child's original SYN.
    SynFloodReplay,
}

impl Attack {
    /// Every script, in matrix order.
    pub const ALL: [Attack; 11] = [
        Attack::BlindRstOffWindow,
        Attack::BlindRstInWindow,
        Attack::ExactRst,
        Attack::BlindDataOffWindow,
        Attack::BlindDataInWindow,
        Attack::ExactData,
        Attack::AckDivision,
        Attack::OptimisticAck,
        Attack::SwsPump,
        Attack::Land,
        Attack::SynFloodReplay,
    ];

    /// Short table label.
    pub fn name(self) -> &'static str {
        match self {
            Attack::BlindRstOffWindow => "rst-off-window",
            Attack::BlindRstInWindow => "rst-in-window",
            Attack::ExactRst => "rst-exact",
            Attack::BlindDataOffWindow => "data-off-window",
            Attack::BlindDataInWindow => "data-in-window",
            Attack::ExactData => "data-exact",
            Attack::AckDivision => "ack-division",
            Attack::OptimisticAck => "optimistic-ack",
            Attack::SwsPump => "sws-pump",
            Attack::Land => "land",
            Attack::SynFloodReplay => "syn-flood",
        }
    }

    /// Whether the script is *expected* to stop the transfer: these are
    /// the documented refusals; every other script must leave the
    /// legitimate transfer fully delivered.
    pub fn expects_refusal(self) -> bool {
        matches!(self, Attack::ExactRst | Attack::ExactData)
    }
}

/// What one attack run produced, for assertions and the matrix table.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackReport {
    /// The script that ran.
    pub attack: Attack,
    /// The victim stack.
    pub stack: StackKind,
    /// Payload bytes the receiver's application got.
    pub delivered: usize,
    /// Payload bytes the transfer asked for.
    pub expected: usize,
    /// The victim connection died before full delivery.
    pub aborted: bool,
    /// Bytes the *sender's* application received beyond the 8-byte
    /// request — nonzero only when injected data was accepted.
    pub sender_extra: usize,
    /// Spoofed frames the adversary put on the wire.
    pub injected: u64,
    /// Largest congestion window observed on the sender (0 for the
    /// baseline, which has no window to inflate).
    pub cwnd_max: u32,
    /// The byte-counted ceiling the window must stay under.
    pub cwnd_bound: u32,
    /// Self-connections the land SYN managed to get accepted (must be 0).
    pub self_accepts: u32,
    /// Sender-side stats at the end of the run.
    pub sender: StationStats,
    /// Receiver-side stats at the end of the run.
    pub receiver: StationStats,
    /// Wire statistics (personality faults show up here).
    pub net: NetStats,
}

impl AttackReport {
    /// The survive-or-documented-refusal verdict a matrix cell asserts.
    pub fn outcome_ok(&self) -> bool {
        if self.attack.expects_refusal() {
            // The refusal must actually have happened: an exact RST
            // kills the connection; exact data is accepted (and its
            // ACK poisoning stalls the transfer short of completion).
            match self.attack {
                Attack::ExactRst => self.aborted,
                Attack::ExactData => self.sender_extra > 0 && self.delivered < self.expected,
                _ => unreachable!("refusal list above"),
            }
        } else {
            self.delivered == self.expected && !self.aborted && self.self_accepts == 0
        }
    }

    /// One-word cell verdict for the rendered matrix.
    pub fn verdict(&self) -> &'static str {
        match (self.outcome_ok(), self.attack.expects_refusal()) {
            (true, true) => "refused",
            (true, false) => "survived",
            (false, _) => "FAILED",
        }
    }
}

/// Runs one attack script against one stack over one link personality,
/// returning the full report. Same arguments ⇒ bit-identical report.
pub fn run_attack(kind: StackKind, attack: Attack, faults: FaultConfig, seed: u64) -> AttackReport {
    let cfg = NetConfig { faults, ..NetConfig::default() };
    let net = SimNet::new(cfg, seed);
    let tcp_cfg = TcpConfig { backlog: BACKLOG, ..TcpConfig::default() };
    let mut sender = kind.build(&net, SENDER_ID, RECEIVER_ID, CostModel::modern(), false, tcp_cfg.clone());
    let mut receiver = kind.build(&net, RECEIVER_ID, SENDER_ID, CostModel::modern(), false, tcp_cfg);
    let mut adv = Adversary::new(&net);
    let deadline = VirtualTime::from_millis(600_000);

    sender.listen(SERVICE_PORT);
    let rconn = receiver.connect(SERVICE_PORT);
    let mut sconn = None;
    drive(
        &net,
        &mut [&mut sender, &mut receiver],
        |st| {
            adv.poll();
            if sconn.is_none() {
                sconn = st[0].accept();
            }
            sconn.is_some() && st[1].established(rconn)
        },
        VirtualDuration::from_millis(1),
        deadline,
    );
    let sconn = sconn.expect("sender accepted the receiver's connection");

    let bytes = TRANSFER_BYTES;
    let request = (bytes as u64).to_be_bytes();
    assert_eq!(receiver.send(rconn, &request), 8, "request fits any window");

    let sender_ip = ip_of(SENDER_ID);
    let sender_mac = mac_of(SENDER_ID);
    let receiver_ip = ip_of(RECEIVER_ID);
    let receiver_mac = mac_of(RECEIVER_ID);
    let junk = [0xEEu8; INJECT_LEN];

    let mut produced = 0usize;
    let mut request_seen = false;
    let mut received = 0usize;
    let mut sender_extra = 0usize;
    let mut cwnd_max = 0u32;
    let mut volleys = 0u32;
    let mut refusal_noticed_at: Option<VirtualTime> = None;
    // The RST scripts pause the sending application once the trigger
    // byte count is through, wait for the wire to go stable (every byte
    // acked, nothing in flight), and only then fire: a reset aimed at a
    // moving RCV.NXT lands below the window and tells us nothing about
    // the victim's sequence validation.
    let rst_volley_cap: u32 = match attack {
        Attack::BlindRstOffWindow => 4,
        Attack::BlindRstInWindow => 6,
        Attack::ExactRst => 12,
        _ => 0,
    };
    let mut stable_ticks = 0u32;
    let mut last_wire = (0u32, 0u32);
    let payload_chunk: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    let trigger = bytes / 4; // attacks start a quarter of the way in
    let sustain = bytes / 2; // pump-style attacks stop half-way

    drive(
        &net,
        &mut [&mut sender, &mut receiver],
        |st| {
            adv.poll();
            // ---- Legitimate applications (as in workload::bulk_transfer).
            if !request_seen && st[0].received_len(sconn) >= 8 {
                let req = st[0].recv(sconn);
                let want = u64::from_be_bytes(req[..8].try_into().expect("8-byte request")) as usize;
                debug_assert_eq!(want, bytes);
                request_seen = true;
            }
            let vs = adv.view(sender_ip); // sender's outbound view
            let vr = adv.view(receiver_ip); // receiver's outbound view
            let rst_paused = rst_volley_cap > 0
                && received >= trigger
                && volleys < rst_volley_cap
                && !st[1].finished(rconn);
            let wire = (vs.seq_end, vr.ack);
            if rst_paused && wire == last_wire && vr.ack == vs.seq_end {
                stable_ticks += 1;
            } else {
                stable_ticks = 0;
                last_wire = wire;
            }
            // Stable for 20 ticks with everything acked: RCV.NXT is
            // parked exactly where the sniffed ACK says it is.
            let quiet = rst_paused && stable_ticks >= 20;
            if request_seen {
                if produced < bytes && !rst_paused {
                    let left = bytes - produced;
                    let chunk = payload_chunk.len().min(left);
                    produced += st[0].send(sconn, &payload_chunk[..chunk]);
                }
                // Anything else arriving at the sender is injected data
                // that TCP accepted.
                sender_extra += st[0].recv(sconn).len();
            }
            received += st[1].recv(rconn).len();
            if let Some(m) = st[0].metrics(sconn) {
                cwnd_max = cwnd_max.max(m.cwnd);
            }

            // ---- The attack script.
            let fired_window = received >= trigger;
            let sustained = fired_window && received < sustain;
            let to_receiver = (sender_ip, SERVICE_PORT);
            let to_receiver_dst = (receiver_ip, vr.src_port);
            let to_sender = (receiver_ip, vr.src_port);
            let to_sender_dst = (sender_ip, SERVICE_PORT);
            match attack {
                Attack::BlindRstOffWindow if quiet => {
                    volleys += 1;
                    adv.forge(
                        to_receiver,
                        to_receiver_dst,
                        receiver_mac,
                        vr.ack.wrapping_add(100_000),
                        None,
                        TcpFlags::RST,
                        0,
                        &[],
                        Vec::new(),
                    );
                }
                Attack::BlindRstInWindow if quiet => {
                    // The cursor is parked, so +2048 is inside the
                    // receiver's 4096-byte window but off RCV.NXT.
                    volleys += 1;
                    adv.forge(
                        to_receiver,
                        to_receiver_dst,
                        receiver_mac,
                        vr.ack.wrapping_add(2048),
                        None,
                        TcpFlags::RST,
                        0,
                        &[],
                        Vec::new(),
                    );
                }
                Attack::ExactRst if quiet => {
                    // With the stream drained, the receiver's last ACK
                    // *is* RCV.NXT — this one lands exactly.
                    volleys += 1;
                    adv.forge(
                        to_receiver,
                        to_receiver_dst,
                        receiver_mac,
                        vr.ack,
                        None,
                        TcpFlags::RST,
                        0,
                        &[],
                        Vec::new(),
                    );
                }
                Attack::BlindDataOffWindow if fired_window && volleys < 4 => {
                    volleys += 1;
                    adv.forge(
                        to_sender,
                        to_sender_dst,
                        sender_mac,
                        vs.ack.wrapping_add(100_000),
                        Some(vs.seq_end),
                        TcpFlags { psh: true, ..TcpFlags::default() },
                        4096,
                        &junk,
                        Vec::new(),
                    );
                }
                Attack::BlindDataInWindow if fired_window && volleys < 4 => {
                    // The sender's RCV.NXT is parked after the 8-byte
                    // request, so +1024 is stably in-window and the hole
                    // in front of it is never filled.
                    volleys += 1;
                    adv.forge(
                        to_sender,
                        to_sender_dst,
                        sender_mac,
                        vs.ack.wrapping_add(1024),
                        Some(vs.seq_end),
                        TcpFlags { psh: true, ..TcpFlags::default() },
                        4096,
                        &junk,
                        Vec::new(),
                    );
                }
                Attack::ExactData if fired_window && volleys < 1 => {
                    volleys += 1;
                    adv.forge(
                        to_sender,
                        to_sender_dst,
                        sender_mac,
                        vs.ack,
                        Some(vs.seq_end),
                        TcpFlags { psh: true, ..TcpFlags::default() },
                        4096,
                        &junk,
                        Vec::new(),
                    );
                }
                Attack::AckDivision if sustained && volleys < 30 => {
                    // Divide the unacked flight into ten sub-MSS ACKs.
                    volleys += 1;
                    let base = vr.ack;
                    let gap = vs.seq_end.wrapping_sub(base).min(1460);
                    if gap >= 10 {
                        for i in 1..=10u32 {
                            adv.forge(
                                to_sender,
                                to_sender_dst,
                                sender_mac,
                                vr.seq_end,
                                Some(base.wrapping_add(i * gap / 10)),
                                TcpFlags::default(),
                                4096,
                                &[],
                                Vec::new(),
                            );
                        }
                    }
                }
                Attack::OptimisticAck if fired_window && volleys < 6 => {
                    volleys += 1;
                    adv.forge(
                        to_sender,
                        to_sender_dst,
                        sender_mac,
                        vr.seq_end,
                        Some(vs.seq_end.wrapping_add(100_000)),
                        TcpFlags::default(),
                        4096,
                        &[],
                        Vec::new(),
                    );
                }
                Attack::SwsPump if fired_window && volleys < 40 => {
                    // A valid-but-tiny window update at the current ack.
                    volleys += 1;
                    adv.forge(
                        to_sender,
                        to_sender_dst,
                        sender_mac,
                        vr.seq_end,
                        Some(vr.ack),
                        TcpFlags::default(),
                        64,
                        &[],
                        Vec::new(),
                    );
                }
                Attack::Land if fired_window && volleys < 3 => {
                    volleys += 1;
                    adv.forge(
                        (sender_ip, SERVICE_PORT),
                        (sender_ip, SERVICE_PORT),
                        sender_mac,
                        0xdead_0000 + volleys,
                        None,
                        TcpFlags::SYN,
                        4096,
                        &[],
                        vec![TcpOption::MaxSegmentSize(1460)],
                    );
                }
                Attack::SynFloodReplay if fired_window && volleys < 1 => {
                    volleys += 1;
                    for i in 0..FLOOD_SYNS as u16 {
                        adv.forge(
                            (ip_of(40 + i), 7000 + i),
                            (sender_ip, SERVICE_PORT),
                            sender_mac,
                            1_000 + u32::from(i),
                            None,
                            TcpFlags::SYN,
                            4096,
                            &[],
                            vec![TcpOption::MaxSegmentSize(1460)],
                        );
                    }
                    if let Some(syn) = adv.captured_syn.clone() {
                        adv.replay(&syn);
                        adv.replay(&syn);
                    }
                }
                _ => {}
            }

            // ---- Termination.
            if received >= bytes {
                return true;
            }
            if attack.expects_refusal() {
                let refused = match attack {
                    Attack::ExactRst => st[1].finished(rconn),
                    _ => sender_extra > 0,
                };
                if refused && refusal_noticed_at.is_none() {
                    refusal_noticed_at = Some(net.now());
                }
                // Give the wreckage two seconds to settle, then stop —
                // a poisoned connection would otherwise retransmit at
                // the deadline's pleasure.
                if let Some(t) = refusal_noticed_at {
                    return net.now().saturating_since(t) >= VirtualDuration::from_millis(2_000);
                }
            }
            false
        },
        VirtualDuration::from_millis(1),
        deadline,
    );

    let aborted = received < bytes && (receiver.finished(rconn) || attack.expects_refusal());
    // Adopt whatever the land SYN or the flood left on the accept
    // queue. Only a child whose handshake actually completed counts as
    // a manufactured connection — a SYN-RCVD husk is the listener
    // doing its job, not a breach.
    let mut self_accepts = 0u32;
    for _ in 0..(FLOOD_SYNS + BACKLOG) {
        if let Some(h) = sender.accept() {
            let synchronized = matches!(
                sender.conn_state(h),
                "Estab" | "FinWait1" | "FinWait2" | "CloseWait" | "Closing" | "LastAck" | "TimeWait"
            );
            if synchronized {
                self_accepts += 1;
            }
        }
    }
    AttackReport {
        attack,
        stack: kind,
        delivered: received.min(bytes),
        expected: bytes,
        aborted,
        sender_extra,
        injected: adv.injected,
        cwnd_max,
        // One initial window, the whole transfer's worth of honest
        // ACKable bytes, and a few MSS of recovery slack: anything above
        // this means ACKs were *counted*, not byte-credited.
        cwnd_bound: 8 * 1460 + bytes as u32,
        self_accepts,
        sender: sender.stats(),
        receiver: receiver.stats(),
        net: net.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean(kind: StackKind, attack: Attack) -> AttackReport {
        run_attack(kind, attack, FaultConfig::default(), 7)
    }

    #[test]
    fn blind_rsts_do_not_kill_either_stack() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            for attack in [Attack::BlindRstOffWindow, Attack::BlindRstInWindow] {
                let r = clean(kind, attack);
                assert!(r.outcome_ok(), "{kind:?} {attack:?}: {r:?}");
                assert!(r.injected >= 4, "the script actually fired");
                if attack == Attack::BlindRstInWindow {
                    assert!(r.receiver.rst_rejected_seq >= 1, "{kind:?}: challenge-ACK counter moved: {r:?}");
                }
            }
        }
    }

    #[test]
    fn exact_rst_is_the_documented_refusal() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = clean(kind, Attack::ExactRst);
            assert!(r.outcome_ok(), "{kind:?}: {r:?}");
            assert!(r.aborted, "{kind:?}: exact-sequence RST kills the connection");
        }
    }

    #[test]
    fn blind_data_never_reaches_the_application() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            for attack in [Attack::BlindDataOffWindow, Attack::BlindDataInWindow] {
                let r = clean(kind, attack);
                assert!(r.outcome_ok(), "{kind:?} {attack:?}: {r:?}");
                assert_eq!(r.sender_extra, 0, "{kind:?} {attack:?}: no injected byte delivered");
            }
        }
    }

    #[test]
    fn exact_data_is_accepted_and_documented() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = clean(kind, Attack::ExactData);
            assert!(r.outcome_ok(), "{kind:?}: {r:?}");
            assert_eq!(r.sender_extra, INJECT_LEN, "{kind:?}: the forged payload was delivered");
            assert!(
                r.receiver.acks_ignored_unsent_data >= 1,
                "{kind:?}: the poisoned ACKs were counted: {r:?}"
            );
        }
    }

    #[test]
    fn ack_division_cannot_inflate_the_window() {
        let r = clean(StackKind::FoxStandard, Attack::AckDivision);
        assert!(r.outcome_ok(), "{r:?}");
        assert!(r.injected >= 100, "the division volleys fired: {}", r.injected);
        assert!(
            r.cwnd_max <= r.cwnd_bound,
            "cwnd {} exceeded the byte-counted bound {}",
            r.cwnd_max,
            r.cwnd_bound
        );
        let xk = clean(StackKind::XKernel, Attack::AckDivision);
        assert!(xk.outcome_ok(), "{xk:?}");
        assert_eq!(xk.cwnd_max, 0, "the baseline has no window to inflate");
    }

    #[test]
    fn optimistic_acks_are_dropped_and_counted() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = clean(kind, Attack::OptimisticAck);
            assert!(r.outcome_ok(), "{kind:?}: {r:?}");
            assert!(r.sender.acks_ignored_unsent_data >= 1, "{kind:?}: optimistic ACKs counted: {r:?}");
            assert!(r.cwnd_max <= r.cwnd_bound, "{kind:?}: window bounded: {r:?}");
        }
    }

    #[test]
    fn sws_pump_slows_but_does_not_stop_the_transfer() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = clean(kind, Attack::SwsPump);
            assert!(r.outcome_ok(), "{kind:?}: {r:?}");
            assert!(r.injected >= 30, "the pump ran: {}", r.injected);
        }
    }

    #[test]
    fn land_syn_is_survived_with_no_self_connection() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = clean(kind, Attack::Land);
            assert!(r.outcome_ok(), "{kind:?}: {r:?}");
            assert_eq!(r.self_accepts, 0, "{kind:?}: no self-connection was accepted");
        }
    }

    #[test]
    fn syn_flood_with_replay_spares_the_promoted_child() {
        let r = clean(StackKind::FoxStandard, Attack::SynFloodReplay);
        assert!(r.outcome_ok(), "{r:?}");
        assert!(
            r.sender.syns_dropped >= (FLOOD_SYNS - BACKLOG) as u64,
            "the overflow SYNs were refused: {r:?}"
        );
        let xk = clean(StackKind::XKernel, Attack::SynFloodReplay);
        assert!(xk.outcome_ok(), "{xk:?}");
    }

    #[test]
    fn reports_replay_bit_identically() {
        let a = run_attack(StackKind::FoxStandard, Attack::BlindRstInWindow, FaultConfig::default(), 11);
        let b = run_attack(StackKind::FoxStandard, Attack::BlindRstInWindow, FaultConfig::default(), 11);
        assert_eq!(a, b, "same cell, same seed, same report");
    }
}
