//! The experiments of the paper's §5, each regenerating one table or
//! in-text claim. EXPERIMENTS.md records paper-vs-measured for all of
//! them; the `tables` binary in the bench crate prints them.

use crate::report::{f1, f2, Table};
use crate::stack::StackKind;
use crate::station::{ScaleCounters, StationStats};
use crate::workload::{bulk_transfer, many_flows, ping_pong, BulkResult, PingResult};
use foxbasis::obs::{EventSink, Stamped, DEFAULT_RING_CAPACITY};
use foxbasis::profile::Account;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxtcp::TcpConfig;
use simnet::{CostModel, FaultConfig, NetConfig, NetStats, PcapSink, SimNet};

/// The paper's benchmark configuration: 4096-byte window, immediate
/// ACKs. (With a 4096-byte window — 2.8 MSS — holding ACKs back for
/// 200 ms stalls every window; the paper's ack-timer policy is not
/// specified beyond "if the ack is to be delayed", and its measured
/// throughput is only reachable with prompt ACKs. Delayed ACKs remain
/// available and are measured in the ablation table.)
pub fn paper_tcp_config() -> TcpConfig {
    TcpConfig { initial_window: 4096, send_buffer: 8192, delayed_ack_ms: None, ..TcpConfig::default() }
}

fn fresh_net(seed: u64) -> SimNet {
    SimNet::new(NetConfig::default(), seed)
}

/// One Table 1 measurement for a stack kind and cost model.
#[derive(Clone, Debug)]
pub struct Speed {
    /// Implementation name.
    pub name: &'static str,
    /// Bulk throughput, Mb/s.
    pub throughput_mbps: f64,
    /// Small-message round trip, ms.
    pub rtt_ms: f64,
    /// The underlying bulk result.
    pub bulk: BulkResult,
    /// The underlying ping result.
    pub ping: PingResult,
}

/// Measures one implementation on the paper's workload.
pub fn measure_speed(kind: StackKind, cost: fn() -> CostModel, bytes: usize, seed: u64) -> Speed {
    // Throughput run.
    let net = fresh_net(seed);
    let mut sender = kind.build(&net, 1, 2, cost(), false, paper_tcp_config());
    let mut receiver = kind.build(&net, 2, 1, cost(), false, paper_tcp_config());
    let bulk = bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));
    assert_eq!(bulk.bytes, bytes, "{}: transfer must complete", kind.name());

    // Round-trip run (fresh network, like the paper's separate test).
    // Delayed ACKs stay on here: for request/response traffic the ACK
    // piggybacks on the echo, which is what 1994 stacks did.
    let net = fresh_net(seed + 1);
    let rtt_cfg = TcpConfig { initial_window: 4096, ..TcpConfig::default() };
    let mut server = kind.build(&net, 1, 2, cost(), false, rtt_cfg.clone());
    let mut client = kind.build(&net, 2, 1, cost(), false, rtt_cfg);
    let ping = ping_pong(&net, &mut server, &mut client, 20, 1, VirtualTime::from_micros(u64::MAX / 2));

    Speed {
        name: kind.name(),
        throughput_mbps: bulk.throughput_mbps,
        rtt_ms: ping.mean_rtt.as_micros() as f64 / 1e3,
        bulk,
        ping,
    }
}

/// Table 1: "Speed Comparison of TCP Implementations."
pub struct Table1 {
    /// Fox Net on the 1994 cost model.
    pub fox: Speed,
    /// x-kernel on the 1994 cost model.
    pub xk: Speed,
}

/// Runs Table 1 with the paper's 10^6-byte transfer.
pub fn table1(seed: u64) -> Table1 {
    let fox = measure_speed(StackKind::FoxStandard, CostModel::decstation_sml, 1_000_000, seed);
    let xk = measure_speed(StackKind::XKernel, CostModel::decstation_c, 1_000_000, seed);
    Table1 { fox, xk }
}

/// Renders Table 1 next to the paper's numbers.
pub fn render_table1(t: &Table1) -> Table {
    let mut tab = Table::new(
        "Table 1: Speed Comparison of TCP Implementations (paper: 0.6 / 2.5 Mb/s, 36 / 4.9 ms)",
        &["", "Fox Net", "x-kernel", "ratio"],
    );
    tab.row(&[
        "Throughput (Mb/s)".into(),
        f1(t.fox.throughput_mbps),
        f1(t.xk.throughput_mbps),
        f2(t.fox.throughput_mbps / t.xk.throughput_mbps),
    ]);
    tab.row(&["Round-Trip (ms)".into(), f1(t.fox.rtt_ms), f1(t.xk.rtt_ms), f2(t.fox.rtt_ms / t.xk.rtt_ms)]);
    tab
}

/// Table 2: the execution profile of the Fox Net stack, sender and
/// receiver columns, with the profiling counters *enabled* (15 µs per
/// update, perturbing the run exactly as the paper's hardware counters
/// did).
pub struct Table2 {
    /// (account, sender %, receiver %).
    pub rows: Vec<(Account, f64, f64)>,
    /// Column sums (the paper's were 100.2 and 94.0).
    pub totals: (f64, f64),
    /// The profiled bulk run the numbers came from.
    pub bulk: BulkResult,
}

/// Runs the profiled 10^6-byte transfer.
pub fn table2(seed: u64) -> Table2 {
    let net = fresh_net(seed);
    let mut sender =
        StackKind::FoxStandard.build(&net, 1, 2, CostModel::decstation_sml(), true, paper_tcp_config());
    let mut receiver =
        StackKind::FoxStandard.build(&net, 2, 1, CostModel::decstation_sml(), true, paper_tcp_config());
    let bulk =
        bulk_transfer(&net, &mut sender, &mut receiver, 1_000_000, VirtualTime::from_micros(u64::MAX / 2));

    // The paper's "packet wait" is the time spent blocked in Mach
    // waiting for a packet; in the simulation that is exactly the
    // machine's idle time, so fold it into the charged account.
    let idle_pct = |st: &dyn crate::station::Station| {
        st.host().with(|h| {
            let idle = bulk.elapsed.saturating_sub(h.total_busy());
            100.0 * idle.as_micros() as f64 / bulk.elapsed.as_micros().max(1) as f64
        })
    };
    let sender_idle = idle_pct(&*sender);
    let receiver_idle = idle_pct(&*receiver);

    let mut rows = Vec::new();
    let mut totals = (0.0, 0.0);
    for account in Account::ALL {
        if account == Account::Scheduler {
            continue; // the paper leaves the scheduler unprofiled
        }
        let s = bulk.sender_profile.iter().find(|(a, _)| *a == account).map(|(_, p)| *p).unwrap_or(0.0);
        let r = bulk.receiver_profile.iter().find(|(a, _)| *a == account).map(|(_, p)| *p).unwrap_or(0.0);
        let (s, r) =
            if account == Account::PacketWait { (s + sender_idle, r + receiver_idle) } else { (s, r) };
        totals.0 += s;
        totals.1 += r;
        rows.push((account, s, r));
    }
    Table2 { rows, totals, bulk }
}

/// The paper's Table 2 values, for side-by-side rendering.
pub fn paper_table2(account: Account) -> Option<(f64, f64)> {
    Some(match account {
        Account::Tcp => (29.0, 27.5),
        Account::Ip => (7.8, 9.7),
        Account::EthMachInterface => (11.2, 11.9),
        Account::Copy => (10.5, 6.3),
        Account::Checksum => (5.1, 5.6),
        Account::MachSend => (7.5, 6.0),
        Account::PacketWait => (15.8, 9.3),
        Account::Gc => (3.4, 5.0),
        Account::Misc => (4.7, 7.3),
        Account::Counters => (5.2, 5.4),
        Account::Scheduler => return None,
    })
}

/// Renders Table 2 next to the paper's numbers.
pub fn render_table2(t: &Table2) -> Table {
    let mut tab = Table::new(
        "Table 2: Execution Profile (Percent of Total Time) of the TCP/IP stack",
        &["component", "Sender", "Receiver", "paper S", "paper R"],
    );
    for (account, s, r) in &t.rows {
        let (ps, pr) = paper_table2(*account).unwrap_or((0.0, 0.0));
        tab.row(&[account.label().into(), f1(*s), f1(*r), f1(ps), f1(pr)]);
    }
    tab.row(&["total".into(), f1(t.totals.0), f1(t.totals.1), "100.2".into(), "94.0".into()]);
    tab
}

/// One row of the GC study: transfer size vs collections and throughput.
#[derive(Clone, Debug)]
pub struct GcRow {
    /// Transfer size in bytes.
    pub bytes: usize,
    /// Minor collections on the sender.
    pub minors: u64,
    /// Major collections on the sender.
    pub majors: u64,
    /// Longest pause.
    pub max_pause: VirtualDuration,
    /// Total pause time.
    pub total_pause: VirtualDuration,
    /// Throughput, Mb/s.
    pub throughput_mbps: f64,
}

/// The §5 GC discussion: "Runs of over 5 MB often require at least one
/// major garbage collection ... the overall throughput on the longer
/// runs is the same or faster than on the shorter runs."
pub fn gc_study(sizes: &[usize], seed: u64) -> Vec<GcRow> {
    sizes
        .iter()
        .map(|&bytes| {
            let net = fresh_net(seed);
            let mut sender = StackKind::FoxStandard.build(
                &net,
                1,
                2,
                CostModel::decstation_sml(),
                false,
                paper_tcp_config(),
            );
            let mut receiver = StackKind::FoxStandard.build(
                &net,
                2,
                1,
                CostModel::decstation_sml(),
                false,
                paper_tcp_config(),
            );
            let r = bulk_transfer(
                &net,
                &mut sender,
                &mut receiver,
                bytes,
                VirtualTime::from_micros(u64::MAX / 2),
            );
            let gc = r.sender_gc.clone().unwrap_or_default();
            GcRow {
                bytes,
                minors: gc.minors,
                majors: gc.majors,
                max_pause: gc.max_pause,
                total_pause: gc.total_pause,
                throughput_mbps: r.throughput_mbps,
            }
        })
        .collect()
}

/// Renders the GC study.
pub fn render_gc_study(rows: &[GcRow]) -> Table {
    let mut tab = Table::new(
        "GC study (paper §5: majors appear past ~5 MB; long-run throughput does not degrade)",
        &["transfer", "minors", "majors", "max pause", "total pause", "Mb/s"],
    );
    for r in rows {
        tab.row(&[
            format!("{:.1} MB", r.bytes as f64 / 1e6),
            r.minors.to_string(),
            r.majors.to_string(),
            format!("{}", r.max_pause),
            format!("{}", r.total_pause),
            f2(r.throughput_mbps),
        ]);
    }
    tab
}

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// What was varied.
    pub name: String,
    /// Throughput, Mb/s.
    pub throughput_mbps: f64,
    /// Segments the sender transmitted.
    pub segments: u64,
    /// Fast-path hit fraction on the receiver (NaN when disabled).
    pub fastpath_fraction: f64,
}

fn run_ablation(name: &str, cfg: TcpConfig, cost: fn() -> CostModel, bytes: usize, seed: u64) -> AblationRow {
    let net = fresh_net(seed);
    let mut sender = StackKind::FoxStandard.build(&net, 1, 2, cost(), false, cfg.clone());
    let mut receiver = StackKind::FoxStandard.build(&net, 2, 1, cost(), false, cfg);
    let r = bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));
    let recv = r.receiver;
    AblationRow {
        name: name.into(),
        throughput_mbps: r.throughput_mbps,
        segments: r.sender.segments_sent,
        fastpath_fraction: if recv.segments_received > 0 {
            recv.fastpath_hits as f64 / recv.segments_received as f64
        } else {
            f64::NAN
        },
    }
}

/// The design-choice ablations DESIGN.md §4 lists.
pub fn ablations(bytes: usize, seed: u64) -> Vec<AblationRow> {
    let base = paper_tcp_config;
    let mut rows =
        vec![run_ablation("baseline (paper config)", base(), CostModel::decstation_sml, bytes, seed)];
    rows.push(run_ablation(
        "fast path off",
        TcpConfig { fast_path: false, ..base() },
        CostModel::decstation_sml,
        bytes,
        seed,
    ));
    rows.push(run_ablation(
        "delayed ACK off",
        TcpConfig { delayed_ack_ms: None, ..base() },
        CostModel::decstation_sml,
        bytes,
        seed,
    ));
    rows.push(run_ablation(
        "Nagle off",
        TcpConfig { nagle: false, ..base() },
        CostModel::decstation_sml,
        bytes,
        seed,
    ));
    rows.push(run_ablation(
        "checksums off",
        TcpConfig { compute_checksums: false, ..base() },
        CostModel::decstation_sml,
        bytes,
        seed,
    ));
    rows.push(run_ablation(
        "latency-priority to_do queue",
        TcpConfig { latency_priority: true, ..base() },
        CostModel::decstation_sml,
        bytes,
        seed,
    ));
    for window in [1024usize, 4096, 16384, 65535] {
        rows.push(run_ablation(
            &format!("window {window}"),
            TcpConfig { initial_window: window, send_buffer: window * 2, ..base() },
            CostModel::decstation_sml,
            bytes,
            seed,
        ));
    }
    rows
}

/// Renders the ablations.
pub fn render_ablations(rows: &[AblationRow]) -> Table {
    let mut tab =
        Table::new("Ablations (Fox Net, 1994 cost model)", &["variant", "Mb/s", "segments", "fastpath"]);
    for r in rows {
        tab.row(&[
            r.name.clone(),
            f2(r.throughput_mbps),
            r.segments.to_string(),
            if r.fastpath_fraction.is_nan() {
                "-".into()
            } else {
                format!("{:.0}%", 100.0 * r.fastpath_fraction)
            },
        ]);
    }
    tab
}

/// The §7 future-work experiment: the stop-and-copy collector vs the
/// promised incremental collector with bounded pauses, measured where
/// pauses hurt — round-trip latency jitter on a live connection.
pub struct GcPauseStudy {
    /// (collector name, mean RTT, max RTT, total GC pause, max GC pause).
    pub rows: Vec<(&'static str, VirtualDuration, VirtualDuration, VirtualDuration, VirtualDuration)>,
}

/// Runs many echo rounds under each collector and reports the jitter.
pub fn gc_pause_study(rounds: usize, seed: u64) -> GcPauseStudy {
    let mut rows = Vec::new();
    for (name, cost) in [
        ("stop-and-copy (SML/NJ '94)", CostModel::decstation_sml as fn() -> CostModel),
        ("incremental, 5 ms bound ('95 plan)", CostModel::decstation_sml_incremental),
    ] {
        let net = fresh_net(seed);
        let cfg = TcpConfig { initial_window: 4096, ..TcpConfig::default() };
        let mut server = StackKind::FoxStandard.build(&net, 1, 2, cost(), false, cfg.clone());
        let mut client = StackKind::FoxStandard.build(&net, 2, 1, cost(), false, cfg);
        // 512-byte echoes allocate enough to keep the collector busy.
        let r =
            ping_pong(&net, &mut server, &mut client, rounds, 512, VirtualTime::from_micros(u64::MAX / 2));
        let gc = server.host().with(|h| h.gc_stats().cloned()).unwrap_or_default();
        rows.push((name, r.mean_rtt, r.max_rtt, gc.total_pause, gc.max_pause));
    }
    GcPauseStudy { rows }
}

/// Renders the pause study.
pub fn render_gc_pause_study(t: &GcPauseStudy) -> Table {
    let mut tab = Table::new(
        "GC pause study (paper §7: an incremental collector should bound the disruption)",
        &["collector", "mean RTT", "max RTT", "GC total", "GC max pause"],
    );
    for (name, mean, max, total, maxp) in &t.rows {
        tab.row(&[
            name.to_string(),
            format!("{mean}"),
            format!("{max}"),
            format!("{total}"),
            format!("{maxp}"),
        ]);
    }
    tab
}

/// Loss-rate robustness sweep (exercises Resend/Karn/backoff end to
/// end — the conditions the quasi-synchronous design is meant to make
/// testable).
pub fn loss_sweep(bytes: usize, seed: u64) -> Vec<(f64, f64, u64)> {
    [0.0, 0.01, 0.05, 0.10]
        .iter()
        .map(|&p| {
            let mut cfg = NetConfig::default();
            cfg.faults.drop_chance = p;
            let net = SimNet::new(cfg, seed);
            let mut sender =
                StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, paper_tcp_config());
            let mut receiver =
                StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, paper_tcp_config());
            let r = bulk_transfer(
                &net,
                &mut sender,
                &mut receiver,
                bytes,
                VirtualTime::from_micros(u64::MAX / 2),
            );
            assert_eq!(r.bytes, bytes, "transfer completes even at {p} loss");
            (p, r.throughput_mbps, r.sender.retransmits)
        })
        .collect()
}

/// Cross-implementation throughput matrix: every (client, server)
/// pairing of the two TCPs on equal (modern) machines. Both the
/// standard-conformance evidence (they interoperate) and a view of which
/// side's implementation limits a mixed deployment.
pub fn interop_matrix(bytes: usize, seed: u64) -> Vec<(String, f64)> {
    let kinds = [StackKind::FoxStandard, StackKind::XKernel];
    let mut rows = Vec::new();
    for &sender in &kinds {
        for &receiver in &kinds {
            let net = fresh_net(seed);
            let cfg = TcpConfig { delayed_ack_ms: None, ..paper_tcp_config() };
            let mut s = sender.build(&net, 1, 2, CostModel::modern(), false, cfg.clone());
            let mut r = receiver.build(&net, 2, 1, CostModel::modern(), false, cfg);
            let res = bulk_transfer(&net, &mut s, &mut r, bytes, VirtualTime::from_micros(u64::MAX / 2));
            assert_eq!(res.bytes, bytes, "{} -> {}", sender.name(), receiver.name());
            rows.push((format!("{} -> {}", sender.name(), receiver.name()), res.throughput_mbps));
        }
    }
    rows
}

/// Renders the interop matrix.
pub fn render_interop_matrix(rows: &[(String, f64)]) -> Table {
    let mut tab =
        Table::new("Interoperation matrix (sender -> receiver, free CPU, Mb/s)", &["pairing", "Mb/s"]);
    for (name, mbps) in rows {
        tab.row(&[name.clone(), f2(*mbps)]);
    }
    tab
}

/// One cell of the deterministic fault matrix.
#[derive(Clone, Debug)]
pub struct LossCell {
    /// Fault profile name.
    pub profile: &'static str,
    /// Implementation name.
    pub stack: &'static str,
    /// Throughput, Mb/s.
    pub throughput_mbps: f64,
    /// Sender retransmissions (all causes).
    pub retransmits: u64,
    /// Sender fast retransmissions.
    pub fast_retransmits: u64,
    /// Fast-recovery episodes on the sender.
    pub recoveries: u64,
    /// Retransmission-timer retransmits on the sender.
    pub rto_fires: u64,
}

/// The fault profiles of the loss matrix: one fault class per row, each
/// strong enough to provoke recovery but survivable by both stacks.
pub fn loss_matrix_profiles() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("drop 5%", FaultConfig { drop_chance: 0.05, ..FaultConfig::default() }),
        // Gilbert–Elliott: mean burst of 3 frames dropping 90%, entered
        // once per ~50 frames — short clustered losses that take out part
        // of a window, the regime fast recovery (and its NewReno
        // partial-ACK path) exists for. Longer bursts kill whole windows
        // and degenerate into pure RTO grind.
        ("burst (GE)", FaultConfig::bursty(1.0 / 50.0, 1.0 / 3.0, 0.9)),
        ("corrupt 3%", FaultConfig { corrupt_chance: 0.03, ..FaultConfig::default() }),
        ("duplicate 5%", FaultConfig { duplicate_chance: 0.05, ..FaultConfig::default() }),
        (
            "reorder (1 ms jitter)",
            FaultConfig { jitter: VirtualDuration::from_millis(1), ..FaultConfig::default() },
        ),
    ]
}

/// A window wide enough (≥ 11 MSS) that three duplicate ACKs can
/// actually accumulate behind a hole; the paper's 4096-byte window is
/// under three segments and would mask fast retransmit entirely.
pub fn loss_matrix_config() -> TcpConfig {
    TcpConfig { initial_window: 16384, send_buffer: 32768, delayed_ack_ms: None, ..TcpConfig::default() }
}

/// Everything observable about one cell run, for exact-equality
/// comparison of same-seed reruns.
fn loss_cell_run(
    kind: StackKind,
    faults: &FaultConfig,
    bytes: usize,
    seed: u64,
) -> (usize, f64, VirtualDuration, StationStats, StationStats, NetStats) {
    let netcfg = NetConfig { faults: faults.clone(), ..NetConfig::default() };
    let net = SimNet::new(netcfg, seed);
    let mut s = kind.build(&net, 1, 2, CostModel::modern(), false, loss_matrix_config());
    let mut r = kind.build(&net, 2, 1, CostModel::modern(), false, loss_matrix_config());
    // A finite deadline (ten virtual minutes): a wedged cell must fail
    // the delivery assert, not grind the harness forever.
    let res = bulk_transfer(&net, &mut s, &mut r, bytes, VirtualTime::from_millis(600_000));
    (res.bytes, res.throughput_mbps, res.elapsed, res.sender, res.receiver, net.stats())
}

/// The loss matrix: {drop, burst, corrupt, duplicate, reorder} × {Fox
/// Net, x-kernel} on fixed seeds. Every cell must deliver every byte,
/// and every cell is run twice to assert that identical seeds give
/// bit-identical outcomes — the paper's determinism claim extended to
/// the fault harness itself.
pub fn loss_matrix(bytes: usize, seed: u64) -> Vec<LossCell> {
    let mut cells = Vec::new();
    for (profile, faults) in loss_matrix_profiles() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let a = loss_cell_run(kind, &faults, bytes, seed);
            let b = loss_cell_run(kind, &faults, bytes, seed);
            assert_eq!(a, b, "{profile}/{}: same seed must replay bit-identically", kind.name());
            assert_eq!(a.0, bytes, "{profile}/{}: transfer must complete", kind.name());
            cells.push(LossCell {
                profile,
                stack: kind.name(),
                throughput_mbps: a.1,
                retransmits: a.3.retransmits,
                fast_retransmits: a.3.fast_retransmits,
                recoveries: a.3.recoveries,
                rto_fires: a.3.rto_fires,
            });
        }
    }
    cells
}

/// Renders the loss matrix.
pub fn render_loss_matrix(cells: &[LossCell]) -> Table {
    let mut tab = Table::new(
        "Loss matrix (every cell delivered all bytes; identical seeds replay bit-identically)",
        &["profile", "stack", "Mb/s", "retx", "fast retx", "recoveries", "RTO"],
    );
    for c in cells {
        tab.row(&[
            c.profile.into(),
            c.stack.into(),
            f2(c.throughput_mbps),
            c.retransmits.to_string(),
            c.fast_retransmits.to_string(),
            c.recoveries.to_string(),
            c.rto_fires.to_string(),
        ]);
    }
    tab
}

// ----- TCP options: interop matrix and SACK-vs-NewReno (DESIGN.md §5.9) -----

/// The option profiles of the interop matrix: every option alone, none,
/// and all together, so a negotiation bug in any single module shows up
/// as its own row.
pub fn option_profiles() -> Vec<(&'static str, bool, bool, bool)> {
    vec![
        // (name, window_scale, sack, timestamps)
        ("none", false, false, false),
        ("wscale", true, false, false),
        ("sack", false, true, false),
        ("ts", false, false, true),
        ("all", true, true, true),
    ]
}

/// One cell of the options interop matrix.
#[derive(Clone, Debug)]
pub struct OptionCell {
    /// Option profile name.
    pub options: &'static str,
    /// "sender -> receiver" stack pairing.
    pub pairing: String,
    /// Fault profile name.
    pub profile: &'static str,
    /// Throughput, Mb/s.
    pub throughput_mbps: f64,
    /// Sender retransmissions (all causes).
    pub retransmits: u64,
}

/// The loss-matrix config with one option profile switched on. The
/// window stays at the loss-matrix size so the `none` rows are directly
/// comparable with the loss matrix itself.
fn option_config(wscale: bool, sack: bool, ts: bool) -> TcpConfig {
    TcpConfig { window_scale: wscale, sack, timestamps: ts, ..loss_matrix_config() }
}

/// Everything observable about one interop cell, for exact-equality
/// comparison of same-seed reruns.
fn option_cell_run(
    sender: StackKind,
    receiver: StackKind,
    cfg: &TcpConfig,
    faults: &FaultConfig,
    bytes: usize,
    seed: u64,
) -> (usize, f64, VirtualDuration, StationStats, StationStats, NetStats) {
    let netcfg = NetConfig { faults: faults.clone(), ..NetConfig::default() };
    let net = SimNet::new(netcfg, seed);
    let mut s = sender.build(&net, 1, 2, CostModel::modern(), false, cfg.clone());
    let mut r = receiver.build(&net, 2, 1, CostModel::modern(), false, cfg.clone());
    let res = bulk_transfer(&net, &mut s, &mut r, bytes, VirtualTime::from_millis(600_000));
    (res.bytes, res.throughput_mbps, res.elapsed, res.sender, res.receiver, net.stats())
}

/// The options interop matrix: {none, wscale, sack, ts, all} × {fox→fox,
/// fox→xk, xk→fox} × every loss-matrix fault profile, on fixed seeds.
/// Every cell must deliver every byte, and every cell runs twice to
/// assert that identical seeds replay bit-identically — negotiation must
/// not perturb determinism. The x-kernel pairings additionally prove
/// that each option degrades cleanly against a peer with a simpler
/// implementation (xk echoes timestamps but keeps go-back-N, so its
/// SackPermitted never grows a scoreboard).
pub fn options_interop(bytes: usize, seed: u64) -> Vec<OptionCell> {
    let pairings = [
        (StackKind::FoxStandard, StackKind::FoxStandard),
        (StackKind::FoxStandard, StackKind::XKernel),
        (StackKind::XKernel, StackKind::FoxStandard),
    ];
    let mut cells = Vec::new();
    for (opts, wscale, sack, ts) in option_profiles() {
        let cfg = option_config(wscale, sack, ts);
        for &(sender, receiver) in &pairings {
            for (profile, faults) in loss_matrix_profiles() {
                let a = option_cell_run(sender, receiver, &cfg, &faults, bytes, seed);
                let b = option_cell_run(sender, receiver, &cfg, &faults, bytes, seed);
                let pairing = format!("{} -> {}", sender.name(), receiver.name());
                assert_eq!(a, b, "{opts}/{pairing}/{profile}: same seed must replay bit-identically");
                assert_eq!(a.0, bytes, "{opts}/{pairing}/{profile}: transfer must complete");
                cells.push(OptionCell {
                    options: opts,
                    pairing,
                    profile,
                    throughput_mbps: a.1,
                    retransmits: a.3.retransmits,
                });
            }
        }
    }
    cells
}

/// Renders the options interop matrix.
pub fn render_options_interop(cells: &[OptionCell]) -> Table {
    let mut tab = Table::new(
        "Options interop matrix (every cell delivered all bytes; identical seeds replay bit-identically)",
        &["options", "pairing", "fault profile", "Mb/s", "retx"],
    );
    for c in cells {
        tab.row(&[
            c.options.into(),
            c.pairing.clone(),
            c.profile.into(),
            f2(c.throughput_mbps),
            c.retransmits.to_string(),
        ]);
    }
    tab
}

/// One seed's SACK-vs-NewReno comparison under multi-hole burst loss.
#[derive(Clone, Debug)]
pub struct SackRow {
    /// The seed this row ran under.
    pub seed: u64,
    /// Recovery scheme ("NewReno" or "SACK").
    pub scheme: &'static str,
    /// Completion time of the transfer, ms.
    pub elapsed_ms: f64,
    /// Payload bytes retransmitted (bytes sent beyond those delivered).
    pub retransmitted_bytes: u64,
    /// Sender retransmissions (all causes).
    pub retransmits: u64,
    /// Retransmission-timer retransmits on the sender.
    pub rto_fires: u64,
}

fn sack_cell(sack: bool, bytes: usize, seed: u64) -> SackRow {
    // A window wide enough (~43 MSS) for a burst to punch several holes
    // into one flight — the multi-hole regime where cumulative-ACK
    // NewReno retransmits one hole per RTT while the SACK scoreboard
    // fills them all in the first.
    let cfg = TcpConfig {
        initial_window: 65535,
        send_buffer: 131072,
        delayed_ack_ms: None,
        sack,
        ..TcpConfig::default()
    };
    let faults = FaultConfig::bursty(1.0 / 50.0, 1.0 / 3.0, 0.9);
    let netcfg = NetConfig { faults, ..NetConfig::default() };
    let net = SimNet::new(netcfg, seed);
    let mut s = StackKind::FoxStandard.build(&net, 1, 2, CostModel::modern(), false, cfg.clone());
    let mut r = StackKind::FoxStandard.build(&net, 2, 1, CostModel::modern(), false, cfg);
    let res = bulk_transfer(&net, &mut s, &mut r, bytes, VirtualTime::from_millis(600_000));
    assert_eq!(res.bytes, bytes, "{}: transfer must complete", if sack { "SACK" } else { "NewReno" });
    SackRow {
        seed,
        scheme: if sack { "SACK" } else { "NewReno" },
        elapsed_ms: res.elapsed.as_micros() as f64 / 1e3,
        retransmitted_bytes: res.sender.bytes_sent - res.bytes as u64,
        retransmits: res.sender.retransmits,
        rto_fires: res.sender.rto_fires,
    }
}

/// SACK-based loss recovery (RFC 6675) against plain NewReno under
/// Gilbert–Elliott burst loss: the same transfer, seeds, and network on
/// both sides, differing only in whether the SACK option is offered.
/// Asserts that across the seeds SACK retransmits strictly fewer payload
/// bytes and completes strictly sooner in aggregate — the scoreboard
/// retransmits only the holes the bursts actually punched, where
/// go-one-hole-per-RTT NewReno rewinds and waits.
pub fn sack_vs_newreno(bytes: usize, seed: u64) -> Vec<SackRow> {
    let mut rows = Vec::new();
    let (mut nr_bytes, mut nr_ms, mut sk_bytes, mut sk_ms) = (0u64, 0.0f64, 0u64, 0.0f64);
    for s in seed..seed + 3 {
        let nr = sack_cell(false, bytes, s);
        let sk = sack_cell(true, bytes, s);
        nr_bytes += nr.retransmitted_bytes;
        nr_ms += nr.elapsed_ms;
        sk_bytes += sk.retransmitted_bytes;
        sk_ms += sk.elapsed_ms;
        rows.push(nr);
        rows.push(sk);
    }
    assert!(
        sk_bytes < nr_bytes,
        "SACK must retransmit fewer payload bytes than NewReno ({sk_bytes} vs {nr_bytes})"
    );
    assert!(sk_ms < nr_ms, "SACK must complete sooner than NewReno ({sk_ms:.1} ms vs {nr_ms:.1} ms)");
    rows
}

/// Renders the SACK-vs-NewReno comparison.
pub fn render_sack_vs_newreno(rows: &[SackRow]) -> Table {
    let mut tab = Table::new(
        "SACK vs NewReno under Gilbert-Elliott burst loss (fox -> fox, 64 KB window)",
        &["seed", "scheme", "elapsed (ms)", "retx bytes", "retx", "RTO"],
    );
    for r in rows {
        tab.row(&[
            r.seed.to_string(),
            r.scheme.into(),
            f1(r.elapsed_ms),
            r.retransmitted_bytes.to_string(),
            r.retransmits.to_string(),
            r.rto_fires.to_string(),
        ]);
    }
    tab
}

// ----- copy accounting (DESIGN.md §5.6: the buffer architecture) -----

/// One row of the copy comparison: real memcpy traffic through the
/// packet-buffer layer during the Table 1 bulk workload. The counter is
/// purely observational — the virtual cost model charges the paper's
/// per-KB constants independently — so these numbers measure what the
/// zero-copy buffer architecture actually saves, per stack.
#[derive(Clone, Debug)]
pub struct CopyRow {
    /// Implementation name.
    pub name: &'static str,
    /// Counted buffer copies across both hosts.
    pub copies: u64,
    /// Bytes those copies moved.
    pub bytes: u64,
    /// Segments transmitted across both hosts.
    pub segments: u64,
}

impl CopyRow {
    /// Counted copies per transmitted segment.
    pub fn copies_per_packet(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.copies as f64 / self.segments as f64
        }
    }

    /// Bytes memcpy'd per transmitted segment.
    pub fn bytes_per_segment(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.bytes as f64 / self.segments as f64
        }
    }
}

/// Runs the Table 1 bulk transfer once per stack with the thread-local
/// copy counter zeroed, and reports what each implementation memcpy'd.
/// The Fox stack stages each segment once (ring -> [`PacketBuf`] with
/// headroom, checksum folded into the same pass); the baseline stages
/// headroom-free and pays again when the header is prepended.
///
/// [`PacketBuf`]: foxbasis::buf::PacketBuf
pub fn copy_comparison(bytes: usize, seed: u64) -> Vec<CopyRow> {
    use foxbasis::buf::{copy_stats, reset_copy_stats};
    let runs: [(StackKind, fn() -> CostModel); 2] =
        [(StackKind::FoxStandard, CostModel::decstation_sml), (StackKind::XKernel, CostModel::decstation_c)];
    let mut rows = Vec::new();
    for (kind, cost) in runs {
        let net = fresh_net(seed);
        let mut sender = kind.build(&net, 1, 2, cost(), false, paper_tcp_config());
        let mut receiver = kind.build(&net, 2, 1, cost(), false, paper_tcp_config());
        reset_copy_stats();
        let bulk =
            bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));
        let cs = copy_stats();
        assert_eq!(bulk.bytes, bytes, "{}: transfer must complete", kind.name());
        let segments = sender.stats().segments_sent + receiver.stats().segments_sent;
        rows.push(CopyRow { name: kind.name(), copies: cs.copies, bytes: cs.bytes, segments });
    }
    rows
}

/// Renders the copy comparison.
pub fn render_copy_comparison(rows: &[CopyRow]) -> Table {
    let mut tab = Table::new(
        "Buffer copies on the Table 1 bulk workload (both hosts, user copy excluded)",
        &["stack", "copies", "bytes", "segments", "copies/pkt", "bytes/pkt"],
    );
    for r in rows {
        tab.row(&[
            r.name.into(),
            r.copies.to_string(),
            r.bytes.to_string(),
            r.segments.to_string(),
            f2(r.copies_per_packet()),
            f1(r.bytes_per_segment()),
        ]);
    }
    tab
}

// ----- traced runs (DESIGN.md §5.5: the typed event layer) -----

/// A run with the event layer on: the typed stream, its drop counter,
/// the wire capture of the same run, and the workload result.
pub struct TracedBulk {
    /// The recorded events, in emission order.
    pub events: Vec<Stamped>,
    /// Events the bounded ring overwrote (0 in a healthy run).
    pub dropped: u64,
    /// Every frame that crossed the medium, libpcap-framed.
    pub pcap: PcapSink,
    /// The workload result.
    pub bulk: BulkResult,
}

fn run_traced(
    net: SimNet,
    kind: StackKind,
    cost: fn() -> CostModel,
    cfg: TcpConfig,
    bytes: usize,
    deadline: VirtualTime,
) -> TracedBulk {
    run_traced_batched(net, kind, cost, cfg, bytes, deadline, foxproto::dev::BatchConfig::default())
}

#[allow(clippy::too_many_arguments)]
fn run_traced_batched(
    net: SimNet,
    kind: StackKind,
    cost: fn() -> CostModel,
    cfg: TcpConfig,
    bytes: usize,
    deadline: VirtualTime,
    batch: foxproto::dev::BatchConfig,
) -> TracedBulk {
    let sink = EventSink::recording(DEFAULT_RING_CAPACITY);
    net.set_obs(sink.clone());
    let pcap = net.capture();
    let mut s = kind.build_batched(&net, 1, 2, cost(), false, cfg.clone(), sink.clone(), batch);
    let mut r = kind.build_batched(&net, 2, 1, cost(), false, cfg, sink.clone(), batch);
    let bulk = bulk_transfer(&net, &mut s, &mut r, bytes, deadline);
    TracedBulk { events: sink.events(), dropped: sink.dropped(), pcap, bulk }
}

/// The Table 1 bulk transfer with the event layer recording: the same
/// run `measure_speed` times, but returning the full typed timeline
/// (TCP state machine, timers, segments, frames, GC) next to the pcap.
/// Two calls with the same seed must produce byte-identical streams —
/// `foxbasis::obs::first_divergence` of the pair is `None`.
pub fn traced_table1_bulk(kind: StackKind, cost: fn() -> CostModel, bytes: usize, seed: u64) -> TracedBulk {
    run_traced(fresh_net(seed), kind, cost, paper_tcp_config(), bytes, VirtualTime::from_micros(u64::MAX / 2))
}

/// The traced bulk run under an explicit TCP configuration on the
/// fault-free Table 1 network — for trace-diffing a configuration knob
/// (ACK coalescing, delayed ACKs) against the defaults on the same
/// seed.
pub fn traced_bulk_with(
    kind: StackKind,
    cost: fn() -> CostModel,
    cfg: TcpConfig,
    bytes: usize,
    seed: u64,
) -> TracedBulk {
    run_traced(fresh_net(seed), kind, cost, cfg, bytes, VirtualTime::from_micros(u64::MAX / 2))
}

/// The traced Table 1 bulk run with explicit GRO/TSO device batching —
/// for trace-diffing a batched device against the unbatched one on the
/// same seed. Under the 1994 cost presets the per-batch device costs
/// are zero, so the two streams must be byte-identical: batching groups
/// the charges that exist, it never invents new ones.
pub fn traced_table1_bulk_batched(
    kind: StackKind,
    cost: fn() -> CostModel,
    bytes: usize,
    seed: u64,
    batch: foxproto::dev::BatchConfig,
) -> TracedBulk {
    run_traced_batched(
        fresh_net(seed),
        kind,
        cost,
        paper_tcp_config(),
        bytes,
        VirtualTime::from_micros(u64::MAX / 2),
        batch,
    )
}

/// One loss-matrix cell with the event layer recording. Unlike the
/// fault-free Table 1 run — whose event stream does not depend on the
/// seed at all — a lossy cell consumes the fault dice, so different
/// seeds diverge and `first_divergence` names the first differing
/// event.
pub fn traced_loss_cell(kind: StackKind, profile: &str, bytes: usize, seed: u64) -> TracedBulk {
    traced_cell_with(kind, profile, loss_matrix_config(), bytes, seed)
}

/// A traced loss-matrix cell under an explicit TCP configuration, for
/// trace-diffing configuration changes — a selected congestion
/// algorithm, an offered option — against the pinned defaults on the
/// same fault dice.
pub fn traced_cell_with(
    kind: StackKind,
    profile: &str,
    cfg: TcpConfig,
    bytes: usize,
    seed: u64,
) -> TracedBulk {
    let faults = loss_matrix_profiles()
        .into_iter()
        .find(|(name, _)| *name == profile)
        .unwrap_or_else(|| panic!("unknown fault profile {profile:?}"))
        .1;
    let netcfg = NetConfig { faults, ..NetConfig::default() };
    run_traced(
        SimNet::new(netcfg, seed),
        kind,
        CostModel::modern,
        cfg,
        bytes,
        VirtualTime::from_millis(600_000),
    )
}

/// Renders the loss sweep.
pub fn render_loss_sweep(rows: &[(f64, f64, u64)]) -> Table {
    let mut tab = Table::new("Loss-rate sweep (Fox Net, free CPU)", &["loss", "Mb/s", "retransmits"]);
    for (p, mbps, retx) in rows {
        tab.row(&[format!("{:.0}%", p * 100.0), f2(*mbps), retx.to_string()]);
    }
    tab
}

/// One cell of the scale experiment: one stack at one concurrency level.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Which stack served the flows.
    pub kind: StackKind,
    /// Clients attached (half bulk, half ping-pong).
    pub flows: usize,
    /// Flows that delivered everything (must equal `flows`).
    pub completed: usize,
    /// Aggregate payload throughput across all flows, Mb/s.
    pub aggregate_mbps: f64,
    /// Mean per-connection throughput of the bulk flows, Mb/s.
    pub bulk_mean_mbps: f64,
    /// Mean application round-trip of the ping flows, ms.
    pub ping_mean_ms: f64,
    /// Simulated CPU time the server spent, ms (aggregate host cost).
    pub server_busy_ms: f64,
    /// Server timer-wheel and demux operation counts.
    pub scale: ScaleCounters,
}

/// The scale experiment: [`many_flows`] at each concurrency in `ns`
/// (paper setup × N — the regime Table 1 never reaches), fox and
/// x-kernel back to back on identical segments. Every client downloads
/// 8 KB (even index) or runs eight 64-byte round trips (odd index).
/// Both stacks run on the same DECstation C cost model, so the host-cost
/// column compares implementations, not machines.
pub fn scale_experiment(ns: &[usize], seed: u64) -> Vec<ScaleCell> {
    let mut cells = Vec::new();
    for &kind in &[StackKind::FoxStandard, StackKind::XKernel] {
        for &n in ns {
            let net = fresh_net(seed);
            let r = many_flows(
                &net,
                kind,
                n,
                8192,
                8,
                CostModel::decstation_c,
                &EventSink::off(),
                VirtualTime::from_millis(600_000),
            );
            let bulk: Vec<f64> = r.per_flow.iter().filter(|f| f.bulk).map(|f| f.mbps()).collect();
            let ping: Vec<f64> = r
                .per_flow
                .iter()
                .filter(|f| !f.bulk)
                .map(|f| f.elapsed.as_secs_f64() * 1000.0 / 8.0)
                .collect();
            let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
            cells.push(ScaleCell {
                kind,
                flows: n,
                completed: r.completed,
                aggregate_mbps: r.aggregate_mbps,
                bulk_mean_mbps: mean(&bulk),
                ping_mean_ms: mean(&ping),
                server_busy_ms: r.server_busy.as_secs_f64() * 1000.0,
                scale: r.server_scale,
            });
        }
    }
    cells
}

/// Renders the scale experiment.
pub fn render_scale(cells: &[ScaleCell]) -> Table {
    let mut tab = Table::new(
        "Scale: N concurrent connections through one server (DECstation C cost model)",
        &[
            "stack",
            "N",
            "done",
            "agg Mb/s",
            "bulk Mb/s",
            "ping ms",
            "cpu ms",
            "tmr arms",
            "tmr fires",
            "casc",
            "dmx look",
            "dmx steps",
            "steps/look",
        ],
    );
    for c in cells {
        let per = c.scale.demux_steps as f64 / (c.scale.demux_lookups as f64).max(1.0);
        tab.row(&[
            c.kind.name().into(),
            c.flows.to_string(),
            format!("{}/{}", c.completed, c.flows),
            f2(c.aggregate_mbps),
            f2(c.bulk_mean_mbps),
            f2(c.ping_mean_ms),
            f1(c.server_busy_ms),
            c.scale.timer_arms.to_string(),
            c.scale.timer_fires.to_string(),
            c.scale.timer_cascades.to_string(),
            c.scale.demux_lookups.to_string(),
            c.scale.demux_steps.to_string(),
            f2(per),
        ]);
    }
    tab
}

// ----- Adversarial matrix (DESIGN.md §5.12) -----

/// The link personalities the adversarial matrix crosses the attack
/// scripts with: a clean segment plus the hostile-link shapes — the
/// ADSL-style dialup↔gigabit mismatch, a bufferbloat-deep drop-tail
/// queue, an MSS-clamping middlebox, and the in-loop packet fuzzer.
pub fn adversarial_profiles() -> Vec<(&'static str, FaultConfig)> {
    vec![
        ("clean", FaultConfig::default()),
        ("dialup", FaultConfig::dialup_mismatch()),
        ("bloat", FaultConfig::bufferbloat(16)),
        ("clamp536", FaultConfig::clamped(536)),
        ("fuzz2%", FaultConfig::fuzzing(0.02)),
    ]
}

/// One cell of the adversarial matrix.
#[derive(Clone, Debug)]
pub struct AdvCell {
    /// Attack script name.
    pub attack: &'static str,
    /// Link personality name.
    pub profile: &'static str,
    /// Victim stack name.
    pub stack: &'static str,
    /// "survived", "refused", or "FAILED".
    pub verdict: &'static str,
    /// Payload bytes the legitimate receiver got.
    pub delivered: usize,
    /// Spoofed frames the adversary injected.
    pub injected: u64,
    /// Challenge-ACK rejections, both hosts.
    pub rst_rejected: u64,
    /// Optimistic/poisoned ACKs dropped, both hosts.
    pub acks_ignored: u64,
    /// SYNs refused at a full backlog, both hosts.
    pub syns_dropped: u64,
}

/// The adversarial matrix: every attack script × every link
/// personality × {Fox Net, x-kernel}, on a fixed seed. Every cell must
/// either survive with full delivery or be one of the two documented
/// refusals, and every cell is run twice to assert that identical
/// seeds give bit-identical reports — the adversary owns no
/// randomness, so a replayed cell is the same cell.
pub fn adversarial_matrix(seed: u64) -> Vec<AdvCell> {
    use crate::advpeer::Attack;
    let mut cells = Vec::new();
    for attack in Attack::ALL {
        for (profile, faults) in adversarial_profiles() {
            for kind in [StackKind::FoxStandard, StackKind::XKernel] {
                cells.push(adversarial_cell(kind, attack, profile, &faults, seed));
            }
        }
    }
    cells
}

/// Runs one matrix cell twice, asserting bit-identical replay, the
/// survive-or-documented-refusal outcome, and — for the attacks that
/// are *about* a counter — that the counter moved on this personality,
/// not just on the clean link.
fn adversarial_cell(
    kind: StackKind,
    attack: crate::advpeer::Attack,
    profile: &'static str,
    faults: &FaultConfig,
    seed: u64,
) -> AdvCell {
    use crate::advpeer::{run_attack, Attack};
    let a = run_attack(kind, attack, faults.clone(), seed);
    let b = run_attack(kind, attack, faults.clone(), seed);
    assert_eq!(a, b, "{}/{profile}/{}: same seed must replay bit-identically", attack.name(), kind.name());
    assert!(
        a.outcome_ok(),
        "{}/{profile}/{}: survive-or-documented-refusal violated: {a:?}",
        attack.name(),
        kind.name()
    );
    let rst_rejected = a.sender.rst_rejected_seq + a.receiver.rst_rejected_seq;
    let acks_ignored = a.sender.acks_ignored_unsent_data + a.receiver.acks_ignored_unsent_data;
    let syns_dropped = a.sender.syns_dropped + a.receiver.syns_dropped;
    match attack {
        Attack::BlindRstInWindow => assert!(
            rst_rejected >= 1,
            "{}/{profile}/{}: challenge-ACK counter never moved: {a:?}",
            attack.name(),
            kind.name()
        ),
        Attack::OptimisticAck => assert!(
            acks_ignored >= 1,
            "{}/{profile}/{}: optimistic ACKs were not counted: {a:?}",
            attack.name(),
            kind.name()
        ),
        Attack::SynFloodReplay if kind == StackKind::FoxStandard => assert!(
            syns_dropped >= 1,
            "{}/{profile}/{}: the full backlog never refused a SYN: {a:?}",
            attack.name(),
            kind.name()
        ),
        _ => {}
    }
    AdvCell {
        attack: attack.name(),
        profile,
        stack: kind.name(),
        verdict: a.verdict(),
        delivered: a.delivered,
        injected: a.injected,
        rst_rejected,
        acks_ignored,
        syns_dropped,
    }
}

/// The CI smoke subset: six fixed cells spanning both stacks, both
/// documented refusals, every counter, and four of the five link
/// personalities — each cell run twice with the same bit-identical
/// assertions as the full matrix, in a fraction of the time.
pub fn adversarial_smoke(seed: u64) -> Vec<AdvCell> {
    use crate::advpeer::Attack;
    let profiles = adversarial_profiles();
    let faults = |name: &str| {
        profiles.iter().find(|(n, _)| *n == name).map(|(_, f)| f.clone()).expect("known profile")
    };
    let picks: [(StackKind, Attack, &'static str); 6] = [
        (StackKind::FoxStandard, Attack::BlindRstInWindow, "clean"),
        (StackKind::XKernel, Attack::ExactRst, "clean"),
        (StackKind::FoxStandard, Attack::ExactData, "fuzz2%"),
        (StackKind::XKernel, Attack::OptimisticAck, "dialup"),
        (StackKind::FoxStandard, Attack::SynFloodReplay, "clamp536"),
        (StackKind::XKernel, Attack::AckDivision, "bloat"),
    ];
    picks
        .into_iter()
        .map(|(kind, attack, profile)| adversarial_cell(kind, attack, profile, &faults(profile), seed))
        .collect()
}

/// Renders the adversarial matrix.
pub fn render_adversarial_matrix(cells: &[AdvCell]) -> Table {
    let mut tab = Table::new(
        "Adversarial matrix (attack × link × stack; every cell replayed bit-identically)",
        &["attack", "link", "stack", "verdict", "delivered", "injected", "rstRej", "ackIgn", "synDrop"],
    );
    for c in cells {
        tab.row(&[
            c.attack.into(),
            c.profile.into(),
            c.stack.into(),
            c.verdict.into(),
            c.delivered.to_string(),
            c.injected.to_string(),
            c.rst_rejected.to_string(),
            c.acks_ignored.to_string(),
            c.syns_dropped.to_string(),
        ]);
    }
    tab
}
