//! # The experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (§5): stack
//! assembly (the paper's Fig. 3), a common station abstraction over the
//! Fox TCP and the x-kernel baseline, the two-host discrete-event
//! driver, the workloads (bulk transfer and round-trip), and the
//! experiments themselves (Table 1, Table 2, the GC study, the
//! microbenchmark tables, and the ablations).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod advpeer;
pub mod bench;
pub mod experiments;
pub mod report;
pub mod sim;
pub mod stack;
pub mod station;
pub mod workload;

pub use advpeer::{run_attack, Adversary, Attack, AttackReport};
pub use bench::{bench_transfer, BenchProfile, BenchRun};
pub use sim::drive;
pub use stack::{special_station, standard_station, xk_station, StackKind};
pub use station::{ConnHandle, Station};
pub use workload::{bulk_transfer, ping_pong, BulkResult, PingResult};
