//! Stack assembly — the paper's Fig. 3, as code:
//!
//! ```text
//! structure Device = ...
//! structure Eth = Eth (structure Lower = Device ...)
//! structure Ip  = Ip  (structure Lower = Eth ...)
//! structure Standard_Tcp = Tcp (structure Lower = Ip,  val do_checksums = true  ...)
//! structure Special_Tcp  = Tcp (structure Lower = Eth, val do_checksums = false ...)
//! ```
//!
//! Here the instantiations are generic-type applications; the compiler
//! checks every sharing constraint. The same device/Ethernet/IP substrate
//! also carries the x-kernel baseline, so the Table 1 comparison holds
//! everything but the TCP implementation (and its cost model) equal.

use crate::station::{ConnHandle, ScaleCounters, Station, StationStats};
use fox_scheduler::SchedHandle;
use foxbasis::obs::{ConnMetrics, EventSink};
use foxbasis::time::VirtualTime;
use foxproto::aux::IpAux;
use foxproto::dev::{BatchConfig, Dev};
use foxproto::eth::Eth;
use foxproto::ip::{Ip, IpConfig};
use foxproto::vp::SizedPayload;
use foxproto::{EthAux, IpAuxImpl, Protocol};
use foxtcp::{ConnectingSocket, EstablishedSocket, ListeningSocket, Tcp, TcpConfig, TcpConnId, TcpEvent};
use foxwire::ether::{EthAddr, EtherType};
use foxwire::ipv4::{IpProtocol, Ipv4Addr};
use simnet::{CostModel, Host, HostHandle, SimNet};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use xktcp::{XkConfig, XkEvent, XkTcp};

/// Which stack to build for an experiment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StackKind {
    /// `Standard_Tcp`: the structured TCP over IP over Ethernet.
    FoxStandard,
    /// `Special_Tcp`: the structured TCP directly over Ethernet,
    /// checksums off (Fig. 3's non-standard composition).
    FoxSpecial,
    /// The x-kernel/Berkeley-style baseline over IP over Ethernet.
    XKernel,
}

impl StackKind {
    /// Builds a station of this kind attached to `net`.
    ///
    /// `id` numbers the host (MAC `02:...:id`, IP `10.0.0.id`); the
    /// station's peer is host `peer_id` (two-host experiments). `cost`
    /// is the machine model; `profiled` enables the Table 2 counters.
    pub fn build(
        self,
        net: &SimNet,
        id: u16,
        peer_id: u16,
        cost: CostModel,
        profiled: bool,
        tcp_cfg: TcpConfig,
    ) -> Box<dyn Station> {
        self.build_traced(net, id, peer_id, cost, profiled, tcp_cfg, EventSink::off())
    }

    /// Like [`StackKind::build`], but with an event sink installed in
    /// every layer (device, host GC, TCP engine), stamped with the
    /// station's wire-side host id so device and wire views of one
    /// frame line up.
    #[allow(clippy::too_many_arguments)]
    pub fn build_traced(
        self,
        net: &SimNet,
        id: u16,
        peer_id: u16,
        cost: CostModel,
        profiled: bool,
        tcp_cfg: TcpConfig,
        sink: EventSink,
    ) -> Box<dyn Station> {
        self.build_batched(net, id, peer_id, cost, profiled, tcp_cfg, sink, BatchConfig::default())
    }

    /// Like [`StackKind::build_traced`], but with GRO/TSO device
    /// batching limits. `BatchConfig::default()` (both bursts 1) is
    /// exactly the unbatched device.
    #[allow(clippy::too_many_arguments)]
    pub fn build_batched(
        self,
        net: &SimNet,
        id: u16,
        peer_id: u16,
        cost: CostModel,
        profiled: bool,
        tcp_cfg: TcpConfig,
        sink: EventSink,
        batch: BatchConfig,
    ) -> Box<dyn Station> {
        match self {
            StackKind::FoxStandard => {
                standard_station(net, id, peer_id, cost, profiled, tcp_cfg, sink, batch)
            }
            StackKind::FoxSpecial => special_station(net, id, peer_id, cost, profiled, tcp_cfg, sink, batch),
            StackKind::XKernel => xk_station(net, id, peer_id, cost, profiled, &tcp_cfg, sink, batch),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StackKind::FoxStandard => "Fox Net",
            StackKind::FoxSpecial => "Fox Net (TCP/Eth)",
            StackKind::XKernel => "x-kernel",
        }
    }
}

fn host_handle(id: u16, cost: CostModel, profiled: bool) -> HostHandle {
    let name: &'static str = match id {
        1 => "host1",
        2 => "host2",
        _ => "host",
    };
    HostHandle::new(Host::new(name, cost, profiled))
}

/// MAC for a station id. Ids below 256 keep the classic
/// `02:00:00:00:00:<id>` form; the high byte extends the space so the
/// scale experiment can attach hundreds of hosts to one segment.
pub fn mac_of(id: u16) -> EthAddr {
    EthAddr([0x02, 0, 0, 0, (id >> 8) as u8, (id & 0xff) as u8])
}

/// IP for a station id: `10.0.<hi>.<lo>` (same as the old
/// `10.0.0.<id>` for ids below 256).
pub fn ip_of(id: u16) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (id >> 8) as u8, (id & 0xff) as u8)
}

/// A /16 host config: like [`IpConfig::isolated`] but wide enough that
/// the scale experiment's hosts (10.0.1.x and up) stay on-subnet.
fn ip_config(local: Ipv4Addr) -> IpConfig {
    IpConfig { local, prefix_len: 16, gateway: None, ttl: 64 }
}

/// Stations attach ports in build order, so station `id` (1-based) sits
/// on wire port `id - 1`; stamping events with the port number keeps the
/// device-side and wire-side views of one frame under the same host id.
fn stamp(sink: &EventSink, id: u16) -> EventSink {
    sink.for_host(u32::from(id.saturating_sub(1)))
}

/// `Standard_Tcp = Tcp (structure Lower = Ip ...)`.
#[allow(clippy::too_many_arguments)]
pub fn standard_station(
    net: &SimNet,
    id: u16,
    peer_id: u16,
    cost: CostModel,
    profiled: bool,
    tcp_cfg: TcpConfig,
    sink: EventSink,
    batch: BatchConfig,
) -> Box<dyn Station> {
    let stamped = stamp(&sink, id);
    let host = host_handle(id, cost, profiled);
    host.set_obs(stamped.clone());
    let sched = SchedHandle::new();
    let mac = mac_of(id);
    let local = ip_of(id);
    let mut dev = Dev::new(net.attach(mac), host.clone());
    dev.set_batching(batch);
    dev.set_obs(stamped.clone());
    let eth = Eth::new(dev, mac, host.clone());
    let ip = Ip::new(eth, mac, ip_config(local), host.clone());
    // The TCP aux carries the *link* MTU (1500 on Ethernet), not IP's
    // post-header capacity: RFC 879 expresses the MSS against the link
    // MTU (mss_for_mtu subtracts both 20-byte headers), so a 1500-byte
    // link advertises 1460 and each full segment fills a frame exactly.
    let aux = IpAuxImpl::new(local, IpProtocol::Tcp, foxwire::ether::MTU);
    let mut tcp = Tcp::new(ip, aux, IpProtocol::Tcp, tcp_cfg, sched.clone(), host.clone());
    tcp.set_obs(stamped);
    Box::new(FoxStation {
        tcp,
        _sched: sched,
        host,
        peer: ip_of(peer_id),
        kind: "Fox Net",
        bufs: BTreeMap::new(),
        accepted: Rc::new(RefCell::new(VecDeque::new())),
        listener: None,
        socks: BTreeMap::new(),
    })
}

/// `Special_Tcp = Tcp (structure Lower = Eth ...)` — with the
/// `SizedPayload` virtual protocol delimiting segments, and TCP
/// checksums off (the Ethernet FCS carries integrity).
#[allow(clippy::too_many_arguments)]
pub fn special_station(
    net: &SimNet,
    id: u16,
    peer_id: u16,
    cost: CostModel,
    profiled: bool,
    mut tcp_cfg: TcpConfig,
    sink: EventSink,
    batch: BatchConfig,
) -> Box<dyn Station> {
    tcp_cfg.compute_checksums = false; // val do_checksums = false
    let stamped = stamp(&sink, id);
    let host = host_handle(id, cost, profiled);
    host.set_obs(stamped.clone());
    let sched = SchedHandle::new();
    let mac = mac_of(id);
    let mut dev = Dev::new(net.attach(mac), host.clone());
    dev.set_batching(batch);
    dev.set_obs(stamped.clone());
    let eth = SizedPayload::new(Eth::new(dev, mac, host.clone()));
    let mut tcp = Tcp::new(eth, EthAux::new(), EtherType::TcpDirect, tcp_cfg, sched.clone(), host.clone());
    tcp.set_obs(stamped);
    Box::new(FoxStation {
        tcp,
        _sched: sched,
        host,
        peer: mac_of(peer_id),
        kind: "Fox Net (TCP/Eth)",
        bufs: BTreeMap::new(),
        accepted: Rc::new(RefCell::new(VecDeque::new())),
        listener: None,
        socks: BTreeMap::new(),
    })
}

/// The x-kernel baseline over the standard substrate.
#[allow(clippy::too_many_arguments)]
pub fn xk_station(
    net: &SimNet,
    id: u16,
    peer_id: u16,
    cost: CostModel,
    profiled: bool,
    tcp_cfg: &TcpConfig,
    sink: EventSink,
    batch: BatchConfig,
) -> Box<dyn Station> {
    let stamped = stamp(&sink, id);
    let host = host_handle(id, cost, profiled);
    host.set_obs(stamped.clone());
    let mac = mac_of(id);
    let local = ip_of(id);
    let mut dev = Dev::new(net.attach(mac), host.clone());
    dev.set_batching(batch);
    dev.set_obs(stamped.clone());
    let eth = Eth::new(dev, mac, host.clone());
    let ip = Ip::new(eth, mac, ip_config(local), host.clone());
    // The TCP aux carries the *link* MTU (1500 on Ethernet), not IP's
    // post-header capacity: RFC 879 expresses the MSS against the link
    // MTU (mss_for_mtu subtracts both 20-byte headers), so a 1500-byte
    // link advertises 1460 and each full segment fills a frame exactly.
    let aux = IpAuxImpl::new(local, IpProtocol::Tcp, foxwire::ether::MTU);
    let cfg = XkConfig {
        window: tcp_cfg.initial_window,
        send_buffer: tcp_cfg.send_buffer,
        checksums: tcp_cfg.compute_checksums,
        delayed_ack_ms: tcp_cfg.delayed_ack_ms,
        time_wait_ms: tcp_cfg.time_wait_ms,
        max_retransmits: tcp_cfg.max_retransmits,
        backlog: tcp_cfg.backlog,
        window_scale: tcp_cfg.window_scale,
        sack: tcp_cfg.sack,
        timestamps: tcp_cfg.timestamps,
        ack_coalesce_segments: tcp_cfg.ack_coalesce_segments,
    };
    let mut tcp = XkTcp::new(ip, aux, IpProtocol::Tcp, cfg, host.clone());
    tcp.set_obs(stamped);
    Box::new(XkStation {
        tcp,
        host,
        peer: ip_of(peer_id),
        conns: Vec::new(),
        listener: None,
        accepted: VecDeque::new(),
        state: BTreeMap::new(),
    })
}

// ----- Fox station -----

#[derive(Default)]
struct ConnBuf {
    established: bool,
    peer_closed: bool,
    finished: bool,
    data: Vec<u8>,
}

/// A connection at its current lifecycle stage: the typestate wrapper
/// the station holds for it. Sending requires promotion to
/// `Established` first — there is no way to reach `send_data` from the
/// `Connecting` arm.
enum SocketStage {
    /// Handshake in flight (active open or freshly accepted child).
    Connecting(ConnectingSocket),
    /// Synchronized: data can move.
    Established(EstablishedSocket),
}

struct FoxStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    tcp: Tcp<L, A>,
    _sched: SchedHandle,
    host: HostHandle,
    peer: L::Peer,
    kind: &'static str,
    bufs: BTreeMap<u32, Rc<RefCell<ConnBuf>>>,
    accepted: Rc<RefCell<VecDeque<TcpConnId>>>,
    listener: Option<ListeningSocket>,
    socks: BTreeMap<u32, SocketStage>,
}

fn buf_handler(buf: Rc<RefCell<ConnBuf>>) -> foxproto::Handler<TcpEvent> {
    Box::new(move |ev| {
        let mut b = buf.borrow_mut();
        match ev {
            TcpEvent::Established => b.established = true,
            TcpEvent::Data(d) => b.data.extend_from_slice(&d),
            TcpEvent::PeerClosed => b.peer_closed = true,
            TcpEvent::Closed | TcpEvent::Reset | TcpEvent::TimedOut => b.finished = true,
            TcpEvent::NewConnection(_) | TcpEvent::Urgent(_) => {}
        }
    })
}

impl<L, A> FoxStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// Promotes a `Connecting` socket to `Established` if its handshake
    /// has completed; leaves it (and any other stage) untouched
    /// otherwise.
    fn promote(&mut self, conn: ConnHandle) {
        if matches!(self.socks.get(&conn), Some(SocketStage::Connecting(_))) {
            let Some(SocketStage::Connecting(sock)) = self.socks.remove(&conn) else {
                unreachable!("just matched Connecting");
            };
            let stage = match sock.try_established(&self.tcp) {
                Ok(est) => SocketStage::Established(est),
                Err(still) => SocketStage::Connecting(still),
            };
            self.socks.insert(conn, stage);
        }
    }
}

impl<L, A> Station for FoxStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn connect(&mut self, remote_port: u16) -> ConnHandle {
        let buf = Rc::new(RefCell::new(ConnBuf::default()));
        let sock = self
            .tcp
            .connect(self.peer.clone(), remote_port, 0, buf_handler(buf.clone()))
            .expect("active open");
        let conn = sock.id().0;
        self.bufs.insert(conn, buf);
        self.socks.insert(conn, SocketStage::Connecting(sock));
        conn
    }

    fn listen(&mut self, local_port: u16) {
        let acc = self.accepted.clone();
        self.listener = Some(
            self.tcp
                .listen(
                    local_port,
                    Box::new(move |ev| {
                        if let TcpEvent::NewConnection(c) = ev {
                            acc.borrow_mut().push_back(c);
                        }
                    }),
                )
                .expect("listen"),
        );
    }

    fn accept(&mut self) -> Option<ConnHandle> {
        let child = self.accepted.borrow_mut().pop_front()?;
        let listener = self.listener.as_ref()?;
        let buf = Rc::new(RefCell::new(ConnBuf::default()));
        let sock = listener.accept(&mut self.tcp, child, buf_handler(buf.clone())).ok()?;
        self.bufs.insert(child.0, buf);
        self.socks.insert(child.0, SocketStage::Connecting(sock));
        Some(child.0)
    }

    fn send(&mut self, conn: ConnHandle, data: &[u8]) -> usize {
        self.promote(conn);
        match self.socks.get(&conn) {
            Some(SocketStage::Established(sock)) => sock.send_data(&mut self.tcp, data).unwrap_or(0),
            _ => 0, // not yet established (or already closed): nothing taken
        }
    }

    fn recv(&mut self, conn: ConnHandle) -> Vec<u8> {
        self.bufs.get(&conn).map_or(Vec::new(), |b| std::mem::take(&mut b.borrow_mut().data))
    }

    fn received_len(&self, conn: ConnHandle) -> usize {
        self.bufs.get(&conn).map_or(0, |b| b.borrow().data.len())
    }

    fn established(&self, conn: ConnHandle) -> bool {
        self.bufs.get(&conn).is_some_and(|b| b.borrow().established)
    }

    fn conn_state(&self, conn: ConnHandle) -> &'static str {
        self.tcp.state_of(TcpConnId(conn)).map_or("", |s| s.name())
    }

    fn peer_closed(&self, conn: ConnHandle) -> bool {
        self.bufs.get(&conn).is_some_and(|b| b.borrow().peer_closed)
    }

    fn finished(&self, conn: ConnHandle) -> bool {
        self.bufs.get(&conn).is_some_and(|b| b.borrow().finished)
    }

    fn close(&mut self, conn: ConnHandle) {
        // Closing consumes the typestate wrapper, whatever its stage.
        match self.socks.remove(&conn) {
            Some(SocketStage::Connecting(sock)) => {
                let _ = sock.close(&mut self.tcp);
            }
            Some(SocketStage::Established(sock)) => {
                let _ = sock.close(&mut self.tcp);
            }
            None => {
                let _ = self.tcp.close(TcpConnId(conn));
            }
        }
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        self.tcp.step(now)
    }

    fn host(&self) -> HostHandle {
        self.host.clone()
    }

    fn kind(&self) -> &'static str {
        self.kind
    }

    fn stats(&self) -> StationStats {
        let s = self.tcp.stats();
        StationStats {
            segments_sent: s.segments_sent,
            segments_received: s.segments_received,
            retransmits: s.retransmits,
            bytes_sent: s.bytes_sent,
            fastpath_hits: s.fastpath_hits,
            checksum_failures: s.checksum_failures,
            fast_retransmits: s.fast_retransmits,
            recoveries: s.recoveries,
            rto_fires: s.rto_fires,
            probe_fires: s.probe_fires,
            rst_rejected_seq: s.rst_rejected_seq,
            acks_ignored_unsent_data: s.acks_ignored_unsent_data,
            syns_dropped: s.syns_dropped,
        }
    }

    fn set_obs(&mut self, sink: EventSink) {
        self.tcp.set_obs(sink);
    }

    fn metrics(&self, conn: ConnHandle) -> Option<ConnMetrics> {
        self.tcp.metrics_of(TcpConnId(conn))
    }

    fn scale_counters(&self) -> ScaleCounters {
        let w = self.tcp.wheel_stats();
        let d = self.tcp.demux_stats();
        ScaleCounters {
            timer_arms: w.arms,
            timer_cancels: w.cancels,
            timer_fires: w.fires,
            timer_cascades: w.cascades,
            demux_lookups: d.lookups,
            demux_steps: d.steps,
        }
    }
}

// ----- x-kernel station -----

struct XkStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    tcp: XkTcp<L, A>,
    host: HostHandle,
    peer: L::Peer,
    conns: Vec<xktcp::SockId>,
    listener: Option<xktcp::SockId>,
    accepted: VecDeque<xktcp::SockId>,
    state: BTreeMap<u32, ConnBuf>,
}

impl<L, A> XkStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn pump(&mut self) {
        // Drain events and receive buffers into our ConnBufs.
        if let Some(l) = self.listener {
            while let Some(ev) = self.tcp.poll_event(l) {
                if let XkEvent::Accepted(c) = ev {
                    self.accepted.push_back(c);
                    self.conns.push(c);
                    self.state.entry(c.0).or_default();
                }
            }
        }
        for i in 0..self.conns.len() {
            let c = self.conns[i];
            while let Some(ev) = self.tcp.poll_event(c) {
                let b = self.state.entry(c.0).or_default();
                match ev {
                    XkEvent::Connected => b.established = true,
                    XkEvent::PeerClosed => b.peer_closed = true,
                    XkEvent::Closed | XkEvent::Reset | XkEvent::TimedOut => b.finished = true,
                    XkEvent::Accepted(_) => {}
                }
            }
            let mut tmp = [0u8; 4096];
            loop {
                let n = self.tcp.recv(c, &mut tmp).unwrap_or(0);
                if n == 0 {
                    break;
                }
                self.state.entry(c.0).or_default().data.extend_from_slice(&tmp[..n]);
            }
        }
    }
}

impl<L, A> Station for XkStation<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn connect(&mut self, remote_port: u16) -> ConnHandle {
        let c = self.tcp.connect(self.peer.clone(), remote_port, 0).expect("connect");
        self.conns.push(c);
        self.state.insert(c.0, ConnBuf::default());
        c.0
    }

    fn listen(&mut self, local_port: u16) {
        self.listener = Some(self.tcp.listen(local_port).expect("listen"));
    }

    fn accept(&mut self) -> Option<ConnHandle> {
        self.accepted.pop_front().map(|c| c.0)
    }

    fn send(&mut self, conn: ConnHandle, data: &[u8]) -> usize {
        self.tcp.send(xktcp::SockId(conn), data).unwrap_or(0)
    }

    fn recv(&mut self, conn: ConnHandle) -> Vec<u8> {
        self.state.get_mut(&conn).map_or(Vec::new(), |b| std::mem::take(&mut b.data))
    }

    fn received_len(&self, conn: ConnHandle) -> usize {
        self.state.get(&conn).map_or(0, |b| b.data.len())
    }

    fn established(&self, conn: ConnHandle) -> bool {
        self.state.get(&conn).is_some_and(|b| b.established)
    }

    fn conn_state(&self, conn: ConnHandle) -> &'static str {
        self.tcp.state_of(xktcp::SockId(conn)).map_or("", |s| s.name())
    }

    fn peer_closed(&self, conn: ConnHandle) -> bool {
        self.state.get(&conn).is_some_and(|b| b.peer_closed)
    }

    fn finished(&self, conn: ConnHandle) -> bool {
        self.state.get(&conn).is_some_and(|b| b.finished)
    }

    fn close(&mut self, conn: ConnHandle) {
        let _ = self.tcp.close(xktcp::SockId(conn));
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let p = self.tcp.step(now);
        self.pump();
        p
    }

    fn host(&self) -> HostHandle {
        self.host.clone()
    }

    fn kind(&self) -> &'static str {
        "x-kernel"
    }

    fn stats(&self) -> StationStats {
        let s = self.tcp.stats();
        StationStats {
            segments_sent: s.segments_sent,
            segments_received: s.segments_received,
            retransmits: s.retransmits,
            bytes_sent: s.bytes_sent,
            fastpath_hits: 0,
            checksum_failures: s.checksum_failures,
            rst_rejected_seq: s.rst_rejected_seq,
            acks_ignored_unsent_data: s.acks_ignored_unsent_data,
            ..StationStats::default()
        }
    }

    fn set_obs(&mut self, sink: EventSink) {
        self.tcp.set_obs(sink);
    }

    fn metrics(&self, conn: ConnHandle) -> Option<ConnMetrics> {
        self.tcp.metrics_of(xktcp::SockId(conn))
    }

    fn scale_counters(&self) -> ScaleCounters {
        let w = self.tcp.wheel_stats();
        let s = self.tcp.stats();
        ScaleCounters {
            timer_arms: w.arms,
            timer_cancels: w.cancels,
            timer_fires: w.fires,
            timer_cascades: w.cascades,
            demux_lookups: s.demux_lookups,
            demux_steps: s.demux_steps,
        }
    }

    fn debug_line(&self) -> String {
        self.conns.iter().filter_map(|c| self.tcp.debug_of(*c)).collect::<Vec<_>>().join(" | ")
    }
}
