//! The paper's workloads.
//!
//! §5: "To benchmark the throughput of the protocol stack, we have
//! written a program which tries to send large amounts of data in one
//! direction as fast as possible, letting TCP's flow control mechanisms
//! regulate the speed at which data is delivered. We standardize the TCP
//! window size to 4096 bytes ... The test consists of sending 10^6 bytes
//! of data between a designated sender and a designated receiver on an
//! isolated 10Mb/s ethernet. The receiver starts a timer, sends the
//! designated sender a small packet specifying the amount of data
//! desired, and stops the timer after all the specified data has been
//! received. The received data is discarded when it is received at the
//! application level."

use crate::sim::drive;
use crate::stack::StackKind;
use crate::station::{ConnHandle, ScaleCounters, Station, StationStats};
use foxbasis::obs::EventSink;
use foxbasis::profile::Account;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxtcp::TcpConfig;
use simnet::{CostModel, GcStats, NetStats, SimNet};
use std::collections::BTreeMap;

/// Result of one bulk-transfer run.
#[derive(Clone, Debug)]
pub struct BulkResult {
    /// Bytes the receiver asked for and got.
    pub bytes: usize,
    /// Receiver-measured elapsed time (request sent → last byte).
    pub elapsed: VirtualDuration,
    /// Payload throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Sender TCP stats.
    pub sender: StationStats,
    /// Receiver TCP stats.
    pub receiver: StationStats,
    /// Sender-side Table 2 percentages (when profiled).
    pub sender_profile: Vec<(Account, f64)>,
    /// Receiver-side Table 2 percentages (when profiled).
    pub receiver_profile: Vec<(Account, f64)>,
    /// Sender GC statistics (when the cost model has a collector).
    pub sender_gc: Option<GcStats>,
    /// Network statistics.
    pub net: NetStats,
}

/// Runs the paper's throughput benchmark: the *receiver* connects,
/// requests `bytes` with a small packet, and times until all data has
/// arrived (data discarded at application level, as in the paper).
///
/// `sender` must already be listening on port 2000 — this function sets
/// that up itself; pass freshly-built stations.
pub fn bulk_transfer(
    net: &SimNet,
    sender: &mut Box<dyn Station>,
    receiver: &mut Box<dyn Station>,
    bytes: usize,
    deadline: VirtualTime,
) -> BulkResult {
    sender.listen(2000);
    let rconn = receiver.connect(2000);

    // Establish.
    let mut sconn = None;
    drive(
        net,
        &mut [&mut *sender, &mut *receiver],
        |st| {
            if sconn.is_none() {
                sconn = st[0].accept();
            }
            sconn.is_some() && st[1].established(rconn)
        },
        VirtualDuration::from_millis(1),
        deadline,
    );
    let sconn = sconn.expect("sender accepted the receiver's connection");

    // Receiver starts its timer and sends the request.
    let t0 = net.now();
    let request = (bytes as u64).to_be_bytes();
    assert_eq!(receiver.send(rconn, &request), 8, "request fits any window");

    // Sender: on request, pump `bytes` of data. We model the sender app
    // inline here (read request, then keep the send buffer full).
    let mut produced = 0usize;
    let mut request_seen = false;
    let mut received = 0usize;
    let payload_chunk: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();

    let end = drive(
        net,
        &mut [&mut *sender, &mut *receiver],
        |st| {
            // Sender application.
            if !request_seen && st[0].received_len(sconn) >= 8 {
                let req = st[0].recv(sconn);
                let want = u64::from_be_bytes(req[..8].try_into().expect("8-byte request")) as usize;
                debug_assert_eq!(want, bytes);
                request_seen = true;
            }
            if request_seen && produced < bytes {
                let left = bytes - produced;
                let chunk = payload_chunk.len().min(left);
                produced += st[0].send(sconn, &payload_chunk[..chunk]);
            }
            // Receiver application: discard on delivery.
            let fresh = st[1].recv(rconn).len();
            received += fresh;
            received >= bytes
        },
        VirtualDuration::from_millis(1),
        deadline,
    );

    let elapsed = end.saturating_since(t0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let profile =
        |s: &dyn Station| {
            s.host().with(|h| {
                if h.profiler().is_enabled() {
                    h.profiler().percentages(elapsed)
                } else {
                    Vec::new()
                }
            })
        };
    let sender_profile = profile(&**sender);
    let receiver_profile = profile(&**receiver);
    let sender_gc = sender.host().with(|h| h.gc_stats().cloned());

    BulkResult {
        bytes: received.min(bytes),
        elapsed,
        throughput_mbps: (bytes as f64 * 8.0) / secs / 1e6,
        sender: sender.stats(),
        receiver: receiver.stats(),
        sender_profile,
        receiver_profile,
        sender_gc,
        net: net.stats(),
    }
}

/// What one flow of a [`many_flows`] run accomplished.
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// Bulk download (`true`) or ping-pong (`false`).
    pub bulk: bool,
    /// Application payload bytes the client received.
    pub bytes: u64,
    /// Request sent → last byte received.
    pub elapsed: VirtualDuration,
}

impl FlowOutcome {
    /// Payload throughput of this flow in Mb/s.
    pub fn mbps(&self) -> f64 {
        (self.bytes as f64 * 8.0) / self.elapsed.as_secs_f64().max(1e-9) / 1e6
    }
}

/// Result of one [`many_flows`] run.
#[derive(Clone, Debug)]
pub struct ManyFlowsResult {
    /// Flows driven (= clients attached).
    pub flows: usize,
    /// Flows that delivered everything they asked for.
    pub completed: usize,
    /// Per-flow outcomes, in client order (even indexes bulk, odd ping).
    pub per_flow: Vec<FlowOutcome>,
    /// First request sent → last flow complete.
    pub elapsed: VirtualDuration,
    /// Application payload bytes moved, all flows.
    pub total_bytes: u64,
    /// Aggregate payload throughput in Mb/s.
    pub aggregate_mbps: f64,
    /// Simulated CPU time the server host spent (aggregate host cost).
    pub server_busy: VirtualDuration,
    /// Server TCP stats.
    pub server: StationStats,
    /// Server timer-wheel and demux operation counts.
    pub server_scale: ScaleCounters,
    /// Network statistics.
    pub net: NetStats,
}

/// The scale workload: `n` clients share one server station on one
/// segment. Even-indexed clients download `bulk_bytes`; odd-indexed
/// clients run `ping_rounds` round trips of a 64-byte message. Each
/// client opens one connection to server port 2000, sends a 9-byte
/// request header (mode byte + big-endian count), and runs its mode to
/// completion; the run ends when every flow is done (or at `deadline`).
///
/// All stations use the same `cost` model, so fox-vs-xk differences in
/// `server_busy` and [`ScaleCounters`] are implementation differences,
/// not machine differences.
#[allow(clippy::too_many_arguments)] // a workload is its parameter list
pub fn many_flows(
    net: &SimNet,
    kind: StackKind,
    n: usize,
    bulk_bytes: usize,
    ping_rounds: usize,
    cost: fn() -> CostModel,
    sink: &EventSink,
    deadline: VirtualTime,
) -> ManyFlowsResult {
    const PING_LEN: usize = 64;
    // A server expecting n simultaneous openers provisions its accept
    // queue for them; the SYN-flood path is exercised separately.
    let base = TcpConfig::default();
    let cfg = TcpConfig { backlog: base.backlog.max(n), ..base };

    let mut all: Vec<Box<dyn Station>> = Vec::with_capacity(n + 1);
    all.push(kind.build_traced(net, 1, 2, cost(), false, cfg.clone(), sink.clone()));
    for i in 0..n {
        let id = u16::try_from(i + 2).expect("station id fits u16");
        all.push(kind.build_traced(net, id, 1, cost(), false, cfg.clone(), sink.clone()));
    }
    all[0].listen(2000);
    let handles: Vec<ConnHandle> = all[1..].iter_mut().map(|c| c.connect(2000)).collect();

    // Server-side per-connection application state.
    #[derive(Default)]
    struct Srv {
        got_header: bool,
        mode_bulk: bool,
        head: Vec<u8>,
        bulk_left: u64,
        echo_pending: usize,
    }
    let mut srv_conns: Vec<ConnHandle> = Vec::new();
    let mut srv_state: BTreeMap<ConnHandle, Srv> = BTreeMap::new();
    let chunk: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    let ping = [0x42u8; PING_LEN];

    // Client-side progress.
    let is_bulk = |i: usize| i.is_multiple_of(2);
    let want = |i: usize| -> u64 {
        if is_bulk(i) {
            bulk_bytes as u64
        } else {
            (ping_rounds * PING_LEN) as u64
        }
    };
    let mut t0: Vec<Option<VirtualTime>> = vec![None; n];
    let mut t1: Vec<Option<VirtualTime>> = vec![None; n];
    let mut got: Vec<u64> = vec![0; n];
    let mut rounds_sent: Vec<usize> = vec![0; n];

    let mut refs: Vec<&mut Box<dyn Station>> = all.iter_mut().collect();
    drive(
        net,
        &mut refs,
        |st| {
            // Server application: accept, parse requests, pump/echo.
            while let Some(c) = st[0].accept() {
                srv_conns.push(c);
                srv_state.insert(c, Srv::default());
            }
            for &c in &srv_conns {
                let fresh = st[0].recv(c);
                let s = srv_state.get_mut(&c).expect("accepted conn has state");
                if !s.got_header {
                    s.head.extend_from_slice(&fresh);
                    if s.head.len() >= 9 {
                        s.got_header = true;
                        s.mode_bulk = s.head[0] == 0;
                        let count = u64::from_be_bytes(s.head[1..9].try_into().expect("8-byte count"));
                        if s.mode_bulk {
                            s.bulk_left = count;
                        } else {
                            s.echo_pending = s.head.len() - 9;
                        }
                    }
                } else if !s.mode_bulk {
                    s.echo_pending += fresh.len();
                }
                if s.got_header {
                    if s.mode_bulk {
                        if s.bulk_left > 0 {
                            let len = chunk.len().min(s.bulk_left as usize);
                            s.bulk_left -= st[0].send(c, &chunk[..len]) as u64;
                        }
                    } else if s.echo_pending > 0 {
                        let len = s.echo_pending.min(chunk.len());
                        s.echo_pending -= st[0].send(c, &vec![0x42u8; len]);
                    }
                }
            }
            // Client applications.
            let mut all_done = true;
            for i in 0..n {
                let h = handles[i];
                let stn = &mut *st[1 + i];
                if t0[i].is_none() {
                    if stn.established(h) {
                        let mut req = [0u8; 9];
                        req[0] = u8::from(!is_bulk(i));
                        let count = if is_bulk(i) { bulk_bytes as u64 } else { ping_rounds as u64 };
                        req[1..].copy_from_slice(&count.to_be_bytes());
                        assert_eq!(stn.send(h, &req), 9, "request fits an empty window");
                        t0[i] = Some(net.now());
                        if !is_bulk(i) && ping_rounds > 0 {
                            assert_eq!(stn.send(h, &ping), PING_LEN);
                            rounds_sent[i] = 1;
                        }
                    }
                    all_done = false;
                    continue;
                }
                got[i] += stn.recv(h).len() as u64;
                if !is_bulk(i) {
                    // Next round once the previous echo fully returned.
                    while rounds_sent[i] < ping_rounds && got[i] >= (rounds_sent[i] * PING_LEN) as u64 {
                        assert_eq!(stn.send(h, &ping), PING_LEN, "one ping in flight fits");
                        rounds_sent[i] += 1;
                    }
                }
                if got[i] >= want(i) {
                    if t1[i].is_none() {
                        t1[i] = Some(net.now());
                    }
                } else {
                    all_done = false;
                }
            }
            all_done
        },
        VirtualDuration::from_millis(1),
        deadline,
    );

    let per_flow: Vec<FlowOutcome> = (0..n)
        .map(|i| FlowOutcome {
            bulk: is_bulk(i),
            bytes: got[i].min(want(i)),
            elapsed: match (t0[i], t1[i]) {
                (Some(a), Some(b)) => b.saturating_since(a),
                (Some(a), None) => net.now().saturating_since(a),
                _ => VirtualDuration::ZERO,
            },
        })
        .collect();
    let completed = (0..n).filter(|&i| got[i] >= want(i)).count();
    let start = t0.iter().flatten().min().copied().unwrap_or(net.now());
    let end =
        if completed == n { t1.iter().flatten().max().copied().unwrap_or(net.now()) } else { net.now() };
    let elapsed = end.saturating_since(start);
    let total_bytes: u64 = per_flow.iter().map(|f| f.bytes).sum();
    ManyFlowsResult {
        flows: n,
        completed,
        elapsed,
        total_bytes,
        aggregate_mbps: (total_bytes as f64 * 8.0) / elapsed.as_secs_f64().max(1e-9) / 1e6,
        server_busy: all[0].host().with(|h| h.total_busy()),
        server: all[0].stats(),
        server_scale: all[0].scale_counters(),
        net: net.stats(),
        per_flow,
    }
}

/// Result of a round-trip (ping-pong) run.
#[derive(Clone, Debug)]
pub struct PingResult {
    /// Round trips completed.
    pub rounds: usize,
    /// Mean round-trip time.
    pub mean_rtt: VirtualDuration,
    /// Smallest observed RTT.
    pub min_rtt: VirtualDuration,
    /// Largest observed RTT.
    pub max_rtt: VirtualDuration,
}

/// Measures application-level round-trip time over an established
/// connection: the client sends a small message, the server echoes it,
/// `rounds` times. This is the Table 1 "Round-Trip" number.
pub fn ping_pong(
    net: &SimNet,
    server: &mut Box<dyn Station>,
    client: &mut Box<dyn Station>,
    rounds: usize,
    msg_len: usize,
    deadline: VirtualTime,
) -> PingResult {
    server.listen(2001);
    let cconn = client.connect(2001);
    let mut sconn = None;
    drive(
        net,
        &mut [&mut *server, &mut *client],
        |st| {
            if sconn.is_none() {
                sconn = st[0].accept();
            }
            sconn.is_some() && st[1].established(cconn)
        },
        VirtualDuration::from_millis(1),
        deadline,
    );
    let sconn = sconn.expect("server accepted");

    let msg = vec![0x42u8; msg_len.max(1)];
    let mut rtts = Vec::with_capacity(rounds);
    let mut echoed = 0usize; // bytes the server has echoed back so far
    for _ in 0..rounds {
        let t0 = net.now();
        assert_eq!(client.send(cconn, &msg), msg.len());
        let want = echoed + msg.len();
        let mut unanswered = 0usize;
        drive(
            net,
            &mut [&mut *server, &mut *client],
            |st| {
                // Server application: echo whatever arrives.
                let inbound = st[0].recv(sconn);
                if !inbound.is_empty() {
                    unanswered += inbound.len();
                }
                if unanswered > 0 {
                    let n = st[0].send(sconn, &vec![0x42u8; unanswered]);
                    unanswered -= n;
                }
                // Client application: count echo bytes.
                echoed += st[1].recv(cconn).len();
                echoed >= want
            },
            VirtualDuration::from_millis(1),
            deadline,
        );
        rtts.push(net.now().saturating_since(t0));
    }
    let sum: u64 = rtts.iter().map(|d| d.as_micros()).sum();
    PingResult {
        rounds,
        mean_rtt: VirtualDuration::from_micros(sum / rtts.len().max(1) as u64),
        min_rtt: rtts.iter().copied().min().unwrap_or(VirtualDuration::ZERO),
        max_rtt: rtts.iter().copied().max().unwrap_or(VirtualDuration::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackKind;
    use foxtcp::TcpConfig;
    use simnet::{CostModel, SimNet};

    fn pair(kind: StackKind, cost: fn() -> CostModel) -> (SimNet, Box<dyn Station>, Box<dyn Station>) {
        let net = SimNet::ethernet_10mbps(77);
        let a = kind.build(&net, 1, 2, cost(), false, TcpConfig::default());
        let b = kind.build(&net, 2, 1, cost(), false, TcpConfig::default());
        (net, a, b)
    }

    #[test]
    fn bulk_transfer_fox_modern_cost() {
        let (net, mut sender, mut receiver) = pair(StackKind::FoxStandard, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 200_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 200_000);
        // With zero CPU cost the 10 Mb/s wire is the only limit; with a
        // 4096-byte window and ~2.5 ms RTT-ish, expect a few Mb/s.
        assert!(r.throughput_mbps > 1.0, "got {} Mb/s", r.throughput_mbps);
        assert!(r.throughput_mbps < 10.0, "can't beat the wire: {}", r.throughput_mbps);
        assert_eq!(r.sender.retransmits, 0, "clean link");
    }

    #[test]
    fn bulk_transfer_xk_modern_cost() {
        let (net, mut sender, mut receiver) = pair(StackKind::XKernel, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 100_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 100_000);
        assert!(r.throughput_mbps > 0.5, "got {} Mb/s", r.throughput_mbps);
    }

    #[test]
    fn bulk_transfer_special_stack() {
        let (net, mut sender, mut receiver) = pair(StackKind::FoxSpecial, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 100_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 100_000);
        assert_eq!(r.sender.checksum_failures, 0);
    }

    #[test]
    fn many_flows_fox_full_delivery() {
        let net = SimNet::ethernet_10mbps(99);
        let r = many_flows(
            &net,
            StackKind::FoxStandard,
            8,
            16_384,
            8,
            CostModel::modern,
            &foxbasis::obs::EventSink::off(),
            VirtualTime::from_millis(600_000),
        );
        assert_eq!(r.completed, 8, "all flows finish: {:?}", r.per_flow);
        assert_eq!(r.total_bytes, 4 * 16_384 + 4 * 8 * 64);
        assert!(r.server_scale.demux_lookups > 0, "keyed demux was exercised");
        assert!(r.server_scale.timer_arms > 0, "wheel was exercised");
        // The keyed table examines ~1 candidate per lookup however many
        // connections are open.
        assert!(
            r.server_scale.demux_steps <= 2 * r.server_scale.demux_lookups,
            "steps {} for {} lookups",
            r.server_scale.demux_steps,
            r.server_scale.demux_lookups
        );
    }

    #[test]
    fn many_flows_xk_full_delivery() {
        let net = SimNet::ethernet_10mbps(99);
        let r = many_flows(
            &net,
            StackKind::XKernel,
            8,
            16_384,
            8,
            CostModel::modern,
            &foxbasis::obs::EventSink::off(),
            VirtualTime::from_millis(600_000),
        );
        assert_eq!(r.completed, 8, "all flows finish");
        assert!(r.server_scale.demux_lookups > 0);
        // The baseline's linear scan walks the socket table.
        assert!(r.server_scale.demux_steps > r.server_scale.demux_lookups);
    }

    #[test]
    fn ping_pong_reports_rtts() {
        let (net, mut server, mut client) = pair(StackKind::FoxStandard, CostModel::modern);
        let r = ping_pong(&net, &mut server, &mut client, 10, 1, VirtualTime::from_millis(600_000));
        assert_eq!(r.rounds, 10);
        assert!(r.mean_rtt > VirtualDuration::ZERO);
        assert!(r.min_rtt <= r.mean_rtt && r.mean_rtt <= r.max_rtt);
    }
}
