//! The paper's workloads.
//!
//! §5: "To benchmark the throughput of the protocol stack, we have
//! written a program which tries to send large amounts of data in one
//! direction as fast as possible, letting TCP's flow control mechanisms
//! regulate the speed at which data is delivered. We standardize the TCP
//! window size to 4096 bytes ... The test consists of sending 10^6 bytes
//! of data between a designated sender and a designated receiver on an
//! isolated 10Mb/s ethernet. The receiver starts a timer, sends the
//! designated sender a small packet specifying the amount of data
//! desired, and stops the timer after all the specified data has been
//! received. The received data is discarded when it is received at the
//! application level."

use crate::sim::drive;
use crate::station::{Station, StationStats};
use foxbasis::profile::Account;
use foxbasis::time::{VirtualDuration, VirtualTime};
use simnet::{GcStats, NetStats, SimNet};

/// Result of one bulk-transfer run.
#[derive(Clone, Debug)]
pub struct BulkResult {
    /// Bytes the receiver asked for and got.
    pub bytes: usize,
    /// Receiver-measured elapsed time (request sent → last byte).
    pub elapsed: VirtualDuration,
    /// Payload throughput in Mb/s.
    pub throughput_mbps: f64,
    /// Sender TCP stats.
    pub sender: StationStats,
    /// Receiver TCP stats.
    pub receiver: StationStats,
    /// Sender-side Table 2 percentages (when profiled).
    pub sender_profile: Vec<(Account, f64)>,
    /// Receiver-side Table 2 percentages (when profiled).
    pub receiver_profile: Vec<(Account, f64)>,
    /// Sender GC statistics (when the cost model has a collector).
    pub sender_gc: Option<GcStats>,
    /// Network statistics.
    pub net: NetStats,
}

/// Runs the paper's throughput benchmark: the *receiver* connects,
/// requests `bytes` with a small packet, and times until all data has
/// arrived (data discarded at application level, as in the paper).
///
/// `sender` must already be listening on port 2000 — this function sets
/// that up itself; pass freshly-built stations.
pub fn bulk_transfer(
    net: &SimNet,
    sender: &mut Box<dyn Station>,
    receiver: &mut Box<dyn Station>,
    bytes: usize,
    deadline: VirtualTime,
) -> BulkResult {
    sender.listen(2000);
    let rconn = receiver.connect(2000);

    // Establish.
    let mut sconn = None;
    drive(
        net,
        &mut [&mut *sender, &mut *receiver],
        |st| {
            if sconn.is_none() {
                sconn = st[0].accept();
            }
            sconn.is_some() && st[1].established(rconn)
        },
        VirtualDuration::from_millis(1),
        deadline,
    );
    let sconn = sconn.expect("sender accepted the receiver's connection");

    // Receiver starts its timer and sends the request.
    let t0 = net.now();
    let request = (bytes as u64).to_be_bytes();
    assert_eq!(receiver.send(rconn, &request), 8, "request fits any window");

    // Sender: on request, pump `bytes` of data. We model the sender app
    // inline here (read request, then keep the send buffer full).
    let mut produced = 0usize;
    let mut request_seen = false;
    let mut received = 0usize;
    let payload_chunk: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();

    let end = drive(
        net,
        &mut [&mut *sender, &mut *receiver],
        |st| {
            // Sender application.
            if !request_seen && st[0].received_len(sconn) >= 8 {
                let req = st[0].recv(sconn);
                let want = u64::from_be_bytes(req[..8].try_into().expect("8-byte request")) as usize;
                debug_assert_eq!(want, bytes);
                request_seen = true;
            }
            if request_seen && produced < bytes {
                let left = bytes - produced;
                let chunk = payload_chunk.len().min(left);
                produced += st[0].send(sconn, &payload_chunk[..chunk]);
            }
            // Receiver application: discard on delivery.
            let fresh = st[1].recv(rconn).len();
            received += fresh;
            received >= bytes
        },
        VirtualDuration::from_millis(1),
        deadline,
    );

    let elapsed = end.saturating_since(t0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let profile =
        |s: &dyn Station| {
            s.host().with(|h| {
                if h.profiler().is_enabled() {
                    h.profiler().percentages(elapsed)
                } else {
                    Vec::new()
                }
            })
        };
    let sender_profile = profile(&**sender);
    let receiver_profile = profile(&**receiver);
    let sender_gc = sender.host().with(|h| h.gc_stats().cloned());

    BulkResult {
        bytes: received.min(bytes),
        elapsed,
        throughput_mbps: (bytes as f64 * 8.0) / secs / 1e6,
        sender: sender.stats(),
        receiver: receiver.stats(),
        sender_profile,
        receiver_profile,
        sender_gc,
        net: net.stats(),
    }
}

/// Result of a round-trip (ping-pong) run.
#[derive(Clone, Debug)]
pub struct PingResult {
    /// Round trips completed.
    pub rounds: usize,
    /// Mean round-trip time.
    pub mean_rtt: VirtualDuration,
    /// Smallest observed RTT.
    pub min_rtt: VirtualDuration,
    /// Largest observed RTT.
    pub max_rtt: VirtualDuration,
}

/// Measures application-level round-trip time over an established
/// connection: the client sends a small message, the server echoes it,
/// `rounds` times. This is the Table 1 "Round-Trip" number.
pub fn ping_pong(
    net: &SimNet,
    server: &mut Box<dyn Station>,
    client: &mut Box<dyn Station>,
    rounds: usize,
    msg_len: usize,
    deadline: VirtualTime,
) -> PingResult {
    server.listen(2001);
    let cconn = client.connect(2001);
    let mut sconn = None;
    drive(
        net,
        &mut [&mut *server, &mut *client],
        |st| {
            if sconn.is_none() {
                sconn = st[0].accept();
            }
            sconn.is_some() && st[1].established(cconn)
        },
        VirtualDuration::from_millis(1),
        deadline,
    );
    let sconn = sconn.expect("server accepted");

    let msg = vec![0x42u8; msg_len.max(1)];
    let mut rtts = Vec::with_capacity(rounds);
    let mut echoed = 0usize; // bytes the server has echoed back so far
    for _ in 0..rounds {
        let t0 = net.now();
        assert_eq!(client.send(cconn, &msg), msg.len());
        let want = echoed + msg.len();
        let mut unanswered = 0usize;
        drive(
            net,
            &mut [&mut *server, &mut *client],
            |st| {
                // Server application: echo whatever arrives.
                let inbound = st[0].recv(sconn);
                if !inbound.is_empty() {
                    unanswered += inbound.len();
                }
                if unanswered > 0 {
                    let n = st[0].send(sconn, &vec![0x42u8; unanswered]);
                    unanswered -= n;
                }
                // Client application: count echo bytes.
                echoed += st[1].recv(cconn).len();
                echoed >= want
            },
            VirtualDuration::from_millis(1),
            deadline,
        );
        rtts.push(net.now().saturating_since(t0));
    }
    let sum: u64 = rtts.iter().map(|d| d.as_micros()).sum();
    PingResult {
        rounds,
        mean_rtt: VirtualDuration::from_micros(sum / rtts.len().max(1) as u64),
        min_rtt: rtts.iter().copied().min().unwrap_or(VirtualDuration::ZERO),
        max_rtt: rtts.iter().copied().max().unwrap_or(VirtualDuration::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackKind;
    use foxtcp::TcpConfig;
    use simnet::{CostModel, SimNet};

    fn pair(kind: StackKind, cost: fn() -> CostModel) -> (SimNet, Box<dyn Station>, Box<dyn Station>) {
        let net = SimNet::ethernet_10mbps(77);
        let a = kind.build(&net, 1, 2, cost(), false, TcpConfig::default());
        let b = kind.build(&net, 2, 1, cost(), false, TcpConfig::default());
        (net, a, b)
    }

    #[test]
    fn bulk_transfer_fox_modern_cost() {
        let (net, mut sender, mut receiver) = pair(StackKind::FoxStandard, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 200_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 200_000);
        // With zero CPU cost the 10 Mb/s wire is the only limit; with a
        // 4096-byte window and ~2.5 ms RTT-ish, expect a few Mb/s.
        assert!(r.throughput_mbps > 1.0, "got {} Mb/s", r.throughput_mbps);
        assert!(r.throughput_mbps < 10.0, "can't beat the wire: {}", r.throughput_mbps);
        assert_eq!(r.sender.retransmits, 0, "clean link");
    }

    #[test]
    fn bulk_transfer_xk_modern_cost() {
        let (net, mut sender, mut receiver) = pair(StackKind::XKernel, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 100_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 100_000);
        assert!(r.throughput_mbps > 0.5, "got {} Mb/s", r.throughput_mbps);
    }

    #[test]
    fn bulk_transfer_special_stack() {
        let (net, mut sender, mut receiver) = pair(StackKind::FoxSpecial, CostModel::modern);
        let r = bulk_transfer(&net, &mut sender, &mut receiver, 100_000, VirtualTime::from_millis(600_000));
        assert_eq!(r.bytes, 100_000);
        assert_eq!(r.sender.checksum_failures, 0);
    }

    #[test]
    fn ping_pong_reports_rtts() {
        let (net, mut server, mut client) = pair(StackKind::FoxStandard, CostModel::modern);
        let r = ping_pong(&net, &mut server, &mut client, 10, 1, VirtualTime::from_millis(600_000));
        assert_eq!(r.rounds, 10);
        assert!(r.mean_rtt > VirtualDuration::ZERO);
        assert!(r.min_rtt <= r.mean_rtt && r.mean_rtt <= r.max_rtt);
    }
}
