//! The bench-trajectory substrate (DESIGN.md §5.10): parameterized
//! transfer runs whose *virtual* outcome (segments moved, virtual
//! elapsed) the bench crate wraps in wall-clock timing to produce
//! real-time segments/sec. Everything here stays on the virtual clock —
//! the `no_wallclock` foxlint rule forbids `std::time::Instant` outside
//! `crates/bench`, and this module is the seam that keeps it that way.

use crate::experiments::paper_tcp_config;
use crate::stack::StackKind;
use crate::workload::bulk_transfer;
use foxbasis::obs::EventSink;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::dev::BatchConfig;
use foxtcp::TcpConfig;
use simnet::{CostModel, NetConfig, SimNet};

/// Which machine-and-link era a bench run models. The 1994 profile is
/// the paper's Table 1 setup, bit-for-bit; the modern profile is the
/// same experiment rebased onto today's constants so the fast path is
/// exercised where it matters.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BenchProfile {
    /// The paper's setup: DECstation 5000/200-class costs (µs quantum)
    /// on 10 Mb/s Ethernet, no device batching, the paper TCP config.
    Paper1994,
    /// A contemporary setup: GHz-class host costs (ns quantum,
    /// [`CostModel::modern_gbps`]) on a 1 Gb/s link
    /// ([`NetConfig::gigabit`]), GRO/TSO device batching, window
    /// scaling with large buffers, and coalesced ACKs.
    Modern,
}

impl BenchProfile {
    /// Short name used in benchmark ids and the BENCH json.
    pub fn name(self) -> &'static str {
        match self {
            BenchProfile::Paper1994 => "1994",
            BenchProfile::Modern => "modern",
        }
    }

    /// The link this profile runs over.
    pub fn net_config(self) -> NetConfig {
        match self {
            BenchProfile::Paper1994 => NetConfig::default(),
            BenchProfile::Modern => NetConfig::gigabit(),
        }
    }

    /// The machine model for a stack kind under this profile. The 1994
    /// profile keeps the paper's asymmetry — SML costs for the Fox
    /// stacks, C costs for the x-kernel — while the modern profile puts
    /// both implementations on the same hardware.
    pub fn cost(self, kind: StackKind) -> CostModel {
        match (self, kind) {
            (BenchProfile::Paper1994, StackKind::XKernel) => CostModel::decstation_c(),
            (BenchProfile::Paper1994, _) => CostModel::decstation_sml(),
            (BenchProfile::Modern, _) => CostModel::modern_gbps(),
        }
    }

    /// The TCP configuration for this profile.
    pub fn tcp_config(self) -> TcpConfig {
        match self {
            BenchProfile::Paper1994 => paper_tcp_config(),
            // A gigabit link wants a window much wider than 64 KB
            // (wscale), ACKs coalesced across GRO bursts with a short
            // delayed-ACK backstop, and send buffers that keep the pipe
            // full. Congestion control is off on both stacks (the
            // x-kernel baseline never had any): the bench compares
            // engine processing cost with everything but the
            // implementation held equal, and an ACK-clocked slow start
            // against an 8-segment coalescer measures the coalescing
            // policy, not the engines.
            BenchProfile::Modern => TcpConfig {
                initial_window: 256 * 1024,
                send_buffer: 512 * 1024,
                window_scale: true,
                delayed_ack_ms: Some(1),
                ack_coalesce_segments: Some(8),
                congestion_control: false,
                ..TcpConfig::default()
            },
        }
    }

    /// The device batching limits for this profile. Batching stays off
    /// for 1994 — the per-batch costs are zero there anyway, and the
    /// trace must match the paper runs exactly.
    pub fn batch(self) -> BatchConfig {
        match self {
            BenchProfile::Paper1994 => BatchConfig::default(),
            BenchProfile::Modern => BatchConfig { rx_burst: 8, tx_burst: 8 },
        }
    }
}

/// The virtual outcome of one bench transfer.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Payload bytes delivered (always the requested size).
    pub bytes: usize,
    /// The workload in full-MSS segment units: `bytes / mss`, rounded
    /// up, with the MSS both stacks derive from the shared Ethernet
    /// link. This is the numerator of the real-time rate, and it is
    /// deliberately *the same for both stacks at a given size*: the
    /// rate then orders exactly like time-to-completion, so a stack
    /// cannot score higher by chopping the identical payload into more
    /// (or smaller) segments, and acking every segment instead of
    /// coalescing doesn't inflate the count either — extra wire
    /// traffic is overhead, not work.
    pub workload_segments: u64,
    /// Data-bearing segments the sender actually transmitted (recorded
    /// next to the rate so segmentation efficiency stays visible).
    pub segments: u64,
    /// Every segment either engine put on the wire, ACKs included (the
    /// wire-level count, for the efficiency story next to `segments`).
    pub wire_segments: u64,
    /// Elapsed time on the virtual clock.
    pub virtual_elapsed: VirtualDuration,
    /// Virtual payload throughput, Mb/s.
    pub throughput_mbps: f64,
}

/// Runs one bulk transfer of `bytes` under `profile` and returns its
/// virtual outcome. Wall-clock timing belongs to the caller: the bench
/// crate calls this inside an `Instant` bracket and divides
/// `workload_segments` by the wall seconds.
pub fn bench_transfer(kind: StackKind, profile: BenchProfile, bytes: usize, seed: u64) -> BenchRun {
    let net = SimNet::new(profile.net_config(), seed);
    let cfg = profile.tcp_config();
    let batch = profile.batch();
    let mut sender =
        kind.build_batched(&net, 1, 2, profile.cost(kind), false, cfg.clone(), EventSink::off(), batch);
    let mut receiver =
        kind.build_batched(&net, 2, 1, profile.cost(kind), false, cfg, EventSink::off(), batch);
    let r = bulk_transfer(&net, &mut sender, &mut receiver, bytes, VirtualTime::from_micros(u64::MAX / 2));
    assert_eq!(r.bytes, bytes, "{} [{}]: transfer must complete", kind.name(), profile.name());
    let mss = foxwire::tcp::mss_for_mtu(foxwire::ether::MTU as u32) as usize;
    BenchRun {
        bytes,
        workload_segments: bytes.div_ceil(mss) as u64,
        segments: r.sender.segments_sent,
        wire_segments: r.sender.segments_sent + r.receiver.segments_sent,
        virtual_elapsed: r.elapsed,
        throughput_mbps: r.throughput_mbps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modern_profile_moves_the_bulk_workload() {
        for kind in [StackKind::FoxStandard, StackKind::XKernel] {
            let r = bench_transfer(kind, BenchProfile::Modern, 200_000, 7);
            assert_eq!(r.bytes, 200_000);
            assert!(r.segments > 0);
            // A gigabit link with modern host costs must beat the
            // paper's 10 Mb/s Ethernet by a wide margin.
            assert!(
                r.throughput_mbps > 50.0,
                "{}: modern profile is implausibly slow: {:.2} Mb/s",
                kind.name(),
                r.throughput_mbps
            );
        }
    }

    #[test]
    fn paper_profile_matches_the_table1_setup() {
        let r = bench_transfer(StackKind::FoxStandard, BenchProfile::Paper1994, 100_000, 7);
        assert_eq!(r.bytes, 100_000);
        // The 1994 fox stack runs at ~0.6 Mb/s; sanity-bound it.
        assert!(r.throughput_mbps < 5.0);
    }
}
