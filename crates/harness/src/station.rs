//! A uniform face over the two TCP implementations, so one workload
//! drives both sides of Table 1.

use foxbasis::time::VirtualTime;
use simnet::HostHandle;

/// An opaque per-station connection handle.
pub type ConnHandle = u32;

/// Stats every station can report (the union the tables need).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StationStats {
    /// Segments sent (with retransmissions).
    pub segments_sent: u64,
    /// Segments received.
    pub segments_received: u64,
    /// Retransmissions.
    pub retransmits: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Fast-path hits (zero for the baseline, which has no fast path).
    pub fastpath_hits: u64,
    /// Checksum failures.
    pub checksum_failures: u64,
    /// Fast retransmissions (zero for the baseline, which has no fast
    /// retransmit).
    pub fast_retransmits: u64,
    /// Fast-recovery episodes entered (zero for the baseline).
    pub recoveries: u64,
    /// Retransmission-timer fires that retransmitted (zero for the
    /// baseline, which does not separate them from `retransmits`).
    pub rto_fires: u64,
    /// Zero-window probes sent (zero for the baseline).
    pub probe_fires: u64,
    /// In-window RSTs rejected for not landing exactly on RCV.NXT
    /// (blind-reset attempts answered with a challenge ACK).
    pub rst_rejected_seq: u64,
    /// ACKs for data never sent, dropped (optimistic-ACK attempts).
    pub acks_ignored_unsent_data: u64,
    /// SYNs refused because the accept backlog was full (zero for the
    /// baseline, which keeps no such counter).
    pub syns_dropped: u64,
}

/// Timer and demultiplexer operation counts, for the scale experiment.
/// Both stacks arm timers on the shared hierarchical wheel, so the
/// timer columns are directly comparable; the demux columns price
/// foxtcp's keyed table against the baseline's linear session scan
/// (`steps` = candidates examined across all `lookups`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ScaleCounters {
    /// Timers armed on the wheel.
    pub timer_arms: u64,
    /// Timers cancelled before firing.
    pub timer_cancels: u64,
    /// Timers that fired.
    pub timer_fires: u64,
    /// Entries cascaded between wheel levels.
    pub timer_cascades: u64,
    /// Segment-demux lookups performed.
    pub demux_lookups: u64,
    /// Connections examined across those lookups.
    pub demux_steps: u64,
}

/// One host's TCP endpoint, as the workloads see it.
pub trait Station {
    /// Begins an active open; the handle becomes established later.
    fn connect(&mut self, remote_port: u16) -> ConnHandle;

    /// Listens on a port.
    fn listen(&mut self, local_port: u16);

    /// A newly accepted connection, if any arrived.
    fn accept(&mut self) -> Option<ConnHandle>;

    /// Queues data; returns bytes accepted (flow control may push back).
    fn send(&mut self, conn: ConnHandle, data: &[u8]) -> usize;

    /// Takes everything received so far.
    fn recv(&mut self, conn: ConnHandle) -> Vec<u8>;

    /// Bytes received so far without taking them.
    fn received_len(&self, conn: ConnHandle) -> usize;

    /// True once the handshake completed.
    fn established(&self, conn: ConnHandle) -> bool;

    /// True once the peer closed its direction.
    fn peer_closed(&self, conn: ConnHandle) -> bool;

    /// True once fully closed (or reset / timed out).
    fn finished(&self, conn: ConnHandle) -> bool;

    /// Starts a graceful close.
    fn close(&mut self, conn: ConnHandle);

    /// Drives the stack.
    fn step(&mut self, now: VirtualTime) -> bool;

    /// The simulated machine the station runs on.
    fn host(&self) -> HostHandle;

    /// Implementation name for reports.
    fn kind(&self) -> &'static str;

    /// Statistics.
    fn stats(&self) -> StationStats;

    /// Installs an event sink; the station's layers record typed events
    /// into it. The default station records nothing.
    fn set_obs(&mut self, _sink: foxbasis::obs::EventSink) {}

    /// Per-connection metrics snapshot (`None` once the connection is
    /// reaped, or for stations that keep no such bookkeeping).
    fn metrics(&self, _conn: ConnHandle) -> Option<foxbasis::obs::ConnMetrics> {
        None
    }

    /// RFC 793 state name of a connection (`""` once the station no
    /// longer tracks it). Diagnostic: the adversarial harness uses it
    /// to tell a SYN-RCVD husk from a connection that really opened.
    fn conn_state(&self, _conn: ConnHandle) -> &'static str {
        ""
    }

    /// Timer-wheel and demux operation counts (the scale experiment).
    fn scale_counters(&self) -> ScaleCounters {
        ScaleCounters::default()
    }

    /// Implementation-specific diagnostic line (for debugging harnesses).
    fn debug_line(&self) -> String {
        String::new()
    }
}
