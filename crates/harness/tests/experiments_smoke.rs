//! Smoke tests keeping the experiment harness honest: every experiment
//! entry point runs (at reduced scale) and produces sane output.

use foxharness::experiments as exp;
use foxharness::stack::StackKind;
use simnet::CostModel;

#[test]
fn measure_speed_smoke() {
    let s = exp::measure_speed(StackKind::FoxStandard, CostModel::modern, 50_000, 7);
    assert!(s.throughput_mbps > 0.5 && s.throughput_mbps < 10.0);
    assert!(s.rtt_ms > 0.0 && s.rtt_ms < 100.0);
}

#[test]
fn interop_matrix_smoke() {
    let rows = exp::interop_matrix(40_000, 7);
    assert_eq!(rows.len(), 4);
    for (name, mbps) in &rows {
        assert!(*mbps > 0.5, "{name}: {mbps}");
    }
    let t = exp::render_interop_matrix(&rows).to_string();
    assert!(t.contains("Fox Net -> x-kernel"));
}

#[test]
fn gc_study_smoke() {
    let rows = exp::gc_study(&[300_000], 7);
    assert_eq!(rows.len(), 1);
    assert!(rows[0].minors > 0);
    assert_eq!(rows[0].majors, 0, "300 KB stays below the major threshold");
    assert!(rows[0].throughput_mbps > 0.3);
}

#[test]
fn gc_pause_study_smoke() {
    // Enough rounds that the sender's nursery fills at least once.
    let t = exp::gc_pause_study(150, 7);
    assert_eq!(t.rows.len(), 2);
    let (_, _, max_lump, _, maxp_lump) = t.rows[0];
    let (_, _, max_incr, _, maxp_incr) = t.rows[1];
    assert!(!maxp_lump.is_zero(), "the lump collector must have paused");
    assert!(maxp_incr < maxp_lump, "incremental bounds the pause: {maxp_incr:?} vs {maxp_lump:?}");
    assert!(max_incr <= max_lump, "and therefore the worst RTT");
}

#[test]
fn loss_sweep_smoke() {
    let rows = exp::loss_sweep(30_000, 7);
    assert_eq!(rows.len(), 4);
    assert_eq!(rows[0].2, 0, "clean link retransmits nothing");
    assert!(rows[3].2 > 0, "10% loss retransmits");
}

#[test]
fn ablations_smoke() {
    let rows = exp::ablations(60_000, 7);
    assert!(rows.len() >= 9);
    let base = rows.iter().find(|r| r.name.contains("baseline")).unwrap();
    let w1k = rows.iter().find(|r| r.name.contains("window 1024")).unwrap();
    assert!(w1k.throughput_mbps < base.throughput_mbps, "a 1 KB window must hurt");
}
