//! End-to-end checks of the event layer against whole experiment runs:
//! determinism (same seed → byte-identical streams), divergence
//! reporting (different seeds on a lossy link → a named first
//! difference), and a schema check that the chrome://tracing export of
//! a loss-matrix cell is well-formed JSON of the expected shape.

use foxbasis::obs::{first_divergence, to_chrome_trace, to_jsonl, Event, EventSink, Stamped};
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxharness::experiments as exp;
use foxharness::stack::StackKind;
use foxharness::workload::{many_flows, ManyFlowsResult};
use foxtcp::congestion::CcAlg;
use foxtcp::TcpConfig;
use simnet::{CostModel, FaultConfig, NetConfig, SimNet};

#[test]
fn same_seed_table1_runs_diff_to_zero() {
    let a = exp::traced_table1_bulk(StackKind::FoxStandard, CostModel::modern, 50_000, 7);
    let b = exp::traced_table1_bulk(StackKind::FoxStandard, CostModel::modern, 50_000, 7);
    assert!(!a.events.is_empty(), "a traced run must record events");
    assert_eq!(a.dropped, 0, "the default ring must hold a 50 KB run");
    assert_eq!(a.bulk.bytes, 50_000);
    let d = first_divergence(&a.events, &b.events);
    assert!(d.is_none(), "identical seeds must replay identically, diverged at {d:?}");
    assert_eq!(to_jsonl(&a.events), to_jsonl(&b.events));
    assert!(a.pcap.frame_count() > 0, "the pcap tap rides along");
}

#[test]
fn traced_run_covers_every_layer() {
    // 300 KB: enough to fill the 1994 model's nursery at least once,
    // so the GC layer shows up in the stream.
    let t = exp::traced_table1_bulk(StackKind::FoxStandard, CostModel::decstation_sml, 300_000, 7);
    let has = |f: &dyn Fn(&Event) -> bool| t.events.iter().any(|e| f(&e.event));
    assert!(has(&|e| matches!(e, Event::StateTransition { to: "Estab", .. })), "TCP layer");
    assert!(has(&|e| matches!(e, Event::Action { .. })), "action queue");
    assert!(has(&|e| matches!(e, Event::TimerSet { .. })), "timers");
    assert!(has(&|e| matches!(e, Event::SegTx { .. })), "segments out");
    assert!(has(&|e| matches!(e, Event::SegRx { .. })), "segments in");
    assert!(has(&|e| matches!(e, Event::FrameTx { .. })), "device layer");
    assert!(has(&|e| matches!(e, Event::FrameDeliver { .. })), "wire layer");
    assert!(has(&|e| matches!(e, Event::GcPause { .. })), "collector");
    assert!(
        t.events.iter().any(|e| e.host == 0) && t.events.iter().any(|e| e.host == 1),
        "both hosts are stamped"
    );
}

#[test]
fn xkernel_stack_is_traced_too() {
    let t = exp::traced_table1_bulk(StackKind::XKernel, CostModel::modern, 30_000, 7);
    let has = |f: &dyn Fn(&Event) -> bool| t.events.iter().any(|e| f(&e.event));
    assert!(has(&|e| matches!(e, Event::StateTransition { to: "Estab", .. })));
    assert!(has(&|e| matches!(e, Event::SegTx { .. })));
    assert!(has(&|e| matches!(e, Event::SegRx { .. })));
}

/// The scale workload is as replayable as the two-host ones: 64
/// concurrent connections through one server on a bursty
/// (Gilbert–Elliott) segment, run twice with the same seed, must
/// produce byte-identical event streams — the demux table and the
/// shared timer wheel introduce no iteration-order or timing
/// nondeterminism even while losses force retransmission.
#[test]
fn same_seed_many_flows_under_burst_loss_diff_to_zero() {
    fn run(kind: StackKind, seed: u64) -> (ManyFlowsResult, Vec<Stamped>) {
        let cfg = NetConfig {
            // Mean burst of ~3 frames, entered ~2% of frames, dropping
            // 70% while bad: enough to force recovery on many flows.
            faults: FaultConfig::bursty(0.02, 0.3, 0.7),
            ..NetConfig::default()
        };
        let net = SimNet::new(cfg, seed);
        let sink = EventSink::recording(1 << 18);
        let deadline = VirtualTime::ZERO + VirtualDuration::from_millis(600_000);
        let r = many_flows(&net, kind, 64, 4096, 4, CostModel::modern, &sink, deadline);
        (r, sink.events())
    }
    for kind in [StackKind::FoxStandard, StackKind::XKernel] {
        let (r1, e1) = run(kind, 11);
        let (r2, e2) = run(kind, 11);
        assert_eq!(r1.completed, 64, "{kind:?}: all flows finish despite the bursts");
        assert_eq!(r1.completed, r2.completed);
        assert!(r1.net.frames_dropped_fault > 0, "{kind:?}: the fault chain actually fired");
        assert!(!e1.is_empty());
        let d = first_divergence(&e1, &e2);
        assert!(d.is_none(), "{kind:?}: same-seed replay diverged at {d:?}");
        assert_eq!(to_jsonl(&e1), to_jsonl(&e2));
    }
}

/// GRO/TSO device batching groups the per-batch cost charges — which
/// are zero in every 1994 preset — so a batched device on the paper
/// profile must replay the unbatched run byte for byte: same events,
/// same timestamps, same delivery. Only the modern profile's nonzero
/// per-batch constants give batching anything observable to amortize.
#[test]
fn gro_batched_device_is_trace_invisible_on_the_1994_profile() {
    use foxproto::dev::BatchConfig;
    for (kind, cost) in [
        (StackKind::FoxStandard, CostModel::decstation_sml as fn() -> CostModel),
        (StackKind::XKernel, CostModel::decstation_c),
    ] {
        let unbatched = exp::traced_table1_bulk(kind, cost, 120_000, 7);
        let batched =
            exp::traced_table1_bulk_batched(kind, cost, 120_000, 7, BatchConfig { rx_burst: 8, tx_burst: 8 });
        assert_eq!(unbatched.bulk.bytes, 120_000);
        assert_eq!(batched.bulk.bytes, 120_000);
        let d = first_divergence(&unbatched.events, &batched.events);
        assert!(d.is_none(), "{kind:?}: batching perturbed a 1994 trace, diverged at {d:?}");
        assert_eq!(to_jsonl(&unbatched.events), to_jsonl(&batched.events));
        assert_eq!(unbatched.bulk.elapsed, batched.bulk.elapsed, "{kind:?}: virtual time moved");
    }
}

/// `ack_coalesce_segments: None` means "the historical threshold", and
/// setting the knob explicitly *to* that threshold must be
/// indistinguishable on the wire: Some(2) for the structured stack
/// (the BSD every-second-segment rule), Some(1) for the x-kernel
/// baseline (its every-full-segment rule). A genuinely raised
/// threshold must then actually change the trace — the knob is a real
/// policy, not dead configuration.
#[test]
fn ack_coalescing_defaults_pin_the_historical_thresholds() {
    // Fox: coalescing only matters with a delayed-ACK timer to hold
    // the ACK back (the paper's bulk config acks immediately).
    let delayed = TcpConfig { initial_window: 4096, send_buffer: 8192, ..TcpConfig::default() };
    assert_eq!(delayed.delayed_ack_ms, Some(200));
    let base =
        exp::traced_bulk_with(StackKind::FoxStandard, CostModel::decstation_sml, delayed.clone(), 80_000, 7);
    let explicit = exp::traced_bulk_with(
        StackKind::FoxStandard,
        CostModel::decstation_sml,
        TcpConfig { ack_coalesce_segments: Some(2), ..delayed.clone() },
        80_000,
        7,
    );
    let d = first_divergence(&base.events, &explicit.events);
    assert!(d.is_none(), "fox: Some(2) must equal the default threshold, diverged at {d:?}");

    let coalesced = exp::traced_bulk_with(
        StackKind::FoxStandard,
        CostModel::decstation_sml,
        TcpConfig { ack_coalesce_segments: Some(8), ..delayed },
        80_000,
        7,
    );
    assert_eq!(coalesced.bulk.bytes, 80_000, "a coalescing receiver still delivers everything");
    assert!(
        first_divergence(&base.events, &coalesced.events).is_some(),
        "fox: an 8-segment threshold must change the ACK stream"
    );

    // x-kernel: its historical rule is an immediate ACK on every full
    // segment, i.e. threshold 1.
    let paper = exp::paper_tcp_config();
    let base = exp::traced_bulk_with(StackKind::XKernel, CostModel::decstation_c, paper.clone(), 80_000, 7);
    let explicit = exp::traced_bulk_with(
        StackKind::XKernel,
        CostModel::decstation_c,
        TcpConfig { ack_coalesce_segments: Some(1), ..paper },
        80_000,
        7,
    );
    let d = first_divergence(&base.events, &explicit.events);
    assert!(d.is_none(), "xk: Some(1) must equal the default threshold, diverged at {d:?}");
}

/// The `CongestionControl` trait seam must be invisible on Reno's
/// pinned runs: selecting the algorithm explicitly (with CUBIC compiled
/// in behind the same trait) diffs to zero against the default
/// configuration on the same fault dice. And the default configuration
/// offers no TCP options, so these pinned streams are also the
/// unnegotiated-options baseline of Tables 1–2.
#[test]
fn reno_pinned_runs_trace_diff_to_zero_with_cubic_behind_the_trait() {
    let defaults = TcpConfig::default();
    assert_eq!(defaults.congestion_algorithm, CcAlg::Reno, "Reno is the pinned default");
    assert!(
        !defaults.window_scale && !defaults.sack && !defaults.timestamps,
        "no option is offered unless asked for"
    );
    let base = exp::traced_loss_cell(StackKind::FoxStandard, "drop 5%", 40_000, 7);
    let explicit_reno = exp::loss_matrix_config();
    assert_eq!(explicit_reno.congestion_algorithm, CcAlg::Reno);
    let reno = exp::traced_cell_with(
        StackKind::FoxStandard,
        "drop 5%",
        TcpConfig { congestion_algorithm: CcAlg::Reno, ..explicit_reno },
        40_000,
        7,
    );
    let d = first_divergence(&base.events, &reno.events);
    assert!(d.is_none(), "the trait seam changed Reno's behavior, diverged at {d:?}");

    // CUBIC on the same dice is a real alternative, not an alias: it
    // must still deliver everything, replay deterministically, and
    // grow the window differently once loss has forced recovery. The
    // window must be wide enough that cwnd — not the peer's 16 KB
    // advertisement — is what limits sending, or the two algorithms'
    // different growth stays invisible in the trace.
    let wide = |alg| TcpConfig {
        congestion_algorithm: alg,
        initial_window: 65535,
        send_buffer: 131072,
        delayed_ack_ms: None,
        ..TcpConfig::default()
    };
    let reno_wide = exp::traced_cell_with(StackKind::FoxStandard, "drop 5%", wide(CcAlg::Reno), 100_000, 7);
    let cubic = exp::traced_cell_with(StackKind::FoxStandard, "drop 5%", wide(CcAlg::Cubic), 100_000, 7);
    assert_eq!(cubic.bulk.bytes, 100_000, "CUBIC delivers in full");
    let cubic2 = exp::traced_cell_with(StackKind::FoxStandard, "drop 5%", wide(CcAlg::Cubic), 100_000, 7);
    assert!(first_divergence(&cubic.events, &cubic2.events).is_none(), "CUBIC replays deterministically");
    assert!(
        first_divergence(&reno_wide.events, &cubic.events).is_some(),
        "CUBIC must actually differ from Reno under loss"
    );
}

#[test]
fn different_seed_lossy_cell_reports_first_divergence() {
    let a = exp::traced_loss_cell(StackKind::FoxStandard, "drop 5%", 30_000, 7);
    let b = exp::traced_loss_cell(StackKind::FoxStandard, "drop 5%", 30_000, 8);
    let d = first_divergence(&a.events, &b.events).expect("different fault dice must diverge somewhere");
    assert!(d.index <= a.events.len().max(b.events.len()));
    assert!(d.left.is_some() || d.right.is_some(), "a divergence names at least one side's event");
    // And the same lossy seed still replays exactly.
    let a2 = exp::traced_loss_cell(StackKind::FoxStandard, "drop 5%", 30_000, 7);
    assert!(first_divergence(&a.events, &a2.events).is_none());
}

#[test]
fn chrome_export_of_a_lossmatrix_cell_is_valid_json() {
    let t = exp::traced_loss_cell(StackKind::FoxStandard, "drop 5%", 20_000, 7);
    let json = to_chrome_trace(&t.events);
    let value = json::parse(&json).expect("export must be syntactically valid JSON");
    let obj = match value {
        json::Value::Object(pairs) => pairs,
        other => panic!("top level must be an object, got {other:?}"),
    };
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("top level must carry traceEvents");
    let arr = match events {
        json::Value::Array(items) => items,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!arr.is_empty());
    for item in arr {
        let fields = match item {
            json::Value::Object(pairs) => pairs,
            other => panic!("each trace event must be an object, got {other:?}"),
        };
        for key in ["name", "ph", "ts", "pid", "tid", "args"] {
            assert!(fields.iter().any(|(k, _)| k == key), "trace event missing {key:?}");
        }
        let ph = fields.iter().find(|(k, _)| k == "ph").map(|(_, v)| v).unwrap();
        assert_eq!(ph, &json::Value::String("i".into()), "instant events only");
    }
}

/// A minimal recursive-descent JSON reader — just enough to prove the
/// exporters emit well-formed JSON without pulling in a parser crate.
mod json {
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::String(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) if c >= 0x20 => {
                    // Multi-byte UTF-8 passes through untouched.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b
                        .get(*pos..*pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| format!("bad utf8 at {pos}"))?;
                    out.push_str(chunk);
                    *pos += len;
                }
                _ => return Err(format!("unterminated string at {pos}")),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected , or ] at {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut pairs = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            pairs.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("expected , or }} at {pos}")),
            }
        }
    }
}
