//! Byte-for-byte pins of the paper tables. PR 7 adds a second cost
//! profile, device batching, and ACK coalescing around the same engine
//! code these tables run through — these tests are the contract that
//! all of it is invisible at the defaults: the rendered Table 1 and
//! Table 2 must not drift by a single byte from the output the seed
//! repo produced (captured before any of the new knobs existed).

use foxharness::experiments as exp;

/// The new knobs must default off: no ACK coalescing override and no
/// device batching in the paper configuration, or the pins below would
/// be testing the wrong experiment.
#[test]
fn paper_config_leaves_the_new_knobs_off() {
    let cfg = exp::paper_tcp_config();
    assert_eq!(cfg.ack_coalesce_segments, None, "coalescing must be opt-in");
    assert_eq!(cfg.delayed_ack_ms, None, "the paper bulk runs ack immediately");
    let batch = foxproto::dev::BatchConfig::default();
    assert_eq!((batch.rx_burst, batch.tx_burst), (1, 1), "batching must be opt-in");
}

#[test]
fn table1_renders_byte_for_byte() {
    let expected = "\
Table 1: Speed Comparison of TCP Implementations (paper: 0.6 / 2.5 Mb/s, 36 / 4.9 ms)
--------------------------------------------------
|                   | Fox Net | x-kernel | ratio |
--------------------------------------------------
| Throughput (Mb/s) |     0.6 |      2.5 |  0.24 |
|   Round-Trip (ms) |    32.2 |      5.3 |  6.04 |
--------------------------------------------------";
    let got = format!("{}", exp::render_table1(&exp::table1(42)));
    assert_eq!(got.trim_end(), expected, "Table 1 drifted from the pinned rendering");
}

#[test]
fn table2_renders_byte_for_byte() {
    let expected = "\
Table 2: Execution Profile (Percent of Total Time) of the TCP/IP stack
-------------------------------------------------------------
|         component | Sender | Receiver | paper S | paper R |
-------------------------------------------------------------
|               TCP |   28.8 |     28.9 |    29.0 |    27.5 |
|                IP |    7.9 |      7.9 |     7.8 |     9.7 |
| eth, Mach interf. |   11.0 |     11.0 |    11.2 |    11.9 |
|              copy |    9.6 |      9.6 |    10.5 |     6.3 |
|          checksum |    4.7 |      4.7 |     5.1 |     5.6 |
|         Mach send |    7.3 |      7.3 |     7.5 |     6.0 |
|       packet wait |   17.6 |     18.1 |    15.8 |     9.3 |
|             g. c. |    3.4 |      3.4 |     3.4 |     5.0 |
|             misc. |    4.7 |      4.7 |     4.7 |     7.3 |
|   counters (est.) |    4.7 |      4.4 |     5.2 |     5.4 |
|             total |   99.8 |    100.0 |   100.2 |    94.0 |
-------------------------------------------------------------";
    let got = format!("{}", exp::render_table2(&exp::table2(42)));
    assert_eq!(got.trim_end(), expected, "Table 2 drifted from the pinned rendering");
}
