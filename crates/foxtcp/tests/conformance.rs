//! RFC-793 §3.9 conformance: both TCP implementations, one script.
//!
//! Every scenario is a table of [`Step`]s — user calls on the system
//! under test (SUT) interleaved with raw segments crafted by a scripted
//! peer — and runs unchanged against the structured stack
//! ([`foxtcp::Tcp`]) and the monolithic baseline ([`xktcp::XkTcp`]).
//! The peer is *not* a TCP: it is the test itself, holding the other
//! end of a [`LinkPair`] and encoding/decoding [`TcpSegment`]s by hand,
//! so every transition is pinned against the standard's state diagram
//! rather than against whatever the other implementation happens to do.
//!
//! State names are normalized to the RFC's vocabulary (`SYN-RECEIVED`,
//! `FIN-WAIT-1`, ...) because the two stacks factor the diagram
//! differently: fox splits SYN-RECEIVED into `SynActive`/`SynPassive`
//! (the paper's Fig. 6), and a connection that has been reaped reads as
//! `CLOSED`.

use fox_scheduler::SchedHandle;
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::testlink::{LinkPair, TestAux, TestLower};
use foxtcp::{ConnectingSocket, EstablishedSocket, ListeningSocket, Tcp, TcpConfig, TcpConnId, TcpEvent};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
use simnet::HostHandle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use xktcp::{SockId, XkConfig, XkEvent, XkTcp};

/// Port the SUT listens on in passive scenarios.
const SUT_LISTEN_PORT: u16 = 80;
/// Local port the SUT binds in active scenarios.
const SUT_ACTIVE_PORT: u16 = 4000;
/// The scripted peer's port.
const PEER_PORT: u16 = 9000;
/// The peer's initial sequence number.
const PEER_ISS: u32 = 1000;

/// One entry of a scenario table.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// SUT: passive open on [`SUT_LISTEN_PORT`].
    Listen,
    /// SUT: active open toward the peer.
    Connect,
    /// SUT: graceful close of the data connection.
    Close,
    /// Peer → SUT: bare SYN (consumes one peer sequence number).
    Syn,
    /// Peer → SUT: SYN+ACK acknowledging everything seen.
    SynAck,
    /// Peer → SUT: pure ACK of everything seen.
    Ack,
    /// Peer → SUT: FIN+ACK acknowledging everything seen.
    Fin,
    /// Peer → SUT: FIN that does *not* acknowledge the SUT's FIN —
    /// the crossing FIN of a simultaneous close.
    FinCrossing,
    /// Peer → SUT: RST (with ACK, so it is acceptable in SYN-SENT too).
    Rst,
    /// Peer → SUT: RST whose sequence sits `offset` bytes past
    /// RCV.NXT — inside the window but not exact. RFC 5961 §3.2 says
    /// this must NOT abort; it draws a challenge ACK instead.
    RstInWindow(u32),
    /// Assert the data connection's normalized state.
    Expect(&'static str),
    /// Assert the listener's normalized state.
    ExpectListener(&'static str),
    /// Assert the SUT transmitted a segment matching the pattern
    /// (consumes received segments up to and including the match).
    ExpectTx(Pat),
    /// Advance virtual time by this many milliseconds, stepping the SUT.
    Wait(u64),
}

/// What a transmitted segment must look like.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Pat {
    /// SYN without ACK (active open).
    Syn,
    /// SYN+ACK (passive handshake reply).
    SynAck,
    /// A data-less ACK acknowledging everything the peer has sent.
    AckOnly,
    /// Any segment with FIN set.
    Fin,
    /// Any segment with RST set.
    Rst,
}

/// The driver interface both stacks are wrapped in. "The connection"
/// is the single data connection a scenario exercises: the active
/// client, or the first child a listener spawns.
trait Sut {
    fn kind(&self) -> &'static str;
    fn listen(&mut self);
    fn connect(&mut self);
    fn close_conn(&mut self);
    /// One step at `now`; returns true if progress was made.
    fn step(&mut self, now: VirtualTime) -> bool;
    /// Raw (un-normalized) state name of the data connection;
    /// `"Closed"` once the stack has forgotten it.
    fn conn_state(&self) -> &'static str;
    fn listener_state(&self) -> &'static str;
}

/// Maps both stacks' state vocabularies onto RFC 793's.
fn normalize(raw: &str) -> &'static str {
    match raw {
        "Closed" => "CLOSED",
        "Listen" => "LISTEN",
        "SynSent" => "SYN-SENT",
        // fox factors SYN-RECEIVED by how it was reached (paper Fig. 6);
        // xk keeps the RFC's single state.
        "SynActive" | "SynPassive" | "SynReceived" => "SYN-RECEIVED",
        "Estab" | "Established" => "ESTABLISHED",
        "FinWait1" => "FIN-WAIT-1",
        "FinWait2" => "FIN-WAIT-2",
        "CloseWait" => "CLOSE-WAIT",
        "Closing" => "CLOSING",
        "LastAck" => "LAST-ACK",
        "TimeWait" => "TIME-WAIT",
        other => panic!("unknown state name {other:?}"),
    }
}

// ---------------------------------------------------------------- fox

/// The data connection's typestate wrapper, at whichever stage it
/// currently holds. The wrapper is consumed on close; `FoxSut` keeps
/// the bare [`TcpConnId`] separately for state queries afterwards.
enum FoxConn {
    Connecting(ConnectingSocket),
    Established(EstablishedSocket),
}

struct FoxSut {
    tcp: Tcp<TestLower, TestAux>,
    _sched: SchedHandle,
    events: Rc<RefCell<Vec<TcpEvent>>>,
    listener: Option<ListeningSocket>,
    listener_id: Option<TcpConnId>,
    conn: Option<FoxConn>,
    conn_id: Option<TcpConnId>,
}

impl FoxSut {
    fn new(link: &LinkPair) -> FoxSut {
        let sched = SchedHandle::new();
        let tcp =
            Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched.clone(), HostHandle::free());
        FoxSut {
            tcp,
            _sched: sched,
            events: Rc::new(RefCell::new(Vec::new())),
            listener: None,
            listener_id: None,
            conn: None,
            conn_id: None,
        }
    }

    fn recorder(&self) -> foxproto::Handler<TcpEvent> {
        let ev = self.events.clone();
        Box::new(move |e| ev.borrow_mut().push(e))
    }
}

impl Sut for FoxSut {
    fn kind(&self) -> &'static str {
        "fox"
    }

    fn listen(&mut self) {
        let h = self.recorder();
        let sock = self.tcp.listen(SUT_LISTEN_PORT, h).unwrap();
        self.listener_id = Some(sock.id());
        self.listener = Some(sock);
    }

    fn connect(&mut self) {
        let h = self.recorder();
        let sock = self.tcp.connect(0, PEER_PORT, SUT_ACTIVE_PORT, h).unwrap();
        self.conn_id = Some(sock.id());
        self.conn = Some(FoxConn::Connecting(sock));
    }

    fn close_conn(&mut self) {
        // Close consumes the wrapper at whatever stage the handshake
        // reached; promote first so an established connection closes
        // through the `EstablishedSocket` it really is.
        match self.conn.take().expect("no connection to close") {
            FoxConn::Connecting(sock) => match sock.try_established(&self.tcp) {
                Ok(est) => est.close(&mut self.tcp).unwrap(),
                Err(still) => still.close(&mut self.tcp).unwrap(),
            },
            FoxConn::Established(sock) => sock.close(&mut self.tcp).unwrap(),
        }
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let progress = self.tcp.step(now);
        if self.conn_id.is_none() {
            // Adopt the listener's first child so its state is visible
            // and its terminal event lets the engine reap it.
            let child = self.events.borrow().iter().find_map(|e| match e {
                TcpEvent::NewConnection(c) => Some(*c),
                _ => None,
            });
            if let Some(c) = child {
                let ev = self.events.clone();
                let listener = self.listener.as_ref().expect("a child implies a listener");
                let sock =
                    listener.accept(&mut self.tcp, c, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
                self.conn_id = Some(c);
                self.conn = Some(FoxConn::Connecting(sock));
            }
        }
        // Promote the wrapper once the handshake completes, so closes
        // after establishment go through `EstablishedSocket`.
        if let Some(FoxConn::Connecting(_)) = self.conn {
            let Some(FoxConn::Connecting(sock)) = self.conn.take() else { unreachable!() };
            self.conn = Some(match sock.try_established(&self.tcp) {
                Ok(est) => FoxConn::Established(est),
                Err(still) => FoxConn::Connecting(still),
            });
        }
        progress
    }

    fn conn_state(&self) -> &'static str {
        match self.conn_id {
            None => "Closed",
            Some(c) => self.tcp.state_of(c).map_or("Closed", |s| s.name()),
        }
    }

    fn listener_state(&self) -> &'static str {
        match self.listener_id {
            None => "Closed",
            Some(l) => self.tcp.state_of(l).map_or("Closed", |s| s.name()),
        }
    }
}

// ----------------------------------------------------------------- xk

struct XkSut {
    tcp: XkTcp<TestLower, TestAux>,
    listener: Option<SockId>,
    conn: Option<SockId>,
}

impl XkSut {
    fn new(link: &LinkPair) -> XkSut {
        let tcp = XkTcp::new(link.endpoint(1), TestAux, (), XkConfig::default(), HostHandle::free());
        XkSut { tcp, listener: None, conn: None }
    }
}

impl Sut for XkSut {
    fn kind(&self) -> &'static str {
        "xk"
    }

    fn listen(&mut self) {
        self.listener = Some(self.tcp.listen(SUT_LISTEN_PORT).unwrap());
    }

    fn connect(&mut self) {
        self.conn = Some(self.tcp.connect(0, PEER_PORT, SUT_ACTIVE_PORT).unwrap());
    }

    fn close_conn(&mut self) {
        let c = self.conn.expect("no connection to close");
        self.tcp.close(c).unwrap();
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let progress = self.tcp.step(now);
        if let Some(l) = self.listener {
            while let Some(e) = self.tcp.poll_event(l) {
                if let XkEvent::Accepted(c) = e {
                    self.conn.get_or_insert(c);
                }
            }
        }
        progress
    }

    fn conn_state(&self) -> &'static str {
        match self.conn {
            None => "Closed",
            Some(c) => self.tcp.state_of(c).map_or("Closed", |s| s.name()),
        }
    }

    fn listener_state(&self) -> &'static str {
        match self.listener {
            None => "Closed",
            Some(l) => self.tcp.state_of(l).map_or("Closed", |s| s.name()),
        }
    }
}

// --------------------------------------------------------- the runner

/// The scripted peer plus the bookkeeping the script needs: its own
/// next sequence number, the SUT's (observed, not computed), and every
/// segment the SUT has transmitted.
struct Harness {
    sut: Box<dyn Sut>,
    lower: TestLower,
    rx: Rc<RefCell<VecDeque<TcpSegment>>>,
    now: VirtualTime,
    /// Next sequence number the peer will send.
    peer_nxt: u32,
    /// Everything the SUT has sent us, cumulatively acknowledged.
    sut_nxt: u32,
    /// Sequence number of the SUT's FIN, once seen.
    sut_fin_seq: Option<u32>,
    /// Where peer segments are addressed (learned from SUT traffic).
    dst_port: u16,
    /// Transmit log and the assertion cursor into it.
    got: Vec<TcpSegment>,
    cursor: usize,
}

impl Harness {
    fn new(link: &LinkPair, sut: Box<dyn Sut>) -> Harness {
        let rx: Rc<RefCell<VecDeque<TcpSegment>>> = Rc::new(RefCell::new(VecDeque::new()));
        let sink = rx.clone();
        let mut lower = link.endpoint(0);
        lower
            .open(
                (),
                Box::new(move |m| {
                    let seg = TcpSegment::decode_buf(&m.data, None).expect("undecodable segment");
                    sink.borrow_mut().push_back(seg);
                }),
            )
            .unwrap();
        Harness {
            sut,
            lower,
            rx,
            now: VirtualTime::ZERO,
            peer_nxt: PEER_ISS,
            sut_nxt: 0,
            sut_fin_seq: None,
            dst_port: SUT_LISTEN_PORT,
            got: Vec::new(),
            cursor: 0,
        }
    }

    /// Steps SUT and peer until neither makes progress.
    fn settle(&mut self) {
        for _ in 0..256 {
            let p = self.sut.step(self.now);
            self.lower.step(self.now);
            let mut fresh = false;
            loop {
                let seg = self.rx.borrow_mut().pop_front();
                match seg {
                    Some(seg) => {
                        fresh = true;
                        self.note(seg);
                    }
                    None => break,
                }
            }
            if !p && !fresh {
                return;
            }
        }
        panic!("[{}] did not settle", self.sut.kind());
    }

    /// Records a segment from the SUT; the link is in-order and
    /// loss-free, so cumulative state just follows the latest segment.
    fn note(&mut self, seg: TcpSegment) {
        self.dst_port = seg.header.src_port;
        self.sut_nxt = seg.header.seq.0.wrapping_add(seg.seq_len());
        if seg.header.flags.fin {
            self.sut_fin_seq = Some(seg.header.seq.0.wrapping_add(seg.payload.len() as u32));
        }
        self.got.push(seg);
    }

    /// Peer → SUT.
    fn send(&mut self, flags: TcpFlags, seq: u32, ack: u32) {
        let mut h = TcpHeader::new(PEER_PORT, self.dst_port);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = flags;
        h.window = 4096;
        let seg = TcpSegment { header: h, payload: foxbasis::buf::PacketBuf::new() };
        let buf = seg.encode_buf(None).unwrap();
        self.lower.send(0, 1, buf).unwrap();
        self.settle();
    }

    fn run(&mut self, name: &str, steps: &[Step]) {
        for (i, step) in steps.iter().enumerate() {
            let ctx = format!("[{} · {name} · step {i}: {step:?}]", self.sut.kind());
            match *step {
                Step::Listen => {
                    self.sut.listen();
                    self.settle();
                }
                Step::Connect => {
                    self.sut.connect();
                    self.settle();
                }
                Step::Close => {
                    self.sut.close_conn();
                    self.settle();
                }
                Step::Syn => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    self.send(TcpFlags::SYN, seq, 0);
                }
                Step::SynAck => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_nxt;
                    self.send(TcpFlags::SYN_ACK, seq, ack);
                }
                Step::Ack => {
                    let (seq, ack) = (self.peer_nxt, self.sut_nxt);
                    self.send(TcpFlags::ACK, seq, ack);
                }
                Step::Fin => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_nxt;
                    self.send(TcpFlags::FIN_ACK, seq, ack);
                }
                Step::FinCrossing => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_fin_seq.expect("no SUT FIN to cross");
                    self.send(TcpFlags::FIN_ACK, seq, ack);
                }
                Step::Rst => {
                    let (seq, ack) = (self.peer_nxt, self.sut_nxt);
                    self.send(TcpFlags::RST_ACK, seq, ack);
                }
                Step::RstInWindow(offset) => {
                    let (seq, ack) = (self.peer_nxt.wrapping_add(offset), self.sut_nxt);
                    self.send(TcpFlags::RST_ACK, seq, ack);
                }
                Step::Expect(want) => {
                    let raw = self.sut.conn_state();
                    let have = normalize(raw);
                    assert_eq!(have, want, "{ctx} connection is {raw}");
                }
                Step::ExpectListener(want) => {
                    let raw = self.sut.listener_state();
                    let have = normalize(raw);
                    assert_eq!(have, want, "{ctx} listener is {raw}");
                }
                Step::ExpectTx(pat) => {
                    let found = self.got[self.cursor..].iter().position(|seg| {
                        let f = &seg.header.flags;
                        match pat {
                            Pat::Syn => f.syn && !f.ack,
                            Pat::SynAck => f.syn && f.ack,
                            Pat::Fin => f.fin,
                            Pat::Rst => f.rst,
                            Pat::AckOnly => {
                                !f.syn
                                    && !f.fin
                                    && !f.rst
                                    && f.ack
                                    && seg.payload.is_empty()
                                    && seg.header.ack.0 == self.peer_nxt
                            }
                        }
                    });
                    match found {
                        Some(off) => self.cursor += off + 1,
                        None => panic!(
                            "{ctx} expected {pat:?}, transmit log since last match: {:?}",
                            self.got[self.cursor..]
                                .iter()
                                .map(|s| format!(
                                    "seq={} ack={} {}{}{}{}",
                                    s.header.seq.0,
                                    s.header.ack.0,
                                    if s.header.flags.syn { "S" } else { "" },
                                    if s.header.flags.ack { "A" } else { "" },
                                    if s.header.flags.fin { "F" } else { "" },
                                    if s.header.flags.rst { "R" } else { "" },
                                ))
                                .collect::<Vec<_>>()
                        ),
                    }
                }
                Step::Wait(ms) => {
                    let end = self.now + VirtualDuration::from_millis(ms);
                    while self.now < end {
                        self.now = (self.now + VirtualDuration::from_millis(1000)).min(end);
                        self.settle();
                    }
                }
            }
        }
    }
}

/// Builds one stack's driver over a fresh link.
type SutBuilder = fn(&LinkPair) -> Box<dyn Sut>;

/// Runs one scenario table against both stacks.
fn conform(name: &str, steps: &[Step]) {
    let builders: [SutBuilder; 2] = [|l| Box::new(FoxSut::new(l)), |l| Box::new(XkSut::new(l))];
    for build in builders {
        let link = LinkPair::new();
        let sut = build(&link);
        let mut h = Harness::new(&link, sut);
        h.run(name, steps);
    }
}

// ------------------------------------------------------ the scenarios

use Step::*;

/// RFC 793 §3.9, passive side: LISTEN → SYN-RECEIVED → ESTABLISHED,
/// then the peer closes first: CLOSE-WAIT → LAST-ACK → CLOSED. The
/// listener survives its child.
#[test]
fn passive_open_then_remote_close() {
    conform(
        "passive_open_then_remote_close",
        &[
            Listen,
            ExpectListener("LISTEN"),
            Syn,
            Expect("SYN-RECEIVED"),
            ExpectTx(Pat::SynAck),
            Ack,
            Expect("ESTABLISHED"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("CLOSE-WAIT"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("LAST-ACK"),
            Ack,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    );
}

/// The quoted chain of the state diagram: a passively accepted child
/// closes first and walks LISTEN → SYN-RECEIVED → ESTABLISHED →
/// FIN-WAIT-1 → FIN-WAIT-2 → TIME-WAIT → CLOSED.
#[test]
fn passive_open_then_local_close() {
    conform(
        "passive_open_then_local_close",
        &[
            Listen,
            Syn,
            Expect("SYN-RECEIVED"),
            ExpectTx(Pat::SynAck),
            Ack,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Ack,
            Expect("FIN-WAIT-2"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("TIME-WAIT"),
            Wait(61_000),
            Expect("CLOSED"),
        ],
    );
}

/// Active side: CLOSED → SYN-SENT → ESTABLISHED, local close through
/// FIN-WAIT-1 → FIN-WAIT-2 → TIME-WAIT, and the 2MSL expiry.
#[test]
fn active_open_then_local_close() {
    conform(
        "active_open_then_local_close",
        &[
            Connect,
            ExpectTx(Pat::Syn),
            Expect("SYN-SENT"),
            SynAck,
            ExpectTx(Pat::AckOnly),
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Ack,
            Expect("FIN-WAIT-2"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("TIME-WAIT"),
            Wait(61_000),
            Expect("CLOSED"),
        ],
    );
}

/// Simultaneous open (RFC 793 p. 32): SYNs cross, both sides pass
/// through SYN-RECEIVED. The SUT's own SYN is already in flight when
/// the peer's bare SYN arrives.
#[test]
fn simultaneous_open() {
    conform(
        "simultaneous_open",
        &[
            Connect,
            ExpectTx(Pat::Syn),
            Expect("SYN-SENT"),
            Syn,
            ExpectTx(Pat::SynAck),
            Expect("SYN-RECEIVED"),
            Ack,
            Expect("ESTABLISHED"),
        ],
    );
}

/// Simultaneous close (RFC 793 p. 39): FINs cross, so the SUT moves
/// FIN-WAIT-1 → CLOSING → TIME-WAIT instead of through FIN-WAIT-2.
#[test]
fn simultaneous_close() {
    conform(
        "simultaneous_close",
        &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            FinCrossing,
            ExpectTx(Pat::AckOnly),
            Expect("CLOSING"),
            Ack,
            Expect("TIME-WAIT"),
            Wait(61_000),
            Expect("CLOSED"),
        ],
    );
}

/// A connection request aimed at a port nobody listens on draws a RST
/// (RFC 793 p. 36, "If the connection does not exist").
#[test]
fn syn_to_closed_port_draws_rst() {
    conform("syn_to_closed_port_draws_rst", &[Syn, ExpectTx(Pat::Rst)]);
}

/// RST while in SYN-SENT (connection refused) kills the attempt.
#[test]
fn rst_in_syn_sent() {
    conform("rst_in_syn_sent", &[Connect, ExpectTx(Pat::Syn), Expect("SYN-SENT"), Rst, Expect("CLOSED")]);
}

/// RST while in SYN-RECEIVED returns the passive side to anonymity:
/// the embryonic child dies, the listener keeps listening.
#[test]
fn rst_in_syn_received() {
    conform(
        "rst_in_syn_received",
        &[
            Listen,
            Syn,
            ExpectTx(Pat::SynAck),
            Expect("SYN-RECEIVED"),
            Rst,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    );
}

/// RST in ESTABLISHED tears the connection down immediately.
#[test]
fn rst_in_established() {
    conform(
        "rst_in_established",
        &[Listen, Syn, Ack, Expect("ESTABLISHED"), Rst, Expect("CLOSED"), ExpectListener("LISTEN")],
    );
}

/// RFC 5961 §3.2, negative path: an in-window RST that does not land
/// exactly on RCV.NXT must NOT abort the connection — the SUT answers
/// with a challenge ACK and stays put. The exact-sequence RST that
/// follows is the one entitled to kill it.
#[test]
fn in_window_rst_challenges_instead_of_aborting() {
    conform(
        "in_window_rst_challenges_instead_of_aborting",
        &[
            Listen,
            Syn,
            Ack,
            Expect("ESTABLISHED"),
            RstInWindow(100),
            Expect("ESTABLISHED"),
            ExpectTx(Pat::AckOnly),
            Rst,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    );
}

/// The challenge boundary is sharp: even one byte past RCV.NXT is "not
/// exact" and must challenge, not abort.
#[test]
fn rst_one_byte_past_rcv_nxt_still_challenges() {
    conform(
        "rst_one_byte_past_rcv_nxt_still_challenges",
        &[
            Listen,
            Syn,
            Ack,
            Expect("ESTABLISHED"),
            RstInWindow(1),
            Expect("ESTABLISHED"),
            ExpectTx(Pat::AckOnly),
        ],
    );
}

/// RST in FIN-WAIT-1 (peer aborts mid-close).
#[test]
fn rst_in_fin_wait_1() {
    conform(
        "rst_in_fin_wait_1",
        &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Rst,
            Expect("CLOSED"),
        ],
    );
}

/// RST in CLOSE-WAIT (peer aborts after half-closing).
#[test]
fn rst_in_close_wait() {
    conform("rst_in_close_wait", &[Listen, Syn, Ack, Fin, Expect("CLOSE-WAIT"), Rst, Expect("CLOSED")]);
}

/// A listener ignores stray RSTs (RFC 793 p. 65, LISTEN: "An incoming
/// RST should be ignored").
#[test]
fn rst_in_listen_is_ignored() {
    conform("rst_in_listen_is_ignored", &[Listen, Rst, ExpectListener("LISTEN")]);
}

// ------------------------------------------------- SYN-flood recovery

/// A raw peer that floods from many source ports and watches which of
/// them the listener answers.
struct FloodPeer {
    lower: TestLower,
    rx: Rc<RefCell<VecDeque<TcpSegment>>>,
}

impl FloodPeer {
    fn new(link: &LinkPair) -> FloodPeer {
        let rx: Rc<RefCell<VecDeque<TcpSegment>>> = Rc::new(RefCell::new(VecDeque::new()));
        let sink = rx.clone();
        let mut lower = link.endpoint(0);
        lower
            .open(
                (),
                Box::new(move |m| {
                    let seg = TcpSegment::decode_buf(&m.data, None).expect("undecodable segment");
                    sink.borrow_mut().push_back(seg);
                }),
            )
            .unwrap();
        FloodPeer { lower, rx }
    }

    fn send(&mut self, src_port: u16, flags: TcpFlags, seq: u32, ack: u32) {
        let mut h = TcpHeader::new(src_port, SUT_LISTEN_PORT);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = flags;
        h.window = 4096;
        let seg = TcpSegment { header: h, payload: foxbasis::buf::PacketBuf::new() };
        self.lower.send(0, 1, seg.encode_buf(None).unwrap()).unwrap();
    }

    /// Drains received segments, returning `(dst_port, segment)` pairs.
    fn drain(&mut self, now: VirtualTime) -> Vec<(u16, TcpSegment)> {
        self.lower.step(now);
        let mut out = Vec::new();
        loop {
            let seg = self.rx.borrow_mut().pop_front();
            match seg {
                Some(s) => out.push((s.header.dst_port, s)),
                None => break,
            }
        }
        out
    }
}

/// Shared script: flood a backlog-2 listener with 5 SYNs, check only 2
/// are answered, drain the accept queue by finishing those handshakes,
/// then retry one of the dropped SYNs and see it admitted — the
/// bounded queue recovers instead of wedging.
///
/// `step` drives the stack; `drainq` performs whatever the stack needs
/// for an established child to leave the accept queue (fox: adopt it
/// with a handler; xk: nothing, SYN-RECEIVED ends at establishment).
fn syn_flood_recovers(
    kind: &str,
    step: &mut dyn FnMut(VirtualTime) -> bool,
    drainq: &mut dyn FnMut(),
    peer: &mut FloodPeer,
) -> Vec<u16> {
    let now = VirtualTime::ZERO;
    let mut settle = |peer: &mut FloodPeer| {
        let mut seen = Vec::new();
        for _ in 0..256 {
            let p = step(now);
            let fresh = peer.drain(now);
            if !p && fresh.is_empty() {
                return seen;
            }
            seen.extend(fresh);
        }
        panic!("[{kind}] did not settle");
    };

    // Five clients, one burst. Backlog is 2.
    for port in [9001u16, 9002, 9003, 9004, 9005] {
        peer.send(port, TcpFlags::SYN, 1000, 0);
    }
    let replies = settle(peer);
    let answered: Vec<u16> =
        replies.iter().filter(|(_, s)| s.header.flags.syn && s.header.flags.ack).map(|(p, _)| *p).collect();
    assert_eq!(answered, vec![9001, 9002], "[{kind}] only the backlog is admitted");

    // Finish the admitted handshakes and take the children off the
    // accept queue.
    for (port, seg) in replies.iter().filter(|(_, s)| s.header.flags.syn && s.header.flags.ack) {
        peer.send(*port, TcpFlags::ACK, 1001, seg.header.seq.0.wrapping_add(1));
    }
    settle(peer);
    drainq();
    settle(peer);

    // One of the silently dropped clients retransmits its SYN; the
    // drained queue now has room.
    peer.send(9004, TcpFlags::SYN, 1000, 0);
    let replies = settle(peer);
    assert!(
        replies.iter().any(|(p, s)| *p == 9004 && s.header.flags.syn && s.header.flags.ack),
        "[{kind}] retransmitted SYN is admitted after the queue drains"
    );
    answered
}

#[test]
fn fox_syn_flood_drops_beyond_backlog_and_recovers() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let cfg = TcpConfig { backlog: 2, ..TcpConfig::default() };
    let tcp: Rc<RefCell<Tcp<TestLower, TestAux>>> = Rc::new(RefCell::new(Tcp::new(
        link.endpoint(1),
        TestAux,
        (),
        cfg,
        sched.clone(),
        HostHandle::free(),
    )));
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener =
        tcp.borrow_mut().listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);

    let t = tcp.clone();
    let mut step = move |now: VirtualTime| t.borrow_mut().step(now);
    let t = tcp.clone();
    let mut drainq = move || {
        // Accepting a child (installing its handler) takes it off the
        // listener's queue.
        let children: Vec<TcpConnId> = events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                TcpEvent::NewConnection(c) => Some(*c),
                _ => None,
            })
            .collect();
        for c in children {
            let _ = listener.accept(&mut t.borrow_mut(), c, Box::new(|_| {}));
        }
    };
    syn_flood_recovers("fox", &mut step, &mut drainq, &mut peer);
    assert_eq!(tcp.borrow().stats().syns_dropped, 3, "three of the five SYNs were shed");
}

#[test]
fn xk_syn_flood_drops_beyond_backlog_and_recovers() {
    let link = LinkPair::new();
    let cfg = XkConfig { backlog: 2, ..XkConfig::default() };
    let tcp: Rc<RefCell<XkTcp<TestLower, TestAux>>> =
        Rc::new(RefCell::new(XkTcp::new(link.endpoint(1), TestAux, (), cfg, HostHandle::free())));
    tcp.borrow_mut().listen(SUT_LISTEN_PORT).unwrap();
    let mut peer = FloodPeer::new(&link);

    let t = tcp.clone();
    let mut step = move |now: VirtualTime| t.borrow_mut().step(now);
    // xk's embryonic count only covers SYN-RECEIVED sockets, so the
    // completed handshakes already drained the queue.
    let mut drainq = || {};
    syn_flood_recovers("xk", &mut step, &mut drainq, &mut peer);
}

// ------------------------------------------- typestate lifecycle (fox)

/// Steps a fox stack and a raw peer until neither makes progress,
/// returning every segment the stack transmitted meanwhile.
fn settle_fox(
    tcp: &mut Tcp<TestLower, TestAux>,
    peer: &mut FloodPeer,
    now: VirtualTime,
) -> Vec<(u16, TcpSegment)> {
    let mut seen = Vec::new();
    for _ in 0..256 {
        let p = tcp.step(now);
        let fresh = peer.drain(now);
        if !p && fresh.is_empty() {
            return seen;
        }
        seen.extend(fresh);
    }
    panic!("[fox] did not settle");
}

/// The positive half of the typestate story: a connection driven end to
/// end — listen → accept → try_established → send_data → close —
/// touching the engine only through the typed wrappers. (The negative
/// half lives in `foxtcp::socket`'s `compile_fail` doctests.)
#[test]
fn fox_typed_lifecycle_listen_accept_send_close() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let mut tcp = Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched, HostHandle::free());
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener = tcp.listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    // Three-way handshake, scripted by the raw peer.
    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);

    // Adopt the announced child through the typed accept; the
    // handshake is already complete, so it promotes immediately.
    let child = events
        .borrow()
        .iter()
        .find_map(|e| match e {
            TcpEvent::NewConnection(c) => Some(*c),
            _ => None,
        })
        .expect("listener announced its child");
    let conn = listener.accept(&mut tcp, child, Box::new(|_| {})).unwrap();
    let est = conn.try_established(&tcp).expect("handshake has completed");

    // Data moves only through the established stage.
    assert_eq!(est.send_data(&mut tcp, b"typed").unwrap(), 5);
    assert!(est.send_capacity(&tcp).unwrap() > 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    assert!(replies.iter().any(|(_, s)| s.payload.len() == 5), "the payload went out");
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1 + 5));
    settle_fox(&mut tcp, &mut peer, now);

    // Close consumes the socket and puts a FIN on the wire.
    est.close(&mut tcp).unwrap();
    let replies = settle_fox(&mut tcp, &mut peer, now);
    assert!(replies.iter().any(|(_, s)| s.header.flags.fin), "FIN transmitted");
    assert_eq!(tcp.state_of(child).expect("still tracked").name(), "FinWait1");
    listener.close(&mut tcp).unwrap();
}

// --------------------------------------------- post-reap observability

/// Once fox reaps a closed connection, `state_of` and `metrics_of`
/// answer `None` — never a stale snapshot of the dead connection.
#[test]
fn fox_reaped_connection_reads_none() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let mut tcp = Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched, HostHandle::free());
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener = tcp.listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);

    let child = events
        .borrow()
        .iter()
        .find_map(|e| match e {
            TcpEvent::NewConnection(c) => Some(*c),
            _ => None,
        })
        .expect("listener announced its child");
    let conn = listener.accept(&mut tcp, child, Box::new(|_| {})).unwrap();
    let est = conn.try_established(&tcp).expect("handshake has completed");
    assert!(tcp.state_of(child).is_some(), "live connection is observable");
    assert!(tcp.metrics_of(child).is_some());

    // Passive close: peer's FIN, our FIN, peer's final ACK. LAST-ACK
    // collapses straight to CLOSED, so the reaper takes the connection
    // as soon as its Closed event has been delivered.
    peer.send(PEER_PORT, TcpFlags::FIN_ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);
    est.close(&mut tcp).unwrap();
    settle_fox(&mut tcp, &mut peer, now);
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 2, sut_iss.wrapping_add(2));
    settle_fox(&mut tcp, &mut peer, now);

    assert_eq!(tcp.state_of(child), None, "reaped: no stale state");
    assert!(tcp.metrics_of(child).is_none(), "reaped: no stale metrics");
    assert!(tcp.state_of(listener.id()).is_some(), "the listener survives its child");
    assert!(tcp.send_capacity(child).is_err(), "reaped: capacity is an error, not 0");
}

/// The xk baseline keeps the same post-reap contract: an accepted child
/// that finishes its close and drains its events vanishes from
/// `state_of`/`metrics_of` instead of lingering as a stale entry.
/// (Only children are reaped — the listener itself stays.)
#[test]
fn xk_reaped_child_reads_none() {
    let link = LinkPair::new();
    let mut tcp = XkTcp::new(link.endpoint(1), TestAux, (), XkConfig::default(), HostHandle::free());
    let listener = tcp.listen(SUT_LISTEN_PORT).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    let settle = |tcp: &mut XkTcp<TestLower, TestAux>, peer: &mut FloodPeer| {
        let mut seen: Vec<(u16, TcpSegment)> = Vec::new();
        for _ in 0..256 {
            let p = tcp.step(now);
            let fresh = peer.drain(now);
            if !p && fresh.is_empty() {
                return seen;
            }
            seen.extend(fresh);
        }
        panic!("[xk] did not settle");
    };

    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle(&mut tcp, &mut peer);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle(&mut tcp, &mut peer);

    let mut child = None;
    while let Some(e) = tcp.poll_event(listener) {
        if let XkEvent::Accepted(c) = e {
            child = Some(c);
        }
    }
    let child = child.expect("listener accepted its child");
    assert!(tcp.state_of(child).is_some(), "live child is observable");
    assert!(tcp.metrics_of(child).is_some());

    // Passive close of the child.
    peer.send(PEER_PORT, TcpFlags::FIN_ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle(&mut tcp, &mut peer);
    tcp.close(child).unwrap();
    settle(&mut tcp, &mut peer);
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 2, sut_iss.wrapping_add(2));
    settle(&mut tcp, &mut peer);

    // xk reaps only once the user has drained the child's events.
    while tcp.poll_event(child).is_some() {}
    tcp.step(now);

    assert_eq!(tcp.state_of(child), None, "reaped: no stale state");
    assert!(tcp.metrics_of(child).is_none(), "reaped: no stale metrics");
    assert!(tcp.state_of(listener).is_some(), "the listener survives its child");
}
