//! RFC-793 §3.9 conformance: both TCP implementations, one script.
//!
//! Every scenario is a table of [`Step`]s — user calls on the system
//! under test (SUT) interleaved with raw segments crafted by a scripted
//! peer — and runs unchanged against the structured stack
//! ([`foxtcp::Tcp`]) and the monolithic baseline ([`xktcp::XkTcp`]).
//! The peer is *not* a TCP: it is the test itself, holding the other
//! end of a [`LinkPair`] and encoding/decoding [`TcpSegment`]s by hand,
//! so every transition is pinned against the standard's state diagram
//! rather than against whatever the other implementation happens to do.
//!
//! State names are normalized to the RFC's vocabulary (`SYN-RECEIVED`,
//! `FIN-WAIT-1`, ...) because the two stacks factor the diagram
//! differently: fox splits SYN-RECEIVED into `SynActive`/`SynPassive`
//! (the paper's Fig. 6), and a connection that has been reaped reads as
//! `CLOSED`.
//!
//! The scenarios live in one registry ([`SCENARIOS`]) so the suite can
//! be ratcheted against the statically extracted state machine: every
//! run records the `(state, trigger, state')` transitions each stack
//! emits through `foxbasis::obs`, and
//! [`runtime_transitions_cover_the_extracted_fsm_spec`] fails if any
//! edge of `spec/tcp_fsm.txt` (itself diffed against the *code* by
//! `foxlint --fsm-check`) is never exercised at runtime — unless the
//! spec line carries a documented `@untested` exemption for that stack.

use fox_scheduler::SchedHandle;
use foxbasis::obs::{Event, EventSink};
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::testlink::{LinkPair, TestAux, TestLower};
use foxtcp::{ConnectingSocket, EstablishedSocket, ListeningSocket, Tcp, TcpConfig, TcpConnId, TcpEvent};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
use simnet::HostHandle;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::rc::Rc;
use xktcp::{SockId, XkConfig, XkEvent, XkTcp};

/// Port the SUT listens on in passive scenarios.
const SUT_LISTEN_PORT: u16 = 80;
/// Local port the SUT binds in active scenarios.
const SUT_ACTIVE_PORT: u16 = 4000;
/// The scripted peer's port.
const PEER_PORT: u16 = 9000;
/// The peer's initial sequence number.
const PEER_ISS: u32 = 1000;

/// One entry of a scenario table.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// SUT: passive open on [`SUT_LISTEN_PORT`].
    Listen,
    /// SUT: active open toward the peer.
    Connect,
    /// SUT: graceful close of the data connection.
    Close,
    /// SUT: graceful close of the listener.
    CloseListener,
    /// SUT: queue a small payload on the data connection.
    Send,
    /// SUT: ABORT the data connection (fox only — the monolithic
    /// baseline has no abort API, which `spec/tcp_fsm.txt` records as
    /// `@untested(xk: ...)` on every abort edge).
    Abort,
    /// SUT: ABORT the listener (fox only).
    AbortListener,
    /// Peer → SUT: bare SYN (consumes one peer sequence number).
    Syn,
    /// Peer → SUT: SYN+ACK acknowledging everything seen.
    SynAck,
    /// Peer → SUT: pure ACK of everything seen.
    Ack,
    /// Peer → SUT: FIN+ACK acknowledging everything seen.
    Fin,
    /// Peer → SUT: FIN that does *not* acknowledge the SUT's FIN —
    /// the crossing FIN of a simultaneous close.
    FinCrossing,
    /// Peer → SUT: RST (with ACK, so it is acceptable in SYN-SENT too).
    Rst,
    /// Peer → SUT: RST whose sequence sits `offset` bytes past
    /// RCV.NXT — inside the window but not exact. RFC 5961 §3.2 says
    /// this must NOT abort; it draws a challenge ACK instead.
    RstInWindow(u32),
    /// Assert the data connection's normalized state.
    Expect(&'static str),
    /// Assert the listener's normalized state.
    ExpectListener(&'static str),
    /// Assert the SUT transmitted a segment matching the pattern
    /// (consumes received segments up to and including the match).
    ExpectTx(Pat),
    /// Advance virtual time by this many milliseconds, stepping the SUT.
    Wait(u64),
}

/// What a transmitted segment must look like.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Pat {
    /// SYN without ACK (active open).
    Syn,
    /// SYN+ACK (passive handshake reply).
    SynAck,
    /// A data-less ACK acknowledging everything the peer has sent.
    AckOnly,
    /// Any segment with FIN set.
    Fin,
    /// Any segment with RST set.
    Rst,
}

/// The driver interface both stacks are wrapped in. "The connection"
/// is the single data connection a scenario exercises: the active
/// client, or the first child a listener spawns.
trait Sut {
    fn kind(&self) -> &'static str;
    /// Routes the stack's typed event stream into `sink` so the
    /// coverage ratchet can read the transitions back out.
    fn set_obs(&mut self, sink: EventSink);
    fn listen(&mut self);
    fn connect(&mut self);
    fn close_conn(&mut self);
    fn close_listener(&mut self);
    /// Queues a small payload on the data connection (it must be in a
    /// state that accepts sends).
    fn send_data(&mut self, data: &[u8]);
    /// ABORT (RFC 793 p. 62) on the data connection. Scenarios using
    /// this are marked [`Stacks::FoxOnly`]; the default is unreachable.
    fn abort_conn(&mut self) {
        panic!("[{}] stack has no abort API", self.kind());
    }
    /// ABORT on the listener (fox only, as above).
    fn abort_listener(&mut self) {
        panic!("[{}] stack has no abort API", self.kind());
    }
    /// One step at `now`; returns true if progress was made.
    fn step(&mut self, now: VirtualTime) -> bool;
    /// Raw (un-normalized) state name of the data connection;
    /// `"Closed"` once the stack has forgotten it.
    fn conn_state(&self) -> &'static str;
    fn listener_state(&self) -> &'static str;
}

/// Maps both stacks' state vocabularies onto RFC 793's.
fn normalize(raw: &str) -> &'static str {
    match raw {
        "Closed" => "CLOSED",
        "Listen" => "LISTEN",
        "SynSent" => "SYN-SENT",
        // fox factors SYN-RECEIVED by how it was reached (paper Fig. 6);
        // xk keeps the RFC's single state.
        "SynActive" | "SynPassive" | "SynReceived" => "SYN-RECEIVED",
        "Estab" | "Established" => "ESTABLISHED",
        "FinWait1" => "FIN-WAIT-1",
        "FinWait2" => "FIN-WAIT-2",
        "CloseWait" => "CLOSE-WAIT",
        "Closing" => "CLOSING",
        "LastAck" => "LAST-ACK",
        "TimeWait" => "TIME-WAIT",
        other => panic!("unknown state name {other:?}"),
    }
}

// ---------------------------------------------------------------- fox

/// The data connection's typestate wrapper, at whichever stage it
/// currently holds. The wrapper is consumed on close; `FoxSut` keeps
/// the bare [`TcpConnId`] separately for state queries afterwards.
enum FoxConn {
    Connecting(ConnectingSocket),
    Established(EstablishedSocket),
}

struct FoxSut {
    tcp: Tcp<TestLower, TestAux>,
    _sched: SchedHandle,
    events: Rc<RefCell<Vec<TcpEvent>>>,
    listener: Option<ListeningSocket>,
    listener_id: Option<TcpConnId>,
    conn: Option<FoxConn>,
    conn_id: Option<TcpConnId>,
}

impl FoxSut {
    fn new(link: &LinkPair) -> FoxSut {
        let sched = SchedHandle::new();
        let tcp =
            Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched.clone(), HostHandle::free());
        FoxSut {
            tcp,
            _sched: sched,
            events: Rc::new(RefCell::new(Vec::new())),
            listener: None,
            listener_id: None,
            conn: None,
            conn_id: None,
        }
    }

    fn recorder(&self) -> foxproto::Handler<TcpEvent> {
        let ev = self.events.clone();
        Box::new(move |e| ev.borrow_mut().push(e))
    }
}

impl Sut for FoxSut {
    fn kind(&self) -> &'static str {
        "fox"
    }

    fn set_obs(&mut self, sink: EventSink) {
        self.tcp.set_obs(sink);
    }

    fn listen(&mut self) {
        let h = self.recorder();
        let sock = self.tcp.listen(SUT_LISTEN_PORT, h).unwrap();
        self.listener_id = Some(sock.id());
        self.listener = Some(sock);
    }

    fn connect(&mut self) {
        let h = self.recorder();
        let sock = self.tcp.connect(0, PEER_PORT, SUT_ACTIVE_PORT, h).unwrap();
        self.conn_id = Some(sock.id());
        self.conn = Some(FoxConn::Connecting(sock));
    }

    fn close_conn(&mut self) {
        // Close consumes the wrapper at whatever stage the handshake
        // reached; promote first so an established connection closes
        // through the `EstablishedSocket` it really is.
        match self.conn.take().expect("no connection to close") {
            FoxConn::Connecting(sock) => match sock.try_established(&self.tcp) {
                Ok(est) => est.close(&mut self.tcp).unwrap(),
                Err(still) => still.close(&mut self.tcp).unwrap(),
            },
            FoxConn::Established(sock) => sock.close(&mut self.tcp).unwrap(),
        }
    }

    fn close_listener(&mut self) {
        // Keep `listener_id` so the state query still answers (reaped
        // listeners read as CLOSED).
        self.listener.take().expect("no listener to close").close(&mut self.tcp).unwrap();
    }

    fn send_data(&mut self, data: &[u8]) {
        // Data moves only through the established-stage wrapper; the
        // wrapper survives into CLOSE-WAIT, where RFC 793 still allows
        // sends (only our peer has finished).
        let Some(FoxConn::Established(est)) = &self.conn else {
            panic!("send_data needs an established connection");
        };
        let n = est.send_data(&mut self.tcp, data).unwrap();
        assert_eq!(n, data.len(), "send buffer accepted the payload");
    }

    fn abort_conn(&mut self) {
        let id = self.conn_id.expect("no connection to abort");
        self.conn = None; // the typed wrapper is dead with the connection
        self.tcp.abort(id).unwrap();
    }

    fn abort_listener(&mut self) {
        let id = self.listener_id.expect("no listener to abort");
        self.listener = None;
        self.tcp.abort(id).unwrap();
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let progress = self.tcp.step(now);
        if self.conn_id.is_none() {
            // Adopt the listener's first child so its state is visible
            // and its terminal event lets the engine reap it.
            let child = self.events.borrow().iter().find_map(|e| match e {
                TcpEvent::NewConnection(c) => Some(*c),
                _ => None,
            });
            if let Some(c) = child {
                let ev = self.events.clone();
                let listener = self.listener.as_ref().expect("a child implies a listener");
                let sock =
                    listener.accept(&mut self.tcp, c, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
                self.conn_id = Some(c);
                self.conn = Some(FoxConn::Connecting(sock));
            }
        }
        // Promote the wrapper once the handshake completes, so closes
        // after establishment go through `EstablishedSocket`.
        if let Some(FoxConn::Connecting(_)) = self.conn {
            let Some(FoxConn::Connecting(sock)) = self.conn.take() else { unreachable!() };
            self.conn = Some(match sock.try_established(&self.tcp) {
                Ok(est) => FoxConn::Established(est),
                Err(still) => FoxConn::Connecting(still),
            });
        }
        progress
    }

    fn conn_state(&self) -> &'static str {
        match self.conn_id {
            None => "Closed",
            Some(c) => self.tcp.state_of(c).map_or("Closed", |s| s.name()),
        }
    }

    fn listener_state(&self) -> &'static str {
        match self.listener_id {
            None => "Closed",
            Some(l) => self.tcp.state_of(l).map_or("Closed", |s| s.name()),
        }
    }
}

// ----------------------------------------------------------------- xk

struct XkSut {
    tcp: XkTcp<TestLower, TestAux>,
    listener: Option<SockId>,
    conn: Option<SockId>,
}

impl XkSut {
    fn new(link: &LinkPair) -> XkSut {
        let tcp = XkTcp::new(link.endpoint(1), TestAux, (), XkConfig::default(), HostHandle::free());
        XkSut { tcp, listener: None, conn: None }
    }
}

impl Sut for XkSut {
    fn kind(&self) -> &'static str {
        "xk"
    }

    fn set_obs(&mut self, sink: EventSink) {
        self.tcp.set_obs(sink);
    }

    fn listen(&mut self) {
        self.listener = Some(self.tcp.listen(SUT_LISTEN_PORT).unwrap());
    }

    fn connect(&mut self) {
        self.conn = Some(self.tcp.connect(0, PEER_PORT, SUT_ACTIVE_PORT).unwrap());
    }

    fn close_conn(&mut self) {
        let c = self.conn.expect("no connection to close");
        self.tcp.close(c).unwrap();
    }

    fn close_listener(&mut self) {
        let l = self.listener.expect("no listener to close");
        self.tcp.close(l).unwrap();
    }

    fn send_data(&mut self, data: &[u8]) {
        let c = self.conn.expect("no connection to send on");
        let n = self.tcp.send(c, data).unwrap();
        assert_eq!(n, data.len(), "send buffer accepted the payload");
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        let progress = self.tcp.step(now);
        if let Some(l) = self.listener {
            while let Some(e) = self.tcp.poll_event(l) {
                if let XkEvent::Accepted(c) = e {
                    self.conn.get_or_insert(c);
                }
            }
        }
        progress
    }

    fn conn_state(&self) -> &'static str {
        match self.conn {
            None => "Closed",
            Some(c) => self.tcp.state_of(c).map_or("Closed", |s| s.name()),
        }
    }

    fn listener_state(&self) -> &'static str {
        match self.listener {
            None => "Closed",
            Some(l) => self.tcp.state_of(l).map_or("Closed", |s| s.name()),
        }
    }
}

// --------------------------------------------------------- the runner

/// The scripted peer plus the bookkeeping the script needs: its own
/// next sequence number, the SUT's (observed, not computed), and every
/// segment the SUT has transmitted.
struct Harness {
    sut: Box<dyn Sut>,
    lower: TestLower,
    rx: Rc<RefCell<VecDeque<TcpSegment>>>,
    now: VirtualTime,
    /// Next sequence number the peer will send.
    peer_nxt: u32,
    /// Everything the SUT has sent us, cumulatively acknowledged.
    sut_nxt: u32,
    /// Sequence number of the SUT's FIN, once seen.
    sut_fin_seq: Option<u32>,
    /// Where peer segments are addressed (learned from SUT traffic).
    dst_port: u16,
    /// Transmit log and the assertion cursor into it.
    got: Vec<TcpSegment>,
    cursor: usize,
}

impl Harness {
    fn new(link: &LinkPair, sut: Box<dyn Sut>) -> Harness {
        let rx: Rc<RefCell<VecDeque<TcpSegment>>> = Rc::new(RefCell::new(VecDeque::new()));
        let sink = rx.clone();
        let mut lower = link.endpoint(0);
        lower
            .open(
                (),
                Box::new(move |m| {
                    let seg = TcpSegment::decode_buf(&m.data, None).expect("undecodable segment");
                    sink.borrow_mut().push_back(seg);
                }),
            )
            .unwrap();
        Harness {
            sut,
            lower,
            rx,
            now: VirtualTime::ZERO,
            peer_nxt: PEER_ISS,
            sut_nxt: 0,
            sut_fin_seq: None,
            dst_port: SUT_LISTEN_PORT,
            got: Vec::new(),
            cursor: 0,
        }
    }

    /// Steps SUT and peer until neither makes progress.
    fn settle(&mut self) {
        for _ in 0..256 {
            let p = self.sut.step(self.now);
            self.lower.step(self.now);
            let mut fresh = false;
            loop {
                let seg = self.rx.borrow_mut().pop_front();
                match seg {
                    Some(seg) => {
                        fresh = true;
                        self.note(seg);
                    }
                    None => break,
                }
            }
            if !p && !fresh {
                return;
            }
        }
        panic!("[{}] did not settle", self.sut.kind());
    }

    /// Records a segment from the SUT; the link is in-order and
    /// loss-free, so cumulative state just follows the latest segment.
    fn note(&mut self, seg: TcpSegment) {
        self.dst_port = seg.header.src_port;
        self.sut_nxt = seg.header.seq.0.wrapping_add(seg.seq_len());
        if seg.header.flags.fin {
            self.sut_fin_seq = Some(seg.header.seq.0.wrapping_add(seg.payload.len() as u32));
        }
        self.got.push(seg);
    }

    /// Peer → SUT.
    fn send(&mut self, flags: TcpFlags, seq: u32, ack: u32) {
        let mut h = TcpHeader::new(PEER_PORT, self.dst_port);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = flags;
        h.window = 4096;
        let seg = TcpSegment { header: h, payload: foxbasis::buf::PacketBuf::new() };
        let buf = seg.encode_buf(None).unwrap();
        self.lower.send(0, 1, buf).unwrap();
        self.settle();
    }

    fn run(&mut self, name: &str, steps: &[Step]) {
        for (i, step) in steps.iter().enumerate() {
            let ctx = format!("[{} · {name} · step {i}: {step:?}]", self.sut.kind());
            match *step {
                Step::Listen => {
                    self.sut.listen();
                    self.settle();
                }
                Step::Connect => {
                    self.sut.connect();
                    self.settle();
                }
                Step::Close => {
                    self.sut.close_conn();
                    self.settle();
                }
                Step::CloseListener => {
                    self.sut.close_listener();
                    self.settle();
                }
                Step::Send => {
                    self.sut.send_data(b"ratchet");
                    self.settle();
                }
                Step::Abort => {
                    self.sut.abort_conn();
                    self.settle();
                }
                Step::AbortListener => {
                    self.sut.abort_listener();
                    self.settle();
                }
                Step::Syn => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    self.send(TcpFlags::SYN, seq, 0);
                }
                Step::SynAck => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_nxt;
                    self.send(TcpFlags::SYN_ACK, seq, ack);
                }
                Step::Ack => {
                    let (seq, ack) = (self.peer_nxt, self.sut_nxt);
                    self.send(TcpFlags::ACK, seq, ack);
                }
                Step::Fin => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_nxt;
                    self.send(TcpFlags::FIN_ACK, seq, ack);
                }
                Step::FinCrossing => {
                    let seq = self.peer_nxt;
                    self.peer_nxt = self.peer_nxt.wrapping_add(1);
                    let ack = self.sut_fin_seq.expect("no SUT FIN to cross");
                    self.send(TcpFlags::FIN_ACK, seq, ack);
                }
                Step::Rst => {
                    let (seq, ack) = (self.peer_nxt, self.sut_nxt);
                    self.send(TcpFlags::RST_ACK, seq, ack);
                }
                Step::RstInWindow(offset) => {
                    let (seq, ack) = (self.peer_nxt.wrapping_add(offset), self.sut_nxt);
                    self.send(TcpFlags::RST_ACK, seq, ack);
                }
                Step::Expect(want) => {
                    let raw = self.sut.conn_state();
                    let have = normalize(raw);
                    assert_eq!(have, want, "{ctx} connection is {raw}");
                }
                Step::ExpectListener(want) => {
                    let raw = self.sut.listener_state();
                    let have = normalize(raw);
                    assert_eq!(have, want, "{ctx} listener is {raw}");
                }
                Step::ExpectTx(pat) => {
                    let found = self.got[self.cursor..].iter().position(|seg| {
                        let f = &seg.header.flags;
                        match pat {
                            Pat::Syn => f.syn && !f.ack,
                            Pat::SynAck => f.syn && f.ack,
                            Pat::Fin => f.fin,
                            Pat::Rst => f.rst,
                            Pat::AckOnly => {
                                !f.syn
                                    && !f.fin
                                    && !f.rst
                                    && f.ack
                                    && seg.payload.is_empty()
                                    && seg.header.ack.0 == self.peer_nxt
                            }
                        }
                    });
                    match found {
                        Some(off) => self.cursor += off + 1,
                        None => panic!(
                            "{ctx} expected {pat:?}, transmit log since last match: {:?}",
                            self.got[self.cursor..]
                                .iter()
                                .map(|s| format!(
                                    "seq={} ack={} {}{}{}{}",
                                    s.header.seq.0,
                                    s.header.ack.0,
                                    if s.header.flags.syn { "S" } else { "" },
                                    if s.header.flags.ack { "A" } else { "" },
                                    if s.header.flags.fin { "F" } else { "" },
                                    if s.header.flags.rst { "R" } else { "" },
                                ))
                                .collect::<Vec<_>>()
                        ),
                    }
                }
                Step::Wait(ms) => {
                    let end = self.now + VirtualDuration::from_millis(ms);
                    while self.now < end {
                        self.now = (self.now + VirtualDuration::from_millis(1000)).min(end);
                        self.settle();
                    }
                }
            }
        }
    }
}

/// Which stacks a scenario runs on. Everything is [`Stacks::Both`]
/// except the abort rows: the monolithic baseline has no abort API
/// (the `@untested(xk: ...)` exemptions in `spec/tcp_fsm.txt`).
#[derive(Clone, Copy, Debug, PartialEq)]
enum Stacks {
    Both,
    FoxOnly,
}

/// One row of the conformance suite: a named step table and the stacks
/// it applies to. The registry form (rather than free-standing tests)
/// is what lets the coverage ratchet run *every* scenario and union the
/// observed transitions.
struct Scenario {
    name: &'static str,
    stacks: Stacks,
    steps: &'static [Step],
}

impl Scenario {
    fn runs_on(&self, stack: &str) -> bool {
        self.stacks == Stacks::Both || stack == "fox"
    }
}

/// Runs one scenario against one stack, returning the normalized
/// `(from, trigger, to)` transitions the stack emitted while it ran.
/// Normalized self-loops (e.g. a retransmission that re-enters the same
/// RFC state) are dropped: the spec graph has no self-edges.
fn run_on(stack: &'static str, sc: &Scenario) -> BTreeSet<(String, String, String)> {
    let link = LinkPair::new();
    let mut sut: Box<dyn Sut> = match stack {
        "fox" => Box::new(FoxSut::new(&link)),
        "xk" => Box::new(XkSut::new(&link)),
        other => panic!("unknown stack {other:?}"),
    };
    let sink = EventSink::recording(1 << 16);
    sut.set_obs(sink.clone());
    let mut h = Harness::new(&link, sut);
    h.run(sc.name, sc.steps);
    let mut out = BTreeSet::new();
    for ev in sink.events() {
        if let Event::StateTransition { from, to, cause } = ev.event {
            let (f, t) = (normalize(from), normalize(to));
            if f != t {
                out.insert((f.to_string(), cause.to_string(), t.to_string()));
            }
        }
    }
    assert_eq!(sink.dropped(), 0, "[{stack} · {}] event ring overflowed", sc.name);
    out
}

/// Runs a registered scenario against every stack it applies to.
fn conform(name: &str) {
    let sc = SCENARIOS.iter().find(|s| s.name == name).expect("scenario not in SCENARIOS");
    for stack in ["fox", "xk"] {
        if sc.runs_on(stack) {
            run_on(stack, sc);
        }
    }
}

// ------------------------------------------------------ the scenarios

use Step::*;

/// How long the peer stays silent to exhaust a retransmission budget.
/// The slower giver-upper is xk: 12 retransmits of a 1 s initial RTO
/// backing off ×2 to the 64 s cap fire at 1+2+...+64·6 ≈ 511 s; the
/// 13th fire finds the budget spent and closes. (fox's SYN states give
/// up after `syn_retries = 5` ≈ 63 s, its other states on the same
/// 12-retransmit budget.)
const EXHAUST_MS: u64 = 540_000;

/// 2MSL (60 s in both stacks' default configs), with margin.
const TWO_MSL_MS: u64 = 61_000;

static SCENARIOS: &[Scenario] = &[
    // ---- the RFC 793 §3.9 diagram walks --------------------------
    Scenario {
        name: "passive_open_then_remote_close",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            ExpectListener("LISTEN"),
            Syn,
            Expect("SYN-RECEIVED"),
            ExpectTx(Pat::SynAck),
            Ack,
            Expect("ESTABLISHED"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("CLOSE-WAIT"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("LAST-ACK"),
            Ack,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    },
    Scenario {
        name: "passive_open_then_local_close",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Expect("SYN-RECEIVED"),
            ExpectTx(Pat::SynAck),
            Ack,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Ack,
            Expect("FIN-WAIT-2"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("TIME-WAIT"),
            Wait(TWO_MSL_MS),
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "active_open_then_local_close",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            Expect("SYN-SENT"),
            SynAck,
            ExpectTx(Pat::AckOnly),
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Ack,
            Expect("FIN-WAIT-2"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("TIME-WAIT"),
            Wait(TWO_MSL_MS),
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "simultaneous_open",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            Expect("SYN-SENT"),
            Syn,
            ExpectTx(Pat::SynAck),
            Expect("SYN-RECEIVED"),
            Ack,
            Expect("ESTABLISHED"),
        ],
    },
    Scenario {
        name: "simultaneous_close",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            FinCrossing,
            ExpectTx(Pat::AckOnly),
            Expect("CLOSING"),
            Ack,
            Expect("TIME-WAIT"),
            Wait(TWO_MSL_MS),
            Expect("CLOSED"),
        ],
    },
    // ---- FIN variants the diagram quotes but the walks miss ------
    Scenario {
        // The handshake-completing FIN+ACK: SYN-RECEIVED jumps straight
        // to CLOSE-WAIT (RFC 793 p. 75 processes ACK, then FIN, in one
        // segment).
        name: "fin_completes_handshake_in_syn_received",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Expect("SYN-RECEIVED"), Fin, Expect("CLOSE-WAIT")],
    },
    Scenario {
        // A FIN that also acknowledges our FIN: FIN-WAIT-1 jumps
        // straight to TIME-WAIT, skipping FIN-WAIT-2.
        name: "fin_acking_our_fin_skips_fin_wait_2",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Fin,
            ExpectTx(Pat::AckOnly),
            Expect("TIME-WAIT"),
        ],
    },
    // ---- user closes from every closeable state ------------------
    Scenario {
        name: "close_in_listen",
        stacks: Stacks::Both,
        steps: &[Listen, ExpectListener("LISTEN"), CloseListener, ExpectListener("CLOSED")],
    },
    Scenario {
        name: "close_in_syn_sent",
        stacks: Stacks::Both,
        steps: &[Connect, ExpectTx(Pat::Syn), Expect("SYN-SENT"), Close, Expect("CLOSED")],
    },
    Scenario {
        // "Queue this until all preceding SENDs have been segmentized,
        // then form a FIN": closing a half-open passive child enters
        // FIN-WAIT-1 even though the handshake never completed.
        name: "close_in_syn_received",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Expect("SYN-RECEIVED"), Close, Expect("FIN-WAIT-1")],
    },
    // ---- RST handling ---------------------------------------------
    Scenario {
        name: "syn_to_closed_port_draws_rst",
        stacks: Stacks::Both,
        steps: &[Syn, ExpectTx(Pat::Rst)],
    },
    Scenario {
        name: "rst_in_syn_sent",
        stacks: Stacks::Both,
        steps: &[Connect, ExpectTx(Pat::Syn), Expect("SYN-SENT"), Rst, Expect("CLOSED")],
    },
    Scenario {
        name: "rst_in_syn_received",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            ExpectTx(Pat::SynAck),
            Expect("SYN-RECEIVED"),
            Rst,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    },
    Scenario {
        name: "rst_in_established",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Expect("ESTABLISHED"), Rst, Expect("CLOSED"), ExpectListener("LISTEN")],
    },
    Scenario {
        name: "in_window_rst_challenges_instead_of_aborting",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Expect("ESTABLISHED"),
            RstInWindow(100),
            Expect("ESTABLISHED"),
            ExpectTx(Pat::AckOnly),
            Rst,
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    },
    Scenario {
        name: "rst_one_byte_past_rcv_nxt_still_challenges",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Expect("ESTABLISHED"),
            RstInWindow(1),
            Expect("ESTABLISHED"),
            ExpectTx(Pat::AckOnly),
        ],
    },
    Scenario {
        name: "rst_in_fin_wait_1",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Rst,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "rst_in_fin_wait_2",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Expect("ESTABLISHED"),
            Close,
            ExpectTx(Pat::Fin),
            Ack,
            Expect("FIN-WAIT-2"),
            Rst,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "rst_in_close_wait",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Fin, Expect("CLOSE-WAIT"), Rst, Expect("CLOSED")],
    },
    Scenario {
        name: "rst_in_closing",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            FinCrossing,
            Expect("CLOSING"),
            Rst,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "rst_in_last_ack",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Fin,
            Expect("CLOSE-WAIT"),
            Close,
            Expect("LAST-ACK"),
            Rst,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "rst_in_time_wait",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Close,
            ExpectTx(Pat::Fin),
            Ack,
            Fin,
            Expect("TIME-WAIT"),
            Rst,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "rst_in_listen_is_ignored",
        stacks: Stacks::Both,
        steps: &[Listen, Rst, ExpectListener("LISTEN")],
    },
    // ---- in-window SYN is an error in every synchronized state ----
    // "If the SYN is in the window it is an error, send a reset ...
    // and return." (RFC 793 p. 71.)
    Scenario {
        name: "syn_in_syn_received_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Expect("SYN-RECEIVED"), Syn, ExpectTx(Pat::Rst), Expect("CLOSED")],
    },
    Scenario {
        name: "syn_in_established_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Expect("ESTABLISHED"), Syn, ExpectTx(Pat::Rst), Expect("CLOSED")],
    },
    Scenario {
        name: "syn_in_fin_wait_1_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Close, ExpectTx(Pat::Fin), Expect("FIN-WAIT-1"), Syn, Expect("CLOSED")],
    },
    Scenario {
        name: "syn_in_fin_wait_2_resets",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Close,
            ExpectTx(Pat::Fin),
            Ack,
            Expect("FIN-WAIT-2"),
            Syn,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "syn_in_close_wait_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Fin, Expect("CLOSE-WAIT"), Syn, Expect("CLOSED")],
    },
    Scenario {
        name: "syn_in_closing_resets",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            FinCrossing,
            Expect("CLOSING"),
            Syn,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "syn_in_last_ack_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Fin, Close, Expect("LAST-ACK"), Syn, Expect("CLOSED")],
    },
    Scenario {
        name: "syn_in_time_wait_resets",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Close, Ack, Fin, Expect("TIME-WAIT"), Syn, Expect("CLOSED")],
    },
    // ---- retransmission budgets give up (the paper's user timeout) --
    Scenario {
        name: "handshake_times_out_in_syn_sent",
        stacks: Stacks::Both,
        steps: &[Connect, ExpectTx(Pat::Syn), Expect("SYN-SENT"), Wait(EXHAUST_MS), Expect("CLOSED")],
    },
    Scenario {
        // The embryonic child dies when its SYN-ACK is never answered;
        // the listener is untouched.
        name: "syn_ack_retransmits_exhaust_in_syn_received",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Expect("SYN-RECEIVED"),
            Wait(EXHAUST_MS),
            Expect("CLOSED"),
            ExpectListener("LISTEN"),
        ],
    },
    Scenario {
        name: "unacked_data_times_out_in_established",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Expect("ESTABLISHED"), Send, Wait(EXHAUST_MS), Expect("CLOSED")],
    },
    Scenario {
        name: "unacked_fin_times_out_in_fin_wait_1",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Close,
            ExpectTx(Pat::Fin),
            Expect("FIN-WAIT-1"),
            Wait(EXHAUST_MS),
            Expect("CLOSED"),
        ],
    },
    Scenario {
        // RFC 793 still allows SENDs in CLOSE-WAIT; if the peer (which
        // already finished its side) never acknowledges them, the
        // budget runs out there too.
        name: "unacked_data_times_out_in_close_wait",
        stacks: Stacks::Both,
        steps: &[Listen, Syn, Ack, Fin, Expect("CLOSE-WAIT"), Send, Wait(EXHAUST_MS), Expect("CLOSED")],
    },
    Scenario {
        name: "unacked_fin_times_out_in_closing",
        stacks: Stacks::Both,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            FinCrossing,
            Expect("CLOSING"),
            Wait(EXHAUST_MS),
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "unacked_fin_times_out_in_last_ack",
        stacks: Stacks::Both,
        steps: &[
            Listen,
            Syn,
            Ack,
            Fin,
            Expect("CLOSE-WAIT"),
            Close,
            Expect("LAST-ACK"),
            Wait(EXHAUST_MS),
            Expect("CLOSED"),
        ],
    },
    // ---- ABORT from every state (fox only: xk has no abort API) ----
    Scenario {
        name: "abort_in_listen",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, ExpectListener("LISTEN"), AbortListener, ExpectListener("CLOSED")],
    },
    Scenario {
        name: "abort_in_syn_sent",
        stacks: Stacks::FoxOnly,
        steps: &[Connect, ExpectTx(Pat::Syn), Expect("SYN-SENT"), Abort, Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_syn_received",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Expect("SYN-RECEIVED"), Abort, Expect("CLOSED"), ExpectListener("LISTEN")],
    },
    Scenario {
        // A synchronized abort puts an RST on the wire (RFC 793 p. 62).
        name: "abort_in_established",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Expect("ESTABLISHED"), Abort, ExpectTx(Pat::Rst), Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_fin_wait_1",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Close, Expect("FIN-WAIT-1"), Abort, Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_fin_wait_2",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Close, Ack, Expect("FIN-WAIT-2"), Abort, Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_close_wait",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Fin, Expect("CLOSE-WAIT"), Abort, Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_closing",
        stacks: Stacks::FoxOnly,
        steps: &[
            Connect,
            ExpectTx(Pat::Syn),
            SynAck,
            Close,
            ExpectTx(Pat::Fin),
            FinCrossing,
            Expect("CLOSING"),
            Abort,
            Expect("CLOSED"),
        ],
    },
    Scenario {
        name: "abort_in_last_ack",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Fin, Close, Expect("LAST-ACK"), Abort, Expect("CLOSED")],
    },
    Scenario {
        name: "abort_in_time_wait",
        stacks: Stacks::FoxOnly,
        steps: &[Listen, Syn, Ack, Close, Ack, Fin, Expect("TIME-WAIT"), Abort, Expect("CLOSED")],
    },
];

// ------------------------------------------------- per-scenario tests

/// RFC 793 §3.9, passive side: LISTEN → SYN-RECEIVED → ESTABLISHED,
/// then the peer closes first: CLOSE-WAIT → LAST-ACK → CLOSED. The
/// listener survives its child.
#[test]
fn passive_open_then_remote_close() {
    conform("passive_open_then_remote_close");
}

/// The quoted chain of the state diagram: a passively accepted child
/// closes first and walks LISTEN → SYN-RECEIVED → ESTABLISHED →
/// FIN-WAIT-1 → FIN-WAIT-2 → TIME-WAIT → CLOSED.
#[test]
fn passive_open_then_local_close() {
    conform("passive_open_then_local_close");
}

/// Active side of the same walk: CLOSED → SYN-SENT → ESTABLISHED,
/// then local close through TIME-WAIT.
#[test]
fn active_open_then_local_close() {
    conform("active_open_then_local_close");
}

/// Simultaneous open: SYN-SENT → SYN-RECEIVED when a SYN (not a
/// SYN-ACK) answers ours.
#[test]
fn simultaneous_open() {
    conform("simultaneous_open");
}

/// Simultaneous close: FIN-WAIT-1 → CLOSING → TIME-WAIT when the FINs
/// cross on the wire.
#[test]
fn simultaneous_close() {
    conform("simultaneous_close");
}

/// An ACK-bearing FIN against SYN-RECEIVED completes the handshake and
/// half-closes in one segment: SYN-RECEIVED → CLOSE-WAIT.
#[test]
fn fin_completes_handshake_in_syn_received() {
    conform("fin_completes_handshake_in_syn_received");
}

/// A FIN that also acknowledges our FIN skips FIN-WAIT-2:
/// FIN-WAIT-1 → TIME-WAIT.
#[test]
fn fin_acking_our_fin_skips_fin_wait_2() {
    conform("fin_acking_our_fin_skips_fin_wait_2");
}

/// CLOSE in LISTEN tears the listener down.
#[test]
fn close_in_listen() {
    conform("close_in_listen");
}

/// CLOSE in SYN-SENT deletes the embryonic connection without a FIN.
#[test]
fn close_in_syn_sent() {
    conform("close_in_syn_sent");
}

/// CLOSE in SYN-RECEIVED queues a FIN: SYN-RECEIVED → FIN-WAIT-1.
#[test]
fn close_in_syn_received() {
    conform("close_in_syn_received");
}

/// A SYN to a port nobody listens on draws an RST (RFC 793 p. 65).
#[test]
fn syn_to_closed_port_draws_rst() {
    conform("syn_to_closed_port_draws_rst");
}

/// An acceptable RST in SYN-SENT kills the connection attempt.
#[test]
fn rst_in_syn_sent() {
    conform("rst_in_syn_sent");
}

/// An RST against a half-open passive child reaps the child and leaves
/// the listener in LISTEN.
#[test]
fn rst_in_syn_received() {
    conform("rst_in_syn_received");
}

/// An exact-rcv_nxt RST in ESTABLISHED aborts the connection.
#[test]
fn rst_in_established() {
    conform("rst_in_established");
}

/// RFC 5961 §3.2: an in-window RST that is not at exactly rcv_nxt
/// draws a challenge ACK instead of aborting.
#[test]
fn in_window_rst_challenges_instead_of_aborting() {
    conform("in_window_rst_challenges_instead_of_aborting");
}

/// The boundary case: one byte past rcv_nxt is still "in window,
/// not exact" and must be challenged.
#[test]
fn rst_one_byte_past_rcv_nxt_still_challenges() {
    conform("rst_one_byte_past_rcv_nxt_still_challenges");
}

/// An RST mid-close (FIN-WAIT-1) aborts the close handshake.
#[test]
fn rst_in_fin_wait_1() {
    conform("rst_in_fin_wait_1");
}

/// An RST in FIN-WAIT-2 aborts the half-closed connection.
#[test]
fn rst_in_fin_wait_2() {
    conform("rst_in_fin_wait_2");
}

/// An RST in CLOSE-WAIT aborts instead of finishing the close.
#[test]
fn rst_in_close_wait() {
    conform("rst_in_close_wait");
}

/// An RST in CLOSING aborts the simultaneous close.
#[test]
fn rst_in_closing() {
    conform("rst_in_closing");
}

/// An RST in LAST-ACK aborts instead of delivering the final ACK.
#[test]
fn rst_in_last_ack() {
    conform("rst_in_last_ack");
}

/// An RST in TIME-WAIT releases the port before 2MSL expires.
#[test]
fn rst_in_time_wait() {
    conform("rst_in_time_wait");
}

/// A listener ignores stray RSTs (RFC 793 p. 65, LISTEN: "An incoming
/// RST should be ignored").
#[test]
fn rst_in_listen_is_ignored() {
    conform("rst_in_listen_is_ignored");
}

/// An in-window SYN in SYN-RECEIVED is an error: reset the connection.
#[test]
fn syn_in_syn_received_resets() {
    conform("syn_in_syn_received_resets");
}

/// An in-window SYN in ESTABLISHED is an error: reset the connection.
#[test]
fn syn_in_established_resets() {
    conform("syn_in_established_resets");
}

/// An in-window SYN in FIN-WAIT-1 is an error: reset the connection.
#[test]
fn syn_in_fin_wait_1_resets() {
    conform("syn_in_fin_wait_1_resets");
}

/// An in-window SYN in FIN-WAIT-2 is an error: reset the connection.
#[test]
fn syn_in_fin_wait_2_resets() {
    conform("syn_in_fin_wait_2_resets");
}

/// An in-window SYN in CLOSE-WAIT is an error: reset the connection.
#[test]
fn syn_in_close_wait_resets() {
    conform("syn_in_close_wait_resets");
}

/// An in-window SYN in CLOSING is an error: reset the connection.
#[test]
fn syn_in_closing_resets() {
    conform("syn_in_closing_resets");
}

/// An in-window SYN in LAST-ACK is an error: reset the connection.
#[test]
fn syn_in_last_ack_resets() {
    conform("syn_in_last_ack_resets");
}

/// An in-window SYN in TIME-WAIT is an error: reset the connection.
#[test]
fn syn_in_time_wait_resets() {
    conform("syn_in_time_wait_resets");
}

/// A SYN nobody answers exhausts its retransmission budget:
/// SYN-SENT → CLOSED by timer.
#[test]
fn handshake_times_out_in_syn_sent() {
    conform("handshake_times_out_in_syn_sent");
}

/// A SYN-ACK nobody answers exhausts its budget and reaps the child:
/// SYN-RECEIVED → CLOSED by timer, listener untouched.
#[test]
fn syn_ack_retransmits_exhaust_in_syn_received() {
    conform("syn_ack_retransmits_exhaust_in_syn_received");
}

/// Data the peer never acknowledges exhausts the budget:
/// ESTABLISHED → CLOSED by timer.
#[test]
fn unacked_data_times_out_in_established() {
    conform("unacked_data_times_out_in_established");
}

/// A FIN the peer never acknowledges exhausts the budget:
/// FIN-WAIT-1 → CLOSED by timer.
#[test]
fn unacked_fin_times_out_in_fin_wait_1() {
    conform("unacked_fin_times_out_in_fin_wait_1");
}

/// Data sent in CLOSE-WAIT that is never acknowledged exhausts the
/// budget: CLOSE-WAIT → CLOSED by timer.
#[test]
fn unacked_data_times_out_in_close_wait() {
    conform("unacked_data_times_out_in_close_wait");
}

/// A crossing FIN whose ACK never arrives exhausts the budget:
/// CLOSING → CLOSED by timer.
#[test]
fn unacked_fin_times_out_in_closing() {
    conform("unacked_fin_times_out_in_closing");
}

/// The final ACK never arrives: LAST-ACK → CLOSED by timer.
#[test]
fn unacked_fin_times_out_in_last_ack() {
    conform("unacked_fin_times_out_in_last_ack");
}

/// ABORT in LISTEN deletes the listener (fox only).
#[test]
fn abort_in_listen() {
    conform("abort_in_listen");
}

/// ABORT in SYN-SENT deletes the TCB without sending anything.
#[test]
fn abort_in_syn_sent() {
    conform("abort_in_syn_sent");
}

/// ABORT in SYN-RECEIVED reaps the child; the listener survives.
#[test]
fn abort_in_syn_received() {
    conform("abort_in_syn_received");
}

/// ABORT in ESTABLISHED puts an RST on the wire (RFC 793 p. 62).
#[test]
fn abort_in_established() {
    conform("abort_in_established");
}

/// ABORT in FIN-WAIT-1 abandons the close handshake.
#[test]
fn abort_in_fin_wait_1() {
    conform("abort_in_fin_wait_1");
}

/// ABORT in FIN-WAIT-2 abandons the half-closed connection.
#[test]
fn abort_in_fin_wait_2() {
    conform("abort_in_fin_wait_2");
}

/// ABORT in CLOSE-WAIT abandons the close instead of finishing it.
#[test]
fn abort_in_close_wait() {
    conform("abort_in_close_wait");
}

/// ABORT in CLOSING abandons the simultaneous close.
#[test]
fn abort_in_closing() {
    conform("abort_in_closing");
}

/// ABORT in LAST-ACK abandons the wait for the final ACK.
#[test]
fn abort_in_last_ack() {
    conform("abort_in_last_ack");
}

/// ABORT in TIME-WAIT releases the port before 2MSL expires.
#[test]
fn abort_in_time_wait() {
    conform("abort_in_time_wait");
}

// ------------------------------------------------- the coverage ratchet

/// Every transition the extracted spec (`spec/tcp_fsm.txt`) admits must
/// be *witnessed at runtime* by some scenario above, per stack — and no
/// scenario may witness a transition the spec does not admit. Edges a
/// stack cannot reach are exempted in the spec file itself with
/// `@untested(stack: reason)`, so skipping coverage is a reviewed spec
/// edit, not a silent gap. New spec edges (from new code paths in
/// `control/`) fail this test until a scenario exercises them: the
/// ratchet only tightens.
#[test]
fn runtime_transitions_cover_the_extracted_fsm_spec() {
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../spec/tcp_fsm.txt");
    let text = std::fs::read_to_string(spec_path).expect("read spec/tcp_fsm.txt");
    let spec = foxlint::fsm::parse_spec(&text).expect("parse spec/tcp_fsm.txt");

    let mut failures = Vec::new();
    for stack in ["fox", "xk"] {
        let mut seen: BTreeSet<(String, String, String)> = BTreeSet::new();
        for sc in SCENARIOS {
            if sc.runs_on(stack) {
                seen.extend(run_on(stack, sc));
            }
        }
        // Nothing observed that the spec does not admit.
        for (from, trigger, to) in &seen {
            let admitted = spec.iter().any(|e| e.from == *from && e.to == *to && e.trigger == *trigger);
            if !admitted {
                failures.push(format!(
                    "[{stack}] observed transition outside the spec: \
                     {from} -> {to} : {trigger}"
                ));
            }
        }
        // Everything the spec admits (minus exemptions) observed.
        let testable: Vec<_> = spec.iter().filter(|e| !e.untested_for(stack)).collect();
        let mut covered = 0usize;
        for e in &testable {
            if seen.contains(&(e.from.clone(), e.trigger.clone(), e.to.clone())) {
                covered += 1;
            } else {
                failures.push(format!(
                    "[{stack}] spec edge never witnessed at runtime: \
                     {} -> {} : {} (spec line {})",
                    e.from, e.to, e.trigger, e.line
                ));
            }
        }
        println!("[{stack}] fsm coverage: {covered}/{} spec edges", testable.len());
    }
    assert!(failures.is_empty(), "fsm coverage ratchet failed:\n{}", failures.join("\n"));
}

// ------------------------------------------------- SYN-flood recovery

/// A raw peer that floods from many source ports and watches which of
/// them the listener answers.
struct FloodPeer {
    lower: TestLower,
    rx: Rc<RefCell<VecDeque<TcpSegment>>>,
}

impl FloodPeer {
    fn new(link: &LinkPair) -> FloodPeer {
        let rx: Rc<RefCell<VecDeque<TcpSegment>>> = Rc::new(RefCell::new(VecDeque::new()));
        let sink = rx.clone();
        let mut lower = link.endpoint(0);
        lower
            .open(
                (),
                Box::new(move |m| {
                    let seg = TcpSegment::decode_buf(&m.data, None).expect("undecodable segment");
                    sink.borrow_mut().push_back(seg);
                }),
            )
            .unwrap();
        FloodPeer { lower, rx }
    }

    fn send(&mut self, src_port: u16, flags: TcpFlags, seq: u32, ack: u32) {
        let mut h = TcpHeader::new(src_port, SUT_LISTEN_PORT);
        h.seq = Seq(seq);
        h.ack = Seq(ack);
        h.flags = flags;
        h.window = 4096;
        let seg = TcpSegment { header: h, payload: foxbasis::buf::PacketBuf::new() };
        self.lower.send(0, 1, seg.encode_buf(None).unwrap()).unwrap();
    }

    /// Drains received segments, returning `(dst_port, segment)` pairs.
    fn drain(&mut self, now: VirtualTime) -> Vec<(u16, TcpSegment)> {
        self.lower.step(now);
        let mut out = Vec::new();
        loop {
            let seg = self.rx.borrow_mut().pop_front();
            match seg {
                Some(s) => out.push((s.header.dst_port, s)),
                None => break,
            }
        }
        out
    }
}

/// Shared script: flood a backlog-2 listener with 5 SYNs, check only 2
/// are answered, drain the accept queue by finishing those handshakes,
/// then retry one of the dropped SYNs and see it admitted — the
/// bounded queue recovers instead of wedging.
///
/// `step` drives the stack; `drainq` performs whatever the stack needs
/// for an established child to leave the accept queue (fox: adopt it
/// with a handler; xk: nothing, SYN-RECEIVED ends at establishment).
fn syn_flood_recovers(
    kind: &str,
    step: &mut dyn FnMut(VirtualTime) -> bool,
    drainq: &mut dyn FnMut(),
    peer: &mut FloodPeer,
) -> Vec<u16> {
    let now = VirtualTime::ZERO;
    let mut settle = |peer: &mut FloodPeer| {
        let mut seen = Vec::new();
        for _ in 0..256 {
            let p = step(now);
            let fresh = peer.drain(now);
            if !p && fresh.is_empty() {
                return seen;
            }
            seen.extend(fresh);
        }
        panic!("[{kind}] did not settle");
    };

    // Five clients, one burst. Backlog is 2.
    for port in [9001u16, 9002, 9003, 9004, 9005] {
        peer.send(port, TcpFlags::SYN, 1000, 0);
    }
    let replies = settle(peer);
    let answered: Vec<u16> =
        replies.iter().filter(|(_, s)| s.header.flags.syn && s.header.flags.ack).map(|(p, _)| *p).collect();
    assert_eq!(answered, vec![9001, 9002], "[{kind}] only the backlog is admitted");

    // Finish the admitted handshakes and take the children off the
    // accept queue.
    for (port, seg) in replies.iter().filter(|(_, s)| s.header.flags.syn && s.header.flags.ack) {
        peer.send(*port, TcpFlags::ACK, 1001, seg.header.seq.0.wrapping_add(1));
    }
    settle(peer);
    drainq();
    settle(peer);

    // One of the silently dropped clients retransmits its SYN; the
    // drained queue now has room.
    peer.send(9004, TcpFlags::SYN, 1000, 0);
    let replies = settle(peer);
    assert!(
        replies.iter().any(|(p, s)| *p == 9004 && s.header.flags.syn && s.header.flags.ack),
        "[{kind}] retransmitted SYN is admitted after the queue drains"
    );
    answered
}

#[test]
fn fox_syn_flood_drops_beyond_backlog_and_recovers() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let cfg = TcpConfig { backlog: 2, ..TcpConfig::default() };
    let tcp: Rc<RefCell<Tcp<TestLower, TestAux>>> = Rc::new(RefCell::new(Tcp::new(
        link.endpoint(1),
        TestAux,
        (),
        cfg,
        sched.clone(),
        HostHandle::free(),
    )));
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener =
        tcp.borrow_mut().listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);

    let t = tcp.clone();
    let mut step = move |now: VirtualTime| t.borrow_mut().step(now);
    let t = tcp.clone();
    let mut drainq = move || {
        // Accepting a child (installing its handler) takes it off the
        // listener's queue.
        let children: Vec<TcpConnId> = events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                TcpEvent::NewConnection(c) => Some(*c),
                _ => None,
            })
            .collect();
        for c in children {
            let _ = listener.accept(&mut t.borrow_mut(), c, Box::new(|_| {}));
        }
    };
    syn_flood_recovers("fox", &mut step, &mut drainq, &mut peer);
    assert_eq!(tcp.borrow().stats().syns_dropped, 3, "three of the five SYNs were shed");
}

#[test]
fn xk_syn_flood_drops_beyond_backlog_and_recovers() {
    let link = LinkPair::new();
    let cfg = XkConfig { backlog: 2, ..XkConfig::default() };
    let tcp: Rc<RefCell<XkTcp<TestLower, TestAux>>> =
        Rc::new(RefCell::new(XkTcp::new(link.endpoint(1), TestAux, (), cfg, HostHandle::free())));
    tcp.borrow_mut().listen(SUT_LISTEN_PORT).unwrap();
    let mut peer = FloodPeer::new(&link);

    let t = tcp.clone();
    let mut step = move |now: VirtualTime| t.borrow_mut().step(now);
    // xk's embryonic count only covers SYN-RECEIVED sockets, so the
    // completed handshakes already drained the queue.
    let mut drainq = || {};
    syn_flood_recovers("xk", &mut step, &mut drainq, &mut peer);
}

// ------------------------------------------- typestate lifecycle (fox)

/// Steps a fox stack and a raw peer until neither makes progress,
/// returning every segment the stack transmitted meanwhile.
fn settle_fox(
    tcp: &mut Tcp<TestLower, TestAux>,
    peer: &mut FloodPeer,
    now: VirtualTime,
) -> Vec<(u16, TcpSegment)> {
    let mut seen = Vec::new();
    for _ in 0..256 {
        let p = tcp.step(now);
        let fresh = peer.drain(now);
        if !p && fresh.is_empty() {
            return seen;
        }
        seen.extend(fresh);
    }
    panic!("[fox] did not settle");
}

/// The positive half of the typestate story: a connection driven end to
/// end — listen → accept → try_established → send_data → close —
/// touching the engine only through the typed wrappers. (The negative
/// half lives in `foxtcp::socket`'s `compile_fail` doctests.)
#[test]
fn fox_typed_lifecycle_listen_accept_send_close() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let mut tcp = Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched, HostHandle::free());
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener = tcp.listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    // Three-way handshake, scripted by the raw peer.
    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);

    // Adopt the announced child through the typed accept; the
    // handshake is already complete, so it promotes immediately.
    let child = events
        .borrow()
        .iter()
        .find_map(|e| match e {
            TcpEvent::NewConnection(c) => Some(*c),
            _ => None,
        })
        .expect("listener announced its child");
    let conn = listener.accept(&mut tcp, child, Box::new(|_| {})).unwrap();
    let est = conn.try_established(&tcp).expect("handshake has completed");

    // Data moves only through the established stage.
    assert_eq!(est.send_data(&mut tcp, b"typed").unwrap(), 5);
    assert!(est.send_capacity(&tcp).unwrap() > 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    assert!(replies.iter().any(|(_, s)| s.payload.len() == 5), "the payload went out");
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1 + 5));
    settle_fox(&mut tcp, &mut peer, now);

    // Close consumes the socket and puts a FIN on the wire.
    est.close(&mut tcp).unwrap();
    let replies = settle_fox(&mut tcp, &mut peer, now);
    assert!(replies.iter().any(|(_, s)| s.header.flags.fin), "FIN transmitted");
    assert_eq!(tcp.state_of(child).expect("still tracked").name(), "FinWait1");
    listener.close(&mut tcp).unwrap();
}

// --------------------------------------------- post-reap observability

/// Once fox reaps a closed connection, `state_of` and `metrics_of`
/// answer `None` — never a stale snapshot of the dead connection.
#[test]
fn fox_reaped_connection_reads_none() {
    let link = LinkPair::new();
    let sched = SchedHandle::new();
    let mut tcp = Tcp::new(link.endpoint(1), TestAux, (), TcpConfig::default(), sched, HostHandle::free());
    let events: Rc<RefCell<Vec<TcpEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let ev = events.clone();
    let listener = tcp.listen(SUT_LISTEN_PORT, Box::new(move |e| ev.borrow_mut().push(e))).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle_fox(&mut tcp, &mut peer, now);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);

    let child = events
        .borrow()
        .iter()
        .find_map(|e| match e {
            TcpEvent::NewConnection(c) => Some(*c),
            _ => None,
        })
        .expect("listener announced its child");
    let conn = listener.accept(&mut tcp, child, Box::new(|_| {})).unwrap();
    let est = conn.try_established(&tcp).expect("handshake has completed");
    assert!(tcp.state_of(child).is_some(), "live connection is observable");
    assert!(tcp.metrics_of(child).is_some());

    // Passive close: peer's FIN, our FIN, peer's final ACK. LAST-ACK
    // collapses straight to CLOSED, so the reaper takes the connection
    // as soon as its Closed event has been delivered.
    peer.send(PEER_PORT, TcpFlags::FIN_ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle_fox(&mut tcp, &mut peer, now);
    est.close(&mut tcp).unwrap();
    settle_fox(&mut tcp, &mut peer, now);
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 2, sut_iss.wrapping_add(2));
    settle_fox(&mut tcp, &mut peer, now);

    assert_eq!(tcp.state_of(child), None, "reaped: no stale state");
    assert!(tcp.metrics_of(child).is_none(), "reaped: no stale metrics");
    assert!(tcp.state_of(listener.id()).is_some(), "the listener survives its child");
    assert!(tcp.send_capacity(child).is_err(), "reaped: capacity is an error, not 0");
}

/// The xk baseline keeps the same post-reap contract: an accepted child
/// that finishes its close and drains its events vanishes from
/// `state_of`/`metrics_of` instead of lingering as a stale entry.
/// (Only children are reaped — the listener itself stays.)
#[test]
fn xk_reaped_child_reads_none() {
    let link = LinkPair::new();
    let mut tcp = XkTcp::new(link.endpoint(1), TestAux, (), XkConfig::default(), HostHandle::free());
    let listener = tcp.listen(SUT_LISTEN_PORT).unwrap();
    let mut peer = FloodPeer::new(&link);
    let now = VirtualTime::ZERO;

    let settle = |tcp: &mut XkTcp<TestLower, TestAux>, peer: &mut FloodPeer| {
        let mut seen: Vec<(u16, TcpSegment)> = Vec::new();
        for _ in 0..256 {
            let p = tcp.step(now);
            let fresh = peer.drain(now);
            if !p && fresh.is_empty() {
                return seen;
            }
            seen.extend(fresh);
        }
        panic!("[xk] did not settle");
    };

    peer.send(PEER_PORT, TcpFlags::SYN, PEER_ISS, 0);
    let replies = settle(&mut tcp, &mut peer);
    let sut_iss = replies
        .iter()
        .find(|(_, s)| s.header.flags.syn && s.header.flags.ack)
        .expect("SYN-ACK answers the SYN")
        .1
        .header
        .seq
        .0;
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle(&mut tcp, &mut peer);

    let mut child = None;
    while let Some(e) = tcp.poll_event(listener) {
        if let XkEvent::Accepted(c) = e {
            child = Some(c);
        }
    }
    let child = child.expect("listener accepted its child");
    assert!(tcp.state_of(child).is_some(), "live child is observable");
    assert!(tcp.metrics_of(child).is_some());

    // Passive close of the child.
    peer.send(PEER_PORT, TcpFlags::FIN_ACK, PEER_ISS + 1, sut_iss.wrapping_add(1));
    settle(&mut tcp, &mut peer);
    tcp.close(child).unwrap();
    settle(&mut tcp, &mut peer);
    peer.send(PEER_PORT, TcpFlags::ACK, PEER_ISS + 2, sut_iss.wrapping_add(2));
    settle(&mut tcp, &mut peer);

    // xk reaps only once the user has drained the child's events.
    while tcp.poll_event(child).is_some() {}
    tcp.step(now);

    assert_eq!(tcp.state_of(child), None, "reaped: no stale state");
    assert!(tcp.metrics_of(child).is_none(), "reaped: no stale metrics");
    assert!(tcp.state_of(listener).is_some(), "the listener survives its child");
}
