//! Property-based adversarial tests: arbitrary segments against the
//! Receive module, and whole-engine transfers over randomly failing
//! links. The quasi-synchronous design's promise is determinism and
//! testability; these properties pin down the safety side — no input
//! sequence may panic the stack or corrupt its invariants.

use fox_scheduler::SchedHandle;
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::receive;
use foxtcp::tcb::{TcpState, MAX_OUT_OF_ORDER};
use foxtcp::testlink::{LinkPair, TestAux};
use foxtcp::{ConnCore, Tcp, TcpConfig, TcpConnId, TcpEvent, TcpPattern};
use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
use proptest::prelude::*;
use simnet::HostHandle;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone)]
struct ArbSegment {
    seq: u32,
    ack: u32,
    flags: u8,
    window: u16,
    payload_len: usize,
}

fn arb_segment() -> impl Strategy<Value = ArbSegment> {
    (any::<u32>(), any::<u32>(), 0u8..64, any::<u16>(), 0usize..2000).prop_map(
        |(seq, ack, flags, window, payload_len)| ArbSegment { seq, ack, flags, window, payload_len },
    )
}

/// Segments biased toward the connection's live window, where the
/// interesting branches are.
fn biased_segment(base_seq: u32, base_ack: u32) -> impl Strategy<Value = ArbSegment> {
    (-20_000i64..20_000, -20_000i64..20_000, 0u8..64, any::<u16>(), 0usize..1600).prop_map(
        move |(dseq, dack, flags, window, payload_len)| ArbSegment {
            seq: (base_seq as i64).wrapping_add(dseq) as u32,
            ack: (base_ack as i64).wrapping_add(dack) as u32,
            flags,
            window,
            payload_len,
        },
    )
}

fn to_segment(a: &ArbSegment) -> TcpSegment {
    let mut h = TcpHeader::new(4000, 80);
    h.seq = Seq(a.seq);
    h.ack = Seq(a.ack);
    h.flags = TcpFlags::from_u8(a.flags);
    h.window = a.window;
    TcpSegment { header: h, payload: vec![0x7u8; a.payload_len].into() }
}

fn estab_core() -> ConnCore<u8> {
    let cfg = TcpConfig::default();
    let mut core: ConnCore<u8> = ConnCore::new(&cfg, 80, Seq(1_000_000), 1460);
    core.remote = Some((9, 4000));
    core.state = TcpState::Estab;
    core.tcb.mss = 1000;
    core.tcb.snd_una = Seq(1_000_001);
    core.tcb.snd_nxt = Seq(1_000_001);
    core.tcb.irs = Seq(5_000_000);
    core.tcb.rcv_nxt = Seq(5_000_001);
    core.tcb.snd_wnd = 4096;
    core
}

fn check_invariants(core: &ConnCore<u8>, context: &str) {
    let tcb = &core.tcb;
    // Circular ordering of the send-side variables.
    assert!(tcb.snd_una.le(tcb.snd_nxt), "{context}: snd_una must not pass snd_nxt");
    // In-flight data never exceeds what the buffers can back.
    assert!(
        tcb.flight_size() as usize <= tcb.send_buf.capacity() + 2,
        "{context}: flight {} vs buffer {}",
        tcb.flight_size(),
        tcb.send_buf.capacity()
    );
    // Advertised window is bounded by the receive buffer.
    assert!(tcb.rcv_wnd() as usize <= tcb.recv_buf.capacity(), "{context}: window over capacity");
    // The reassembly queue is bounded.
    assert!(tcb.out_of_order.len() <= MAX_OUT_OF_ORDER, "{context}: ooo unbounded");
    // Retransmission queue entries are ordered and within flight.
    let mut prev: Option<Seq> = None;
    for s in tcb.resend_queue.iter() {
        if let Some(p) = prev {
            assert!(p.le(s.seq), "{context}: resend queue out of order");
        }
        prev = Some(s.end());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No arbitrary segment sequence can panic SEGMENT-ARRIVES or break
    /// the TCB invariants, from ESTABLISHED.
    #[test]
    fn receive_dag_is_total_from_estab(
        segs in proptest::collection::vec(arb_segment(), 1..40),
    ) {
        let cfg = TcpConfig::default();
        let mut core = estab_core();
        for (i, a) in segs.iter().enumerate() {
            let _ = receive::segment_arrives(&cfg, &mut core, to_segment(a), VirtualTime::from_millis(i as u64));
            core.tcb.clear_pending_actions();
            check_invariants(&core, "estab-fuzz");
            if core.state == TcpState::Closed {
                break;
            }
        }
    }

    /// Same, with segments biased into the live window (deeper branches).
    #[test]
    fn receive_dag_is_total_near_window(
        segs in proptest::collection::vec(biased_segment(5_000_001, 1_000_001), 1..40),
    ) {
        let cfg = TcpConfig::default();
        let mut core = estab_core();
        for (i, a) in segs.iter().enumerate() {
            let _ = receive::segment_arrives(&cfg, &mut core, to_segment(a), VirtualTime::from_millis(i as u64));
            core.tcb.clear_pending_actions();
            check_invariants(&core, "window-fuzz");
            if core.state == TcpState::Closed {
                break;
            }
        }
    }

    /// Every non-listen state survives arbitrary segments.
    #[test]
    fn receive_dag_is_total_in_all_states(
        state_ix in 0usize..9,
        segs in proptest::collection::vec(biased_segment(5_000_001, 1_000_001), 1..25),
    ) {
        let states = [
            TcpState::SynSent { retries_left: 3 },
            TcpState::SynActive,
            TcpState::SynPassive { retries_left: 3 },
            TcpState::Estab,
            TcpState::FinWait1 { fin_acked: false },
            TcpState::FinWait2,
            TcpState::CloseWait,
            TcpState::Closing,
            TcpState::TimeWait,
        ];
        let cfg = TcpConfig::default();
        let mut core = estab_core();
        core.state = states[state_ix].clone();
        if matches!(core.state, TcpState::FinWait1 { .. } | TcpState::Closing) {
            core.tcb.fin_seq = Some(core.tcb.snd_nxt);
            core.tcb.snd_nxt += 1;
        }
        for (i, a) in segs.iter().enumerate() {
            let _ = receive::segment_arrives(&cfg, &mut core, to_segment(a), VirtualTime::from_millis(i as u64));
            core.tcb.clear_pending_actions();
            check_invariants(&core, "state-fuzz");
            if core.state == TcpState::Closed {
                break;
            }
        }
    }
}

// Whole-engine property: under an arbitrary drop pattern, a transfer
// either completes with a byte-exact stream or makes no false delivery
// — the received bytes are always a prefix of what was sent.
//
// The body lives in `stream_prefix_property` so the checked-in
// regression case (see fuzz.proptest-regressions) can be replayed as an
// explicit test below, independent of the fuzzer's seed decoding.
fn stream_prefix_property(drop_mask: &[bool], payload_len: usize) {
    let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
    let link = LinkPair::new();
    let mut a = Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
    let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());

    // Drop frames toward the server according to the mask, cycling.
    let mask = drop_mask.to_vec();
    let idx = Rc::new(RefCell::new(0usize));
    let i2 = idx.clone();
    link.set_filter_toward(
        1,
        Box::new(move |_| {
            let mut i = i2.borrow_mut();
            let keep = !mask[*i % mask.len()];
            *i += 1;
            keep
        }),
    );

    let got = Rc::new(RefCell::new(Vec::new()));
    b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
    let conn =
        a.open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {})).unwrap();
    let payload: Vec<u8> = (0..payload_len as u32).map(|i| (i % 251) as u8).collect();

    let mut now = VirtualTime::ZERO;
    let mut sent = 0;
    let mut adopted = false;
    for _ in 0..4_000 {
        now += VirtualDuration::from_millis(100);
        if sent < payload.len() {
            sent += a.send_data(conn, &payload[sent..]).unwrap_or(0);
        }
        a.step(now);
        b.step(now);
        if !adopted {
            let g = got.clone();
            adopted = b
                .set_handler(
                    TcpConnId(1),
                    Box::new(move |ev| {
                        if let TcpEvent::Data(d) = ev {
                            g.borrow_mut().extend_from_slice(&d);
                        }
                    }),
                )
                .is_ok();
        }
        if got.borrow().len() >= payload.len() {
            break;
        }
    }
    let received = got.borrow().clone();
    // The received stream must be an exact prefix — never reordered,
    // never duplicated, never corrupted.
    assert!(received.len() <= payload.len());
    assert_eq!(&received[..], &payload[..received.len()]);
    // Completion can only be demanded when the adversary's drop
    // runs are short: a long run is indistinguishable from a dead
    // link, where giving up (the user timeout) is the *correct*
    // behavior. Bound the cyclic run length at 3.
    let doubled: Vec<bool> = drop_mask.iter().chain(drop_mask.iter()).copied().collect();
    let max_run = doubled.split(|d| !*d).map(|run| run.len()).max().unwrap_or(0);
    if max_run <= 3 {
        assert_eq!(received.len(), payload.len(), "transfer wedged (max drop run {max_run})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_stream_is_always_an_exact_prefix(
        drop_mask in proptest::collection::vec(any::<bool>(), 64),
        payload_len in 1usize..20_000,
    ) {
        stream_prefix_property(&drop_mask, payload_len);
    }
}

/// The checked-in shrunk counterexample from fuzz.proptest-regressions:
/// two six-frame drop bursts (indices 5–10 and 14–19 of the cyclic
/// mask) against an 8193-byte transfer. Before fast recovery handled
/// partial ACKs, this pattern wedged the transfer into repeated
/// timeouts past the driver's iteration budget. Replayed explicitly so
/// the pin survives even if the fuzzer's seed format changes.
#[test]
fn regression_burst_drops_payload_8193() {
    let mut drop_mask = vec![false; 64];
    for i in (5..=10).chain(14..=19) {
        drop_mask[i] = true;
    }
    stream_prefix_property(&drop_mask, 8193);
}
