//! Regression: a pure retransmission must not memcpy.
//!
//! The resend queue holds the same [`foxbasis::buf::PacketBuf`] that was
//! segmented out of the send buffer, so retransmitting re-references it
//! (a refcount bump) and the wire encoder writes the header into the
//! buffer's reserved headroom in place. If either property regresses —
//! the queue re-reads the ring, or a stale view forces the header
//! prepend onto the counted realloc path — the copy counter catches it
//! here.

use fox_scheduler::SchedHandle;
use foxbasis::buf::{copy_mark, reset_copy_stats};
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxproto::Protocol;
use foxtcp::testlink::{LinkPair, TestAux, TestLower};
use foxtcp::{Tcp, TcpConfig, TcpConnId, TcpEvent, TcpPattern};
use simnet::HostHandle;
use std::cell::RefCell;
use std::rc::Rc;

type Engine = Tcp<TestLower, TestAux>;

fn engine(link: &LinkPair, side: u8, cfg: TcpConfig) -> Engine {
    Tcp::new(link.endpoint(side), TestAux, (), cfg, SchedHandle::new(), HostHandle::free())
}

fn settle(a: &mut Engine, b: &mut Engine, now: VirtualTime) {
    for _ in 0..500 {
        let pa = a.step(now);
        let pb = b.step(now);
        if !pa && !pb {
            return;
        }
    }
    panic!("did not settle");
}

fn run_for(a: &mut Engine, b: &mut Engine, from: VirtualTime, ms: u64, tick_ms: u64) -> VirtualTime {
    let mut now = from;
    let end = from + VirtualDuration::from_millis(ms);
    while now < end {
        now = (now + VirtualDuration::from_millis(tick_ms)).min(end);
        settle(a, b, now);
    }
    end
}

#[test]
fn pure_retransmit_episode_copies_nothing() {
    reset_copy_stats();
    let link = LinkPair::new();
    let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
    let mut a = engine(&link, 0, cfg.clone());
    let mut b = engine(&link, 1, cfg);

    b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
    let client = a
        .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}))
        .unwrap();
    settle(&mut a, &mut b, VirtualTime::ZERO);
    assert!(
        matches!(a.state_of(client), Some(foxtcp::TcpState::Estab)),
        "handshake must complete before the episode"
    );

    // Stage and transmit one window's worth of data. The segmentation
    // copy (ring -> PacketBuf) happens here, outside the measured
    // window, and the data is lost in flight: drop everything toward
    // the server from now on.
    link.set_filter_toward(1, Box::new(|_| false));
    let payload = vec![0xB5u8; 2000];
    let sent = a.send_data(client, &payload).unwrap();
    assert_eq!(sent, payload.len());
    settle(&mut a, &mut b, VirtualTime::ZERO);
    assert!(link.dropped() > 0, "the initial flight must be in the black hole");

    // The pure-retransmit episode: every RTO re-sends the queued
    // segment. Re-referencing the queued PacketBuf and writing the
    // header into its headroom must move zero payload bytes.
    let stats_before = a.stats();
    let mark = copy_mark();
    run_for(&mut a, &mut b, VirtualTime::ZERO, 10_000, 100);
    let delta = mark.delta();
    let stats_after = a.stats();

    assert!(
        stats_after.retransmits > stats_before.retransmits,
        "the episode must actually retransmit (got {} -> {})",
        stats_before.retransmits,
        stats_after.retransmits
    );
    assert_eq!(delta.copies, 0, "a pure retransmission must not copy ({delta:?})");
    assert_eq!(delta.bytes, 0, "a pure retransmission must not move bytes ({delta:?})");
    assert_eq!(
        stats_after.buf_copies, stats_before.buf_copies,
        "the engine's copy counter must not advance during pure retransmission"
    );
    assert_eq!(stats_after.buf_copy_bytes, stats_before.buf_copy_bytes);
}

#[test]
fn retransmitted_bytes_still_arrive_intact() {
    // The zero-copy path must still deliver the right bytes once the
    // link heals: re-referencing must not alias mutated state.
    let link = LinkPair::new();
    let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
    let mut a = engine(&link, 0, cfg.clone());
    let mut b = engine(&link, 1, cfg);

    let got = Rc::new(RefCell::new(Vec::<u8>::new()));
    b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
    let client = a
        .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}))
        .unwrap();
    settle(&mut a, &mut b, VirtualTime::ZERO);
    let child = TcpConnId(1);
    let sink = got.clone();
    b.set_handler(
        child,
        Box::new(move |e| {
            if let TcpEvent::Data(d) = e {
                sink.borrow_mut().extend_from_slice(&d);
            }
        }),
    )
    .unwrap();

    // Lose the first flight entirely, then heal.
    let drops = Rc::new(RefCell::new(0u32));
    let d2 = drops.clone();
    link.set_filter_toward(
        1,
        Box::new(move |_| {
            let mut n = d2.borrow_mut();
            *n += 1;
            *n > 3
        }),
    );
    let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut now = VirtualTime::ZERO;
    while sent < payload.len() {
        sent += a.send_data(client, &payload[sent..]).unwrap();
        now = run_for(&mut a, &mut b, now, 400, 100);
    }
    run_for(&mut a, &mut b, now, 20_000, 250);

    assert!(a.stats().retransmits > 0, "the first flight was dropped");
    assert_eq!(got.borrow().len(), payload.len());
    assert_eq!(*got.borrow(), payload, "retransmitted payloads must be byte-identical");
}
