//! The Tcb module (paper Fig. 6): "the types with which these data
//! structures are represented and some basic operations on values of
//! these types".
//!
//! Field correspondence with the paper's `tcp_tcb` record:
//!
//! | paper field      | here                                           |
//! |------------------|------------------------------------------------|
//! | `iss`            | [`Tcb::iss`]                                   |
//! | `snd_una` …      | [`Tcb::snd_una`] and the other RFC 793 vars    |
//! | `queued`         | the unsent tail of [`Tcb::send_buf`] (bytes past `snd_nxt`) — the deque of not-yet-sent packets, adapted to a byte-stream store so retransmission can re-segment |
//! | `out_of_order`   | [`Tcb::out_of_order`]                          |
//! | `to_do`          | [`Tcb::to_do`] — the action queue at the heart of the quasi-synchronous control structure |
//!
//! The `tcp_state` datatype is [`TcpState`], with the paper's twelve
//! variants including the `Syn_Active` / `Syn_Passive` split of RFC 793's
//! single SYN-RECEIVED state (the paper keeps them separate because the
//! completion action differs: an active opener must also complete the
//! user's `open`).

use crate::action::TcpAction;
use foxbasis::buf::PacketBuf;
use foxbasis::fifo::Fifo;
use foxbasis::ring::RingBuffer;
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The shared, queue-only handle to a connection's `to_do` queue.
///
/// Timer closures capture exactly this (never the engine or the TCB), so
/// an expiration can only *enqueue* — the paper's rule that asynchronous
/// events are synchronized by queuing actions.
///
/// Crate-private on purpose (`shard_rc`): an `Rc` handle escaping the
/// crate could pin a connection's queue to an alien shard. External
/// code observes the queue through the engine API only.
pub(crate) type ToDo<P> = Rc<RefCell<Fifo<TcpAction<P>>>>;

/// The connection state (paper Fig. 6 `tcp_state`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection. (The paper's `Closed of tcp_action Q.T ref` keeps
    /// the to_do queue so queued actions can still drain; ours lives in
    /// the connection record.)
    Closed,
    /// Passive open, awaiting SYNs; the payload is the paper's `int`
    /// (bounding concurrent embryonic connections).
    Listen {
        /// Maximum embryonic (SYN-received) children.
        backlog: usize,
    },
    /// Active open, SYN sent; the `int` counts remaining retries.
    SynSent {
        /// SYN retransmissions left before giving up.
        retries_left: u32,
    },
    /// SYN-RECEIVED reached from an active open (simultaneous open).
    SynActive,
    /// SYN-RECEIVED reached from a passive open; the `int` counts
    /// retries of our SYN+ACK.
    SynPassive {
        /// SYN+ACK retransmissions left.
        retries_left: u32,
    },
    /// Connection established.
    Estab,
    /// We closed first; the `bool` is the paper's "our FIN has been
    /// acknowledged" flag.
    FinWait1 {
        /// True once the peer has ACKed our FIN.
        fin_acked: bool,
    },
    /// Our FIN acknowledged, awaiting the peer's.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Simultaneous close: FINs crossed.
    Closing,
    /// Peer closed, we closed, awaiting the ACK of our FIN.
    LastAck,
    /// Both closed; lingering 2MSL to absorb stray segments.
    TimeWait,
}

impl TcpState {
    /// True in states where user data may still be sent.
    pub fn can_send(&self) -> bool {
        matches!(self, TcpState::Estab | TcpState::CloseWait)
    }

    /// True in states where incoming segment text is accepted.
    pub fn can_receive(&self) -> bool {
        matches!(self, TcpState::Estab | TcpState::FinWait1 { .. } | TcpState::FinWait2)
    }

    /// True for the two SYN-RECEIVED flavors.
    pub fn is_syn_received(&self) -> bool {
        matches!(self, TcpState::SynActive | TcpState::SynPassive { .. })
    }

    /// True once the connection is past the three-way handshake.
    pub fn is_synchronized(&self) -> bool {
        !matches!(self, TcpState::Closed | TcpState::Listen { .. } | TcpState::SynSent { .. })
    }

    /// The RFC 793 state name, as event exports use it.
    pub fn name(&self) -> &'static str {
        match self {
            TcpState::Closed => "Closed",
            TcpState::Listen { .. } => "Listen",
            TcpState::SynSent { .. } => "SynSent",
            TcpState::SynActive => "SynActive",
            TcpState::SynPassive { .. } => "SynPassive",
            TcpState::Estab => "Estab",
            TcpState::FinWait1 { .. } => "FinWait1",
            TcpState::FinWait2 => "FinWait2",
            TcpState::CloseWait => "CloseWait",
            TcpState::Closing => "Closing",
            TcpState::LastAck => "LastAck",
            TcpState::TimeWait => "TimeWait",
        }
    }
}

/// Jacobson/Karn round-trip estimation state (the Resend module's data).
#[derive(Clone, Debug)]
pub struct RttEstimator {
    /// Smoothed RTT in µs (None until the first sample).
    pub srtt: Option<VirtualDuration>,
    /// RTT variation in µs.
    pub rttvar: VirtualDuration,
    /// Current retransmission timeout.
    pub rto: VirtualDuration,
    /// Exponential backoff multiplier exponent (0 = no backoff).
    pub backoff: u32,
    /// The segment being timed: (sequence number whose ACK completes the
    /// sample, send time). Karn's algorithm: cleared on retransmission.
    pub timing: Option<(Seq, VirtualTime)>,
}

/// RFC 1122's initial RTO.
pub const INITIAL_RTO: VirtualDuration = VirtualDuration::from_millis(1000);
/// Lower bound on the RTO. BSD's classic floor of one second: the floor
/// must comfortably exceed the peer's delayed-ACK hold time (200 ms) or
/// every window tail spuriously retransmits.
pub const MIN_RTO: VirtualDuration = VirtualDuration::from_millis(1000);
/// Upper bound on the RTO.
pub const MAX_RTO: VirtualDuration = VirtualDuration::from_secs(64);

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator { srtt: None, rttvar: VirtualDuration::ZERO, rto: INITIAL_RTO, backoff: 0, timing: None }
    }
}

impl RttEstimator {
    /// The timeout to arm the retransmit timer with (RTO with backoff).
    pub fn timeout(&self) -> VirtualDuration {
        self.rto.saturating_mul(1u64 << self.backoff.min(6)).min(MAX_RTO)
    }
}

/// An entry in the retransmission queue: a sent, unacknowledged segment.
/// The payload is the *same* [`PacketBuf`] that was handed down the
/// stack — retransmission re-references it (a refcount bump), it never
/// re-reads the send buffer (the zero-copy discipline).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SentSegment {
    /// First sequence number of the segment.
    pub seq: Seq,
    /// The segment's payload, shared with the frame that went out.
    pub payload: PacketBuf,
    /// Whether the segment carried SYN.
    pub syn: bool,
    /// Whether the segment carried FIN.
    pub fin: bool,
}

impl SentSegment {
    /// Bytes of payload.
    pub fn len(&self) -> u32 {
        self.payload.len() as u32
    }

    /// True if the segment carried no payload bytes.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Sequence space consumed.
    pub fn seq_len(&self) -> u32 {
        self.len() + u32::from(self.syn) + u32::from(self.fin)
    }

    /// One past the last sequence number.
    pub fn end(&self) -> Seq {
        self.seq + self.seq_len()
    }
}

/// The transmission control block (paper Fig. 6 `tcp_tcb`).
pub struct Tcb<P> {
    // --- RFC 793 send sequence variables ---
    /// Initial send sequence number.
    pub iss: Seq,
    /// Oldest unacknowledged sequence number.
    pub snd_una: Seq,
    /// Next sequence number to send.
    pub snd_nxt: Seq,
    /// Peer-advertised send window.
    pub snd_wnd: u32,
    /// Segment seq used for the last window update.
    pub snd_wl1: Seq,
    /// Segment ack used for the last window update.
    pub snd_wl2: Seq,
    /// Send urgent pointer (Fig. 6 lists it; we track it for
    /// completeness — the paper's stack, like ours, never generates
    /// urgent data).
    pub snd_up: Seq,

    // --- RFC 793 receive sequence variables ---
    /// Initial receive sequence number.
    pub irs: Seq,
    /// Next sequence number expected.
    pub rcv_nxt: Seq,
    /// Receive urgent pointer (RFC 793 p. 73: `RCV.UP <- max(RCV.UP,
    /// SEG.SEQ + SEG.UP)`); tracked, signalled to the user, but — per
    /// the consensus the paper inherited — not used to expedite
    /// delivery.
    pub rcv_up: Seq,

    // --- negotiated parameters ---
    /// Effective maximum segment size for sending.
    pub mss: u32,
    /// Offer window scaling on our SYN (from [`crate::TcpConfig`]).
    pub offer_wscale: bool,
    /// Offer SACK on our SYN.
    pub offer_sack: bool,
    /// Offer timestamps on our SYN.
    pub offer_ts: bool,
    /// True once *both* sides carried the window-scale option on their
    /// SYNs (RFC 7323 §2.5). Until then every window stays 16-bit.
    pub wscale_on: bool,
    /// The shift the peer applies to windows it advertises (their SYN's
    /// option value). Meaningful only when [`Tcb::wscale_on`].
    pub snd_wscale: u8,
    /// The shift we apply to windows we advertise (picked from our
    /// receive-buffer size at construction).
    pub rcv_wscale: u8,
    /// True once both SYNs carried SACK-permitted (RFC 2018).
    pub sack_on: bool,
    /// The sender-side SACK scoreboard (RFC 6675): peer-reported
    /// received ranges above `snd_una`, merged and sorted.
    pub sack_scoreboard: Vec<(Seq, Seq)>,
    /// Highest sequence retransmitted from a SACK hole in the current
    /// recovery episode (so each duplicate ACK advances to the *next*
    /// hole instead of re-sending the same one).
    pub sack_rexmit: Option<Seq>,
    /// True once both SYNs carried the timestamps option (RFC 7323).
    pub ts_on: bool,
    /// `TS.Recent` — the peer timestamp we echo in TSecr, updated by the
    /// RFC 7323 rule and consulted by the PAWS check.
    pub ts_recent: u32,
    /// TSecr of the most recent acceptable ACK, pending an RTTM sample
    /// in `resend::process_ack`.
    pub ts_ecr_pending: Option<u32>,

    // --- data buffers ---
    /// Outgoing byte store: `snd_una .. snd_una + send_buf.len()`.
    /// The prefix up to `snd_nxt` is sent-but-unacked (the retransmit
    /// store); the tail is the paper's `queued` — staged, unsent data.
    pub send_buf: RingBuffer,
    /// True once the user has called `close` — a FIN follows the last
    /// byte of `send_buf`.
    pub fin_pending: bool,
    /// Sequence number our FIN occupies once sent.
    pub fin_seq: Option<Seq>,
    /// In-order received data awaiting delivery actions are cut from.
    pub recv_buf: RingBuffer,
    /// Out-of-order segments (paper: `out_of_order: tcp_in Q.T ref`),
    /// kept sorted by sequence number; `bool` marks a FIN carried by the
    /// segment. Entries hold the received [`PacketBuf`] itself, so
    /// queueing a segment out of order costs a refcount bump, not a copy.
    pub out_of_order: Vec<(Seq, PacketBuf, bool)>,

    // --- retransmission (the Resend module's queue) ---
    /// Sent, unacknowledged segments, oldest first.
    pub resend_queue: foxbasis::deq::Deq<SentSegment>,
    /// RTT estimation.
    pub rtt: RttEstimator,
    /// Retransmissions remaining before the connection gives up.
    pub retransmits_left: u32,

    // --- congestion control (RFC 1122 / Jacobson) ---
    /// Congestion window.
    pub cwnd: u32,
    /// Slow-start threshold.
    pub ssthresh: u32,
    /// Consecutive duplicate ACKs seen.
    pub dup_acks: u32,
    /// Fast-recovery state (Reno/NewReno): when `Some`, the connection
    /// is in fast recovery and the value is the recovery point —
    /// `snd_nxt` at entry. An ACK covering it ends recovery; an ACK
    /// below it is a partial ACK and retransmits the next hole.
    pub recover: Option<Seq>,
    /// The congestion-control algorithm state (the
    /// [`crate::congestion::CongestionControl`] seam). All writes to
    /// [`Tcb::cwnd`]/[`Tcb::ssthresh`] flow through it.
    pub cc: crate::congestion::CcMachine,
    /// Zero-window probe backoff exponent. Separate from
    /// [`RttEstimator::backoff`] because every *answered* probe resets
    /// the RTT backoff (the probe byte is new data being acked) while
    /// the persist interval must keep growing until the window opens.
    pub persist_backoff: u32,

    // --- delayed-ack bookkeeping ---
    /// True if an ACK is owed but deferred behind the ack timer.
    pub ack_pending: bool,
    /// Bytes received since the last ACK we sent.
    pub bytes_since_ack: u32,
    /// Data segments received since the last ACK we sent (BSD's
    /// ack-every-other-segment policy).
    pub segs_since_ack: u32,
    /// The receive window we most recently advertised on the wire. When
    /// the application consumes data and the real window exceeds this by
    /// two segments (or half the buffer), a window-update ACK goes out —
    /// BSD's rule, and the thing that un-sticks a peer that saw zero.
    pub last_adv_wnd: u32,

    // --- the control structure ---
    /// The to_do action queue (paper: `to_do: tcp_action Q.T ref`).
    /// Crate-private like [`ToDo`] itself; see `clear_pending_actions`
    /// for the one sanctioned external operation.
    pub(crate) to_do: ToDo<P>,
}

/// Maximum out-of-order segments held (smoltcp's upper configuration).
pub const MAX_OUT_OF_ORDER: usize = 32;

/// The window-scale shift to offer for a receive buffer of `capacity`
/// bytes: the smallest shift that lets the 16-bit field cover the whole
/// buffer, clamped to RFC 7323's maximum of 14.
pub fn wscale_for(capacity: usize) -> u8 {
    foxwire::tcp::wscale_for(capacity)
}

impl<P> Tcb<P> {
    /// A TCB for a connection with the given buffer sizes and initial
    /// send sequence number.
    pub fn new(iss: Seq, send_buffer: usize, recv_buffer: usize) -> Tcb<P> {
        Tcb {
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_wnd: 0,
            snd_wl1: Seq(0),
            snd_wl2: Seq(0),
            snd_up: iss,
            irs: Seq(0),
            rcv_nxt: Seq(0),
            rcv_up: Seq(0),
            mss: 536,
            offer_wscale: false,
            offer_sack: false,
            offer_ts: false,
            wscale_on: false,
            snd_wscale: 0,
            rcv_wscale: 0,
            sack_on: false,
            sack_scoreboard: Vec::new(),
            sack_rexmit: None,
            ts_on: false,
            ts_recent: 0,
            ts_ecr_pending: None,
            send_buf: RingBuffer::new(send_buffer.max(1)),
            fin_pending: false,
            fin_seq: None,
            recv_buf: RingBuffer::new(recv_buffer.max(1)),
            out_of_order: Vec::new(),
            resend_queue: foxbasis::deq::Deq::new(),
            rtt: RttEstimator::default(),
            retransmits_left: 12,
            cwnd: 0,
            ssthresh: u32::MAX,
            dup_acks: 0,
            recover: None,
            cc: crate::congestion::CcMachine::default(),
            persist_backoff: 0,
            ack_pending: false,
            bytes_since_ack: 0,
            segs_since_ack: 0,
            last_adv_wnd: recv_buffer.clamp(1, 65535) as u32,
            to_do: Rc::new(RefCell::new(Fifo::new())),
        }
    }

    /// The receive window we advertise: free space in the receive
    /// buffer, capped at what the 16-bit field can carry under the
    /// negotiated shift. Without window scaling this is exactly the
    /// classic `min(free, 65535)`; with it, the value is what the peer
    /// reconstructs after the wire round-trip (rounded down to the
    /// shift granularity), so acceptance checks and advertisements
    /// always agree.
    pub fn rcv_wnd(&self) -> u32 {
        let free = self.recv_buf.free() as u32;
        let shift = self.adv_wscale();
        u32::from(foxwire::tcp::wire_window(free, shift)) << shift
    }

    /// The shift applied to windows we advertise (0 unless negotiated).
    pub fn adv_wscale(&self) -> u8 {
        if self.wscale_on {
            self.rcv_wscale
        } else {
            0
        }
    }

    /// The shift applied to windows the peer advertises (0 unless
    /// negotiated).
    pub fn snd_shift(&self) -> u8 {
        if self.wscale_on {
            self.snd_wscale
        } else {
            0
        }
    }

    /// The 16-bit window field for an outgoing header. A SYN's window is
    /// never scaled (RFC 7323 §2.2), so the shift only applies after the
    /// handshake. This (via [`foxwire::tcp::wire_window`]) is the one
    /// sanctioned `u32 → u16` window narrowing in the stack.
    pub fn wire_window_field(&self, syn: bool) -> u16 {
        let shift = if syn { 0 } else { self.adv_wscale() };
        foxwire::tcp::wire_window(self.recv_buf.free() as u32, shift)
    }

    /// A peer-advertised window field, widened by the negotiated shift.
    /// Windows carried on SYN segments are never scaled.
    pub fn scale_peer_window(&self, window: u16, syn: bool) -> u32 {
        let shift = if syn { 0 } else { self.snd_shift() };
        u32::from(window) << shift
    }

    /// Up to three SACK blocks describing the out-of-order queue
    /// (RFC 2018): merged contiguous ranges above `rcv_nxt`, in
    /// ascending order. (RFC 2018 prefers most-recent-first; ascending
    /// is equally legal and keeps the report deterministic.)
    pub fn sack_blocks_to_send(&self) -> Vec<(Seq, Seq)> {
        let mut blocks: Vec<(Seq, Seq)> = Vec::new();
        for (seq, data, fin) in &self.out_of_order {
            let end = *seq + data.len() as u32 + u32::from(*fin);
            match blocks.last_mut() {
                Some((_, e)) if seq.le(*e) => {
                    if end.gt(*e) {
                        *e = end;
                    }
                }
                _ => blocks.push((*seq, end)),
            }
        }
        blocks.truncate(3);
        blocks
    }

    /// Merges peer-reported SACK blocks into the scoreboard, dropping
    /// anything at or below `snd_una` and keeping the ranges sorted and
    /// disjoint.
    pub fn note_sack_blocks(&mut self, blocks: &[(Seq, Seq)]) {
        for &(start, end) in blocks {
            let start = if start.lt(self.snd_una) { self.snd_una } else { start };
            if !start.lt(end) || end.since(start) > (1 << 30) {
                continue; // empty or implausible range
            }
            let at = self
                .sack_scoreboard
                .binary_search_by(|(s, _)| {
                    if s.lt(start) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                })
                .unwrap_or_else(|e| e);
            self.sack_scoreboard.insert(at, (start, end));
        }
        // Coalesce overlapping/adjacent ranges.
        let mut merged: Vec<(Seq, Seq)> = Vec::new();
        for &(s, e) in &self.sack_scoreboard {
            match merged.last_mut() {
                Some((_, me)) if s.le(*me) => {
                    if e.gt(*me) {
                        *me = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        merged.truncate(16);
        self.sack_scoreboard = merged;
    }

    /// Drops scoreboard ranges the cumulative ACK has overtaken.
    pub fn prune_sack_scoreboard(&mut self, ack: Seq) {
        self.sack_scoreboard.retain(|(_, e)| e.gt(ack));
        for (s, _) in &mut self.sack_scoreboard {
            if s.lt(ack) {
                *s = ack;
            }
        }
    }

    /// True if the peer has SACKed the whole range `[seq, end)`.
    pub fn sacked(&self, seq: Seq, end: Seq) -> bool {
        self.sack_scoreboard.iter().any(|(s, e)| s.le(seq) && end.le(*e))
    }

    /// Bytes in flight (sent, unacknowledged).
    pub fn flight_size(&self) -> u32 {
        self.snd_nxt.since(self.snd_una)
    }

    /// The usable send window: how many more bytes the peer (and the
    /// congestion window, if active) will accept.
    pub fn usable_window(&self) -> u32 {
        let wnd = if self.cwnd > 0 { self.snd_wnd.min(self.cwnd) } else { self.snd_wnd };
        wnd.saturating_sub(self.flight_size())
    }

    /// The interval to arm the persist (zero-window probe) timer with:
    /// the current RTO scaled by the probe backoff, capped like the
    /// retransmit timeout. Uses [`Tcb::persist_backoff`], not the RTT
    /// backoff, so an answered probe (which resets the RTT backoff)
    /// cannot stop the probe interval from growing.
    pub fn persist_timeout(&self) -> VirtualDuration {
        self.rtt.rto.saturating_mul(1u64 << self.persist_backoff.min(6)).min(MAX_RTO)
    }

    /// The largest payload a data segment may carry: the negotiated MSS
    /// less the option bytes every data segment wears. The MSS never
    /// accounts for options (RFC 6691 §3), so the sender subtracts them
    /// here — a timestamped "full" segment sized by the raw MSS would
    /// overflow the link MTU by exactly the option's 12 bytes and
    /// fragment. Only timestamps ride on data segments; the SYN-only
    /// options and the receiver's SACK blocks never do.
    pub fn eff_mss(&self) -> u32 {
        if self.ts_on {
            self.mss.saturating_sub(foxwire::tcp::TIMESTAMPS_SEGMENT_OVERHEAD).max(1)
        } else {
            self.mss
        }
    }

    /// Unsent bytes staged in the send buffer (the paper's `queued`).
    pub fn unsent(&self) -> u32 {
        (self.send_buf.len() as u32).saturating_sub(self.flight_size())
    }

    /// Pushes an action onto the to_do queue (the only way anything is
    /// ever scheduled against a connection).
    pub fn push_action(&self, action: TcpAction<P>) {
        self.to_do.borrow_mut().add(action);
    }

    /// Drops everything queued on the to_do queue without executing it.
    /// For harnesses that drive the receive DAG without an engine
    /// attached (the fuzz suite); the engine itself always drains.
    pub fn clear_pending_actions(&self) {
        self.to_do.borrow_mut().clear();
    }

    /// Inserts an out-of-order segment, keeping the queue sorted and
    /// bounded. Exact duplicates are dropped.
    pub fn insert_out_of_order(&mut self, seq: Seq, data: impl Into<PacketBuf>, fin: bool) {
        let data = data.into();
        if self.out_of_order.len() >= MAX_OUT_OF_ORDER {
            return;
        }
        if self.out_of_order.iter().any(|(s, d, _)| *s == seq && d.len() == data.len()) {
            return;
        }
        let at = self
            .out_of_order
            .binary_search_by(|(s, _, _)| {
                if *s == seq {
                    std::cmp::Ordering::Equal
                } else if s.lt(seq) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .unwrap_or_else(|e| e);
        self.out_of_order.insert(at, (seq, data, fin));
    }

    /// Drains out-of-order segments that are now in order, appending
    /// their data to `recv_buf`. Returns (delivered bytes, fin seen).
    pub fn drain_out_of_order(&mut self) -> (Vec<u8>, bool) {
        let mut delivered = Vec::new();
        let mut fin = false;
        while !fin {
            // Find a segment starting at or below rcv_nxt.
            let idx = self.out_of_order.iter().position(|(s, _, _)| s.le(self.rcv_nxt));
            let (s, d, f) = match idx {
                Some(i) => self.out_of_order.remove(i),
                None => break,
            };
            let skip = self.rcv_nxt.since(s) as usize;
            if skip > d.len() {
                continue; // wholly stale duplicate
            }
            let fresh_len = d.len() - skip;
            let took = {
                let bytes = d.bytes();
                let fresh = &bytes[skip..];
                let took = self.recv_buf.write(fresh);
                delivered.extend_from_slice(&fresh[..took]);
                took
            };
            self.rcv_nxt += took as u32;
            if took < fresh_len {
                // Receive buffer full: keep the remainder for later —
                // a zero-copy slice of the same storage.
                self.insert_out_of_order(self.rcv_nxt, d.slice(skip + took, d.len()), f);
                break;
            }
            if f {
                fin = true; // all of the segment's data consumed: FIN is next
            }
        }
        (delivered, fin)
    }
}

impl<P> fmt::Debug for Tcb<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tcb(una={}, nxt={}, wnd={}, rcv_nxt={}, rcv_wnd={}, flight={}, unsent={}, ooo={}, todo={})",
            self.snd_una,
            self.snd_nxt,
            self.snd_wnd,
            self.rcv_nxt,
            self.rcv_wnd(),
            self.flight_size(),
            self.unsent(),
            self.out_of_order.len(),
            self.to_do.borrow().size(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcb() -> Tcb<()> {
        Tcb::new(Seq(1000), 4096, 4096)
    }

    #[test]
    fn fresh_tcb_invariants() {
        let t = tcb();
        assert_eq!(t.snd_una, Seq(1000));
        assert_eq!(t.snd_nxt, Seq(1000));
        assert_eq!(t.flight_size(), 0);
        assert_eq!(t.unsent(), 0);
        assert_eq!(t.rcv_wnd(), 4096);
        assert!(t.to_do.borrow().is_empty());
    }

    #[test]
    fn windows_and_flight() {
        let mut t = tcb();
        t.snd_wnd = 4096;
        t.send_buf.write(&[0; 1000]);
        assert_eq!(t.unsent(), 1000);
        t.snd_nxt = t.snd_una + 600;
        assert_eq!(t.flight_size(), 600);
        assert_eq!(t.unsent(), 400);
        assert_eq!(t.usable_window(), 4096 - 600);
        t.cwnd = 800;
        assert_eq!(t.usable_window(), 200, "cwnd caps the window");
    }

    #[test]
    fn rcv_wnd_tracks_buffer_and_caps() {
        let mut t: Tcb<()> = Tcb::new(Seq(0), 16, 100_000);
        assert_eq!(t.rcv_wnd(), 65535, "capped at the 16-bit field");
        t.recv_buf.write(&[0; 50]);
        assert_eq!(t.rcv_wnd(), 65535.min((100_000 - 50) as u32));
    }

    #[test]
    fn out_of_order_sorted_insert_and_drain() {
        let mut t = tcb();
        t.rcv_nxt = Seq(100);
        t.insert_out_of_order(Seq(120), vec![2; 10], false);
        t.insert_out_of_order(Seq(100), vec![1; 20], false);
        let (data, fin) = t.drain_out_of_order();
        assert_eq!(data.len(), 30);
        assert!(!fin);
        assert_eq!(t.rcv_nxt, Seq(130));
        assert!(t.out_of_order.is_empty());
    }

    #[test]
    fn out_of_order_with_gap_waits() {
        let mut t = tcb();
        t.rcv_nxt = Seq(100);
        t.insert_out_of_order(Seq(130), vec![3; 10], false);
        let (data, _) = t.drain_out_of_order();
        assert!(data.is_empty());
        assert_eq!(t.out_of_order.len(), 1);
        // The gap fills:
        t.insert_out_of_order(Seq(100), vec![1; 30], false);
        let (data, _) = t.drain_out_of_order();
        assert_eq!(data.len(), 40);
        assert_eq!(t.rcv_nxt, Seq(140));
    }

    #[test]
    fn overlapping_out_of_order_deduplicated() {
        let mut t = tcb();
        t.rcv_nxt = Seq(100);
        t.insert_out_of_order(Seq(100), vec![1; 20], false);
        t.insert_out_of_order(Seq(110), vec![2; 10], false); // wholly contained
        let (data, _) = t.drain_out_of_order();
        assert_eq!(data.len(), 20);
        assert_eq!(t.rcv_nxt, Seq(120));
        assert!(t.out_of_order.is_empty(), "contained segment discarded");
    }

    #[test]
    fn out_of_order_fin_reported() {
        let mut t = tcb();
        t.rcv_nxt = Seq(100);
        t.insert_out_of_order(Seq(100), vec![9; 5], true);
        let (data, fin) = t.drain_out_of_order();
        assert_eq!(data.len(), 5);
        assert!(fin);
    }

    #[test]
    fn out_of_order_bounded() {
        let mut t = tcb();
        t.rcv_nxt = Seq(0);
        for i in 0..(MAX_OUT_OF_ORDER + 10) {
            t.insert_out_of_order(Seq(1000 + 10 * i as u32), vec![0; 5], false);
        }
        assert_eq!(t.out_of_order.len(), MAX_OUT_OF_ORDER);
    }

    #[test]
    fn rtt_timeout_backoff() {
        let mut r = RttEstimator::default();
        assert_eq!(r.timeout(), INITIAL_RTO);
        r.backoff = 3;
        assert_eq!(r.timeout(), VirtualDuration::from_millis(8000));
        r.backoff = 40; // clamped
        assert_eq!(r.timeout(), MAX_RTO);
    }

    #[test]
    fn sent_segment_accounting() {
        let s = SentSegment { seq: Seq(10), payload: vec![0u8; 100].into(), syn: false, fin: true };
        assert_eq!(s.seq_len(), 101);
        assert_eq!(s.end(), Seq(111));
    }

    #[test]
    fn wscale_for_covers_buffer() {
        assert_eq!(wscale_for(4096), 0);
        assert_eq!(wscale_for(65535), 0);
        assert_eq!(wscale_for(65536), 1);
        // (1 << 20) >> 4 = 65536 still exceeds the 16-bit field.
        assert_eq!(wscale_for(1 << 20), 5);
        assert_eq!(wscale_for(usize::MAX), 14, "clamped to RFC 7323's max");
    }

    #[test]
    fn rcv_wnd_uncaps_with_negotiated_scale() {
        let mut t: Tcb<()> = Tcb::new(Seq(0), 16, 1 << 20);
        assert_eq!(t.rcv_wnd(), 65535, "unscaled until negotiated");
        t.wscale_on = true;
        t.rcv_wscale = 5;
        assert_eq!(t.rcv_wnd(), 1 << 20, "full buffer visible");
        t.recv_buf.write(&[0; 100]);
        // Rounded down to the 32-byte shift granularity — what the peer
        // reconstructs from the wire field.
        assert_eq!(t.rcv_wnd(), ((1 << 20) - 100) & !0x1f);
        assert_eq!(t.wire_window_field(false), (((1 << 20) - 100) >> 5) as u16);
        assert_eq!(t.wire_window_field(true), 0xffff, "SYN windows are never scaled");
    }

    #[test]
    fn peer_window_scaling_skips_syn() {
        let mut t = tcb();
        t.wscale_on = true;
        t.snd_wscale = 7;
        assert_eq!(t.scale_peer_window(512, false), 512 << 7);
        assert_eq!(t.scale_peer_window(512, true), 512, "SYN windows are never scaled");
        t.wscale_on = false;
        assert_eq!(t.scale_peer_window(512, false), 512);
    }

    #[test]
    fn sack_blocks_report_out_of_order_ranges() {
        let mut t = tcb();
        t.rcv_nxt = Seq(100);
        t.insert_out_of_order(Seq(200), vec![1; 50], false);
        t.insert_out_of_order(Seq(250), vec![2; 50], false); // adjacent: merges
        t.insert_out_of_order(Seq(400), vec![3; 10], true); // FIN occupies a number
        assert_eq!(t.sack_blocks_to_send(), vec![(Seq(200), Seq(300)), (Seq(400), Seq(411))]);
        assert!(tcb().sack_blocks_to_send().is_empty());
    }

    #[test]
    fn sack_scoreboard_merges_and_prunes() {
        let mut t = tcb();
        t.snd_una = Seq(1000);
        t.note_sack_blocks(&[(Seq(2000), Seq(3000))]);
        t.note_sack_blocks(&[(Seq(4000), Seq(5000)), (Seq(2500), Seq(3500))]);
        assert_eq!(t.sack_scoreboard, vec![(Seq(2000), Seq(3500)), (Seq(4000), Seq(5000))]);
        assert!(t.sacked(Seq(2000), Seq(3000)));
        assert!(t.sacked(Seq(4000), Seq(5000)));
        assert!(!t.sacked(Seq(3400), Seq(4100)), "spans a hole");
        // Stale range at/below snd_una is clipped away entirely.
        t.note_sack_blocks(&[(Seq(500), Seq(900))]);
        assert_eq!(t.sack_scoreboard.len(), 2);
        t.prune_sack_scoreboard(Seq(4500));
        assert_eq!(t.sack_scoreboard, vec![(Seq(4500), Seq(5000))]);
    }

    #[test]
    fn state_predicates() {
        assert!(TcpState::Estab.can_send());
        assert!(TcpState::CloseWait.can_send());
        assert!(!TcpState::FinWait1 { fin_acked: false }.can_send());
        assert!(TcpState::FinWait2.can_receive());
        assert!(!TcpState::CloseWait.can_receive());
        assert!(TcpState::SynActive.is_syn_received());
        assert!(TcpState::SynPassive { retries_left: 1 }.is_syn_received());
        assert!(!TcpState::SynSent { retries_left: 1 }.is_synchronized());
        assert!(TcpState::TimeWait.is_synchronized());
    }
}
