//! # The structured TCP — the paper's core contribution
//!
//! "We designed the TCP implementation to have the same structure as the
//! TCP standard" (§4). The module decomposition here is the paper's
//! Fig. 9, one Rust module per SML module:
//!
//! | paper module | here          | job |
//! |--------------|---------------|-----|
//! | `Tcb`        | [`tcb`]       | the TCB record and `tcp_state` datatype (Fig. 6) |
//! | `Main`       | [`engine`]    | the quasi-synchronous executor and user operations |
//! | `State`      | [`control::state`] | open/close/abort and timer-expiration state manipulations |
//! | `Receive`    | [`control::segment`] + [`data::transfer`] | RFC 793 SEGMENT-ARRIVES, branch for branch, functions as merge points |
//! | `Resend`     | [`data::resend`] | the retransmit queue and the Karn/Jacobson round-trip computations |
//! | `Send`       | [`data::send`] | segmenting outgoing data into `Send_Segment` actions |
//! | `Action`     | [`engine`] + [`action`] | timers, segment externalization/internalization |
//! |  (§4)        | [`data::fastpath`] | "fast-path receive and send routines which handle the normal cases quickly" |
//!
//! On top of the paper's decomposition, the modules are grouped by
//! *which half of TCP they implement*: [`control`] owns the connection
//! lifecycle (every [`TcpState`] write), [`data`] owns byte transfer
//! (every sequence/window/congestion write), and the two communicate
//! only through the narrow seams in [`data::transfer`]. The `ctrl_data`
//! foxlint rule enforces the split mechanically, and [`socket`] exposes
//! it to users as a typestate API where illegal operations (sending on
//! a listener) fail to compile.
//!
//! The control structure is the paper's Fig. 7: timer expirations and
//! message receptions are asynchronous, but each merely *enqueues* a
//! [`action::TcpAction`] on the connection's `to_do` queue; the thread
//! that executes an operation then drains the queue. Everything after
//! enqueue is totally ordered and deterministic.
//!
//! The TCP functor itself is [`engine::Tcp<L, A>`], whose parameters are
//! the paper's Fig. 4: the lower protocol `L`, the auxiliary structure
//! `A` (with the `sharing` constraints as associated-type bounds), and
//! the value parameters collected in [`TcpConfig`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod control;
pub mod data;
pub mod demux;
pub mod engine;
pub mod socket;
pub mod tcb;
pub mod testlink;

// Flat aliases for the paper's module names: `foxtcp::receive`,
// `foxtcp::send`, ... keep working while the files themselves live on
// the side of the control/data boundary they belong to.
pub use control::segment as receive;
pub use control::state;
pub use data::{congestion, fastpath, resend, send};

pub use action::{LossEvent, TcpAction, TimerKind};
pub use congestion::CcAlg;
pub use demux::{Demux, DemuxStats};
pub use engine::{Tcp, TcpConnId, TcpEvent, TcpPattern, TcpStats};
pub use socket::{ConnectingSocket, EstablishedSocket, ListeningSocket};
pub use tcb::{Tcb, TcpState};

use foxbasis::seq::Seq;
use tcb::Tcb as TcbT;

/// The value parameters of the TCP functor (paper Fig. 4).
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// `val initial_window: int` — the receive-buffer/window size. The
    /// paper's benchmark standardizes it to 4096 bytes.
    pub initial_window: usize,
    /// `val compute_checksums: bool` — `false` only for compositions
    /// where the layer below guarantees integrity (`Special_Tcp` over
    /// Ethernet with its CRC).
    pub compute_checksums: bool,
    /// `val abort_unknown_connections: bool` — whether segments for
    /// unknown connections are answered with RST. "Set to false when we
    /// wish to run ... on a workstation without disturbing connections
    /// that were set up by the resident operating system."
    pub abort_unknown_connections: bool,
    /// `val user_timeout: int` (ms) — "the length of time before hung
    /// operations fail".
    pub user_timeout_ms: u64,
    /// Send-buffer size in bytes.
    pub send_buffer: usize,
    /// Milliseconds to delay ACKs waiting for a piggyback opportunity;
    /// `None` acknowledges immediately.
    pub delayed_ack_ms: Option<u64>,
    /// ACK coalescing: how many in-order data segments (and segments ×
    /// MSS bytes) may accumulate before an immediate ACK is forced.
    /// `None` (the default) keeps the RFC 1122 / BSD rule — ACK at
    /// least every second full segment — so every existing trace is
    /// unchanged. `Some(k)` with `k > 2` lets a GRO-style burst be
    /// answered with one cumulative ACK per `k` segments; the delayed-ACK
    /// timer still bounds the wait, and `delayed_ack_ms: None` (the
    /// paper's bulk config) still acknowledges every segment
    /// immediately, coalescing or not.
    pub ack_coalesce_segments: Option<u32>,
    /// Nagle's small-segment coalescing.
    pub nagle: bool,
    /// Use the §4 fast-path receive routine for common-case segments.
    pub fast_path: bool,
    /// The paper's proposed scheduling extension: "By replacing the
    /// current FIFO with a priority queue, we could specify that
    /// particular actions, e.g., actions which affect the packet
    /// latency, be executed with higher priority." When set, the action
    /// executor serves `Send_Segment` actions (the latency-affecting
    /// ones) ahead of anything else in the connection's to_do queue.
    pub latency_priority: bool,
    /// Slow start and congestion avoidance (RFC 1122 requires them; an
    /// ablation switch here).
    pub congestion_control: bool,
    /// Which algorithm owns `cwnd`/`ssthresh` when `congestion_control`
    /// is on. Reno is the paper-era default; every write goes through
    /// the [`congestion::CongestionControl`] trait either way (the
    /// `cc_write` foxlint rule enforces that the seam is the only
    /// writer).
    pub congestion_algorithm: congestion::CcAlg,
    /// Offer RFC 7323 window scaling on our SYN. Scaling only turns on
    /// when both sides offer it; otherwise windows stay 16-bit exactly
    /// as before.
    pub window_scale: bool,
    /// Offer RFC 2018 selective acknowledgments on our SYN.
    pub sack: bool,
    /// Offer RFC 7323 timestamps (RTTM + PAWS) on our SYN.
    pub timestamps: bool,
    /// The 2MSL TIME-WAIT hold time, in ms.
    pub time_wait_ms: u64,
    /// Maximum retransmissions of one segment before giving up.
    pub max_retransmits: u32,
    /// SYN (and SYN+ACK) retries.
    pub syn_retries: u32,
    /// Default backlog for passive opens.
    pub backlog: usize,
    /// `val do_prints: bool`.
    pub do_prints: bool,
    /// `val do_traces: bool`.
    pub do_traces: bool,
}

impl Default for TcpConfig {
    /// The paper's benchmark configuration: 4096-byte window, checksums
    /// on, immediate aborts of unknown connections, 2-minute user
    /// timeout.
    fn default() -> Self {
        TcpConfig {
            initial_window: 4096,
            compute_checksums: true,
            abort_unknown_connections: true,
            user_timeout_ms: 120_000,
            send_buffer: 8192,
            delayed_ack_ms: Some(200),
            ack_coalesce_segments: None,
            nagle: true,
            fast_path: true,
            latency_priority: false,
            congestion_control: true,
            congestion_algorithm: congestion::CcAlg::Reno,
            window_scale: false,
            sack: false,
            timestamps: false,
            time_wait_ms: 2 * 30_000, // 2 × MSL, scaled for the simulated LAN
            max_retransmits: 12,
            syn_retries: 5,
            backlog: 8,
            do_prints: false,
            do_traces: false,
        }
    }
}

impl TcpConfig {
    /// The in-order segment count at which an immediate ACK is forced
    /// (the byte bound is this × MSS). `ack_coalesce_segments: None`
    /// yields the historical BSD threshold of 2.
    pub fn ack_threshold(&self) -> u32 {
        self.ack_coalesce_segments.unwrap_or(2).max(1)
    }
}

/// The per-connection core the State/Receive/Send/Resend modules operate
/// on: everything about a connection *except* the engine-side plumbing
/// (user handler, timer handles). Module-level tests construct one of
/// these, apply one operation, and compare the TCB against the standard
/// — the paper's test structure.
pub struct ConnCore<P> {
    /// Our port.
    pub local_port: u16,
    /// Peer address and port (`None` while listening).
    pub remote: Option<(P, u16)>,
    /// The connection state.
    pub state: TcpState,
    /// The transmission control block.
    pub tcb: TcbT<P>,
    /// The MSS we advertise on SYNs (from the aux structure's MTU).
    pub our_mss: u32,
}

impl<P: Clone + PartialEq + std::fmt::Debug> ConnCore<P> {
    /// A fresh closed connection core.
    pub fn new(cfg: &TcpConfig, local_port: u16, iss: Seq, our_mss: u32) -> ConnCore<P> {
        let mut tcb = TcbT::new(iss, cfg.send_buffer, cfg.initial_window);
        // The options we will offer at SYN time (each only turns on if
        // the peer offers it back; see `receive`).
        tcb.offer_wscale = cfg.window_scale;
        tcb.offer_sack = cfg.sack;
        tcb.offer_ts = cfg.timestamps;
        if cfg.window_scale {
            tcb.rcv_wscale = tcb::wscale_for(cfg.initial_window);
        }
        tcb.cc = congestion::CcMachine::new(cfg.congestion_algorithm);
        ConnCore { local_port, remote: None, state: TcpState::Closed, tcb, our_mss }
    }
}
