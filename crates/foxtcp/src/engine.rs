//! The Main and Action modules: the quasi-synchronous executor, segment
//! externalization/internalization, timers, and the user-facing
//! operations.
//!
//! "The control structure of our TCP is therefore very simple: executing
//! an operation computes the corresponding actions and queues them onto
//! the connection's to_do queue. ... in the current implementation, the
//! thread executing an operation then executes actions, one at a time,
//! until at least those actions it placed on the queue have completed
//! execution." (paper §4)
//!
//! [`Tcp<L, A>`] is the TCP functor of the paper's Fig. 4. Its type
//! parameters are the functor's structure parameters — the lower
//! protocol and the auxiliary structure — and the `where` bounds are the
//! `sharing type` constraints, checked by the compiler exactly as the
//! paper advertises. [`crate::TcpConfig`] carries the value parameters.

use crate::action::{AttackEvent, LossEvent, TcpAction, TimerKind};
use crate::demux::{Demux, DemuxStats};
use crate::receive::{self, ListenVerdict};
use crate::send;
use crate::state;
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use fox_scheduler::SchedHandle;
use foxbasis::buf::copy_mark;
use foxbasis::fifo::Fifo;
use foxbasis::obs::{ConnMetrics, Event, EventSink};
use foxbasis::seq::Seq;
use foxbasis::time::{VirtualDuration, VirtualTime};
use foxbasis::trace::Trace;
use foxbasis::wheel::{TimerWheel, WheelStats};
use foxproto::aux::IpAux;
use foxproto::{Handler, ProtoError, Protocol};
use foxwire::tcp::TcpSegment;
use simnet::HostHandle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A TCP connection handle.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TcpConnId(pub u32);

/// What `open` matches: the paper's `address` (active) or
/// `address_pattern` (passive).
#[derive(Clone, Debug)]
pub enum TcpPattern<P> {
    /// Active open to `remote:remote_port`; `local_port` 0 means pick an
    /// ephemeral port.
    Active {
        /// Peer address at the lower layer.
        remote: P,
        /// Peer TCP port.
        remote_port: u16,
        /// Our port (0 = ephemeral).
        local_port: u16,
    },
    /// Passive open on `local_port`.
    Passive {
        /// The port to listen on.
        local_port: u16,
    },
}

/// Events delivered to a connection's upcall handler.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TcpEvent {
    /// The three-way handshake completed.
    Established,
    /// In-order payload.
    Data(Vec<u8>),
    /// The peer sent FIN: no more data will arrive.
    PeerClosed,
    /// The connection is fully closed.
    Closed,
    /// The peer reset the connection.
    Reset,
    /// The user timeout (or retransmission give-up) fired.
    TimedOut,
    /// (Listeners only) a new connection arrived; adopt it with
    /// [`Tcp::set_handler`].
    NewConnection(TcpConnId),
    /// The peer signalled urgent data up to the given stream offset
    /// (relative to the connection's initial receive sequence number).
    Urgent(u32),
}

/// Aggregate statistics (several of the benchmark tables read these).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Segments received and processed.
    pub segments_received: u64,
    /// Payload bytes transmitted (including retransmissions).
    pub bytes_sent: u64,
    /// Payload bytes delivered to users.
    pub bytes_delivered: u64,
    /// Segments retransmitted.
    pub retransmits: u64,
    /// Segments the §4 fast path fully handled.
    pub fastpath_hits: u64,
    /// Segments that fell through to the full DAG.
    pub fastpath_misses: u64,
    /// Segments dropped for bad checksums.
    pub checksum_failures: u64,
    /// RSTs transmitted.
    pub rsts_sent: u64,
    /// Segments that arrived out of order.
    pub out_of_order: u64,
    /// Pure ACKs transmitted.
    pub acks_sent: u64,
    /// Actions executed through to_do queues.
    pub actions_executed: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Fast retransmissions (three duplicate ACKs, no timer).
    pub fast_retransmits: u64,
    /// Fast-recovery episodes entered (Reno/NewReno).
    pub recoveries: u64,
    /// Retransmission timer expirations that actually retransmitted.
    pub rto_fires: u64,
    /// Zero-window probes sent by the persist timer.
    pub probe_fires: u64,
    /// SYNs dropped because the listener's accept queue was full.
    pub syns_dropped: u64,
    /// In-window RSTs rejected because their sequence number was not
    /// exactly RCV.NXT (blind-reset attempts; RFC 5961 §3.2). Each one
    /// was answered with a challenge ACK instead of aborting.
    pub rst_rejected_seq: u64,
    /// ACKs dropped because they acknowledged data never sent
    /// (optimistic-ACK attempts; SEG.ACK > SND.NXT).
    pub acks_ignored_unsent_data: u64,
    /// Real buffer copies ([`foxbasis::buf`] copy counter deltas)
    /// observed while externalizing/internalizing segments. Purely
    /// observational: the virtual cost model charges the paper's per-KB
    /// constants independently.
    pub buf_copies: u64,
    /// Bytes moved by those copies.
    pub buf_copy_bytes: u64,
}

struct Conn<P> {
    id: u32,
    core: ConnCore<P>,
    handler: Option<Handler<TcpEvent>>,
    pending_events: Vec<TcpEvent>,
    timers: [Option<foxbasis::wheel::TimerId>; 5],
    /// The listener that spawned this connection, if any.
    parent: Option<u32>,
    /// Set once a terminal event (Closed/Reset/TimedOut) was delivered.
    finished: bool,
}

fn timer_index(kind: TimerKind) -> usize {
    match kind {
        TimerKind::Resend => 0,
        TimerKind::DelayedAck => 1,
        TimerKind::Persist => 2,
        TimerKind::TimeWait => 3,
        TimerKind::UserTimeout => 4,
    }
}

/// The TCP functor (paper Fig. 4).
///
/// ```text
/// functor Tcp
///   (structure Lower: PROTOCOL            -- L
///    structure Aux: IP_AUX                -- A
///    sharing type Lower.address = Aux.address      -- A::Address = L::Peer
///    and type Lower.incoming_message = Aux.incoming_message
///    val initial_window / compute_checksums / ...  -- TcpConfig
///    structure Scheduler: COROUTINE       -- SchedHandle
///    structure B: FOX_BASIS               -- HostHandle + Trace
///    ...): TCP_PROTOCOL
/// ```
pub struct Tcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    lower: L,
    aux: A,
    cfg: TcpConfig,
    sched: SchedHandle,
    host: HostHandle,
    trace: Trace,
    lower_pattern: L::Pattern,
    lower_conn: Option<L::ConnId>,
    rx: Rc<RefCell<Fifo<L::Incoming>>>,
    conns: Vec<Conn<L::Peer>>,
    next_id: u32,
    next_ephemeral: u16,
    stats: TcpStats,
    obs: EventSink,
    /// All connection timers, one shared wheel: payload is
    /// (connection id, timer kind).
    wheel: TimerWheel<(u32, TimerKind)>,
    /// Keyed segment→connection table; mirrors `conns` exactly.
    demux: Demux,
}

/// The transition-cause a segment carries, by flag precedence: an RST
/// dominates everything, a SYN dominates FIN/ACK, a FIN dominates its
/// piggybacked ACK. Matches the trigger vocabulary of
/// `spec/tcp_fsm.txt` (see `foxlint --fsm-check`).
fn seg_cause(f: &foxwire::tcp::TcpFlags) -> &'static str {
    if f.rst {
        "rst"
    } else if f.syn {
        "syn"
    } else if f.fin {
        "fin"
    } else if f.ack {
        "ack"
    } else {
        "seg"
    }
}

/// Renders wire flags as the event layer's bitmask.
fn obs_flags(f: &foxwire::tcp::TcpFlags) -> u8 {
    use foxbasis::obs::flags;
    let mut bits = 0;
    if f.fin {
        bits |= flags::FIN;
    }
    if f.syn {
        bits |= flags::SYN;
    }
    if f.rst {
        bits |= flags::RST;
    }
    if f.psh {
        bits |= flags::PSH;
    }
    if f.ack {
        bits |= flags::ACK;
    }
    if f.urg {
        bits |= flags::URG;
    }
    bits
}

impl<L, A> Tcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    /// Instantiates the functor.
    pub fn new(
        lower: L,
        aux: A,
        lower_pattern: L::Pattern,
        cfg: TcpConfig,
        sched: SchedHandle,
        host: HostHandle,
    ) -> Tcp<L, A> {
        let trace = Trace::new("tcp", cfg.do_prints, cfg.do_traces);
        let wheel = TimerWheel::new(sched.now());
        Tcp {
            lower,
            aux,
            cfg,
            sched,
            host,
            trace,
            lower_pattern,
            lower_conn: None,
            rx: Rc::new(RefCell::new(Fifo::new())),
            conns: Vec::new(),
            next_id: 0,
            next_ephemeral: 49152,
            stats: TcpStats::default(),
            obs: EventSink::off(),
            wheel,
            demux: Demux::new(),
        }
    }

    /// Installs an event sink; the default ([`EventSink::off`]) records
    /// nothing and costs one branch per emit site.
    pub fn set_obs(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Timer-wheel operation counters (the `tables -- scale` experiment
    /// reports these alongside demux counters).
    pub fn wheel_stats(&self) -> WheelStats {
        self.wheel.stats()
    }

    /// Demux-table operation counters.
    pub fn demux_stats(&self) -> DemuxStats {
        self.demux.stats()
    }

    /// A unified per-connection metrics snapshot: the TCB's live
    /// estimator/window state plus the engine's counters (the engine
    /// counts across connections; single-connection hosts — every
    /// harness station — read them as per-connection).
    pub fn metrics_of(&self, conn: TcpConnId) -> Option<ConnMetrics> {
        let i = self.conn_index(conn)?;
        let tcb = &self.conns[i].core.tcb;
        Some(ConnMetrics {
            srtt_us: tcb.rtt.srtt.map(|d| d.as_micros()),
            rto_us: tcb.rtt.rto.as_micros(),
            cwnd: tcb.cwnd,
            ssthresh: tcb.ssthresh,
            snd_wnd: tcb.snd_wnd,
            bytes_in_flight: tcb.flight_size(),
            fastpath_hits: self.stats.fastpath_hits,
            fastpath_misses: self.stats.fastpath_misses,
            retransmits: self.stats.retransmits,
            fast_retransmits: self.stats.fast_retransmits,
            recoveries: self.stats.recoveries,
            rto_fires: self.stats.rto_fires,
            probe_fires: self.stats.probe_fires,
            segments_sent: self.stats.segments_sent,
            segments_received: self.stats.segments_received,
            bytes_sent: self.stats.bytes_sent,
            bytes_delivered: self.stats.bytes_delivered,
            buf_copies: self.stats.buf_copies,
            buf_copy_bytes: self.stats.buf_copy_bytes,
        })
    }

    /// The `do_prints`/`do_traces` log collected so far (paper Fig. 4's
    /// debugging parameters).
    pub fn trace_log(&self) -> Vec<String> {
        self.trace.messages()
    }

    /// The connection's current state, if it still exists.
    pub fn state_of(&self, conn: TcpConnId) -> Option<TcpState> {
        self.conn_index(conn).map(|i| self.conns[i].core.state.clone())
    }

    /// Free space in the connection's send buffer.
    ///
    /// `Err(NotOpen)` for an unknown (or already reaped) connection —
    /// distinguishable from `Ok(0)`, which means the connection exists
    /// but flow control is pushing back.
    pub fn send_capacity(&self, conn: TcpConnId) -> Result<usize, ProtoError> {
        let i = self.conn_index(conn).ok_or(ProtoError::NotOpen)?;
        Ok(self.conns[i].core.tcb.send_buf.free())
    }

    /// Installs (or replaces) the upcall handler; buffered events are
    /// flushed to it immediately. This is how a listener's user adopts a
    /// [`TcpEvent::NewConnection`] child.
    pub fn set_handler(&mut self, conn: TcpConnId, mut handler: Handler<TcpEvent>) -> Result<(), ProtoError> {
        let i = self.conn_index(conn).ok_or(ProtoError::NotOpen)?;
        for ev in self.conns[i].pending_events.drain(..) {
            handler(ev);
        }
        self.conns[i].handler = Some(handler);
        Ok(())
    }

    /// Accepts as much of `data` as fits the send buffer; returns the
    /// number of bytes taken (0 means flow control pushed back).
    pub fn send_data(&mut self, conn: TcpConnId, data: &[u8]) -> Result<usize, ProtoError> {
        let i = self.conn_index(conn).ok_or(ProtoError::NotOpen)?;
        {
            let core = &mut self.conns[i].core;
            match core.state {
                TcpState::Closed => return Err(ProtoError::NotOpen),
                TcpState::Listen { .. } => return Err(ProtoError::Invalid("send on listener")),
                ref s
                    if !s.can_send()
                        && !matches!(
                            s,
                            TcpState::SynSent { .. } | TcpState::SynActive | TcpState::SynPassive { .. }
                        ) =>
                {
                    return Err(ProtoError::Closing)
                }
                _ => {}
            }
        }
        let now = self.sched.now();
        let taken = {
            let core = &mut self.conns[i].core;
            send::user_send(&self.cfg, core, data, now)
        };
        self.run_actions(conn.0);
        Ok(taken)
    }

    // ----- internals -----

    fn conn_index(&self, conn: TcpConnId) -> Option<usize> {
        self.demux.index_of(conn.0)
    }

    fn index_of_id(&self, id: u32) -> Option<usize> {
        self.demux.index_of(id)
    }

    fn ensure_lower_open(&mut self) -> Result<(), ProtoError> {
        if self.lower_conn.is_none() {
            let q = self.rx.clone();
            self.lower_conn =
                Some(self.lower.open(self.lower_pattern.clone(), Box::new(move |m| q.borrow_mut().add(m)))?);
        }
        Ok(())
    }

    /// RFC 793-style clock-driven initial sequence number, made unique
    /// per connection id. Deterministic under the virtual clock.
    fn new_iss(&self) -> Seq {
        let clock = (self.sched.now().as_micros() / 4) as u32;
        Seq(clock.wrapping_add(self.next_id.wrapping_mul(65_536)).wrapping_add(1))
    }

    fn alloc_ephemeral(&mut self) -> u16 {
        loop {
            let p = self.next_ephemeral;
            self.next_ephemeral = if p == u16::MAX { 49152 } else { p + 1 };
            if !self.demux.port_in_use(p) {
                return p;
            }
        }
    }

    fn new_conn(&mut self, local_port: u16, remote: Option<(L::Peer, u16)>, parent: Option<u32>) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let iss = self.new_iss();
        // RFC 879: the MSS excludes both the IP and TCP headers from
        // the link MTU the aux reports — 1460 on a 1500-byte Ethernet.
        // One shared, saturating helper (the old code subtracted a bare
        // unchecked 20 here and disagreed with xktcp on the clamp).
        let mss = foxwire::tcp::mss_for_mtu(self.aux.mtu() as u32);
        let mut core = ConnCore::new(&self.cfg, local_port, iss, mss);
        core.remote = remote;
        core.tcb.mss = mss;
        // `core.remote` is fixed for the connection's lifetime, so its
        // demux key never needs re-filing.
        let flow = core.remote.as_ref().map(|(a, p)| (A::hash(a), *p));
        self.demux.insert(id, self.conns.len(), local_port, flow);
        self.conns.push(Conn {
            id,
            core,
            handler: None,
            pending_events: Vec::new(),
            timers: Default::default(),
            parent,
            finished: false,
        });
        id
    }

    fn deliver(&mut self, idx: usize, event: TcpEvent) {
        if matches!(event, TcpEvent::Closed | TcpEvent::Reset | TcpEvent::TimedOut) {
            self.conns[idx].finished = true;
        }
        match &mut self.conns[idx].handler {
            Some(h) => h(event),
            None => self.conns[idx].pending_events.push(event),
        }
    }

    /// Externalizes and transmits a segment for connection `idx` (the
    /// Action module's send half).
    fn transmit(&mut self, idx: usize, seg: TcpSegment) {
        let to = match &self.conns[idx].core.remote {
            Some((peer, _)) => peer.clone(),
            None => return, // cannot address: drop (listener RSTs go via transmit_to)
        };
        self.transmit_to(seg, to);
    }

    /// Transmits a segment to an explicit peer (RST replies for unknown
    /// connections have no connection record).
    fn transmit_to(&mut self, seg: TcpSegment, to: L::Peer) {
        let total = seg.header.header_len() + seg.payload.len();
        let pseudo = if self.cfg.compute_checksums { self.aux.check(&to, total) } else { None };
        if pseudo.is_some() {
            self.host.charge_checksum(total);
        }
        self.host.charge_tcp_segment_sized(seg.payload.len());
        self.host.with(|h| h.alloc_segment(seg.payload.len()));
        // One keyed lookup serves both the window bookkeeping and the
        // observability stamp below (the old code scanned twice with the
        // same predicate); skipped when neither needs it.
        let tx_conn = if seg.header.flags.ack || self.obs.is_on() {
            let conns = &self.conns;
            self.demux.lookup_flow(seg.header.src_port, A::hash(&to), seg.header.dst_port, |idx, _id| {
                conns[idx]
                    .core
                    .remote
                    .as_ref()
                    .is_some_and(|(a, p)| A::eq(a, &to) && *p == seg.header.dst_port)
            })
        } else {
            None
        };
        // Remember what window the peer will believe after this segment
        // (post-scaling; SYN windows go out unscaled per RFC 7323).
        if seg.header.flags.ack {
            if let Some((idx, _)) = tx_conn {
                let tcb = &mut self.conns[idx].core.tcb;
                let shift = if seg.header.flags.syn { 0 } else { tcb.adv_wscale() };
                tcb.last_adv_wnd = u32::from(seg.header.window) << shift;
            }
        }
        let mark = copy_mark();
        let bytes = match seg.encode_buf(pseudo) {
            Ok(b) => b,
            Err(e) => {
                self.trace.print(&format!("encode failed: {e}"));
                return;
            }
        };
        let delta = mark.delta();
        if delta.bytes > 0 {
            self.stats.buf_copies += delta.copies;
            self.stats.buf_copy_bytes += delta.bytes;
            self.obs.emit(self.sched.now(), foxbasis::obs::NO_CONN, || Event::BufCopy {
                layer: "tcp_tx",
                bytes: delta.bytes as u32,
            });
        }
        self.stats.segments_sent += 1;
        self.stats.bytes_sent += seg.payload.len() as u64;
        if self.obs.is_on() {
            let conn = tx_conn.map_or(foxbasis::obs::NO_CONN, |(_, id)| id);
            self.obs.emit(self.sched.now(), conn, || Event::SegTx {
                seq: seg.header.seq.0,
                ack: seg.header.ack.0,
                len: seg.payload.len() as u32,
                flags: obs_flags(&seg.header.flags),
                wnd: u32::from(seg.header.window),
            });
        }
        self.trace.trace(|| {
            format!(
                "tx seq={} ack={} len={} {:?} wnd={}",
                seg.header.seq,
                seg.header.ack,
                seg.payload.len(),
                seg.header.flags,
                seg.header.window
            )
        });
        if seg.payload.is_empty() && !seg.header.flags.syn && !seg.header.flags.fin {
            self.stats.acks_sent += 1;
        }
        if seg.header.flags.rst {
            self.stats.rsts_sent += 1;
        }
        let conn = match self.lower_conn {
            Some(c) => c,
            None => return,
        };
        let _ = self.lower.send(conn, to, bytes);
    }

    /// Arms the Fig. 11 timer for `kind` on connection `idx` — on the
    /// shared wheel rather than as a forked coroutine, but with the same
    /// contract: expiry synchronizes only by enqueueing a
    /// `Timer_Expiration` action onto the connection's to_do queue,
    /// never by touching state.
    fn set_timer(&mut self, idx: usize, kind: TimerKind, ms: u64) {
        self.clear_timer(idx, kind);
        self.stats.timers_set += 1;
        self.obs.emit(self.sched.now(), self.conns[idx].id, || Event::TimerSet {
            timer: kind.name(),
            after_ms: ms,
        });
        self.host.charge_thread_op();
        let deadline = self.sched.now() + VirtualDuration::from_millis(ms);
        let id = self.conns[idx].id;
        let tid = self.wheel.arm(deadline, (id, kind));
        self.conns[idx].timers[timer_index(kind)] = Some(tid);
    }

    fn clear_timer(&mut self, idx: usize, kind: TimerKind) {
        if let Some(tid) = self.conns[idx].timers[timer_index(kind)].take() {
            // May already have fired — cancelling then is a no-op, and
            // the clear is still reported (as with the old one-shot
            // timer handles).
            self.wheel.cancel(tid);
            self.obs.emit(self.sched.now(), self.conns[idx].id, || Event::TimerClear { timer: kind.name() });
        }
    }

    /// Drains a connection's to_do queue, executing actions one at a
    /// time — the heart of the quasi-synchronous control structure
    /// (paper Fig. 7).
    fn run_actions(&mut self, conn_id: u32) {
        loop {
            let idx = match self.index_of_id(conn_id) {
                Some(i) => i,
                None => return,
            };
            let action = {
                let todo = self.conns[idx].core.tcb.to_do.clone();
                let mut q = todo.borrow_mut();
                // The paper's §4 priority extension: serve the actions
                // that affect packet latency (outbound segments) first.
                if self.cfg.latency_priority {
                    q.take_first_match(|a| matches!(a, TcpAction::SendSegment(_))).or_else(|| q.next())
                } else {
                    q.next()
                }
            };
            let Some(action) = action else { return };
            self.stats.actions_executed += 1;
            let now = self.sched.now();
            let conn_obs_id = self.conns[idx].id;
            let state_before = if self.obs.is_on() {
                self.obs.emit(now, conn_obs_id, || Event::Action { tag: action.tag() });
                // Only segments and timers can move the state machine
                // from inside the action loop; stamp the cause now,
                // while the action still owns its segment.
                let cause = match &action {
                    TcpAction::ProcessData(seg, _) => seg_cause(&seg.header.flags),
                    TcpAction::TimerExpiration(_) => "timer",
                    _ => "action",
                };
                Some((self.conns[idx].core.state.name(), cause))
            } else {
                None
            };
            match action {
                TcpAction::ProcessData(seg, _src) => {
                    self.obs.emit(now, conn_obs_id, || Event::SegRx {
                        seq: seg.header.seq.0,
                        ack: seg.header.ack.0,
                        len: seg.payload.len() as u32,
                        flags: obs_flags(&seg.header.flags),
                        wnd: u32::from(seg.header.window),
                    });
                    self.trace.trace(|| {
                        format!(
                            "rx seq={} ack={} len={} {:?} state={:?}",
                            seg.header.seq,
                            seg.header.ack,
                            seg.payload.len(),
                            seg.header.flags,
                            self.conns[idx].core.state
                        )
                    });
                    self.host.charge_tcp_segment_sized(seg.payload.len());
                    self.host.with(|h| h.alloc_segment(seg.payload.len()));
                    let mut handled_fast = false;
                    if self.cfg.fast_path {
                        let core = &mut self.conns[idx].core;
                        handled_fast = crate::fastpath::try_fast(&self.cfg, core, &seg, now);
                    }
                    if handled_fast {
                        self.stats.fastpath_hits += 1;
                    } else {
                        self.stats.fastpath_misses += 1;
                        if seg.header.seq != self.conns[idx].core.tcb.rcv_nxt && !seg.payload.is_empty() {
                            self.stats.out_of_order += 1;
                        }
                        let disposition = {
                            let core = &mut self.conns[idx].core;
                            receive::segment_arrives(&self.cfg, core, seg, now)
                        };
                        if let Some(reply) = disposition.reply {
                            self.transmit(idx, reply);
                        }
                    }
                }
                TcpAction::SendSegment(seg) => {
                    self.transmit(idx, seg);
                }
                TcpAction::UserData(data) => {
                    // The user copy happens here — the one the paper
                    // says is "not reflected in the benchmarks".
                    self.conns[idx].core.tcb.recv_buf.skip(data.len());
                    self.stats.bytes_delivered += data.len() as u64;
                    // BSD window-update rule: consuming data may have
                    // grown the window well past what the peer last saw;
                    // tell it, or a zero-window peer stays stuck.
                    {
                        let core = &mut self.conns[idx].core;
                        let wnd = core.tcb.rcv_wnd();
                        let grew = wnd.saturating_sub(core.tcb.last_adv_wnd);
                        let half = (core.tcb.recv_buf.capacity() as u32 / 2).max(1);
                        if core.state == TcpState::Estab && (grew >= 2 * core.tcb.mss || grew >= half) {
                            send::queue_ack(core, now);
                        }
                    }
                    if !data.is_empty() {
                        self.deliver(idx, TcpEvent::Data(data));
                    }
                }
                TcpAction::SetTimer(kind, ms) => self.set_timer(idx, kind, ms),
                TcpAction::ClearTimer(kind) => self.clear_timer(idx, kind),
                TcpAction::TimerExpiration(kind) => {
                    self.obs.emit(now, conn_obs_id, || Event::TimerFire { timer: kind.name() });
                    if kind == TimerKind::Resend {
                        let had_flight = !self.conns[idx].core.tcb.resend_queue.is_empty();
                        if had_flight {
                            self.stats.retransmits += 1;
                        }
                    }
                    let core = &mut self.conns[idx].core;
                    state::timer_expired(&self.cfg, core, kind, now);
                }
                TcpAction::CompleteOpen => self.deliver(idx, TcpEvent::Established),
                TcpAction::CompleteClose => self.deliver(idx, TcpEvent::Closed),
                TcpAction::PeerClose => self.deliver(idx, TcpEvent::PeerClosed),
                TcpAction::PeerReset => self.deliver(idx, TcpEvent::Reset),
                TcpAction::UserTimeoutFired => self.deliver(idx, TcpEvent::TimedOut),
                TcpAction::NewConnection(child) => {
                    self.deliver(idx, TcpEvent::NewConnection(TcpConnId(child)))
                }
                TcpAction::UrgentData(up) => {
                    let offset = up.since(self.conns[idx].core.tcb.irs);
                    self.deliver(idx, TcpEvent::Urgent(offset));
                }
                TcpAction::AckedTo(_) => {}
                TcpAction::Loss(ev) => {
                    self.obs.emit(now, conn_obs_id, || Event::Loss { kind: ev.name() });
                    match ev {
                        LossEvent::FastRetransmit => {
                            self.stats.fast_retransmits += 1;
                            self.stats.retransmits += 1;
                        }
                        LossEvent::RecoveryEntered => self.stats.recoveries += 1,
                        LossEvent::RecoveryExited => {}
                        // The hole retransmitted on a partial ACK is a
                        // retransmission the Resend timer never saw.
                        LossEvent::PartialAck => self.stats.retransmits += 1,
                        // `retransmits` itself is counted when the
                        // Resend timer expires with data outstanding.
                        LossEvent::Rto => self.stats.rto_fires += 1,
                        LossEvent::Probe => self.stats.probe_fires += 1,
                    }
                    self.trace.trace(|| format!("conn {}: loss event {ev:?}", self.conns[idx].id));
                }
                TcpAction::Attack(ev) => {
                    self.obs.emit(now, conn_obs_id, || Event::Attack { kind: ev.name() });
                    match ev {
                        AttackEvent::RstBadSeq => self.stats.rst_rejected_seq += 1,
                        AttackEvent::AckUnsentData => self.stats.acks_ignored_unsent_data += 1,
                    }
                    self.trace.trace(|| format!("conn {}: attack repelled {ev:?}", self.conns[idx].id));
                }
            }
            if let Some((before, cause)) = state_before {
                if let Some(i2) = self.index_of_id(conn_id) {
                    let after = self.conns[i2].core.state.name();
                    if before != after {
                        self.obs.emit(now, conn_obs_id, || Event::StateTransition {
                            from: before,
                            to: after,
                            cause,
                        });
                    }
                }
            }
        }
    }

    /// Internalizes one lower-layer message (the Action module's receive
    /// half): verify the checksum, decode, demultiplex, enqueue a
    /// `Process_Data` action, then drain that connection's queue.
    fn internalize(&mut self, msg: L::Incoming) {
        let (src, seg) = {
            let info = self.aux.info(&msg);
            let pseudo =
                if self.cfg.compute_checksums { self.aux.check(&info.src, info.data.len()) } else { None };
            if pseudo.is_some() {
                self.host.charge_checksum(info.data.len());
            }
            let mark = copy_mark();
            let decoded = TcpSegment::decode_buf(info.data, pseudo);
            let delta = mark.delta();
            if delta.bytes > 0 {
                self.stats.buf_copies += delta.copies;
                self.stats.buf_copy_bytes += delta.bytes;
                self.obs.emit(self.sched.now(), foxbasis::obs::NO_CONN, || Event::BufCopy {
                    layer: "tcp_rx",
                    bytes: delta.bytes as u32,
                });
            }
            match decoded {
                Ok(seg) => (info.src.clone(), seg),
                Err(foxwire::WireError::BadChecksum(_)) => {
                    self.stats.checksum_failures += 1;
                    return;
                }
                Err(_) => return,
            }
        };
        self.stats.segments_received += 1;

        // Demultiplex: exact (remote, ports) match first. The verify
        // closure re-checks full address equality (hash collisions) and
        // the state predicate the old scan applied.
        let exact = {
            let conns = &self.conns;
            self.demux.lookup_flow(seg.header.dst_port, A::hash(&src), seg.header.src_port, |idx, _id| {
                let c = &conns[idx];
                c.core.remote.as_ref().is_some_and(|(a, p)| A::eq(a, &src) && *p == seg.header.src_port)
                    && c.core.state != TcpState::Closed
            })
        };
        if let Some((idx, id)) = exact {
            self.conns[idx].core.tcb.push_action(TcpAction::ProcessData(seg, src));
            self.run_actions(id);
            return;
        }

        // A listener on the port?
        let listener = {
            let conns = &self.conns;
            self.demux.lookup_listener(seg.header.dst_port, |idx, _id| {
                matches!(conns[idx].core.state, TcpState::Listen { .. })
            })
        };
        if let Some((lidx, lid)) = listener {
            match receive::on_listen_segment(seg.header.dst_port, &seg) {
                ListenVerdict::Ignore => {}
                ListenVerdict::Reply(rst) => self.transmit_to(rst, src),
                ListenVerdict::Spawn => {
                    // The verify closure above only accepts Listen, but
                    // stay total on the rx path: treat anything else as
                    // a vanished listener and drop the SYN.
                    let TcpState::Listen { backlog } = self.conns[lidx].core.state else {
                        return;
                    };
                    // The backlog is a real bounded accept queue: it
                    // counts every live child the user has not taken
                    // over yet — embryonic (handshake in flight) and
                    // established-but-unaccepted alike. The dropped SYN
                    // is not answered; the peer's retransmitted SYN
                    // retries admission once the queue has drained.
                    let pending = self
                        .conns
                        .iter()
                        .filter(|c| {
                            c.parent == Some(lid) && c.handler.is_none() && c.core.state != TcpState::Closed
                        })
                        .count();
                    if pending >= backlog {
                        self.stats.syns_dropped += 1;
                        self.trace.trace(|| "SYN dropped: backlog full".into());
                        return;
                    }
                    let child = self.new_conn(
                        seg.header.dst_port,
                        Some((src.clone(), seg.header.src_port)),
                        Some(lid),
                    );
                    let Some(cidx) = self.index_of_id(child) else { return };
                    state::spawn_embryonic(&mut self.conns[cidx].core);
                    self.conns[cidx].core.tcb.push_action(TcpAction::ProcessData(seg, src));
                    self.run_actions(child);
                    // Tell the listener's user about the child.
                    if let Some(lidx) = self.index_of_id(lid) {
                        let lid2 = self.conns[lidx].id;
                        self.conns[lidx].core.tcb.push_action(TcpAction::NewConnection(child));
                        self.run_actions(lid2);
                    }
                }
            }
            return;
        }

        // No connection at all: RFC 793 p. 36.
        if let Some(rst) = receive::on_closed_segment(&self.cfg, seg.header.dst_port, &seg) {
            self.transmit_to(rst, src);
        }
    }

    /// Removes connections that are fully closed, drained, and whose
    /// user has seen the end, keeping the demux table in step.
    fn reap(&mut self) {
        let demux = &mut self.demux;
        let mut removed = false;
        self.conns.retain(|c| {
            let done = c.core.state == TcpState::Closed
                && c.core.tcb.to_do.borrow().is_empty()
                && c.pending_events.is_empty()
                && (c.finished || c.parent.is_some());
            if done {
                removed = true;
                let flow = c.core.remote.as_ref().map(|(a, p)| (A::hash(a), *p));
                demux.remove(c.id, c.core.local_port, flow);
            }
            !done
        });
        if removed {
            for (i, c) in self.conns.iter().enumerate() {
                self.demux.set_index(c.id, i);
            }
        }
    }
}

impl<L, A> Protocol for Tcp<L, A>
where
    L: Protocol,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    type Pattern = TcpPattern<L::Peer>;
    type Peer = ();
    type Incoming = TcpEvent;
    type ConnId = TcpConnId;

    fn open(
        &mut self,
        pattern: TcpPattern<L::Peer>,
        handler: Handler<TcpEvent>,
    ) -> Result<TcpConnId, ProtoError> {
        self.ensure_lower_open()?;
        match pattern {
            TcpPattern::Active { remote, remote_port, local_port } => {
                let local_port = if local_port == 0 { self.alloc_ephemeral() } else { local_port };
                // Same predicate the old scan applied: a live connection
                // with the exact 4-tuple, or any live listener on the
                // port (remote-`None` connections are only listeners).
                let conns = &self.conns;
                let clash = self
                    .demux
                    .lookup_flow(local_port, A::hash(&remote), remote_port, |idx, _id| {
                        let c = &conns[idx];
                        c.core.remote.as_ref().is_some_and(|(a, p)| A::eq(a, &remote) && *p == remote_port)
                            && c.core.state != TcpState::Closed
                    })
                    .is_some()
                    || self
                        .demux
                        .lookup_listener(local_port, |idx, _id| conns[idx].core.state != TcpState::Closed)
                        .is_some();
                if clash {
                    return Err(ProtoError::AlreadyOpen);
                }
                let id = self.new_conn(local_port, Some((remote, remote_port)), None);
                let idx = self.index_of_id(id).expect("created");
                self.conns[idx].handler = Some(handler);
                let now = self.sched.now();
                {
                    let core = &mut self.conns[idx].core;
                    state::active_open(&self.cfg, core, now)?;
                }
                self.obs.emit(now, id, || Event::StateTransition {
                    from: "Closed",
                    to: self.conns[idx].core.state.name(),
                    cause: "open",
                });
                self.run_actions(id);
                Ok(TcpConnId(id))
            }
            TcpPattern::Passive { local_port } => {
                if local_port == 0 {
                    return Err(ProtoError::Invalid("listen port 0"));
                }
                let conns = &self.conns;
                let clash = self
                    .demux
                    .lookup_listener(local_port, |idx, _id| {
                        matches!(conns[idx].core.state, TcpState::Listen { .. })
                    })
                    .is_some();
                if clash {
                    return Err(ProtoError::AlreadyOpen);
                }
                let id = self.new_conn(local_port, None, None);
                let idx = self.index_of_id(id).expect("created");
                self.conns[idx].handler = Some(handler);
                {
                    let core = &mut self.conns[idx].core;
                    state::passive_open(&self.cfg, core)?;
                }
                self.obs.emit(self.sched.now(), id, || Event::StateTransition {
                    from: "Closed",
                    to: self.conns[idx].core.state.name(),
                    cause: "open",
                });
                Ok(TcpConnId(id))
            }
        }
    }

    /// Sends all of `payload` or nothing ([`ProtoError::WouldBlock`] if
    /// the send buffer cannot take it); use [`Tcp::send_data`] for
    /// partial writes.
    fn send(
        &mut self,
        conn: TcpConnId,
        _to: (),
        payload: impl Into<foxbasis::buf::PacketBuf>,
    ) -> Result<(), ProtoError> {
        let payload = payload.into();
        if self.send_capacity(conn)? < payload.len() {
            return Err(ProtoError::WouldBlock);
        }
        let n = self.send_data(conn, &payload.bytes())?;
        debug_assert_eq!(n, payload.len());
        Ok(())
    }

    fn close(&mut self, conn: TcpConnId) -> Result<(), ProtoError> {
        let i = self.conn_index(conn).ok_or(ProtoError::NotOpen)?;
        let now = self.sched.now();
        let before = self.conns[i].core.state.name();
        let res = {
            let core = &mut self.conns[i].core;
            state::close(&self.cfg, core, now)
        };
        let after = self.conns[i].core.state.name();
        if before != after {
            self.obs.emit(now, conn.0, || Event::StateTransition { from: before, to: after, cause: "close" });
        }
        self.run_actions(conn.0);
        res
    }

    fn abort(&mut self, conn: TcpConnId) -> Result<(), ProtoError> {
        let i = self.conn_index(conn).ok_or(ProtoError::NotOpen)?;
        let now = self.sched.now();
        let before = self.conns[i].core.state.name();
        let res = {
            let core = &mut self.conns[i].core;
            state::abort(&self.cfg, core, now)
        };
        let after = self.conns[i].core.state.name();
        if before != after {
            self.obs.emit(self.sched.now(), conn.0, || Event::StateTransition {
                from: before,
                to: after,
                cause: "abort",
            });
        }
        self.run_actions(conn.0);
        res
    }

    fn step(&mut self, now: VirtualTime) -> bool {
        // 0. A host answers (RSTs) even before any user open: make sure
        //    we are attached below.
        let _ = self.ensure_lower_open();
        // 1. Let the clock catch up: due timers enqueue
        //    Timer_Expiration actions, in (deadline, arm order) — the
        //    same total order the scheduler's sleep heap used to give.
        if self.sched.now() < now {
            self.sched.advance_to(now);
            for fired in self.wheel.advance(now) {
                let (cid, kind) = fired.payload;
                if let Some(idx) = self.index_of_id(cid) {
                    self.conns[idx].core.tcb.to_do.borrow_mut().add(TcpAction::TimerExpiration(kind));
                }
            }
        }
        // 2. Pull from below.
        let mut progress = self.lower.step(now);
        // 3. Internalize and process arrivals.
        loop {
            let msg = match self.rx.borrow_mut().next() {
                Some(m) => m,
                None => break,
            };
            progress = true;
            self.internalize(msg);
        }
        // 4. Drain queues filled by timer expirations.
        let ids: Vec<u32> = self.conns.iter().map(|c| c.id).collect();
        for id in ids {
            if let Some(idx) = self.index_of_id(id) {
                if !self.conns[idx].core.tcb.to_do.borrow().is_empty() {
                    progress = true;
                    self.run_actions(id);
                }
            }
        }
        self.reap();
        progress
    }
}

impl<L, A> fmt::Debug for Tcp<L, A>
where
    L: Protocol + fmt::Debug,
    A: IpAux<Address = L::Peer, Incoming = L::Incoming>,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tcp(conns={}, over {:?})", self.conns.len(), self.lower)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testlink::{LinkPair, TestAux, TestLower};
    use std::cell::RefCell;
    use std::rc::Rc;

    type Engine = Tcp<TestLower, TestAux>;

    struct Host {
        tcp: Engine,
        #[allow(dead_code)]
        sched: SchedHandle,
        events: Rc<RefCell<Vec<(TcpConnId, TcpEvent)>>>,
    }

    impl Host {
        fn new(link: &LinkPair, side: u8, cfg: TcpConfig) -> Host {
            Host::with_host(link, side, cfg, HostHandle::free())
        }

        fn with_host(link: &LinkPair, side: u8, cfg: TcpConfig, hh: HostHandle) -> Host {
            let sched = SchedHandle::new();
            let tcp = Tcp::new(link.endpoint(side), TestAux, (), cfg, sched.clone(), hh);
            Host { tcp, sched, events: Rc::new(RefCell::new(Vec::new())) }
        }

        fn recorder(&self, id_hint: u32) -> Handler<TcpEvent> {
            let ev = self.events.clone();
            Box::new(move |e| ev.borrow_mut().push((TcpConnId(id_hint), e)))
        }

        /// Adopt a connection with a recording handler tagged by its id.
        fn adopt(&mut self, conn: TcpConnId) {
            let ev = self.events.clone();
            self.tcp.set_handler(conn, Box::new(move |e| ev.borrow_mut().push((conn, e)))).unwrap();
        }

        fn events_of(&self, conn: TcpConnId) -> Vec<TcpEvent> {
            self.events.borrow().iter().filter(|(c, _)| *c == conn).map(|(_, e)| e.clone()).collect()
        }

        fn received_bytes(&self, conn: TcpConnId) -> Vec<u8> {
            self.events_of(conn)
                .into_iter()
                .filter_map(|e| match e {
                    TcpEvent::Data(d) => Some(d),
                    _ => None,
                })
                .flatten()
                .collect()
        }
    }

    /// Step both hosts at `now` until neither makes progress.
    fn settle(a: &mut Host, b: &mut Host, now: VirtualTime) {
        for _ in 0..500 {
            let pa = a.tcp.step(now);
            let pb = b.tcp.step(now);
            if !pa && !pb {
                return;
            }
        }
        panic!("did not settle");
    }

    /// Advance both hosts through virtual time in `tick_ms` steps.
    fn run_for(a: &mut Host, b: &mut Host, from: VirtualTime, ms: u64, tick_ms: u64) -> VirtualTime {
        let mut now = from;
        let end = from + VirtualDuration::from_millis(ms);
        while now < end {
            now = (now + VirtualDuration::from_millis(tick_ms)).min(end);
            settle(a, b, now);
        }
        end
    }

    fn open_pair(a: &mut Host, b: &mut Host) -> (TcpConnId, TcpConnId) {
        let _listener = b.tcp.open(TcpPattern::Passive { local_port: 80 }, b.recorder(999)).unwrap();
        let ev = a.events.clone();
        let client = a
            .tcp
            .open(
                TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 },
                Box::new(move |e| ev.borrow_mut().push((TcpConnId(u32::MAX), e))),
            )
            .unwrap();
        settle(a, b, VirtualTime::ZERO);
        // The listener got a NewConnection event (recorded under tag 999).
        let child = b
            .events_of(TcpConnId(999))
            .into_iter()
            .find_map(|e| match e {
                TcpEvent::NewConnection(c) => Some(c),
                _ => None,
            })
            .expect("listener should see the child");
        b.adopt(child);
        (client, child)
    }

    #[test]
    fn three_way_handshake_establishes_both_sides() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        assert_eq!(a.tcp.state_of(client), Some(TcpState::Estab));
        assert_eq!(b.tcp.state_of(child), Some(TcpState::Estab));
        assert!(a.events.borrow().iter().any(|(_, e)| *e == TcpEvent::Established));
        assert!(b.events_of(child).contains(&TcpEvent::Established));
    }

    #[test]
    fn data_flows_client_to_server() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        a.tcp.send(client, (), b"hello from the fox".to_vec()).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(b.received_bytes(child), b"hello from the fox");
    }

    #[test]
    fn data_flows_both_directions() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig { nagle: false, ..TcpConfig::default() });
        let (client, child) = open_pair(&mut a, &mut b);
        a.tcp.send(client, (), b"ping".to_vec()).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        b.tcp.send(child, (), b"pong".to_vec()).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(b.received_bytes(child), b"ping");
        assert_eq!(a.received_bytes(TcpConnId(u32::MAX)), b"pong");
    }

    #[test]
    fn bulk_transfer_with_flow_control() {
        // 100 KB through a 4096-byte window: many round trips, windows
        // opening and closing, delayed ACKs, the works.
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut sent = 0;
        let mut now = VirtualTime::ZERO;
        let mut spins = 0;
        while sent < payload.len() {
            let n = a.tcp.send_data(client, &payload[sent..]).unwrap();
            sent += n;
            now = run_for(&mut a, &mut b, now, 50, 10);
            spins += 1;
            assert!(spins < 10_000, "transfer wedged at {sent} bytes");
        }
        now = run_for(&mut a, &mut b, now, 2000, 50);
        let got = b.received_bytes(child);
        assert_eq!(got.len(), payload.len());
        assert_eq!(got, payload);
        let _ = now;
    }

    /// Satellite regression: segments the fast path fully handles must
    /// charge exactly the accounts (and update exactly the stats) the
    /// full SEGMENT-ARRIVES DAG would.
    #[test]
    fn fast_and_slow_path_charge_the_same_accounts() {
        use foxbasis::profile::Account;
        use simnet::{CostModel, Host as SimHost};

        fn run(fast_path: bool) -> (Vec<(u64, u64)>, TcpStats, TcpStats) {
            let link = LinkPair::new();
            let cfg = TcpConfig { nagle: false, fast_path, ..TcpConfig::default() };
            let ha = HostHandle::new(SimHost::new("a", CostModel::decstation_sml(), true));
            let hb = HostHandle::new(SimHost::new("b", CostModel::decstation_sml(), true));
            let mut a = Host::with_host(&link, 0, cfg.clone(), ha.clone());
            let mut b = Host::with_host(&link, 1, cfg, hb.clone());
            let (client, child) = open_pair(&mut a, &mut b);
            // Bidirectional bulk: exercises both fast-path cases (pure
            // ACK of new data, pure in-order data) on both hosts.
            let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
            let (mut sa, mut sb) = (0, 0);
            let mut now = VirtualTime::ZERO;
            while sa < payload.len() || sb < payload.len() {
                if sa < payload.len() {
                    sa += a.tcp.send_data(client, &payload[sa..]).unwrap();
                }
                if sb < payload.len() {
                    sb += b.tcp.send_data(child, &payload[sb..]).unwrap();
                }
                now = run_for(&mut a, &mut b, now, 50, 10);
            }
            run_for(&mut a, &mut b, now, 1000, 50);
            assert_eq!(b.received_bytes(child).len(), payload.len());
            assert_eq!(a.received_bytes(TcpConnId(u32::MAX)).len(), payload.len());
            let accounts = Account::ALL
                .iter()
                .map(|&acc| {
                    (
                        ha.with(|h| h.profiler().total(acc)).as_micros(),
                        hb.with(|h| h.profiler().total(acc)).as_micros(),
                    )
                })
                .collect();
            (accounts, a.tcp.stats(), b.tcp.stats())
        }

        let (acc_fast, a_fast, b_fast) = run(true);
        let (acc_slow, a_slow, b_slow) = run(false);
        assert!(a_fast.fastpath_hits > 0, "fast run must actually take the fast path");
        assert_eq!(a_slow.fastpath_hits, 0);
        assert_eq!(acc_fast, acc_slow, "fast and slow path must charge the same accounts");
        // Same stats, except the hit/miss split that defines the paths.
        let neutral = |mut s: TcpStats| {
            s.fastpath_hits = 0;
            s.fastpath_misses = 0;
            s
        };
        assert_eq!(neutral(a_fast), neutral(a_slow));
        assert_eq!(neutral(b_fast), neutral(b_slow));
    }

    /// The obs layer sees the whole life of a connection: transitions,
    /// actions, timers, segments — and metrics summarize it.
    #[test]
    fn obs_records_typed_events_and_metrics() {
        use foxbasis::obs::{flags, EventSink};

        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let sink = EventSink::recording(4096);
        a.tcp.set_obs(sink.for_host(0));
        b.tcp.set_obs(sink.for_host(1));
        let (client, child) = open_pair(&mut a, &mut b);
        a.tcp.send(client, (), b"observable".to_vec()).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        let m = b.tcp.metrics_of(child).expect("child metrics");
        assert!(m.segments_received > 0);
        assert_eq!(m.bytes_delivered, 10);
        a.tcp.close(client).unwrap();
        b.tcp.close(child).unwrap();
        run_for(&mut a, &mut b, VirtualTime::ZERO, 120_000, 5_000);

        let evs = sink.events();
        let has = |f: &dyn Fn(&Event) -> bool| evs.iter().any(|e| f(&e.event));
        assert!(has(&|e| matches!(e, Event::StateTransition { to: "Estab", .. })));
        assert!(has(&|e| matches!(e, Event::StateTransition { to: "TimeWait", .. })));
        assert!(has(&|e| matches!(e, Event::SegTx { flags: f, .. } if *f == flags::SYN)));
        assert!(has(&|e| matches!(e, Event::SegRx { flags: f, .. } if *f == flags::SYN | flags::ACK)));
        assert!(has(&|e| matches!(e, Event::Action { tag: "Process_Data" })));
        assert!(has(&|e| matches!(e, Event::TimerSet { timer: "Resend", .. })));
        assert!(has(&|e| matches!(e, Event::TimerFire { timer: "TimeWait" })));
        assert!(evs.iter().any(|e| e.host == 0) && evs.iter().any(|e| e.host == 1));
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn graceful_close_sequence() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);

        a.tcp.close(client).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        // Peer saw our FIN.
        assert!(b.events_of(child).contains(&TcpEvent::PeerClosed));
        assert_eq!(b.tcp.state_of(child), Some(TcpState::CloseWait));
        assert_eq!(a.tcp.state_of(client), Some(TcpState::FinWait2));

        b.tcp.close(child).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert!(a.events_of(TcpConnId(u32::MAX)).contains(&TcpEvent::PeerClosed));
        // b's side is fully closed (reaped after Closed event).
        assert!(b.events_of(child).contains(&TcpEvent::Closed));
        // a lingers in TIME-WAIT.
        assert_eq!(a.tcp.state_of(client), Some(TcpState::TimeWait));
        // ... and completes after 2MSL.
        run_for(&mut a, &mut b, VirtualTime::ZERO, 61_000, 1000);
        assert!(a.events_of(TcpConnId(u32::MAX)).contains(&TcpEvent::Closed));
        assert_eq!(a.tcp.state_of(client), None, "reaped after close");
    }

    #[test]
    fn connect_to_closed_port_is_reset() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let ev = a.events.clone();
        let client = a
            .tcp
            .open(
                TcpPattern::Active { remote: 1, remote_port: 4444, local_port: 0 },
                Box::new(move |e| ev.borrow_mut().push((TcpConnId(7), e))),
            )
            .unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert!(a.events_of(TcpConnId(7)).contains(&TcpEvent::Reset));
        assert_eq!(a.tcp.state_of(client), None, "connection reaped after reset");
        assert_eq!(b.tcp.stats().rsts_sent, 1);
    }

    #[test]
    fn syn_advertises_rfc_879_mss_for_the_link() {
        // Regression for the MSS derivation: the test link reports the
        // conventional 1500-byte Ethernet MTU, and the SYN on the wire
        // must carry 1460 — both 20-byte headers subtracted, through
        // the one shared `mss_for_mtu` helper.
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let seen = Rc::new(RefCell::new(Vec::new()));
        let tap = seen.clone();
        link.set_filter_toward(
            1,
            Box::new(move |bytes| {
                if let Ok(seg) = TcpSegment::decode_buf(bytes, None) {
                    if seg.header.flags.syn {
                        tap.borrow_mut().push(seg.header.mss());
                    }
                }
                true
            }),
        );
        let (client, _child) = open_pair(&mut a, &mut b);
        assert_eq!(seen.borrow().as_slice(), &[Some(1460)], "one SYN, MSS 1460 for MTU 1500");
        assert!(a.tcp.state_of(client).is_some());
    }

    #[test]
    fn transfer_survives_packet_loss() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        // Drop every 5th frame toward the server.
        let counter = Rc::new(RefCell::new(0u32));
        let c = counter.clone();
        link.set_filter_toward(
            1,
            Box::new(move |_| {
                *c.borrow_mut() += 1;
                !(*c.borrow()).is_multiple_of(5)
            }),
        );
        let payload: Vec<u8> = (0..30_000u32).map(|i| (i % 241) as u8).collect();
        let mut sent = 0;
        let mut now = VirtualTime::ZERO;
        let mut spins = 0;
        while sent < payload.len() {
            sent += a.tcp.send_data(client, &payload[sent..]).unwrap();
            now = run_for(&mut a, &mut b, now, 200, 50);
            spins += 1;
            assert!(spins < 5000, "lossy transfer wedged at {sent}");
        }
        run_for(&mut a, &mut b, now, 30_000, 250);
        let got = b.received_bytes(child);
        assert_eq!(got.len(), payload.len(), "all bytes despite loss");
        assert_eq!(got, payload);
        assert!(a.tcp.stats().retransmits > 0, "loss must cause retransmissions");
        assert!(link.dropped() > 0);
    }

    #[test]
    fn syn_retransmits_then_gives_up() {
        let link = LinkPair::new();
        let mut a = Host::new(
            &link,
            0,
            TcpConfig { syn_retries: 2, user_timeout_ms: 600_000, ..TcpConfig::default() },
        );
        let mut b = Host::new(&link, 1, TcpConfig::default());
        // Black-hole everything toward b.
        link.set_filter_toward(1, Box::new(|_| false));
        let ev = a.events.clone();
        let client = a
            .tcp
            .open(
                TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 },
                Box::new(move |e| ev.borrow_mut().push((TcpConnId(7), e))),
            )
            .unwrap();
        run_for(&mut a, &mut b, VirtualTime::ZERO, 120_000, 500);
        assert!(a.events_of(TcpConnId(7)).contains(&TcpEvent::TimedOut), "{:?}", a.events);
        assert_eq!(a.tcp.state_of(client), None);
        assert!(link.dropped() >= 3, "initial SYN plus at least 2 retries");
    }

    #[test]
    fn zero_window_then_reopen_via_probe() {
        // Server app stops consuming (we emulate by a tiny window),
        // then the client's persist probe keeps the connection alive.
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        // Server with a 512-byte window.
        let mut b = Host::new(&link, 1, TcpConfig { initial_window: 512, ..TcpConfig::default() });
        let (client, child) = open_pair(&mut a, &mut b);
        let payload = vec![0x5a_u8; 4000];
        let mut sent = 0;
        let mut now = VirtualTime::ZERO;
        let mut spins = 0;
        while sent < payload.len() {
            sent += a.tcp.send_data(client, &payload[sent..]).unwrap();
            now = run_for(&mut a, &mut b, now, 400, 100);
            spins += 1;
            assert!(spins < 3000, "zero-window transfer wedged at {sent}");
        }
        run_for(&mut a, &mut b, now, 20_000, 250);
        assert_eq!(b.received_bytes(child).len(), payload.len());
    }

    #[test]
    fn listener_backlog_bounds_embryonic_connections() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig { backlog: 1, ..TcpConfig::default() });
        let _listener = b.tcp.open(TcpPattern::Passive { local_port: 80 }, b.recorder(999)).unwrap();
        // Stop SYN+ACKs from reaching client so children stay embryonic.
        link.set_filter_toward(0, Box::new(|_| false));
        for i in 0..3 {
            let _ = a.tcp.open(
                TcpPattern::Active { remote: 1, remote_port: 80, local_port: 10_000 + i },
                Box::new(|_| {}),
            );
        }
        settle(&mut a, &mut b, VirtualTime::ZERO);
        let embryonic =
            (0..200u32).filter_map(|i| b.tcp.state_of(TcpConnId(i))).filter(|s| s.is_syn_received()).count();
        assert_eq!(embryonic, 1, "backlog 1 admits a single embryonic child");
    }

    #[test]
    fn abort_sends_rst_peer_sees_reset() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        a.tcp.abort(client).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert!(b.events_of(child).contains(&TcpEvent::Reset));
        assert!(a.events_of(TcpConnId(u32::MAX)).contains(&TcpEvent::Closed));
    }

    #[test]
    fn send_on_unknown_connection_errors() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        assert_eq!(a.tcp.send(TcpConnId(42), (), b"x".to_vec()), Err(ProtoError::NotOpen));
        assert_eq!(a.tcp.close(TcpConnId(42)), Err(ProtoError::NotOpen));
    }

    #[test]
    fn send_pushback_when_buffer_full() {
        let link = LinkPair::new();
        let mut a =
            Host::new(&link, 0, TcpConfig { send_buffer: 1000, nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig { initial_window: 256, ..TcpConfig::default() });
        let (client, _child) = open_pair(&mut a, &mut b);
        // Fill beyond window + buffer.
        let r = a.tcp.send(client, (), vec![0; 5000]);
        assert_eq!(r, Err(ProtoError::WouldBlock));
        let n = a.tcp.send_data(client, &vec![0; 5000]).unwrap();
        assert!(n > 0 && n <= 1000);
    }

    #[test]
    fn duplicate_active_open_rejected() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        a.tcp
            .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}))
            .unwrap();
        let again =
            a.tcp.open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}));
        assert_eq!(again.unwrap_err(), ProtoError::AlreadyOpen);
    }

    #[test]
    fn duplicate_listen_rejected() {
        let link = LinkPair::new();
        let mut b = Host::new(&link, 1, TcpConfig::default());
        b.tcp.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        assert_eq!(
            b.tcp.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap_err(),
            ProtoError::AlreadyOpen
        );
    }

    #[test]
    fn server_close_first_client_second() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig::default());
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        b.tcp.close(child).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert_eq!(a.tcp.state_of(client), Some(TcpState::CloseWait));
        a.tcp.close(client).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        assert!(a.events_of(TcpConnId(u32::MAX)).contains(&TcpEvent::Closed));
        // Server side lingers in TIME-WAIT, then finishes.
        assert_eq!(b.tcp.state_of(child), Some(TcpState::TimeWait));
        run_for(&mut a, &mut b, VirtualTime::ZERO, 61_000, 1000);
        assert!(b.events_of(child).contains(&TcpEvent::Closed));
        assert_eq!(b.tcp.state_of(child), None);
    }

    #[test]
    fn data_before_close_is_delivered_with_fin() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, child) = open_pair(&mut a, &mut b);
        a.tcp.send(client, (), b"last words".to_vec()).unwrap();
        a.tcp.close(client).unwrap();
        settle(&mut a, &mut b, VirtualTime::ZERO);
        let evs = b.events_of(child);
        assert_eq!(b.received_bytes(child), b"last words");
        let data_pos = evs.iter().position(|e| matches!(e, TcpEvent::Data(_))).unwrap();
        let fin_pos = evs.iter().position(|e| *e == TcpEvent::PeerClosed).unwrap();
        assert!(data_pos < fin_pos, "data precedes the close notice: {evs:?}");
    }

    #[test]
    fn determinism_same_run_same_stats() {
        let run = || {
            let link = LinkPair::new();
            let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
            let mut b = Host::new(&link, 1, TcpConfig::default());
            let (client, child) = open_pair(&mut a, &mut b);
            let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 7) as u8).collect();
            let mut sent = 0;
            let mut now = VirtualTime::ZERO;
            while sent < payload.len() {
                sent += a.tcp.send_data(client, &payload[sent..]).unwrap();
                now = run_for(&mut a, &mut b, now, 50, 10);
            }
            run_for(&mut a, &mut b, now, 1000, 50);
            let _ = child;
            (a.tcp.stats(), b.tcp.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fast_path_dominates_bulk_transfer() {
        let link = LinkPair::new();
        let mut a = Host::new(&link, 0, TcpConfig { nagle: false, ..TcpConfig::default() });
        let mut b = Host::new(&link, 1, TcpConfig::default());
        let (client, _child) = open_pair(&mut a, &mut b);
        let payload = vec![3u8; 50_000];
        let mut sent = 0;
        let mut now = VirtualTime::ZERO;
        while sent < payload.len() {
            sent += a.tcp.send_data(client, &payload[sent..]).unwrap();
            now = run_for(&mut a, &mut b, now, 50, 10);
        }
        run_for(&mut a, &mut b, now, 1000, 50);
        let b_stats = b.tcp.stats();
        assert!(
            b_stats.fastpath_hits > b_stats.fastpath_misses,
            "receiver fast path should dominate: {b_stats:?}"
        );
    }
}

#[cfg(test)]
mod priority_tests {
    //! The §4 scheduling extension: with `latency_priority` on, queued
    //! outbound segments are executed ahead of other actions.

    use super::*;
    use crate::testlink::{LinkPair, TestAux};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn send_segments_jump_the_queue() {
        let cfg =
            TcpConfig { latency_priority: true, nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
        let link = LinkPair::new();
        let sched = SchedHandle::new();
        let mut a = Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), sched.clone(), HostHandle::free());
        let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        let conn = a
            .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {}))
            .unwrap();
        for _ in 0..50 {
            a.step(VirtualTime::ZERO);
            b.step(VirtualTime::ZERO);
        }
        assert_eq!(a.state_of(conn), Some(TcpState::Estab));
        // Adopt the child so its data lands somewhere.
        let child = TcpConnId(1);
        b.set_handler(
            child,
            Box::new(move |ev| {
                if let TcpEvent::Data(d) = ev {
                    g.borrow_mut().extend_from_slice(&d);
                }
            }),
        )
        .unwrap();
        a.send(conn, (), b"priority-scheduled".to_vec()).unwrap();
        for _ in 0..50 {
            a.step(VirtualTime::ZERO);
            b.step(VirtualTime::ZERO);
        }
        assert_eq!(
            &got.borrow()[..],
            b"priority-scheduled",
            "correctness unchanged under priority scheduling"
        );
    }

    #[test]
    fn priority_and_fifo_deliver_identical_streams() {
        let run = |priority: bool| {
            let cfg = TcpConfig {
                latency_priority: priority,
                nagle: false,
                delayed_ack_ms: None,
                ..TcpConfig::default()
            };
            let link = LinkPair::new();
            let mut a =
                Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
            let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());
            let got = Rc::new(RefCell::new(Vec::new()));
            let g = got.clone();
            b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
            let conn = a
                .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {}))
                .unwrap();
            let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
            let mut sent = 0;
            let mut now = VirtualTime::ZERO;
            let mut adopted = false;
            for _ in 0..100_000 {
                now += VirtualDuration::from_millis(1);
                if sent < payload.len() {
                    sent += a.send_data(conn, &payload[sent..]).unwrap_or(0);
                }
                a.step(now);
                b.step(now);
                if !adopted {
                    let g2 = g.clone();
                    adopted = b
                        .set_handler(
                            TcpConnId(1),
                            Box::new(move |ev| {
                                if let TcpEvent::Data(d) = ev {
                                    g2.borrow_mut().extend_from_slice(&d);
                                }
                            }),
                        )
                        .is_ok();
                }
                if got.borrow().len() >= payload.len() {
                    break;
                }
            }
            assert_eq!(got.borrow().len(), payload.len(), "priority={priority}");
            let out = got.borrow().clone();
            (out, payload)
        };
        let (fifo_stream, payload) = run(false);
        let (prio_stream, _) = run(true);
        assert_eq!(fifo_stream, payload);
        assert_eq!(prio_stream, payload, "byte stream identical under either scheduler");
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::testlink::{LinkPair, TestAux};
    use foxwire::tcp::{TcpFlags, TcpHeader, TcpSegment};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn engine(link: &LinkPair, side: u8, cfg: TcpConfig) -> Tcp<crate::testlink::TestLower, TestAux> {
        Tcp::new(link.endpoint(side), TestAux, (), cfg, SchedHandle::new(), HostHandle::free())
    }

    fn spin(
        a: &mut Tcp<crate::testlink::TestLower, TestAux>,
        b: &mut Tcp<crate::testlink::TestLower, TestAux>,
    ) {
        for _ in 0..200 {
            let p = a.step(VirtualTime::ZERO);
            let q = b.step(VirtualTime::ZERO);
            if !p && !q {
                break;
            }
        }
    }

    #[test]
    fn simultaneous_open_establishes_both_sides() {
        // Both ends actively open to each other with fixed ports: the
        // SYNs cross, each side enters Syn_Active (the paper's
        // active-open SYN-RECEIVED variant), and both establish.
        let link = LinkPair::new();
        let cfg = TcpConfig::default();
        let mut a = engine(&link, 0, cfg.clone());
        let mut b = engine(&link, 1, cfg);
        let ev_a = Rc::new(RefCell::new(Vec::new()));
        let ev_b = Rc::new(RefCell::new(Vec::new()));
        let (ea, eb) = (ev_a.clone(), ev_b.clone());
        let ca = a
            .open(
                TcpPattern::Active { remote: 1, remote_port: 2000, local_port: 1000 },
                Box::new(move |e| ea.borrow_mut().push(e)),
            )
            .unwrap();
        let cb = b
            .open(
                TcpPattern::Active { remote: 0, remote_port: 1000, local_port: 2000 },
                Box::new(move |e| eb.borrow_mut().push(e)),
            )
            .unwrap();
        spin(&mut a, &mut b);
        assert_eq!(a.state_of(ca), Some(TcpState::Estab), "events: {:?}", ev_a.borrow());
        assert_eq!(b.state_of(cb), Some(TcpState::Estab), "events: {:?}", ev_b.borrow());
        assert!(ev_a.borrow().contains(&TcpEvent::Established));
        assert!(ev_b.borrow().contains(&TcpEvent::Established));
    }

    #[test]
    fn urgent_pointer_signalled_once_per_region() {
        let link = LinkPair::new();
        // Immediate ACKs and no Nagle: the test spins at a frozen clock,
        // so nothing timer-driven can fire.
        let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
        let mut a = engine(&link, 0, cfg.clone());
        let mut b = engine(&link, 1, cfg);
        let ev = Rc::new(RefCell::new(Vec::new()));
        let e2 = ev.clone();
        b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        let ca = a
            .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}))
            .unwrap();
        spin(&mut a, &mut b);
        assert_eq!(a.state_of(ca), Some(TcpState::Estab));
        b.set_handler(TcpConnId(1), Box::new(move |e| e2.borrow_mut().push(e))).unwrap();
        // Craft an URG segment from a's side by sending data with the
        // URG flag through the raw link: simplest is to use a's engine
        // send and then rewrite... instead, push a hand-built segment
        // into b via the link from endpoint 0's address.
        // a's engine state gives us the right seq numbers:
        a.send(ca, (), b"urgent!".to_vec()).unwrap();
        // Rewrite in flight: set URG + urgent pointer on the data frame.
        // (The test link carries raw TCP bytes; decode, set, re-encode.)
        let pair_filter_installed = Rc::new(RefCell::new(0));
        let n = pair_filter_installed.clone();
        link.set_filter_toward(
            1,
            Box::new(move |bytes| {
                if let Ok(mut seg) = TcpSegment::decode_buf(bytes, None) {
                    if !seg.payload.is_empty() {
                        seg.header.flags.urg = true;
                        seg.header.urgent = seg.payload.len() as u16;
                        *bytes = seg.encode_buf(None).unwrap();
                        *n.borrow_mut() += 1;
                    }
                }
                true
            }),
        );
        // Retransmit will carry the URG flag after the filter mutates it;
        // force one round trip.
        spin(&mut a, &mut b);
        let urgents: Vec<_> =
            ev.borrow().iter().filter(|e| matches!(e, TcpEvent::Urgent(_))).cloned().collect();
        // The data already flowed before the filter was installed in
        // this spin; send one more urgent-marked chunk.
        a.send(ca, (), b"more".to_vec()).unwrap();
        spin(&mut a, &mut b);
        let urgents_after: Vec<_> =
            ev.borrow().iter().filter(|e| matches!(e, TcpEvent::Urgent(_))).cloned().collect();
        assert!(urgents_after.len() > urgents.len(), "urgent event delivered: {:?}", ev.borrow());
        // Data itself still arrives in order.
        let data: Vec<u8> = ev
            .borrow()
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data, b"urgent!more");
    }

    #[test]
    fn traces_record_segment_flow_when_enabled() {
        let link = LinkPair::new();
        let cfg = TcpConfig { do_traces: true, ..TcpConfig::default() };
        let mut a = engine(&link, 0, cfg.clone());
        let mut b = engine(&link, 1, TcpConfig::default());
        b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        a.open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 }, Box::new(|_| {}))
            .unwrap();
        spin(&mut a, &mut b);
        let log = a.trace_log();
        assert!(log.iter().any(|l| l.contains("tx") && l.contains("SYN")), "{log:?}");
        assert!(log.iter().any(|l| l.contains("rx") && l.contains("SYN+ACK")), "{log:?}");
        // Tracing off: silent.
        assert!(b.trace_log().is_empty());
    }

    #[test]
    fn urgent_test_filter_decodes_what_engine_encodes() {
        // Sanity for the filter trick above: decode(encode(x)) == x with
        // checksums off (the TestAux configuration).
        let mut h = TcpHeader::new(1, 2);
        h.flags = TcpFlags::ACK;
        let seg = TcpSegment { header: h, payload: b"xyz"[..].into() };
        let bytes = seg.encode(None).unwrap();
        assert_eq!(TcpSegment::decode(&bytes, None).unwrap(), seg);
    }
}

#[cfg(test)]
mod half_close_tests {
    //! TCP's half-close semantics: after the peer FINs, our side may
    //! keep sending (CLOSE-WAIT is a sending state).

    use super::*;
    use crate::testlink::{LinkPair, TestAux};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn data_flows_from_close_wait() {
        let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
        let link = LinkPair::new();
        let mut a =
            Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
        let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());
        let a_events = Rc::new(RefCell::new(Vec::new()));
        let ae = a_events.clone();
        b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        let ca = a
            .open(
                TcpPattern::Active { remote: 1, remote_port: 80, local_port: 5000 },
                Box::new(move |e| ae.borrow_mut().push(e)),
            )
            .unwrap();
        let spin = |a: &mut Tcp<_, _>, b: &mut Tcp<_, _>| {
            for _ in 0..200 {
                let p = a.step(VirtualTime::ZERO);
                let q = b.step(VirtualTime::ZERO);
                if !p && !q {
                    break;
                }
            }
        };
        spin(&mut a, &mut b);
        let cb = TcpConnId(1);
        b.set_handler(cb, Box::new(|_| {})).unwrap();

        // a closes first: a -> FIN-WAIT, b -> CLOSE-WAIT.
        a.close(ca).unwrap();
        spin(&mut a, &mut b);
        assert_eq!(b.state_of(cb), Some(TcpState::CloseWait));
        assert_eq!(a.state_of(ca), Some(TcpState::FinWait2));

        // b keeps talking on the half-open connection.
        b.send(cb, (), b"parting data".to_vec()).unwrap();
        spin(&mut a, &mut b);
        let data: Vec<u8> = a_events
            .borrow()
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(data, b"parting data", "CLOSE-WAIT can still send");

        // And finally closes: full teardown, a through TIME-WAIT.
        b.close(cb).unwrap();
        spin(&mut a, &mut b);
        assert_eq!(a.state_of(ca), Some(TcpState::TimeWait));
        assert!(a_events.borrow().contains(&TcpEvent::PeerClosed));
    }
}

#[cfg(test)]
mod golden_trace_tests {
    //! "Once the actions have been placed on the queue the behavior of
    //! TCP is completely deterministic and testable" — pinned as a
    //! golden trace: the exact segment sequence of a canonical
    //! handshake + exchange + close, captured via `do_traces`.

    use super::*;
    use crate::testlink::{LinkPair, TestAux};

    #[test]
    fn canonical_session_trace_is_stable() {
        let run = || {
            let cfg =
                TcpConfig { nagle: false, delayed_ack_ms: None, do_traces: true, ..TcpConfig::default() };
            let link = LinkPair::new();
            let mut a =
                Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), SchedHandle::new(), HostHandle::free());
            let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, SchedHandle::new(), HostHandle::free());
            b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
            let ca = a
                .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 9000 }, Box::new(|_| {}))
                .unwrap();
            let spin = |a: &mut Tcp<_, _>, b: &mut Tcp<_, _>| {
                for _ in 0..300 {
                    let p = a.step(VirtualTime::ZERO);
                    let q = b.step(VirtualTime::ZERO);
                    if !p && !q {
                        break;
                    }
                }
            };
            spin(&mut a, &mut b);
            b.set_handler(TcpConnId(1), Box::new(|_| {})).unwrap();
            a.send(ca, (), b"abc".to_vec()).unwrap();
            spin(&mut a, &mut b);
            a.close(ca).unwrap();
            spin(&mut a, &mut b);
            a.trace_log()
        };
        let t1 = run();
        let t2 = run();
        assert_eq!(t1, t2, "byte-identical traces across runs");

        // The flag sequence of a's transmissions is the textbook session.
        let tx_flags: Vec<String> = t1
            .iter()
            .filter(|l| l.contains("tx"))
            .map(|l| {
                l.split_whitespace()
                    .find(|w| {
                        w.contains("SYN") || w.contains("ACK") || w.contains("FIN") || w.contains("<none>")
                    })
                    .unwrap_or("?")
                    .to_string()
            })
            .collect();
        assert_eq!(tx_flags, vec!["SYN", "ACK", "PSH+ACK", "FIN+ACK"], "full log:\n{}", t1.join("\n"));
    }
}

#[cfg(test)]
mod wraparound_tests {
    //! Sequence-number wraparound: a transfer that crosses 2^32 in the
    //! middle of the stream must be seamless — the reason `ubyte4`
    //! arithmetic (our [`foxbasis::seq::Seq`]) exists at all.

    use super::*;
    use crate::testlink::{LinkPair, TestAux};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn stream_crosses_sequence_space_wrap() {
        // Start the virtual clock so the clock-derived ISS sits just
        // below 2^32; a 200 KB transfer then wraps mid-stream.
        let start = VirtualTime::from_micros(((u32::MAX as u64) - 60_000) * 4);
        let cfg = TcpConfig { nagle: false, delayed_ack_ms: None, ..TcpConfig::default() };
        let link = LinkPair::new();
        let sched_a = SchedHandle::from_scheduler(fox_scheduler::Scheduler::starting_at(start));
        let sched_b = SchedHandle::from_scheduler(fox_scheduler::Scheduler::starting_at(start));
        let mut a = Tcp::new(link.endpoint(0), TestAux, (), cfg.clone(), sched_a, HostHandle::free());
        let mut b = Tcp::new(link.endpoint(1), TestAux, (), cfg, sched_b, HostHandle::free());

        let got = Rc::new(RefCell::new(Vec::new()));
        b.open(TcpPattern::Passive { local_port: 80 }, Box::new(|_| {})).unwrap();
        let conn = a
            .open(TcpPattern::Active { remote: 1, remote_port: 80, local_port: 0 }, Box::new(|_| {}))
            .unwrap();

        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
        let mut sent = 0;
        let mut now = start;
        let mut adopted = false;
        for _ in 0..100_000 {
            now += VirtualDuration::from_millis(1);
            if sent < payload.len() {
                sent += a.send_data(conn, &payload[sent..]).unwrap_or(0);
            }
            a.step(now);
            b.step(now);
            if !adopted {
                let g = got.clone();
                adopted = b
                    .set_handler(
                        TcpConnId(1),
                        Box::new(move |ev| {
                            if let TcpEvent::Data(d) = ev {
                                g.borrow_mut().extend_from_slice(&d);
                            }
                        }),
                    )
                    .is_ok();
            }
            if got.borrow().len() >= payload.len() {
                break;
            }
        }
        assert_eq!(got.borrow().len(), payload.len(), "transfer wedged at the wrap");
        assert_eq!(&got.borrow()[..], &payload[..]);
        assert_eq!(a.stats().retransmits, 0, "clean link: the wrap alone must not confuse RTT/resend");
    }
}
