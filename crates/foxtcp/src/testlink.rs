//! An in-memory lower protocol for testing TCP in isolation.
//!
//! The paper's test structure runs each module against the standard
//! without a live network; [`LinkPair`] extends that to whole-engine
//! tests: two [`TestLower`] endpoints joined by loss-free (or
//! deterministically lossy) in-memory queues, with addresses that are
//! plain `u8`s. No IP, no Ethernet, no simulator — every test failure is
//! a TCP bug.
//!
//! The companion [`TestAux`] satisfies `IP_AUX` with checksums disabled
//! (the in-memory link never corrupts), so the full engine runs over it
//! unchanged — the same genericity that lets `Special_Tcp` run over raw
//! Ethernet.

use foxbasis::buf::PacketBuf;
use foxbasis::time::VirtualTime;
use foxproto::aux::{AuxInfo, IpAux};
use foxproto::{Handler, ProtoError, Protocol};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A message on the test link: (source address, bytes). The frame rides
/// as the [`PacketBuf`] the sender handed down — delivery is a refcount
/// bump, exactly like the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestMsg {
    /// Sender's link address.
    pub src: u8,
    /// Segment bytes.
    pub data: PacketBuf,
}

/// Policy hook: inspect/modify/drop frames in transit.
/// Returns `false` to drop the frame.
pub type Filter = Box<dyn FnMut(&mut PacketBuf) -> bool>;

struct Wire {
    /// Frames in flight toward endpoint 0 / 1.
    toward: [VecDeque<TestMsg>; 2],
    filters: [Option<Filter>; 2],
    /// Frames dropped by filters.
    pub dropped: u64,
}

/// A pair of connected test endpoints.
pub struct LinkPair {
    wire: Rc<RefCell<Wire>>,
}

impl LinkPair {
    /// A fresh, loss-free pair. Endpoint addresses are 0 and 1.
    pub fn new() -> LinkPair {
        LinkPair {
            wire: Rc::new(RefCell::new(Wire {
                toward: [VecDeque::new(), VecDeque::new()],
                filters: [None, None],
                dropped: 0,
            })),
        }
    }

    /// The endpoint with address `side` (0 or 1).
    pub fn endpoint(&self, side: u8) -> TestLower {
        assert!(side < 2);
        TestLower { wire: self.wire.clone(), side, handler: None, opened: false }
    }

    /// Installs a filter on frames *toward* `side`.
    pub fn set_filter_toward(&self, side: u8, filter: Filter) {
        self.wire.borrow_mut().filters[usize::from(side)] = Some(filter);
    }

    /// Frames dropped by filters so far.
    pub fn dropped(&self) -> u64 {
        self.wire.borrow().dropped
    }

    /// Frames currently in flight toward `side`.
    pub fn in_flight_toward(&self, side: u8) -> usize {
        self.wire.borrow().toward[usize::from(side)].len()
    }
}

impl Default for LinkPair {
    fn default() -> Self {
        LinkPair::new()
    }
}

/// One endpoint of a [`LinkPair`].
pub struct TestLower {
    wire: Rc<RefCell<Wire>>,
    side: u8,
    handler: Option<Handler<TestMsg>>,
    opened: bool,
}

impl Protocol for TestLower {
    type Pattern = ();
    type Peer = u8;
    type Incoming = TestMsg;
    type ConnId = u8;

    fn open(&mut self, _p: (), handler: Handler<TestMsg>) -> Result<u8, ProtoError> {
        if self.opened {
            return Err(ProtoError::AlreadyOpen);
        }
        self.opened = true;
        self.handler = Some(handler);
        Ok(self.side)
    }

    fn send(&mut self, _conn: u8, to: u8, payload: impl Into<PacketBuf>) -> Result<(), ProtoError> {
        if to > 1 {
            return Err(ProtoError::Unreachable);
        }
        let mut wire = self.wire.borrow_mut();
        let mut payload = payload.into();
        let keep = match &mut wire.filters[usize::from(to)] {
            Some(f) => f(&mut payload),
            None => true,
        };
        if keep {
            let src = self.side;
            wire.toward[usize::from(to)].push_back(TestMsg { src, data: payload });
        } else {
            wire.dropped += 1;
        }
        Ok(())
    }

    fn close(&mut self, _conn: u8) -> Result<(), ProtoError> {
        self.opened = false;
        self.handler = None;
        Ok(())
    }

    fn step(&mut self, _now: VirtualTime) -> bool {
        let mut progress = false;
        loop {
            let msg = self.wire.borrow_mut().toward[usize::from(self.side)].pop_front();
            match msg {
                Some(m) => {
                    progress = true;
                    if let Some(h) = &mut self.handler {
                        h(m);
                    }
                }
                None => break,
            }
        }
        progress
    }
}

/// `IP_AUX` for the test link: no checksums, a generous MTU.
#[derive(Clone, Debug, Default)]
pub struct TestAux;

impl IpAux for TestAux {
    type Address = u8;
    type Incoming = TestMsg;

    fn hash(addr: &u8) -> u64 {
        u64::from(*addr)
    }

    fn makestring(addr: &u8) -> String {
        format!("host{addr}")
    }

    fn info<'a>(&self, msg: &'a TestMsg) -> AuxInfo<'a, u8> {
        AuxInfo { src: msg.src, data: &msg.data }
    }

    fn check(&self, _remote: &u8, _len: usize) -> Option<u16> {
        None
    }

    fn mtu(&self) -> usize {
        1500 // the conventional Ethernet link MTU, so the MSS pins at 1460
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn frames_cross_the_link() {
        let pair = LinkPair::new();
        let mut a = pair.endpoint(0);
        let mut b = pair.endpoint(1);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        b.open((), Box::new(move |m| g.borrow_mut().push(m))).unwrap();
        a.open((), Box::new(|_| {})).unwrap();
        a.send(0, 1, b"hello".to_vec()).unwrap();
        assert!(b.step(VirtualTime::ZERO));
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0], TestMsg { src: 0, data: b"hello"[..].into() });
    }

    #[test]
    fn filters_drop_frames() {
        let pair = LinkPair::new();
        let mut a = pair.endpoint(0);
        let mut b = pair.endpoint(1);
        b.open((), Box::new(|_| {})).unwrap();
        a.open((), Box::new(|_| {})).unwrap();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        pair.set_filter_toward(
            1,
            Box::new(move |_| {
                *c.borrow_mut() += 1;
                *c.borrow() % 2 == 0 // drop every odd frame
            }),
        );
        for _ in 0..4 {
            a.send(0, 1, vec![0]).unwrap();
        }
        b.step(VirtualTime::ZERO);
        assert_eq!(pair.dropped(), 2);
    }
}
