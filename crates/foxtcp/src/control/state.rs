//! The State module: "the main state manipulations required on
//! connection open, close, or abort, and also when a timer expires"
//! (paper §4).

use crate::action::{TcpAction, TimerKind};
use crate::resend;
use crate::send;
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use foxbasis::time::VirtualTime;
use foxproto::ProtoError;
use foxwire::tcp::TcpFlags;
use std::fmt::Debug;

/// Active open (RFC 793 OPEN with a specified foreign socket): send a
/// SYN, arm the user timeout, enter SYN-SENT.
pub fn active_open<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    now: VirtualTime,
) -> Result<(), ProtoError> {
    if core.state != TcpState::Closed {
        return Err(ProtoError::AlreadyOpen);
    }
    if core.remote.is_none() {
        return Err(ProtoError::Invalid("active open requires a remote"));
    }
    core.state = TcpState::SynSent { retries_left: cfg.syn_retries };
    send::queue_syn(core, false, now);
    core.tcb.push_action(TcpAction::SetTimer(TimerKind::UserTimeout, cfg.user_timeout_ms));
    Ok(())
}

/// Passive open (RFC 793 OPEN with an unspecified foreign socket).
pub fn passive_open<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
) -> Result<(), ProtoError> {
    if core.state != TcpState::Closed {
        return Err(ProtoError::AlreadyOpen);
    }
    core.state = TcpState::Listen { backlog: cfg.backlog };
    Ok(())
}

/// Marks a freshly spawned child of a listener as an embryonic
/// connection: it "listens" on behalf of its parent for exactly the SYN
/// that created it (backlog 0 — a child spawns nothing itself). The
/// engine calls this instead of writing the state directly; every
/// lifecycle write stays in `control`.
pub fn spawn_embryonic<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>) {
    // Embryonic TCBs are always minted fresh; the FSM extractor relies
    // on this assertion to type the write as CLOSED -> LISTEN.
    debug_assert!(core.state == TcpState::Closed);
    core.state = TcpState::Listen { backlog: 0 };
}

/// CLOSE (RFC 793 p. 60): graceful shutdown of our direction.
pub fn close<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    now: VirtualTime,
) -> Result<(), ProtoError> {
    match core.state.clone() {
        TcpState::Closed => Err(ProtoError::NotOpen),
        TcpState::Listen { .. } | TcpState::SynSent { .. } => {
            // "Any outstanding RECEIVEs are returned ... delete the TCB."
            core.state = TcpState::Closed;
            for kind in TimerKind::ALL {
                core.tcb.push_action(TcpAction::ClearTimer(kind));
            }
            core.tcb.push_action(TcpAction::CompleteClose);
            Ok(())
        }
        TcpState::SynActive | TcpState::SynPassive { .. } | TcpState::Estab => {
            // "Queue this until all preceding SENDs have been segmentized,
            // then form a FIN segment and send it" — fin_pending does the
            // queueing; the Send module emits the FIN after the data.
            core.tcb.fin_pending = true;
            core.state = TcpState::FinWait1 { fin_acked: false };
            send::maybe_send(cfg, core, now);
            Ok(())
        }
        TcpState::CloseWait => {
            core.tcb.fin_pending = true;
            core.state = TcpState::LastAck;
            send::maybe_send(cfg, core, now);
            Ok(())
        }
        TcpState::FinWait1 { .. }
        | TcpState::FinWait2
        | TcpState::Closing
        | TcpState::LastAck
        | TcpState::TimeWait => Err(ProtoError::Closing),
    }
}

/// ABORT (RFC 793 p. 62): RST out (if synchronized), flush, close.
pub fn abort<P: Clone + PartialEq + Debug>(
    _cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    now: VirtualTime,
) -> Result<(), ProtoError> {
    let was = core.state.clone();
    if was == TcpState::Closed {
        return Err(ProtoError::NotOpen);
    }
    if core.state.is_synchronized() && was != TcpState::TimeWait {
        let header = send::make_header(core, TcpFlags::RST_ACK, core.tcb.snd_nxt, now);
        core.tcb.push_action(TcpAction::SendSegment(foxwire::tcp::TcpSegment {
            header,
            payload: foxbasis::buf::PacketBuf::new(),
        }));
    }
    core.state = TcpState::Closed;
    core.tcb.resend_queue.clear();
    core.tcb.send_buf.clear();
    core.tcb.out_of_order.clear();
    for kind in TimerKind::ALL {
        core.tcb.push_action(TcpAction::ClearTimer(kind));
    }
    core.tcb.push_action(TcpAction::CompleteClose);
    Ok(())
}

/// Timer expirations (the `Timer_Expiration` action): dispatch to the
/// responsible module.
pub fn timer_expired<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    kind: TimerKind,
    now: VirtualTime,
) {
    if core.state == TcpState::Closed {
        return;
    }
    match kind {
        TimerKind::Resend => retransmit_timer(cfg, core, now),
        TimerKind::DelayedAck => {
            if core.tcb.ack_pending {
                send::queue_ack(core, now);
            }
        }
        TimerKind::Persist => {
            send::window_probe(cfg, core, now);
        }
        TimerKind::TimeWait => {
            if core.state == TcpState::TimeWait {
                core.state = TcpState::Closed;
                for k in TimerKind::ALL {
                    core.tcb.push_action(TcpAction::ClearTimer(k));
                }
                core.tcb.push_action(TcpAction::CompleteClose);
            }
        }
        TimerKind::UserTimeout => {
            // A hung operation (usually the handshake) fails.
            if !matches!(core.state, TcpState::Estab) {
                core.state = TcpState::Closed;
                core.tcb.resend_queue.clear();
                core.tcb.send_buf.clear();
                for k in TimerKind::ALL {
                    core.tcb.push_action(TcpAction::ClearTimer(k));
                }
                core.tcb.push_action(TcpAction::UserTimeoutFired);
            }
        }
    }
}

/// The retransmission timer fired. The data path backs off and resends
/// ([`resend::rto_backoff`] / [`resend::retransmit_and_rearm`]); whether
/// the connection gives up instead — the retry budget, the SYN-state
/// retry accounting — is this module's decision, because giving up is a
/// state transition.
fn retransmit_timer<P: Clone + PartialEq + Debug>(cfg: &TcpConfig, core: &mut ConnCore<P>, now: VirtualTime) {
    if !resend::has_flight(core) {
        return;
    }
    if resend::out_of_retries(core) {
        give_up(core);
        return;
    }
    resend::rto_backoff(cfg, core, now);
    // SYN-state retry accounting lives in the state, mirroring the
    // paper's `Syn_Sent of tcp_tcb * int`.
    match &mut core.state {
        TcpState::SynSent { retries_left } | TcpState::SynPassive { retries_left } => {
            if *retries_left == 0 {
                give_up(core);
                return;
            }
            *retries_left -= 1;
        }
        _ => {}
    }
    resend::retransmit_and_rearm(core, now);
}

/// Hung operation: fail it (the paper's user timeout).
fn give_up<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>) {
    core.state = TcpState::Closed;
    for kind in TimerKind::ALL {
        core.tcb.push_action(TcpAction::ClearTimer(kind));
    }
    core.tcb.push_action(TcpAction::UserTimeoutFired);
}

#[cfg(test)]
mod tests {
    use super::*;
    use foxbasis::seq::Seq;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    fn fresh() -> ConnCore<u32> {
        let mut c: ConnCore<u32> = ConnCore::new(&cfg(), 1000, Seq(100), 1460);
        c.remote = Some((7, 2000));
        c
    }

    fn tags(core: &ConnCore<u32>) -> Vec<&'static str> {
        core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| a.tag()).collect()
    }

    #[test]
    fn active_open_sends_syn_and_arms_user_timer() {
        let mut core = fresh();
        active_open(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::SynSent { retries_left: 5 });
        let t = tags(&core);
        assert!(t.contains(&"Send_Segment"));
        assert!(t.contains(&"Set_Timer"));
        assert_eq!(core.tcb.snd_nxt, Seq(101));
        // Double open fails.
        assert_eq!(active_open(&cfg(), &mut core, VirtualTime::ZERO), Err(ProtoError::AlreadyOpen));
    }

    #[test]
    fn active_open_requires_remote() {
        let mut core: ConnCore<u32> = ConnCore::new(&cfg(), 1, Seq(0), 1460);
        assert!(matches!(active_open(&cfg(), &mut core, VirtualTime::ZERO), Err(ProtoError::Invalid(_))));
    }

    #[test]
    fn passive_open_listens() {
        let mut core = fresh();
        passive_open(&cfg(), &mut core).unwrap();
        assert_eq!(core.state, TcpState::Listen { backlog: 8 });
        assert_eq!(passive_open(&cfg(), &mut core), Err(ProtoError::AlreadyOpen));
    }

    #[test]
    fn close_from_estab_sends_fin_enters_finwait1() {
        let mut core = fresh();
        core.state = TcpState::Estab;
        core.tcb.snd_wnd = 4096;
        close(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::FinWait1 { fin_acked: false });
        assert!(core.tcb.fin_pending);
        assert!(core.tcb.fin_seq.is_some(), "FIN actually staged");
        let t = tags(&core);
        assert!(t.contains(&"Send_Segment"));
    }

    #[test]
    fn close_from_close_wait_enters_last_ack() {
        let mut core = fresh();
        core.state = TcpState::CloseWait;
        core.tcb.snd_wnd = 4096;
        close(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::LastAck);
    }

    #[test]
    fn close_from_listen_or_synsent_just_closes() {
        let mut core = fresh();
        core.state = TcpState::Listen { backlog: 4 };
        close(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::Closed);
        assert!(tags(&core).contains(&"Complete_Close"));

        let mut core = fresh();
        core.state = TcpState::SynSent { retries_left: 3 };
        close(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::Closed);
    }

    #[test]
    fn double_close_is_an_error() {
        let mut core = fresh();
        core.state = TcpState::FinWait2;
        assert_eq!(close(&cfg(), &mut core, VirtualTime::ZERO), Err(ProtoError::Closing));
        core.state = TcpState::Closed;
        assert_eq!(close(&cfg(), &mut core, VirtualTime::ZERO), Err(ProtoError::NotOpen));
    }

    #[test]
    fn abort_sends_rst_and_flushes() {
        let mut core = fresh();
        core.state = TcpState::Estab;
        core.tcb.send_buf.write(&[1; 100]);
        abort(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        assert_eq!(core.state, TcpState::Closed);
        assert_eq!(core.tcb.send_buf.len(), 0);
        let acts: Vec<String> =
            core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| format!("{a:?}")).collect();
        assert!(acts.iter().any(|a| a.contains("RST")), "{acts:?}");
        assert!(acts.iter().any(|a| a == "Complete_Close"));
    }

    #[test]
    fn abort_from_syn_sent_sends_no_rst() {
        let mut core = fresh();
        core.state = TcpState::SynSent { retries_left: 1 };
        abort(&cfg(), &mut core, VirtualTime::ZERO).unwrap();
        let acts: Vec<String> =
            core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| format!("{a:?}")).collect();
        assert!(!acts.iter().any(|a| a.contains("RST")), "{acts:?}");
    }

    #[test]
    fn time_wait_timer_completes_close() {
        let mut core = fresh();
        core.state = TcpState::TimeWait;
        timer_expired(&cfg(), &mut core, TimerKind::TimeWait, VirtualTime::from_millis(60_000));
        assert_eq!(core.state, TcpState::Closed);
        assert!(tags(&core).contains(&"Complete_Close"));
    }

    #[test]
    fn user_timeout_fails_a_hung_handshake() {
        let mut core = fresh();
        core.state = TcpState::SynSent { retries_left: 2 };
        timer_expired(&cfg(), &mut core, TimerKind::UserTimeout, VirtualTime::from_millis(1));
        assert_eq!(core.state, TcpState::Closed);
        assert!(tags(&core).contains(&"User_Timeout"));
    }

    #[test]
    fn user_timeout_ignores_established() {
        let mut core = fresh();
        core.state = TcpState::Estab;
        timer_expired(&cfg(), &mut core, TimerKind::UserTimeout, VirtualTime::from_millis(1));
        assert_eq!(core.state, TcpState::Estab);
    }

    #[test]
    fn delayed_ack_timer_acks_only_when_pending() {
        let mut core = fresh();
        core.state = TcpState::Estab;
        timer_expired(&cfg(), &mut core, TimerKind::DelayedAck, VirtualTime::from_millis(1));
        assert!(tags(&core).is_empty());
        core.tcb.ack_pending = true;
        timer_expired(&cfg(), &mut core, TimerKind::DelayedAck, VirtualTime::from_millis(2));
        assert!(tags(&core).contains(&"Send_Segment"));
        assert!(!core.tcb.ack_pending);
    }

    #[test]
    fn timers_on_closed_connection_are_inert() {
        let mut core = fresh();
        for kind in TimerKind::ALL {
            timer_expired(&cfg(), &mut core, kind, VirtualTime::from_millis(1));
        }
        assert!(tags(&core).is_empty());
    }
}
