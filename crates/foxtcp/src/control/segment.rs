//! The Receive module: RFC 793's SEGMENT ARRIVES procedure.
//!
//! "The receive procedure is described in the standard as a procedure
//! with branch points and merge points, but no loops (a directed acyclic
//! graph). We have implemented the receive code by implementing exactly
//! the branches specified in the standard, using functions as labels for
//! the merge points." (paper §4)
//!
//! The merge-point functions below follow RFC 793 pages 64–75:
//! [`segment_arrives`] dispatches on state; the synchronized states fall
//! through `check_sequence` → `check_rst` → `check_syn` → `check_ack` →
//! `process_text` → `check_fin`, each an explicit function so the code
//! can be read against the standard — the paper's maintainability claim.
//!
//! This file is the *control* half of the DAG: the branch structure and
//! every state transition. The checks that move sequence numbers,
//! windows, and bytes live in [`crate::data::transfer`]; this module
//! calls them through the narrow seams described there (handing over an
//! `EstablishedHandle` at promotion time, receiving `DataEvent`s back).

use crate::action::{AttackEvent, TcpAction, TimerKind};
use crate::control::EstablishedHandle;
use crate::data::transfer::{self, DataEvent};
use crate::resend;
use crate::send;
use crate::tcb::TcpState;
use crate::{ConnCore, TcpConfig};
use foxbasis::time::VirtualTime;
use foxwire::tcp::TcpSegment;
use std::fmt::Debug;

/// What the engine should do after processing (beyond the actions queued
/// on the to_do queue).
#[derive(Debug, PartialEq, Eq, Default)]
pub struct Disposition {
    /// Reply with this segment even though no connection state changed
    /// (RST generation for half-open/unknown cases).
    pub reply: Option<TcpSegment>,
}

/// What a listener should do with a segment (RFC 793 p. 65 "If the state
/// is LISTEN").
#[derive(Debug, PartialEq, Eq)]
pub enum ListenVerdict {
    /// "An incoming RST should be ignored."
    Ignore,
    /// "Any acknowledgment is bad ... a reset is sent." The reply is the
    /// RST to transmit.
    Reply(TcpSegment),
    /// A SYN: spawn an embryonic connection and run
    /// [`segment_arrives`] on it.
    Spawn,
}

/// Classifies a segment arriving at a listening socket.
pub fn on_listen_segment(local_port: u16, seg: &TcpSegment) -> ListenVerdict {
    if seg.header.flags.rst {
        ListenVerdict::Ignore
    } else if seg.header.flags.ack {
        ListenVerdict::Reply(send::reset_for(local_port, seg))
    } else if seg.header.flags.syn {
        ListenVerdict::Spawn
    } else {
        ListenVerdict::Ignore // "you are unlikely to get here, but if you do, drop the segment"
    }
}

/// The response RFC 793 p. 36 prescribes for a segment arriving at a
/// CLOSED (nonexistent) connection.
pub fn on_closed_segment(cfg: &TcpConfig, local_port: u16, seg: &TcpSegment) -> Option<TcpSegment> {
    if seg.header.flags.rst || !cfg.abort_unknown_connections {
        None
    } else {
        Some(send::reset_for(local_port, seg))
    }
}

/// SEGMENT ARRIVES for a connection in any non-LISTEN, non-CLOSED state.
pub fn segment_arrives<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: TcpSegment,
    now: VirtualTime,
) -> Disposition {
    match core.state {
        TcpState::Closed => Disposition { reply: on_closed_segment(cfg, core.local_port, &seg) },
        TcpState::Listen { .. } => {
            // LISTEN processing for the freshly-spawned embryonic
            // connection: record the peer's sequencing, answer SYN+ACK,
            // move to SYN-RECEIVED (passive flavor).
            debug_assert!(seg.header.flags.syn);
            listen_receives_syn(cfg, core, &seg, now);
            Disposition::default()
        }
        TcpState::SynSent { .. } => syn_sent(cfg, core, seg, now),
        _ => synchronized(cfg, core, seg, now),
    }
}

/// LISTEN gets a SYN: "set RCV.NXT to SEG.SEQ+1, IRS is set to SEG.SEQ
/// ... ISS should be selected and a SYN segment sent of the form
/// <SEQ=ISS><ACK=RCV.NXT><CTL=SYN,ACK> ... The connection state should
/// be changed to SYN-RECEIVED."
fn listen_receives_syn<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) {
    transfer::note_peer_syn(core, &seg.header);
    transfer::init_window_from_syn(core, &seg.header);
    core.state = TcpState::SynPassive { retries_left: cfg.syn_retries };
    send::queue_syn(core, true, now);
    core.tcb.push_action(TcpAction::SetTimer(TimerKind::UserTimeout, cfg.user_timeout_ms));
    // Any data included with the SYN would be processed later (after
    // ESTABLISHED); our peer implementations never send any.
}

/// SYN-SENT processing (RFC 793 p. 66).
fn syn_sent<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: TcpSegment,
    now: VirtualTime,
) -> Disposition {
    let h = &seg.header;
    // First: check the ACK bit.
    let ack_acceptable = if h.flags.ack {
        if h.ack.le(core.tcb.iss) || h.ack.gt(core.tcb.snd_nxt) {
            // "send a reset (unless the RST bit is set)... and discard."
            if h.flags.rst {
                return Disposition::default();
            }
            return Disposition { reply: Some(send::reset_for(core.local_port, &seg)) };
        }
        true
    } else {
        false
    };
    // Second: check the RST bit.
    if h.flags.rst {
        if ack_acceptable {
            // "signal the user 'error: connection reset', drop the
            // segment, enter CLOSED state."
            enter_closed_after_reset(core);
        }
        return Disposition::default();
    }
    // Fourth: check the SYN bit.
    if h.flags.syn {
        transfer::note_peer_syn(core, h);
        if ack_acceptable {
            // The peer echoed our timestamp on the SYN+ACK: first RTTM
            // sample (consumed in `process_ack`).
            transfer::stash_syn_ack_echo(core, h);
            // "SND.UNA should be advanced to equal SEG.ACK"; our SYN is
            // acknowledged: ESTABLISHED.
            resend::process_ack(cfg, core, h.ack, now);
            // A SYN+ACK's window is never scaled.
            transfer::establish(cfg, core, h, false, EstablishedHandle::mint());
            core.state = TcpState::Estab;
            core.tcb.push_action(TcpAction::ClearTimer(TimerKind::UserTimeout));
            core.tcb.push_action(TcpAction::CompleteOpen);
            send::queue_ack(core, now);
            send::maybe_send(cfg, core, now);
            // Data or FIN on the SYN+ACK continues below through the
            // synchronized path on retransmission; rare enough to defer.
        } else {
            // Simultaneous open: "enter SYN-RECEIVED, form a SYN,ACK
            // segment and send it."
            core.state = TcpState::SynActive;
            send::queue_syn(core, true, now);
        }
    }
    Disposition::default()
}

/// The common path for synchronized states (RFC 793 pp. 69–75).
fn synchronized<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: TcpSegment,
    now: VirtualTime,
) -> Disposition {
    if !transfer::process_timestamps(core, &seg.header, now) {
        return Disposition::default(); // PAWS rejected the segment
    }
    if !transfer::check_sequence(cfg, core, &seg, now) {
        return Disposition::default();
    }
    if seg.header.flags.rst {
        // RFC 5961 §3.2: only an RST at exactly RCV.NXT aborts. An RST
        // elsewhere in the window is a blind-reset attempt (the attacker
        // guessed the window but not the exact sequence number): answer
        // with a challenge ACK so a genuine peer can re-send the exact
        // one, and count the rejection.
        if seg.header.seq == core.tcb.rcv_nxt {
            check_rst(core);
        } else {
            core.tcb.push_action(TcpAction::Attack(AttackEvent::RstBadSeq));
            send::queue_ack(core, now);
        }
        return Disposition::default();
    }
    if seg.header.flags.syn {
        // "If the SYN is in the window it is an error, send a reset ...
        // and return." (A SYN exactly at IRS is a retransmitted
        // handshake segment and is not in the current window.)
        return check_syn(core, &seg);
    }
    if !seg.header.flags.ack {
        return Disposition::default(); // "if the ACK bit is off drop the segment"
    }
    if !check_ack(cfg, core, &seg, now) {
        return Disposition::default();
    }
    transfer::check_urg(core, &seg);
    transfer::process_text(cfg, core, &seg, now);
    check_fin(cfg, core, &seg, now);
    Disposition::default()
}

/// Second check: RST in window.
fn check_rst<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>) {
    match core.state {
        TcpState::SynPassive { .. } => {
            // Passive opens "return to the LISTEN state" — the embryonic
            // connection simply disappears; the engine notices Closed
            // with no user signal needed (the parent still listens).
            silently_close(core);
        }
        _ => enter_closed_after_reset(core),
    }
}

/// Fourth check: an in-window SYN is an error.
fn check_syn<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>, seg: &TcpSegment) -> Disposition {
    let reply = send::reset_for(core.local_port, seg);
    enter_closed_after_reset(core);
    Disposition { reply: Some(reply) }
}

/// Fifth check: the ACK field. Returns false if processing should stop.
fn check_ack<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) -> bool {
    let h = &seg.header;
    let ack = h.ack;

    // SACK blocks ride on (duplicate) ACKs: fold them into the
    // scoreboard before any ACK processing decides what to retransmit.
    if core.tcb.sack_on {
        let blocks = h.sack_blocks();
        if !blocks.is_empty() {
            core.tcb.note_sack_blocks(blocks);
        }
    }

    if core.state.is_syn_received() {
        // "If SND.UNA =< SEG.ACK =< SND.NXT then enter ESTABLISHED state
        // ... otherwise send a reset."
        if ack.in_open_closed(core.tcb.snd_una - 1, core.tcb.snd_nxt) {
            resend::process_ack(cfg, core, ack, now);
            // The handshake-completing ACK is not a SYN: scaled.
            transfer::establish(cfg, core, h, true, EstablishedHandle::mint());
            core.state = TcpState::Estab;
            core.tcb.push_action(TcpAction::ClearTimer(TimerKind::UserTimeout));
            core.tcb.push_action(TcpAction::CompleteOpen);
            send::maybe_send(cfg, core, now);
        } else {
            core.tcb.push_action(TcpAction::SendSegment(send::reset_for(core.local_port, seg)));
            return false;
        }
        return true;
    }

    // ESTABLISHED-family ACK processing.
    if ack.in_open_closed(core.tcb.snd_una, core.tcb.snd_nxt) {
        let outcome = resend::process_ack(cfg, core, ack, now);
        transfer::update_send_window(core, seg);
        after_ack_transitions(cfg, core, outcome.fin_acked);
        send::maybe_send(cfg, core, now);
    } else if ack == core.tcb.snd_una {
        // Duplicate. Window updates may still ride on it.
        let pure_dup = seg.payload.is_empty()
            && core.tcb.scale_peer_window(h.window, h.flags.syn) == core.tcb.snd_wnd
            && !seg.header.flags.fin;
        transfer::update_send_window(core, seg);
        if pure_dup {
            resend::duplicate_ack(cfg, core, now);
        } else {
            send::maybe_send(cfg, core, now);
        }
    } else if ack.gt(core.tcb.snd_nxt) {
        // "If the ACK acks something not yet sent ... send an ACK, drop
        // the segment." This is also the optimistic-ACK attack shape:
        // count it so the harness can assert cwnd never grew on it.
        core.tcb.push_action(TcpAction::Attack(AttackEvent::AckUnsentData));
        send::queue_ack(core, now);
        return false;
    }
    // Old ACK (below snd_una): ignore the ACK field but keep processing.
    true
}

/// ACK-driven state transitions for the closing states.
fn after_ack_transitions<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    fin_acked_now: bool,
) {
    let our_fin_acked = fin_acked_now || core.tcb.fin_seq.is_some_and(|f| (f + 1).le(core.tcb.snd_una));
    match core.state {
        TcpState::FinWait1 { .. } if our_fin_acked => {
            core.state = TcpState::FinWait2;
        }
        TcpState::FinWait1 { .. } => {
            core.state = TcpState::FinWait1 { fin_acked: false };
        }
        TcpState::Closing if our_fin_acked => {
            core.state = TcpState::TimeWait;
            core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
        }
        TcpState::LastAck if our_fin_acked => {
            core.state = TcpState::Closed;
            for kind in TimerKind::ALL {
                core.tcb.push_action(TcpAction::ClearTimer(kind));
            }
            core.tcb.push_action(TcpAction::CompleteClose);
        }
        _ => {}
    }
}

/// Eighth: check the FIN bit.
fn check_fin<P: Clone + PartialEq + Debug>(
    cfg: &TcpConfig,
    core: &mut ConnCore<P>,
    seg: &TcpSegment,
    now: VirtualTime,
) {
    if !seg.header.flags.fin {
        return;
    }
    let fin_seq = seg.header.seq + seg.payload.len() as u32;
    if core.tcb.rcv_nxt != fin_seq {
        // FIN not yet reachable (data missing in between): if its data
        // was queued out of order the FIN mark went with it; the ACK we
        // already sent tells the peer to retransmit.
        if fin_seq.gt(core.tcb.rcv_nxt) {
            if seg.payload.is_empty() {
                transfer::note_out_of_order_fin(core, seg.header.seq);
            }
            return;
        }
        // Retransmitted FIN below rcv_nxt in TIME-WAIT and friends:
        if core.state == TcpState::TimeWait {
            send::queue_ack(core, now);
            core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
        }
        return;
    }
    // Consume the FIN; the data path reports it, control decides which
    // closing state it implies.
    let DataEvent::FinReceived = transfer::consume_fin(core, now);
    core.tcb.push_action(TcpAction::PeerClose);
    match core.state {
        TcpState::SynActive | TcpState::SynPassive { .. } | TcpState::Estab => {
            core.state = TcpState::CloseWait;
        }
        TcpState::FinWait1 { fin_acked } => {
            if fin_acked || core.tcb.fin_seq.is_some_and(|f| (f + 1).le(core.tcb.snd_una)) {
                core.state = TcpState::TimeWait;
                core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
            } else {
                core.state = TcpState::Closing;
            }
        }
        TcpState::FinWait2 => {
            core.state = TcpState::TimeWait;
            core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
        }
        TcpState::TimeWait => {
            core.tcb.push_action(TcpAction::SetTimer(TimerKind::TimeWait, cfg.time_wait_ms));
        }
        _ => {}
    }
}

/// Peer reset: flush everything, tell the user.
fn enter_closed_after_reset<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>) {
    core.state = TcpState::Closed;
    let tcb = &mut core.tcb;
    tcb.resend_queue.clear();
    tcb.send_buf.clear();
    tcb.out_of_order.clear();
    for kind in TimerKind::ALL {
        tcb.push_action(TcpAction::ClearTimer(kind));
    }
    tcb.push_action(TcpAction::PeerReset);
}

/// Close without any user signal (embryonic reset).
fn silently_close<P: Clone + PartialEq + Debug>(core: &mut ConnCore<P>) {
    core.state = TcpState::Closed;
    let tcb = &mut core.tcb;
    tcb.resend_queue.clear();
    tcb.send_buf.clear();
    tcb.out_of_order.clear();
    for kind in TimerKind::ALL {
        tcb.push_action(TcpAction::ClearTimer(kind));
    }
}

#[cfg(test)]
mod tests {
    //! The paper's test structure, literally: "test code ... helps point
    //! out implementation defects by comparing the TCB produced by the
    //! operation with the TCB expected in accordance with the standard."
    //! Each test builds a connection core in a known state, applies one
    //! SEGMENT-ARRIVES, and checks the TCB and emitted actions.

    use super::*;
    use foxbasis::buf::PacketBuf;
    use foxbasis::seq::Seq;
    use foxwire::tcp::{TcpFlags, TcpHeader, TcpOption};

    fn cfg() -> TcpConfig {
        TcpConfig { delayed_ack_ms: None, ..TcpConfig::default() }
    }

    /// An ESTABLISHED connection: iss 100 (una=nxt=600 after 500 sent
    /// and acked... keep simple: una=nxt=101), irs 5000, rcv_nxt 5001.
    fn estab() -> ConnCore<u8> {
        let mut core: ConnCore<u8> = ConnCore::new(&cfg(), 80, Seq(100), 1460);
        core.remote = Some((9, 4000));
        core.state = TcpState::Estab;
        core.tcb.mss = 1000;
        core.tcb.snd_una = Seq(101);
        core.tcb.snd_nxt = Seq(101);
        core.tcb.irs = Seq(5000);
        core.tcb.rcv_nxt = Seq(5001);
        core.tcb.snd_wnd = 4096;
        core
    }

    fn seg(seq: u32, flags: TcpFlags, payload: &[u8]) -> TcpSegment {
        let mut h = TcpHeader::new(4000, 80);
        h.seq = Seq(seq);
        h.ack = Seq(101);
        h.flags = flags;
        h.window = 4096;
        TcpSegment { header: h, payload: payload.into() }
    }

    fn drain_tags(core: &ConnCore<u8>) -> Vec<&'static str> {
        core.tcb.to_do.borrow_mut().drain_all().iter().map(|a| a.tag()).collect()
    }

    fn drain_actions(core: &ConnCore<u8>) -> Vec<TcpAction<u8>> {
        core.tcb.to_do.borrow_mut().drain_all()
    }

    // ---- LISTEN ----

    #[test]
    fn listen_syn_becomes_syn_passive_with_syn_ack() {
        let mut core: ConnCore<u8> = ConnCore::new(&cfg(), 80, Seq(300), 1460);
        core.remote = Some((9, 4000));
        core.tcb.mss = 1460;
        core.state = TcpState::Listen { backlog: 0 };
        let mut s = seg(7000, TcpFlags::SYN, b"");
        s.header.options.push(TcpOption::MaxSegmentSize(800));
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        // TCB per the standard: RCV.NXT = SEG.SEQ+1, IRS = SEG.SEQ,
        // SND.NXT = ISS+1.
        assert_eq!(core.tcb.irs, Seq(7000));
        assert_eq!(core.tcb.rcv_nxt, Seq(7001));
        assert_eq!(core.tcb.snd_nxt, Seq(301));
        assert_eq!(core.tcb.mss, 800, "min(ours, peer) adopted");
        assert_eq!(core.state, TcpState::SynPassive { retries_left: 5 });
        let actions = drain_actions(&core);
        let synack = actions
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s.clone()),
                _ => None,
            })
            .expect("SYN+ACK staged");
        assert!(synack.header.flags.syn && synack.header.flags.ack);
        assert_eq!(synack.header.seq, Seq(300));
        assert_eq!(synack.header.ack, Seq(7001));
    }

    #[test]
    fn listen_verdicts() {
        let rst = seg(1, TcpFlags::RST, b"");
        assert_eq!(on_listen_segment(80, &rst), ListenVerdict::Ignore);
        let ack = seg(1, TcpFlags::ACK, b"");
        assert!(matches!(on_listen_segment(80, &ack), ListenVerdict::Reply(_)));
        let syn = seg(1, TcpFlags::SYN, b"");
        assert_eq!(on_listen_segment(80, &syn), ListenVerdict::Spawn);
        let none = seg(1, TcpFlags::default(), b"");
        assert_eq!(on_listen_segment(80, &none), ListenVerdict::Ignore);
    }

    #[test]
    fn closed_replies_rst_unless_configured_off() {
        let syn = seg(1, TcpFlags::SYN, b"");
        assert!(on_closed_segment(&cfg(), 80, &syn).is_some());
        let quiet = TcpConfig { abort_unknown_connections: false, ..cfg() };
        assert!(on_closed_segment(&quiet, 80, &syn).is_none());
        let rst = seg(1, TcpFlags::RST, b"");
        assert!(on_closed_segment(&cfg(), 80, &rst).is_none(), "never reset a reset");
    }

    // ---- SYN-SENT ----

    fn syn_sent_core() -> ConnCore<u8> {
        let mut core: ConnCore<u8> = ConnCore::new(&cfg(), 5000, Seq(100), 1460);
        core.remote = Some((9, 80));
        core.state = TcpState::SynSent { retries_left: 5 };
        // SYN already sent.
        core.tcb.snd_nxt = Seq(101);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(100),
            payload: PacketBuf::new(),
            syn: true,
            fin: false,
        });
        core
    }

    #[test]
    fn syn_sent_good_synack_establishes() {
        let mut core = syn_sent_core();
        let mut s = seg(9000, TcpFlags::SYN_ACK, b"");
        s.header.ack = Seq(101);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::from_millis(42));
        assert_eq!(core.state, TcpState::Estab);
        assert_eq!(core.tcb.irs, Seq(9000));
        assert_eq!(core.tcb.rcv_nxt, Seq(9001));
        assert_eq!(core.tcb.snd_una, Seq(101));
        assert!(core.tcb.resend_queue.is_empty(), "SYN acked and removed");
        let tags = drain_tags(&core);
        assert!(tags.contains(&"Complete_Open"));
        assert!(tags.contains(&"Send_Segment"), "the final ACK of the handshake");
    }

    #[test]
    fn syn_sent_bad_ack_is_answered_with_rst() {
        let mut core = syn_sent_core();
        let mut s = seg(9000, TcpFlags::SYN_ACK, b"");
        s.header.ack = Seq(555); // acks nothing we sent
        let d = segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        let rst = d.reply.expect("RST reply");
        assert!(rst.header.flags.rst);
        assert_eq!(rst.header.seq, Seq(555));
        assert_eq!(core.state, TcpState::SynSent { retries_left: 5 }, "state unchanged");
    }

    #[test]
    fn syn_sent_acceptable_rst_closes() {
        let mut core = syn_sent_core();
        let mut s = seg(0, TcpFlags::RST_ACK, b"");
        s.header.ack = Seq(101);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Closed);
        assert!(drain_tags(&core).contains(&"Peer_Reset"));
    }

    #[test]
    fn syn_sent_rst_without_ack_ignored() {
        let mut core = syn_sent_core();
        let s = seg(0, TcpFlags::RST, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::SynSent { retries_left: 5 });
    }

    #[test]
    fn simultaneous_open_goes_syn_active() {
        let mut core = syn_sent_core();
        let s = seg(9000, TcpFlags::SYN, b""); // SYN, no ACK
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::SynActive);
        assert_eq!(core.tcb.rcv_nxt, Seq(9001));
        let actions = drain_actions(&core);
        let synack = actions
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s.clone()),
                _ => None,
            })
            .expect("SYN+ACK for simultaneous open");
        assert!(synack.header.flags.syn && synack.header.flags.ack);
        assert_eq!(synack.header.seq, Seq(100), "same ISS re-announced");
    }

    // ---- sequence check ----

    #[test]
    fn old_segment_gets_ack_and_is_dropped() {
        let mut core = estab();
        let s = seg(4000, TcpFlags::ACK, b"stale");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5001), "nothing consumed");
        let actions = drain_actions(&core);
        let ack = actions
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s.clone()),
                _ => None,
            })
            .expect("re-ACK of current position");
        assert_eq!(ack.header.ack, Seq(5001));
    }

    #[test]
    fn far_future_segment_dropped_with_ack() {
        let mut core = estab();
        let s = seg(5001 + 100_000, TcpFlags::ACK, b"beyond window");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert!(core.tcb.out_of_order.is_empty());
        assert!(drain_tags(&core).contains(&"Send_Segment"));
    }

    // ---- RST / SYN in window ----

    #[test]
    fn in_window_rst_resets() {
        let mut core = estab();
        let s = seg(5001, TcpFlags::RST, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Closed);
        assert!(drain_tags(&core).contains(&"Peer_Reset"));
    }

    #[test]
    fn in_window_rst_off_exact_seq_challenged_not_aborted() {
        // RFC 5961 §3.2: the window is [5001, 5001+rcv_wnd); an RST at
        // 5002 is in-window but not at RCV.NXT — a blind-reset shape.
        let mut core = estab();
        let s = seg(5002, TcpFlags::RST, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Estab, "connection survives");
        let tags = drain_tags(&core);
        assert!(tags.contains(&"Attack"), "rejection counted");
        assert!(tags.contains(&"Send_Segment"), "challenge ACK queued");
        assert!(!tags.contains(&"Peer_Reset"));
    }

    #[test]
    fn off_window_rst_ignored() {
        let mut core = estab();
        let s = seg(1, TcpFlags::RST, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Estab);
        assert!(!drain_tags(&core).contains(&"Peer_Reset"));
    }

    #[test]
    fn rst_on_embryonic_passive_is_silent() {
        let mut core = estab();
        core.state = TcpState::SynPassive { retries_left: 3 };
        let s = seg(5001, TcpFlags::RST, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Closed);
        assert!(!drain_tags(&core).contains(&"Peer_Reset"), "listener child dies quietly");
    }

    #[test]
    fn in_window_syn_resets_with_reply() {
        let mut core = estab();
        let s = seg(5001, TcpFlags::SYN, b"");
        let d = segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert!(d.reply.expect("RST out").header.flags.rst);
        assert_eq!(core.state, TcpState::Closed);
    }

    // ---- ACK processing ----

    #[test]
    fn ack_advances_and_releases() {
        let mut core = estab();
        core.tcb.send_buf.write(&[1; 300]);
        core.tcb.snd_nxt = Seq(401);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(101),
            payload: vec![1u8; 300].into(),
            syn: false,
            fin: false,
        });
        let mut s = seg(5001, TcpFlags::ACK, b"");
        s.header.ack = Seq(401);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.snd_una, Seq(401));
        assert_eq!(core.tcb.send_buf.len(), 0);
    }

    #[test]
    fn ack_of_unsent_data_answered_and_dropped() {
        let mut core = estab();
        let mut s = seg(5001, TcpFlags::ACK, b"should not deliver");
        s.header.ack = Seq(9999);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5001), "text not processed");
        let tags = drain_tags(&core);
        assert!(tags.contains(&"Send_Segment"));
        assert!(tags.contains(&"Attack"), "optimistic ACK counted");
        assert!(!tags.contains(&"User_Data"));
    }

    #[test]
    fn window_update_follows_wl_rules() {
        let mut core = estab();
        core.tcb.snd_wl1 = Seq(4000);
        core.tcb.snd_wl2 = Seq(90);
        let mut s = seg(5001, TcpFlags::ACK, b"");
        s.header.window = 123;
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.snd_wnd, 123);
        assert_eq!(core.tcb.snd_wl1, Seq(5001));
        // An *older* segment (lower seq) must not regress the window.
        let mut s2 = seg(4500, TcpFlags::ACK, b"");
        s2.header.window = 9;
        // (make it pass the sequence check: zero-length at old seq is
        // unacceptable, so this drops before the window code — which is
        // itself the protection.)
        segment_arrives(&cfg(), &mut core, s2, VirtualTime::ZERO);
        assert_eq!(core.tcb.snd_wnd, 123);
    }

    // ---- text processing ----

    #[test]
    fn in_order_text_delivered_and_acked() {
        let mut core = estab();
        let s = seg(5001, TcpFlags::ACK, b"abcdef");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5007));
        let actions = drain_actions(&core);
        let data = actions.iter().find_map(|a| match a {
            TcpAction::UserData(d) => Some(d.clone()),
            _ => None,
        });
        assert_eq!(data.unwrap(), b"abcdef");
        assert!(actions.iter().any(|a| matches!(a, TcpAction::SendSegment(s) if s.header.ack == Seq(5007))));
    }

    #[test]
    fn delayed_ack_sets_timer_instead() {
        let dcfg = TcpConfig { delayed_ack_ms: Some(200), ..TcpConfig::default() };
        let mut core = estab();
        let s = seg(5001, TcpFlags::ACK, b"tiny");
        segment_arrives(&dcfg, &mut core, s, VirtualTime::ZERO);
        let actions = drain_actions(&core);
        assert!(
            actions.iter().any(|a| matches!(a, TcpAction::SetTimer(TimerKind::DelayedAck, 200))),
            "{actions:?}"
        );
        assert!(
            !actions.iter().any(|a| matches!(a, TcpAction::SendSegment(_))),
            "no immediate ACK: {actions:?}"
        );
        assert!(core.tcb.ack_pending);
    }

    #[test]
    fn two_mss_of_data_forces_ack_despite_delay() {
        let dcfg = TcpConfig { delayed_ack_ms: Some(200), ..TcpConfig::default() };
        let mut core = estab();
        core.tcb.mss = 100;
        let s = seg(5001, TcpFlags::ACK, &[7; 250]);
        segment_arrives(&dcfg, &mut core, s, VirtualTime::ZERO);
        let tags = drain_tags(&core);
        assert!(tags.contains(&"Send_Segment"), "{tags:?}");
    }

    #[test]
    fn out_of_order_text_queued_with_dup_ack() {
        let mut core = estab();
        let s = seg(5101, TcpFlags::ACK, b"late block");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5001), "gap remains");
        assert_eq!(core.tcb.out_of_order.len(), 1);
        let actions = drain_actions(&core);
        assert!(
            actions.iter().any(|a| matches!(a, TcpAction::SendSegment(s) if s.header.ack == Seq(5001))),
            "duplicate ACK points at the gap"
        );
    }

    #[test]
    fn gap_fill_delivers_everything() {
        let mut core = estab();
        segment_arrives(&cfg(), &mut core, seg(5007, TcpFlags::ACK, b"world!"), VirtualTime::ZERO);
        drain_actions(&core);
        segment_arrives(&cfg(), &mut core, seg(5001, TcpFlags::ACK, b"hello "), VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5013));
        let actions = drain_actions(&core);
        let delivered: Vec<u8> = actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::UserData(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(delivered, b"hello world!");
    }

    #[test]
    fn overlapping_retransmission_delivers_only_fresh_tail() {
        let mut core = estab();
        segment_arrives(&cfg(), &mut core, seg(5001, TcpFlags::ACK, b"abcd"), VirtualTime::ZERO);
        drain_actions(&core);
        // Peer retransmits [5001..5009): first 4 bytes are old.
        segment_arrives(&cfg(), &mut core, seg(5001, TcpFlags::ACK, b"abcdEFGH"), VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5009));
        let actions = drain_actions(&core);
        let delivered: Vec<u8> = actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::UserData(d) => Some(d.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(delivered, b"EFGH");
    }

    // ---- FIN processing ----

    #[test]
    fn fin_in_estab_enters_close_wait() {
        let mut core = estab();
        let s = seg(5001, TcpFlags::FIN_ACK, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::CloseWait);
        assert_eq!(core.tcb.rcv_nxt, Seq(5002), "FIN consumes a sequence number");
        let tags = drain_tags(&core);
        assert!(tags.contains(&"Peer_Close"));
        assert!(tags.contains(&"Send_Segment"), "FIN acked immediately");
    }

    #[test]
    fn fin_with_data_delivers_data_first() {
        let mut core = estab();
        let s = seg(5001, TcpFlags::FIN_ACK, b"bye");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5005)); // 3 data + FIN
        let tags = drain_tags(&core);
        let data_pos = tags.iter().position(|t| *t == "User_Data").unwrap();
        let close_pos = tags.iter().position(|t| *t == "Peer_Close").unwrap();
        assert!(data_pos < close_pos);
    }

    #[test]
    fn fin_in_fin_wait_2_enters_time_wait() {
        let mut core = estab();
        core.state = TcpState::FinWait2;
        core.tcb.fin_seq = Some(Seq(101));
        core.tcb.snd_una = Seq(102);
        core.tcb.snd_nxt = Seq(102);
        let mut s = seg(5001, TcpFlags::FIN_ACK, b"");
        s.header.ack = Seq(102);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::TimeWait);
        let actions = drain_actions(&core);
        assert!(actions.iter().any(|a| matches!(a, TcpAction::SetTimer(TimerKind::TimeWait, _))));
    }

    #[test]
    fn simultaneous_close_fins_cross() {
        let mut core = estab();
        // We closed: FIN sent at 101, unacked.
        core.state = TcpState::FinWait1 { fin_acked: false };
        core.tcb.fin_pending = true;
        core.tcb.fin_seq = Some(Seq(101));
        core.tcb.snd_nxt = Seq(102);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(101),
            payload: PacketBuf::new(),
            syn: false,
            fin: true,
        });
        // Peer's FIN arrives, acking only old data (not our FIN).
        let mut s = seg(5001, TcpFlags::FIN_ACK, b"");
        s.header.ack = Seq(101);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Closing);
        drain_actions(&core);
        // Now the peer's ACK of our FIN arrives.
        let mut s2 = seg(5002, TcpFlags::ACK, b"");
        s2.header.ack = Seq(102);
        segment_arrives(&cfg(), &mut core, s2, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::TimeWait);
    }

    #[test]
    fn fin_wait_1_with_fin_acked_goes_time_wait_on_fin() {
        let mut core = estab();
        core.state = TcpState::FinWait1 { fin_acked: false };
        core.tcb.fin_seq = Some(Seq(101));
        core.tcb.snd_nxt = Seq(102);
        // Peer ACKs our FIN and FINs in the same segment.
        let mut s = seg(5001, TcpFlags::FIN_ACK, b"");
        s.header.ack = Seq(102);
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::TimeWait);
    }

    #[test]
    fn retransmitted_fin_in_time_wait_restarts_timer() {
        let mut core = estab();
        core.state = TcpState::TimeWait;
        core.tcb.rcv_nxt = Seq(5002); // FIN at 5001 already consumed
        let s = seg(5001, TcpFlags::FIN_ACK, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        let actions = drain_actions(&core);
        assert!(
            actions.iter().any(|a| matches!(a, TcpAction::SetTimer(TimerKind::TimeWait, _))),
            "2MSL restarted: {actions:?}"
        );
        assert!(actions.iter().any(|a| matches!(a, TcpAction::SendSegment(_))), "FIN re-ACKed");
    }

    #[test]
    fn out_of_order_fin_waits_for_data() {
        let mut core = estab();
        // FIN at 5011 but data 5001..5011 missing: bare FIN out of order.
        let s = seg(5011, TcpFlags::FIN_ACK, b"");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.state, TcpState::Estab, "FIN not consumable yet");
        assert_eq!(core.tcb.rcv_nxt, Seq(5001));
    }

    // ---- SYN-time option negotiation (RFC 7323 / RFC 2018) ----

    fn opt_cfg(wscale: bool, sack: bool, ts: bool) -> TcpConfig {
        TcpConfig {
            window_scale: wscale,
            sack,
            timestamps: ts,
            initial_window: 1 << 18, // wants shift 2
            ..cfg()
        }
    }

    fn listener(c: &TcpConfig) -> ConnCore<u8> {
        let mut core: ConnCore<u8> = ConnCore::new(c, 80, Seq(300), 1460);
        core.remote = Some((9, 4000));
        core.tcb.mss = 1460;
        core.state = TcpState::Listen { backlog: 0 };
        core
    }

    fn peer_syn(wscale: Option<u8>, sack: bool, ts: Option<(u32, u32)>) -> TcpSegment {
        let mut s = seg(7000, TcpFlags::SYN, b"");
        s.header.options.push(TcpOption::MaxSegmentSize(1460));
        if let Some(sh) = wscale {
            s.header.options.push(TcpOption::WindowScale(sh));
        }
        if sack {
            s.header.options.push(TcpOption::SackPermitted);
        }
        if let Some((v, e)) = ts {
            s.header.options.push(TcpOption::Timestamps(v, e));
        }
        s
    }

    /// Every option × offered/withheld, on the passive side: an option
    /// is on iff both our config offers it and the peer's SYN carries
    /// it, and the SYN+ACK echoes exactly the negotiated set.
    #[test]
    fn listener_negotiates_each_option_independently() {
        for &ours in &[false, true] {
            for &theirs in &[false, true] {
                let on = ours && theirs;
                // window scale
                let mut core = listener(&opt_cfg(ours, false, false));
                let s = peer_syn(theirs.then_some(7), false, None);
                segment_arrives(&opt_cfg(ours, false, false), &mut core, s, VirtualTime::ZERO);
                assert_eq!(core.tcb.wscale_on, on, "wscale ours={ours} theirs={theirs}");
                if on {
                    assert_eq!(core.tcb.snd_wscale, 7);
                    assert_eq!(core.tcb.rcv_wscale, 3, "shift for a 256 KiB buffer");
                }
                let synack = drain_actions(&core)
                    .iter()
                    .find_map(|a| match a {
                        TcpAction::SendSegment(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(synack.header.wscale().is_some(), on);

                // SACK
                let mut core = listener(&opt_cfg(false, ours, false));
                let s = peer_syn(None, theirs, None);
                segment_arrives(&opt_cfg(false, ours, false), &mut core, s, VirtualTime::ZERO);
                assert_eq!(core.tcb.sack_on, on, "sack ours={ours} theirs={theirs}");
                let synack = drain_actions(&core)
                    .iter()
                    .find_map(|a| match a {
                        TcpAction::SendSegment(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(synack.header.sack_permitted(), on);

                // timestamps
                let mut core = listener(&opt_cfg(false, false, ours));
                let s = peer_syn(None, false, theirs.then_some((5555, 0)));
                segment_arrives(&opt_cfg(false, false, ours), &mut core, s, VirtualTime::ZERO);
                assert_eq!(core.tcb.ts_on, on, "ts ours={ours} theirs={theirs}");
                if on {
                    assert_eq!(core.tcb.ts_recent, 5555, "TS.Recent initialized from the SYN");
                }
                let synack = drain_actions(&core)
                    .iter()
                    .find_map(|a| match a {
                        TcpAction::SendSegment(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap();
                assert_eq!(synack.header.timestamps().is_some(), on);
            }
        }
    }

    /// The active side adopts from the SYN+ACK symmetrically.
    #[test]
    fn active_opener_negotiates_from_syn_ack() {
        let c = opt_cfg(true, true, true);
        let mut core: ConnCore<u8> = ConnCore::new(&c, 5000, Seq(100), 1460);
        core.remote = Some((9, 80));
        core.state = TcpState::SynSent { retries_left: 5 };
        core.tcb.snd_nxt = Seq(101);
        core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
            seq: Seq(100),
            payload: PacketBuf::new(),
            syn: true,
            fin: false,
        });
        let mut s = peer_syn(Some(10), true, Some((9000, 1)));
        s.header.flags = TcpFlags::SYN_ACK;
        s.header.ack = Seq(101);
        s.header.window = 2048;
        segment_arrives(&c, &mut core, s, VirtualTime::from_millis(30));
        assert_eq!(core.state, TcpState::Estab);
        assert!(core.tcb.wscale_on && core.tcb.sack_on && core.tcb.ts_on);
        assert_eq!(core.tcb.snd_wscale, 10);
        assert_eq!(core.tcb.ts_recent, 9000);
        assert_eq!(core.tcb.snd_wnd, 2048, "the SYN+ACK window itself is never scaled");
        // The handshake ACK carries a timestamp echoing the peer.
        let ack = drain_actions(&core)
            .iter()
            .find_map(|a| match a {
                TcpAction::SendSegment(s) => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(ack.header.timestamps(), Some((30, 9000)));
        // And the peer's SYN+ACK echo of our timestamp fed RTTM.
        assert!(core.tcb.rtt.srtt.is_some(), "RTT sampled from TSecr");
    }

    /// A post-handshake window update applies the negotiated shift.
    #[test]
    fn scaled_window_update() {
        let mut core = estab();
        core.tcb.wscale_on = true;
        core.tcb.snd_wscale = 4;
        let mut s = seg(5001, TcpFlags::ACK, b"");
        s.header.window = 4096;
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.snd_wnd, 4096 << 4, "window widened by the peer's shift");
    }

    /// PAWS (RFC 7323 §5.3): an in-window segment whose timestamp is
    /// older than TS.Recent is dropped and re-ACKed.
    #[test]
    fn paws_rejects_old_timestamp() {
        let mut core = estab();
        core.tcb.ts_on = true;
        core.tcb.ts_recent = 10_000;
        let mut s = seg(5001, TcpFlags::ACK, b"wrapped ghost");
        s.header.options.push(TcpOption::Timestamps(9_999, 0));
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5001), "text not consumed");
        let actions = drain_actions(&core);
        assert!(
            actions.iter().any(|a| matches!(a, TcpAction::SendSegment(s) if s.header.ack == Seq(5001))),
            "PAWS drop still ACKs: {actions:?}"
        );
        // The same data with a current timestamp is accepted.
        let mut s = seg(5001, TcpFlags::ACK, b"fresh");
        s.header.options.push(TcpOption::Timestamps(10_001, 0));
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5006));
        assert_eq!(core.tcb.ts_recent, 10_001, "TS.Recent advanced");
    }

    /// Incoming SACK blocks land in the sender-side scoreboard.
    #[test]
    fn ack_with_sack_blocks_updates_scoreboard() {
        let mut core = estab();
        core.tcb.sack_on = true;
        core.tcb.snd_nxt = Seq(4101);
        core.tcb.send_buf.write(&[0; 4000]);
        for i in 0..4u32 {
            core.tcb.resend_queue.push_back(crate::tcb::SentSegment {
                seq: Seq(101 + i * 1000),
                payload: vec![0u8; 1000].into(),
                syn: false,
                fin: false,
            });
        }
        let mut s = seg(5001, TcpFlags::ACK, b"");
        s.header.ack = Seq(101); // duplicate
        s.header.options.push(TcpOption::Sack(vec![(Seq(1101), Seq(2101))]));
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.sack_scoreboard, vec![(Seq(1101), Seq(2101))]);
        assert!(core.tcb.sacked(Seq(1101), Seq(2101)));
    }

    #[test]
    fn text_ignored_after_fin_states() {
        let mut core = estab();
        core.state = TcpState::CloseWait;
        let s = seg(5001, TcpFlags::ACK, b"zombie data");
        segment_arrives(&cfg(), &mut core, s, VirtualTime::ZERO);
        assert_eq!(core.tcb.rcv_nxt, Seq(5001), "text ignored after FIN");
        assert!(!drain_tags(&core).contains(&"User_Data"));
    }
}
