//! The control path: connection lifecycle, and nothing else.
//!
//! Everything that decides *what a connection is* lives here — passive
//! and active opens, the SYN handshakes, RST handling, the close
//! sequences, timer-driven give-ups, and every write to
//! [`crate::TcpState`]. The data path ([`crate::data`]) moves bytes for
//! a connection whose shape control has already decided; it reports
//! events back (see `DataEvent` in [`crate::data::transfer`]) but never
//! mutates the state machine.
//!
//! The boundary is machine-checked: the `ctrl_data` foxlint rule
//! rejects `state` assignments outside this directory and
//! sequence/window/congestion writes inside it (DESIGN.md §5.11).

pub mod segment;
pub mod state;

/// Control's transition token: proof that the decision to enter
/// ESTABLISHED was made on the control side of the boundary.
///
/// The constructor is visible only inside `control`, and the one data
/// function that completes an establishment
/// (`crate::data::transfer::establish`) demands a handle — so the data
/// path cannot promote a connection on its own, and control cannot
/// forget to run the data-side bookkeeping when it does.
pub(crate) struct EstablishedHandle {
    _token: (),
}

impl EstablishedHandle {
    /// Minted next to a `TcpState::Estab` write, nowhere else.
    pub(in crate::control) fn mint() -> EstablishedHandle {
        EstablishedHandle { _token: () }
    }
}
